#include "dtpm_cli.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>
#include <sstream>
#include <thread>

#include "analysis/analyzer.hpp"
#include "governors/policy_registry.hpp"
#include "lint/lint.hpp"
#include "serve/fleet.hpp"
#include "serve/fleet_io.hpp"
#include "serve/server.hpp"
#include "sim/batch.hpp"
#include "sim/calibration.hpp"
#include "sim/config_io.hpp"
#include "sim/engine.hpp"
#include "sim/platform_registry.hpp"
#include "sim/scenario_catalog.hpp"
#include "util/csv.hpp"
#include "util/names.hpp"
#include "workload/suite.hpp"

namespace dtpm::cli {

namespace {

constexpr int kOk = 0;
constexpr int kFailure = 1;
constexpr int kUsage = 2;

const char kUsageText[] =
    "dtpm -- declarative experiment driver for the DTPM reproduction\n"
    "\n"
    "usage:\n"
    "  dtpm run <config.json>  [--platform NAME] [--engine NAME] [--out DIR] "
    "[--with-model] [--smoke] [--quiet]\n"
    "      Run one experiment config; writes <out>/summary.csv and, when the\n"
    "      config records a trace, <out>/<label>_trace.csv. --platform\n"
    "      overrides the config's platform with a registered one; --engine\n"
    "      overrides the stepping engine (see `dtpm list engines`).\n"
    "  dtpm sweep <grid.json>  [-j N] [--platform NAME] [--engine NAME] "
    "[--out DIR] [--with-model] [--smoke] [--quiet]\n"
    "      Expand a sweep grid (flat benchmark axes or a scenario-catalog\n"
    "      selection) and run it on the parallel BatchRunner. --smoke caps\n"
    "      warm-up/simulated time and disables traces for CI-sized runs.\n"
    "  dtpm analyze [--platform NAME] [--ambient-sweep LO:HI:STEP] "
    "[--out DIR] [--quiet]\n"
    "      Coupled leakage-temperature stability analysis: solve the\n"
    "      equilibrium at every (OPP, cooling, ambient) operating point,\n"
    "      classify runaway stability, and derive the safe operating\n"
    "      envelope. Prints a summary and writes one\n"
    "      <out>/analysis_<platform>.json per platform (all registered\n"
    "      platforms unless --platform narrows it).\n"
    "  dtpm fleet <spec.json>  [-j N] [--out DIR] [--smoke] [--quiet]\n"
    "      One-shot fleet run: sample device profiles from the spec's\n"
    "      distributions (platform x ambient x background x scenario x\n"
    "      seed), stream them through the batched engine in waves, and\n"
    "      write the memory-flat streaming aggregate to\n"
    "      <out>/fleet_aggregate.json.\n"
    "  dtpm serve [--socket PATH] [-j N] [--executors N] [--queue N] "
    "[--smoke] [--quiet]\n"
    "      Persistent fleet-simulation service: NDJSON requests (submit /\n"
    "      status / cancel / shutdown) from stdin -- or a Unix socket with\n"
    "      --socket -- with streaming replies. Calibrations and compiled\n"
    "      floorplans stay warm across jobs; -j sets the worker width\n"
    "      inside each fleet job; --smoke caps every submitted job for CI.\n"
    "      SIGINT/SIGTERM cancels queued jobs and ships partial aggregates.\n"
    "  dtpm lint [<file.json>...] [--platforms] [--deep] [--quiet]\n"
    "      Statically analyze configs, platform files, sweep grids, and\n"
    "      fleet specs without running anything: all diagnostics in one\n"
    "      pass, each with\n"
    "      a stable code and an exact $.path location. --platforms also\n"
    "      lints every registered platform; --deep adds the\n"
    "      equilibrium/stability pre-check. Exits non-zero only on errors.\n"
    "  dtpm list <policies|governors|scenarios|platforms|presets|benchmarks"
    "|engines> [--long]\n"
    "      List registered names, one per line (--long adds descriptions).\n"
    "\n"
    "Each platform's identified model is calibrated on demand when a config\n"
    "needs it (the 'dtpm' policy or observe_predictions) and cached for the\n"
    "process; --with-model forces it for custom policies that read\n"
    "PolicyContext::model.\n";

struct Options {
  std::string file;
  std::string out_dir = "dtpm-out";
  std::string platform;  // empty = whatever the config selects
  std::string engine;    // empty = whatever the config selects
  bool with_model = false;
  bool quiet = false;
  bool smoke = false;
  unsigned workers = 0;  // 0 = hardware concurrency
};

/// Parses flags shared by run/sweep; returns false (after reporting) on a
/// malformed invocation. `allow_workers` gates -j, which only the sweep's
/// BatchRunner consumes -- accepting it on `run` would silently ignore it.
bool parse_options(const std::vector<std::string>& args, std::size_t start,
                   Options& options, bool allow_workers, std::ostream& err) {
  std::vector<std::string> positional;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "-j" && !allow_workers) {
      err << "dtpm: -j is only valid for `dtpm sweep`\n";
      return false;
    }
    if (arg == "--out" || arg == "-j" || arg == "--platform" ||
        arg == "--engine") {
      if (i + 1 >= args.size()) {
        err << "dtpm: " << arg << " requires an argument\n";
        return false;
      }
      const std::string& value = args[++i];
      if (arg == "--out") {
        options.out_dir = value;
      } else if (arg == "--platform") {
        options.platform = value;
      } else if (arg == "--engine") {
        options.engine = value;
      } else {
        try {
          const int n = std::stoi(value);
          if (n < 0) throw std::invalid_argument("negative");
          options.workers = unsigned(n);
        } catch (const std::exception&) {
          err << "dtpm: -j expects a non-negative worker count, got '" << value
              << "'\n";
          return false;
        }
      }
    } else if (arg == "--with-model") {
      options.with_model = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "dtpm: unknown option '" << arg << "'\n";
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    err << "dtpm: expected exactly one config file, got "
        << positional.size() << "\n";
    return false;
  }
  options.file = positional.front();
  return true;
}

/// Whether running `config` requires the identified platform model.
bool needs_model(const sim::ExperimentConfig& config) {
  return sim::needs_identified_model(config);
}

/// Whether the config document pinned the thermal constraint explicitly
/// ($.dtpm.t_max_c, or $.base.dtpm.t_max_c / a dtpm_grid axis for sweeps).
/// --platform must not clobber an explicit constraint: set_platform adopts
/// the platform's default t_max only when the document left it implicit.
bool document_pins_t_max(const std::string& file, bool sweep) {
  const util::JsonValue json = util::json_parse_file(file);
  const util::JsonValue* node = &json;
  if (sweep) {
    if (!json.is_object()) return false;
    if (json.find("dtpm_grid") != nullptr) return true;
    node = json.find("base");
    if (node == nullptr) return false;
  }
  if (!node->is_object()) return false;
  const util::JsonValue* dtpm = node->find("dtpm");
  return dtpm != nullptr && dtpm->is_object() &&
         dtpm->find("t_max_c") != nullptr;
}

/// Applies the --platform override to one expanded config, keeping an
/// explicitly pinned t_max.
void override_platform(sim::ExperimentConfig& config,
                       const std::string& platform, bool t_max_pinned) {
  const double pinned_t_max = config.dtpm.t_max_c;
  sim::set_platform(config, platform);
  if (t_max_pinned) config.dtpm.t_max_c = pinned_t_max;
}

std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

/// The summary row schema shared by `run` and `sweep`.
const char kSummaryHeader[] =
    "benchmark,policy,seed,platform,completed,execution_time_s,"
    "avg_platform_power_w,avg_soc_power_w,max_temp_c,avg_temp_c,"
    "violation_time_s,control_steps,engine,error";

void append_summary_row(std::ostream& out, const sim::ExperimentConfig& config,
                        const sim::RunResult& result,
                        const std::string& error) {
  out << std::setprecision(10) << config.benchmark << ','
      << sim::resolved_policy_name(config) << ',' << config.seed << ','
      << sim::resolved_platform_name(config) << ','
      << (result.completed ? 1 : 0) << ',' << result.execution_time_s << ','
      << result.avg_platform_power_w << ',' << result.avg_soc_power_w << ','
      << result.max_temp_stats.max() << ',' << result.max_temp_stats.mean()
      << ',' << result.violation_time_s << ',' << result.control_steps << ','
      << sim::to_string(config.engine) << ',' << error << '\n';
}

void print_result_line(std::ostream& out, const sim::ExperimentConfig& config,
                       const sim::RunResult& result) {
  std::ostringstream line;
  line << std::fixed << std::setprecision(2) << config.benchmark << " ["
       << sim::resolved_policy_name(config) << ", seed " << config.seed
       << ", " << sim::resolved_platform_name(config)
       << "]: exec " << result.execution_time_s << " s, max T "
       << result.max_temp_stats.max() << " C, avg "
       << result.avg_platform_power_w << " W"
       << (result.completed ? "" : "  (did not complete)");
  out << line.str() << '\n';
}

std::ofstream open_or_throw(const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() + " for writing");
  }
  return out;
}

int run_command(const Options& options, std::ostream& out,
                std::ostream& /*err*/) {
  sim::ExperimentConfig config =
      sim::load_experiment_config(options.file);
  if (!options.platform.empty()) {
    override_platform(config, options.platform,
                      document_pins_t_max(options.file, /*sweep=*/false));
  }
  if (!options.engine.empty()) {
    config.engine = sim::parse_engine(options.engine);
  }
  if (options.smoke) sim::apply_smoke_caps(config);

  const sysid::IdentifiedPlatformModel* model = nullptr;
  if (options.with_model || needs_model(config)) {
    if (!options.quiet) {
      out << "calibrating platform model ("
          << sim::resolved_platform_name(config) << ")...\n";
    }
    model = &sim::platform_calibration(sim::resolved_platform(config)).model;
  }

  const sim::RunResult result = sim::run_experiment(config, model);

  std::filesystem::create_directories(options.out_dir);
  const std::string label = sanitize_label(config.benchmark) + "_" +
                            sanitize_label(sim::resolved_policy_name(config));
  if (result.trace.has_value()) {
    const std::filesystem::path trace_path =
        std::filesystem::path(options.out_dir) / (label + "_trace.csv");
    result.trace->write_csv(trace_path.string(), util::kRoundTripPrecision);
    if (!options.quiet) out << "trace:   " << trace_path.string() << '\n';
  }
  const std::filesystem::path summary_path =
      std::filesystem::path(options.out_dir) / "summary.csv";
  {
    std::ofstream summary = open_or_throw(summary_path);
    summary << kSummaryHeader << '\n';
    append_summary_row(summary, config, result, "");
  }
  if (!options.quiet) {
    out << "summary: " << summary_path.string() << '\n';
    print_result_line(out, config, result);
  }
  return kOk;
}

int sweep_command(const Options& options, std::ostream& out,
                  std::ostream& err) {
  const sim::SweepSpec spec = sim::load_sweep_spec(options.file);
  std::vector<sim::ExperimentConfig> configs = spec.expand();
  if (!options.platform.empty()) {
    const bool t_max_pinned =
        document_pins_t_max(options.file, /*sweep=*/true);
    for (sim::ExperimentConfig& config : configs) {
      override_platform(config, options.platform, t_max_pinned);
    }
  }
  if (!options.engine.empty()) {
    const sim::Engine engine = sim::parse_engine(options.engine);
    for (sim::ExperimentConfig& config : configs) config.engine = engine;
  }
  if (options.smoke) {
    for (sim::ExperimentConfig& config : configs) {
      sim::apply_smoke_caps(config);
    }
  }
  if (configs.empty()) {
    err << "dtpm: the sweep expanded to zero configs\n";
    return kFailure;
  }

  // Calibrate once per distinct platform that needs a model; every run on
  // that platform shares the cached identified model.
  std::vector<std::string> announced;
  auto model_for = [&](const sim::ExperimentConfig& config)
      -> const sysid::IdentifiedPlatformModel* {
    if (!options.with_model && !needs_model(config)) return nullptr;
    const std::string name = sim::resolved_platform_name(config);
    if (!options.quiet &&
        std::find(announced.begin(), announced.end(), name) ==
            announced.end()) {
      announced.push_back(name);
      out << "calibrating platform model (" << name << ")...\n";
    }
    return &sim::platform_calibration(sim::resolved_platform(config)).model;
  };

  std::vector<sim::BatchJob> jobs;
  jobs.reserve(configs.size());
  for (const sim::ExperimentConfig& config : configs) {
    jobs.push_back({config, model_for(config)});
  }

  const sim::BatchRunner runner(options.workers);
  if (!options.quiet) {
    out << "running " << configs.size() << " configs on "
        << runner.worker_count() << " workers"
        << (options.smoke ? " (smoke mode)" : "") << "...\n";
  }
  const sim::BatchOutcome outcome = runner.run_collecting(jobs);

  std::filesystem::create_directories(options.out_dir);
  const std::filesystem::path summary_path =
      std::filesystem::path(options.out_dir) / "summary.csv";
  std::ofstream summary = open_or_throw(summary_path);
  // Provenance comments ahead of the header: an archived sweep records how
  // wide it actually ran (the pool clamps to the hardware) and whether an
  // --engine override forced every row onto one stepping engine, so its
  // numbers can't be misread on a differently sized host.
  summary << "# engine: "
          << (options.engine.empty() ? "per-config" : options.engine) << '\n'
          << "# workers: requested " << runner.worker_count()
          << ", effective " << runner.effective_worker_count()
          << " (host cpus "
          << std::max(1u, std::thread::hardware_concurrency()) << ")\n";
  summary << kSummaryHeader << '\n';
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::string error;
    if (outcome.errors[i]) {
      try {
        std::rethrow_exception(outcome.errors[i]);
      } catch (const std::exception& e) {
        error = e.what();
        // Commas would shift the CSV row; the message stays readable.
        std::replace(error.begin(), error.end(), ',', ';');
      }
      err << "dtpm: run " << i << " (" << configs[i].benchmark << ", "
          << sim::resolved_policy_name(configs[i]) << ") failed: " << error
          << '\n';
    } else if (!options.quiet) {
      print_result_line(out, configs[i], outcome.results[i]);
    }
    append_summary_row(summary, configs[i], outcome.results[i], error);

    if (!outcome.errors[i] && outcome.results[i].trace.has_value()) {
      std::ostringstream name;
      name << "trace_" << std::setw(3) << std::setfill('0') << i << '_'
           << sanitize_label(configs[i].benchmark) << '_'
           << sanitize_label(sim::resolved_policy_name(configs[i])) << ".csv";
      outcome.results[i].trace->write_csv(
          (std::filesystem::path(options.out_dir) / name.str()).string(),
          util::kRoundTripPrecision);
    }
  }
  if (!options.quiet) {
    out << "summary: " << summary_path.string() << " (" << configs.size()
        << " rows, " << outcome.failure_count << " failed)\n";
  }
  return outcome.all_succeeded() ? kOk : kFailure;
}

/// Parses an `--ambient-sweep LO:HI:STEP` spec into an inclusive list of
/// ambient temperatures.
bool parse_ambient_sweep(const std::string& spec, std::vector<double>& out,
                         std::ostream& err) {
  double lo = 0.0, hi = 0.0, step = 0.0;
  char c1 = 0, c2 = 0;
  std::istringstream in(spec);
  if (!(in >> lo >> c1 >> hi >> c2 >> step) || c1 != ':' || c2 != ':' ||
      !in.eof()) {
    err << "dtpm: --ambient-sweep expects LO:HI:STEP, got '" << spec << "'\n";
    return false;
  }
  if (step <= 0.0 || hi < lo) {
    err << "dtpm: --ambient-sweep needs STEP > 0 and HI >= LO\n";
    return false;
  }
  out.clear();
  for (double a = lo; a <= hi + 1e-9; a += step) out.push_back(a);
  return true;
}

/// One fixed-precision detail line per OPP (the golden analysis listing pins
/// these, so the format must stay deterministic).
void print_point_line(std::ostream& out,
                      const analysis::OperatingPointAnalysis& p) {
  std::ostringstream line;
  line << std::fixed << "    opp " << std::setw(2) << p.opp_index << "  "
       << std::setw(4) << std::llround(p.frequency_hz / 1e6) << " MHz  "
       << std::setprecision(3) << p.voltage_v << " V  ";
  if (p.diverged) {
    line << "DIVERGED (thermal runaway)";
  } else if (!p.converged) {
    line << "no equilibrium after " << p.iterations << " iterations";
  } else {
    line << std::setprecision(2) << "T*core " << std::setw(6)
         << p.max_core_temp_c << " C  P " << std::setw(5) << p.total_power_w
         << " W  " << std::setprecision(3) << "gain " << p.loop_gain
         << "  margin " << p.stability_margin
         << (p.stable ? "  stable" : "  UNSTABLE");
  }
  out << line.str() << '\n';
}

int analyze_command(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  std::string out_dir = "dtpm-out";
  std::string platform;
  bool quiet = false;
  analysis::AnalysisOptions analysis_options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--out" || arg == "--platform" || arg == "--ambient-sweep") {
      if (i + 1 >= args.size()) {
        err << "dtpm: " << arg << " requires an argument\n";
        return kUsage;
      }
      const std::string& value = args[++i];
      if (arg == "--out") {
        out_dir = value;
      } else if (arg == "--platform") {
        platform = value;
      } else if (!parse_ambient_sweep(value, analysis_options.ambients_c,
                                      err)) {
        return kUsage;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      err << "dtpm: analyze does not take '" << arg << "'\n";
      return kUsage;
    }
  }

  const sim::PlatformRegistry& registry = sim::PlatformRegistry::instance();
  const std::vector<std::string> names =
      platform.empty() ? registry.names()
                       : std::vector<std::string>{platform};

  std::filesystem::create_directories(out_dir);
  for (const std::string& name : names) {
    const sim::PlatformPtr descriptor = registry.get(name);  // throws: unknown
    const analysis::PlatformAnalysis analysis =
        analysis::analyze_platform(*descriptor, analysis_options);

    const std::filesystem::path json_path =
        std::filesystem::path(out_dir) /
        ("analysis_" + sanitize_label(name) + ".json");
    util::json_write_file(json_path.string(), analysis::to_json(analysis));

    if (quiet) continue;
    std::ostringstream head;
    head << std::fixed << std::setprecision(1) << "== " << name << " (t_max "
         << analysis.t_max_c << " C, runaway abort "
         << analysis.runaway_abort_temp_c << " C) ==";
    out << head.str() << '\n';

    // Envelope summary: one line per ambient, derived at best cooling.
    const std::string best_cooling =
        analysis.ambients.empty() || analysis.ambients.front().cooling.empty()
            ? "?"
            : analysis.ambients.front().cooling.back().label;
    out << "  safe envelope (cooling: " << best_cooling << "):\n";
    for (const analysis::EnvelopePoint& point : analysis.envelope) {
      std::ostringstream line;
      line << std::fixed << std::setprecision(1) << "    ambient "
           << std::setw(5) << point.ambient_c << " C -> ";
      if (point.max_safe_opp_index < 0) {
        line << "no safe OPP";
      } else {
        line << "max OPP " << std::setw(2) << point.max_safe_opp_index << " ("
             << std::llround(point.max_safe_frequency_hz / 1e6) << " MHz)";
      }
      line << "  limit: " << point.limit;
      out << line.str() << '\n';
    }

    // Per-OPP detail at every ambient's best cooling state.
    for (const analysis::AmbientAnalysis& ambient : analysis.ambients) {
      if (ambient.cooling.empty()) continue;
      const analysis::CoolingStateAnalysis& cooling = ambient.cooling.back();
      std::ostringstream label;
      label << std::fixed << std::setprecision(1) << "  detail @ ambient "
            << ambient.ambient_c << " C, " << cooling.label << " cooling:";
      out << label.str() << '\n';
      for (const analysis::OperatingPointAnalysis& p : cooling.points) {
        print_point_line(out, p);
      }
    }
    out << "  json: " << json_path.string() << '\n';
  }
  return kOk;
}

int lint_command(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  std::vector<std::string> files;
  bool platforms = false;
  bool quiet = false;
  lint::LintOptions lint_options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--platforms") {
      platforms = true;
    } else if (arg == "--deep") {
      lint_options.deep = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "dtpm: lint does not take '" << arg << "'\n";
      return kUsage;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() && !platforms) {
    err << "dtpm: lint needs config files and/or --platforms\n";
    return kUsage;
  }

  // One collecting pass per artifact; every diagnostic prints as
  //   <artifact>: $.path: severity CODE: message
  // so a line is self-contained in CI logs and editor jump-lists alike.
  std::size_t artifacts = 0, errors = 0, warnings = 0;
  auto report = [&](const std::string& label, util::CollectingSink& sink) {
    ++artifacts;
    errors += sink.error_count();
    warnings += sink.warning_count();
    for (const util::Diagnostic& diagnostic : sink.diagnostics()) {
      out << label << ": " << util::format_diagnostic(diagnostic) << '\n';
    }
  };

  for (const std::string& file : files) {
    util::CollectingSink sink;
    lint::lint_file(file, sink, lint_options);
    report(file, sink);
  }
  if (platforms) {
    const sim::PlatformRegistry& registry = sim::PlatformRegistry::instance();
    for (const std::string& name : registry.names()) {
      util::CollectingSink sink;
      lint::lint_platform(*registry.get(name), "$", sink, lint_options);
      report("platform:" + name, sink);
    }
  }

  if (!quiet) {
    out << artifacts << " artifact(s) checked: " << errors << " error(s), "
        << warnings << " warning(s)\n";
  }
  return errors == 0 ? kOk : kFailure;
}

int fleet_command(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  std::string file;
  std::string out_dir = "dtpm-out";
  unsigned workers = 0;
  bool smoke = false;
  bool quiet = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--out" || arg == "-j") {
      if (i + 1 >= args.size()) {
        err << "dtpm: " << arg << " requires an argument\n";
        return kUsage;
      }
      const std::string& value = args[++i];
      if (arg == "--out") {
        out_dir = value;
      } else {
        try {
          const int n = std::stoi(value);
          if (n < 0) throw std::invalid_argument("negative");
          workers = unsigned(n);
        } catch (const std::exception&) {
          err << "dtpm: -j expects a non-negative worker count, got '" << value
              << "'\n";
          return kUsage;
        }
      }
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "dtpm: fleet does not take '" << arg << "'\n";
      return kUsage;
    } else if (file.empty()) {
      file = arg;
    } else {
      err << "dtpm: fleet takes one spec file\n";
      return kUsage;
    }
  }
  if (file.empty()) {
    err << "dtpm: fleet needs a spec file\n";
    return kUsage;
  }

  // Lint before running: a fleet is too big to discover a bad distribution
  // three waves in. Errors abort; warnings and notes print and proceed.
  {
    util::CollectingSink sink;
    lint::lint_file(file, sink);
    for (const util::Diagnostic& diagnostic : sink.diagnostics()) {
      (diagnostic.severity == util::Severity::kError ? err : out)
          << file << ": " << util::format_diagnostic(diagnostic) << '\n';
    }
    if (sink.has_errors()) return kFailure;
  }

  serve::FleetSpec spec = serve::load_fleet_spec(file);
  if (smoke) serve::apply_smoke_caps(spec);

  serve::FleetRunOptions run_options;
  run_options.workers = workers;
  std::uint64_t waves = 0;
  if (!quiet) {
    run_options.on_wave = [&](const serve::FleetProgress& progress) {
      ++waves;
      if (waves % 16 == 0 || progress.done == progress.total) {
        out << "fleet: " << progress.done << "/" << progress.total
            << " devices\n";
      }
    };
  }
  const serve::FleetRunResult result = serve::run_fleet(spec, run_options);

  std::filesystem::create_directories(out_dir);
  const std::filesystem::path json_path =
      std::filesystem::path(out_dir) / "fleet_aggregate.json";
  util::json_write_file(json_path.string(), result.aggregate.to_json());
  if (!quiet) {
    out << "aggregate: " << json_path.string() << " (" << result.devices_run
        << " devices, " << result.aggregate.failed() << " failed)\n";
  }
  return result.aggregate.failed() == 0 ? kOk : kFailure;
}

/// Set by the serve command's SIGINT/SIGTERM handler; polled by the server.
std::atomic<bool> g_serve_stop{false};

extern "C" void serve_signal_handler(int) { g_serve_stop.store(true); }

int serve_command(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  std::string socket_path;
  serve::ServeOptions options;
  bool quiet = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--socket" || arg == "-j" || arg == "--executors" ||
        arg == "--queue") {
      if (i + 1 >= args.size()) {
        err << "dtpm: " << arg << " requires an argument\n";
        return kUsage;
      }
      const std::string& value = args[++i];
      if (arg == "--socket") {
        socket_path = value;
        continue;
      }
      int n = 0;
      try {
        n = std::stoi(value);
        if (n < 0) throw std::invalid_argument("negative");
      } catch (const std::exception&) {
        err << "dtpm: " << arg << " expects a non-negative count, got '"
            << value << "'\n";
        return kUsage;
      }
      if (arg == "-j") {
        options.fleet_workers = unsigned(n);
      } else if (arg == "--executors") {
        options.executors = unsigned(std::max(1, n));
      } else {
        options.queue_capacity = std::size_t(std::max(1, n));
      }
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      err << "dtpm: serve does not take '" << arg << "'\n";
      return kUsage;
    }
  }

  // SIGINT/SIGTERM flip the stop flag the server polls. Deliberately no
  // SA_RESTART: a getline blocked on stdin must fail with EINTR so the
  // request loop wakes up and sees the flag. SIGPIPE (client gone
  // mid-reply) must not kill the process; writes fail normally instead.
  g_serve_stop.store(false);
  options.stop_flag = &g_serve_stop;
  struct sigaction stop_action = {};
  stop_action.sa_handler = serve_signal_handler;
  sigemptyset(&stop_action.sa_mask);
  stop_action.sa_flags = 0;
  struct sigaction ignore_action = {};
  ignore_action.sa_handler = SIG_IGN;
  sigemptyset(&ignore_action.sa_mask);
  struct sigaction old_int = {}, old_term = {}, old_pipe = {};
  sigaction(SIGINT, &stop_action, &old_int);
  sigaction(SIGTERM, &stop_action, &old_term);
  sigaction(SIGPIPE, &ignore_action, &old_pipe);

  serve::ServeStatus status;
  {
    serve::Server server(options);
    if (!socket_path.empty()) {
      if (!quiet) err << "dtpm: serving on " << socket_path << "\n";
      status = server.serve_unix(socket_path);
    } else {
      if (!quiet) err << "dtpm: serving on stdin (NDJSON requests)\n";
      status = server.serve(std::cin, out);
    }
  }

  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  sigaction(SIGPIPE, &old_pipe, nullptr);
  if (!quiet) {
    err << "dtpm: serve "
        << (status == serve::ServeStatus::kStopped ? "stopped" : "drained")
        << "\n";
  }
  return kOk;
}

int list_command(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  std::string category;
  bool long_format = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--long") {
      long_format = true;
    } else if (category.empty()) {
      category = args[i];
    } else {
      err << "dtpm: list takes one category\n";
      return kUsage;
    }
  }
  if (category.empty()) {
    err << "dtpm: list requires a category: policies, governors, scenarios, "
           "platforms, presets, benchmarks\n";
    return kUsage;
  }

  auto print_plain = [&](const std::vector<std::string>& names) {
    for (const std::string& name : names) out << name << '\n';
    return kOk;
  };

  if (category == "policies") {
    const governors::PolicyRegistry& registry =
        governors::PolicyRegistry::instance();
    for (const std::string& name : registry.names()) {
      out << name;
      if (long_format) out << "  -  " << registry.description(name);
      out << '\n';
    }
    return kOk;
  }
  if (category == "governors") {
    const governors::GovernorRegistry& registry =
        governors::GovernorRegistry::instance();
    for (const std::string& name : registry.names()) {
      out << name;
      if (long_format) out << "  -  " << registry.description(name);
      out << '\n';
    }
    return kOk;
  }
  if (category == "scenarios") {
    return print_plain(sim::ScenarioCatalog::standard().family_names());
  }
  if (category == "platforms") {
    const sim::PlatformRegistry& registry = sim::PlatformRegistry::instance();
    for (const std::string& name : registry.names()) {
      out << name;
      if (long_format) out << "  -  " << registry.description(name);
      out << '\n';
    }
    return kOk;
  }
  if (category == "presets") {
    return print_plain(sim::preset_names());
  }
  if (category == "benchmarks") {
    return print_plain(workload::all_benchmark_names());
  }
  if (category == "engines") {
    // Enumerator order (reference first), not sorted: the list doubles as
    // a ranking from bit-exact baseline to fastest.
    const char* const descriptions[] = {
        "per-substep RK4 integrator; the bit-exact golden-trace baseline",
        "cached exact LTI propagator; one matvec per substep",
        "propagator + structure-of-arrays lanes across a BatchRunner wave",
    };
    const std::vector<std::string>& names = sim::engine_names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      out << names[i];
      if (long_format) out << "  -  " << descriptions[i];
      out << '\n';
    }
    return kOk;
  }
  err << "dtpm: "
      << util::unknown_name_message(
             "list category", category,
             {"policies", "governors", "scenarios", "platforms", "presets",
              "benchmarks", "engines"})
      << '\n';
  return kUsage;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help" ||
      args[0] == "-h") {
    (args.empty() ? err : out) << kUsageText;
    return args.empty() ? kUsage : kOk;
  }
  const std::string& command = args[0];
  try {
    if (command == "run" || command == "sweep") {
      Options options;
      if (!parse_options(args, 1, options, command == "sweep", err)) {
        return kUsage;
      }
      return command == "run" ? run_command(options, out, err)
                              : sweep_command(options, out, err);
    }
    if (command == "fleet") {
      return fleet_command(args, out, err);
    }
    if (command == "serve") {
      return serve_command(args, out, err);
    }
    if (command == "analyze") {
      return analyze_command(args, out, err);
    }
    if (command == "lint") {
      return lint_command(args, out, err);
    }
    if (command == "list") {
      return list_command(args, out, err);
    }
  } catch (const std::exception& e) {
    err << "dtpm: " << e.what() << '\n';
    return kFailure;
  }
  err << "dtpm: unknown command '" << command << "' (try `dtpm help`)\n";
  return kUsage;
}

}  // namespace dtpm::cli
