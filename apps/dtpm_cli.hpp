// The `dtpm` command-line driver: runs declarative experiment configs and
// sweep grids (sim/config_io.hpp) against the closed-loop engine and lists
// everything selectable by name. Exposed as a function (not just a main) so
// tests and user binaries that register custom policies/scenario families
// can drive the exact CLI code path in-process:
//
//   dtpm run   <config.json>  [--out DIR] [--with-model] [--quiet]
//   dtpm sweep <grid.json>    [-j N] [--out DIR] [--smoke] [--quiet]
//   dtpm list  <policies|governors|scenarios|presets|benchmarks> [--long]
//
// Exit codes: 0 success, 1 config/runtime failure (including any failed run
// in a sweep), 2 usage error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dtpm::cli {

/// Runs one CLI invocation. `args` excludes the program name. Never throws:
/// failures are reported on `err` and through the exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace dtpm::cli
