// Entry point of the `dtpm` binary; all behaviour lives in dtpm_cli.cpp so
// tests and custom-policy binaries can drive the same code path in-process.
#include <iostream>
#include <string>
#include <vector>

#include "dtpm_cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return dtpm::cli::run(args, std::cout, std::cerr);
}
