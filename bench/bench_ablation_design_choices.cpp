// Ablation study for the design choices DESIGN.md §5 calls out:
//
//   1. Prediction horizon (paper fixes 1 s = 10 intervals): shorter horizons
//      react late and overshoot; longer ones over-throttle.
//   2. Budget row policy: the paper solves the hottest core's row (Eq. 5.5);
//      the strict all-hotspots variant (Eq. 5.2) is more conservative.
//   3. Guard band below T_max: absorbs prediction bias at the cost of
//      steady-state frequency.
//   4. Temperature constraint: §5.1 notes "the trigger value of the DTM
//      algorithm can be varied for different systems while the algorithm
//      remains the same" -- swept here.
//
// Each variant runs the hot single-threaded benchmark (basicmath), reporting
// regulation quality (max temp, time above the constraint) against cost
// (execution time, platform power). The whole DtpmParams grid executes as
// one parallel BatchRunner sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace dtpm;

void print_row(const std::string& label, const sim::RunResult& r) {
  std::printf("  %-26s %9.1f %10.1f %10.1f %10.2f\n", label.c_str(),
              r.max_temp_stats.max(), r.violation_time_s, r.execution_time_s,
              r.avg_platform_power_w);
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "DTPM design choices on basicmath (constraint 63 C "
                      "unless stated)");

  // Assemble the whole variant grid up front, then run it as one sweep.
  struct Section {
    std::string title;
    std::vector<std::string> labels;
  };
  std::vector<Section> sections;
  sim::SweepGrid grid;
  grid.base = bench::policy_config("basicmath", "dtpm",
                                   /*record_trace=*/false);
  auto add = [&](const std::string& label, const core::DtpmParams& params) {
    grid.dtpm_params.push_back(params);
    sections.back().labels.push_back(label);
  };

  sections.push_back({"-- prediction horizon (paper: 10 intervals = 1 s) --",
                      {}});
  for (unsigned h : {2u, 5u, 10u, 20u, 40u}) {
    core::DtpmParams p;
    p.horizon_steps = h;
    char label[64];
    std::snprintf(label, sizeof label, "horizon %.1f s", 0.1 * h);
    add(label, p);
  }

  sections.push_back({"-- budget rows (paper: hottest core, Eq. 5.5) --", {}});
  {
    core::DtpmParams p;
    p.row_policy = core::BudgetRowPolicy::kHottestCore;
    add("hottest-core row", p);
    p.row_policy = core::BudgetRowPolicy::kAllHotspots;
    add("all-hotspot rows", p);
  }

  sections.push_back({"-- guard band below T_max --", {}});
  for (double g : {0.0, 0.5, 0.75, 1.5, 3.0}) {
    core::DtpmParams p;
    p.guard_band_c = g;
    char label[64];
    std::snprintf(label, sizeof label, "guard band %.2f C", g);
    add(label, p);
  }

  sections.push_back(
      {"-- temperature constraint (time above is vs each T_max) --", {}});
  for (double t_max : {58.0, 60.0, 63.0, 66.0, 70.0}) {
    core::DtpmParams p;
    p.t_max_c = t_max;
    char label[64];
    std::snprintf(label, sizeof label, "T_max %.0f C", t_max);
    add(label, p);
  }

  const std::vector<sim::RunResult> results =
      bench::run_batch(sim::sweep(grid));

  std::printf("  %-26s %9s %10s %10s %10s\n", "variant", "maxT [C]",
              "above [s]", "exec [s]", "P [W]");
  std::size_t i = 0;
  for (const Section& section : sections) {
    std::printf("\n  %s\n", section.title.c_str());
    for (const std::string& label : section.labels) {
      print_row(label, results[i++]);
    }
  }

  std::printf(
      "\n  reading: the 1 s horizon with a ~0.75 C guard band regulates with\n"
      "  zero violation time at the lowest cost; very short horizons let the\n"
      "  temperature poke over the constraint, very long ones and large\n"
      "  guard bands buy nothing but execution time. Tighter constraints\n"
      "  trade execution time for temperature, same algorithm throughout.\n");
  return 0;
}
