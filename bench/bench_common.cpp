#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dtpm::bench {

const sysid::IdentifiedPlatformModel& shared_model() {
  return sim::default_calibration().model;
}

sim::ExperimentConfig policy_config(const std::string& benchmark,
                                    const std::string& policy,
                                    bool record_trace,
                                    bool observe_predictions,
                                    unsigned horizon_steps) {
  sim::ExperimentConfig config;
  config.benchmark = benchmark;
  sim::set_policy(config, policy);
  config.record_trace = record_trace;
  config.observe_predictions = observe_predictions;
  config.observe_horizon_steps = horizon_steps;
  return config;
}

sim::RunResult run_policy(const std::string& benchmark,
                          const std::string& policy, bool record_trace,
                          bool observe_predictions, unsigned horizon_steps) {
  return sim::run_experiment(policy_config(benchmark, policy, record_trace,
                                           observe_predictions, horizon_steps),
                             &shared_model());
}

std::vector<sim::RunResult> run_batch(
    const std::vector<sim::ExperimentConfig>& configs) {
  return sim::BatchRunner().run(configs, &shared_model());
}

void print_header(const std::string& id, const std::string& caption) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", id.c_str(), caption.c_str());
  std::printf("================================================================\n");
}

namespace {

constexpr int kPlotWidth = 72;
constexpr int kPlotHeight = 16;
constexpr const char* kMarkers = "*o+x#@";

}  // namespace

void print_chart(const std::vector<Series>& series, const std::string& x_label,
                 const std::string& y_label, std::size_t table_points) {
  if (series.empty()) return;
  double x_min = 1e300, x_max = -1e300, y_min = 1e300, y_max = -1e300;
  for (const auto& s : series) {
    for (double x : s.x) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
    }
    for (double y : s.y) {
      if (std::isnan(y)) continue;
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;
  const double y_pad = 0.05 * (y_max - y_min);
  y_min -= y_pad;
  y_max += y_pad;

  std::vector<std::string> grid(kPlotHeight, std::string(kPlotWidth, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char marker = kMarkers[si % 6];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (std::isnan(s.y[i])) continue;
      const int col = int((s.x[i] - x_min) / (x_max - x_min) * (kPlotWidth - 1));
      const int row = int((y_max - s.y[i]) / (y_max - y_min) * (kPlotHeight - 1));
      if (col >= 0 && col < kPlotWidth && row >= 0 && row < kPlotHeight) {
        grid[row][col] = marker;
      }
    }
  }
  std::printf("  %s\n", y_label.c_str());
  for (int r = 0; r < kPlotHeight; ++r) {
    const double y_val = y_max - (y_max - y_min) * r / (kPlotHeight - 1);
    std::printf("  %7.2f |%s|\n", y_val, grid[r].c_str());
  }
  std::printf("          +%s+\n", std::string(kPlotWidth, '-').c_str());
  std::printf("           %-8.2f%*s%8.2f  (%s)\n", x_min, kPlotWidth - 16, "",
              x_max, x_label.c_str());
  std::printf("  legend: ");
  for (std::size_t si = 0; si < series.size(); ++si) {
    std::printf("%c=%s  ", kMarkers[si % 6], series[si].name.c_str());
  }
  std::printf("\n\n");

  // Numeric table.
  std::printf("  %-10s", x_label.c_str());
  for (const auto& s : series) std::printf(" %14s", s.name.c_str());
  std::printf("\n");
  const auto& ref = series.front();
  const std::size_t n = ref.x.size();
  const std::size_t stride = std::max<std::size_t>(1, n / table_points);
  for (std::size_t i = 0; i < n; i += stride) {
    std::printf("  %-10.1f", ref.x[i]);
    for (const auto& s : series) {
      const std::size_t idx = std::min(i, s.y.size() - 1);
      if (std::isnan(s.y[idx])) {
        std::printf(" %14s", "-");
      } else {
        std::printf(" %14.2f", s.y[idx]);
      }
    }
    std::printf("\n");
  }
}

Series sampled_series(const std::string& name, const std::vector<double>& x,
                      const std::vector<double>& y, std::size_t max_points) {
  Series s;
  s.name = name;
  const std::size_t stride = std::max<std::size_t>(1, x.size() / max_points);
  for (std::size_t i = 0; i < x.size(); i += stride) {
    s.x.push_back(x[i]);
    s.y.push_back(y[i]);
  }
  return s;
}

}  // namespace dtpm::bench
