// Shared helpers for the figure/table regeneration benches: cached
// calibration, experiment runners, and terminal rendering (series tables and
// ASCII plots) so each bench prints the same rows/series the paper reports.
#pragma once

#include <string>
#include <vector>

#include "sim/batch.hpp"
#include "sim/calibration.hpp"
#include "sim/engine.hpp"

namespace dtpm::bench {

/// Calibrated platform model shared by all benches (cached process-wide).
const sysid::IdentifiedPlatformModel& shared_model();

/// Default-settings config for one benchmark under one policy, selected by
/// registry name ("default+fan", "no-fan", "reactive", "dtpm", or anything
/// registered through governors::PolicyRegistration).
sim::ExperimentConfig policy_config(const std::string& benchmark,
                                    const std::string& policy,
                                    bool record_trace = true,
                                    bool observe_predictions = false,
                                    unsigned horizon_steps = 10);

/// Runs one benchmark under one policy with default settings.
sim::RunResult run_policy(const std::string& benchmark,
                          const std::string& policy,
                          bool record_trace = true,
                          bool observe_predictions = false,
                          unsigned horizon_steps = 10);

/// Runs many configs against the shared model on the BatchRunner worker
/// pool; results come back in input order, bit-identical to serial runs.
std::vector<sim::RunResult> run_batch(
    const std::vector<sim::ExperimentConfig>& configs);

/// One named series for plotting/tabulation.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Prints a banner for a reproduced figure/table.
void print_header(const std::string& id, const std::string& caption);

/// Renders series as an ASCII chart (shared x-range), then as a downsampled
/// numeric table -- the "same rows/series the paper reports".
void print_chart(const std::vector<Series>& series, const std::string& x_label,
                 const std::string& y_label, std::size_t table_points = 12);

/// Downsamples a trace column against its time column.
Series sampled_series(const std::string& name, const std::vector<double>& x,
                      const std::vector<double>& y, std::size_t max_points = 240);

}  // namespace dtpm::bench
