// Reproduces Fig. 1.1: maximum core temperature of a heavy workload with and
// without the fan. The fan-less trace keeps climbing toward an unsafe
// steady state while the stock fan policy holds the hysteresis band.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Figure 1.1",
                      "Maximum core temperature with and without the fan "
                      "(heavy gaming load: templerun + background matmul)");

  const sim::RunResult with_fan =
      bench::run_policy("templerun", "default+fan");
  const sim::RunResult without_fan =
      bench::run_policy("templerun", "no-fan");

  std::vector<bench::Series> series;
  series.push_back(bench::sampled_series(
      "without-fan", without_fan.trace->column("time_s"),
      without_fan.trace->column("t_max_c")));
  series.push_back(bench::sampled_series("with-fan",
                                         with_fan.trace->column("time_s"),
                                         with_fan.trace->column("t_max_c")));
  bench::print_chart(series, "time [s]", "max core temp [C]");

  std::printf("  with fan   : avg %.1f C, max %.1f C\n",
              with_fan.max_temp_stats.mean(), with_fan.max_temp_stats.max());
  std::printf("  without fan: avg %.1f C, max %.1f C%s\n",
              without_fan.max_temp_stats.mean(),
              without_fan.max_temp_stats.max(),
              without_fan.completed ? "" : " (run aborted on runaway)");
  std::printf(
      "  paper: fan-less trace rises past ~85 C and keeps climbing; the fan\n"
      "  holds the 57-70 C band. Shape check: without-fan max exceeds\n"
      "  with-fan max by %.1f C.\n",
      without_fan.max_temp_stats.max() - with_fan.max_temp_stats.max());
  return 0;
}
