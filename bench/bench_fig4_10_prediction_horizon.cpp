// Reproduces Fig. 4.10: average temperature prediction error of the
// Templerun game as a function of the prediction horizon, 0.5 s to 5 s.
// The unmodeled slow board pole makes the error grow with the horizon,
// exactly the mechanism behind the paper's curve.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Figure 4.10",
                      "Average temperature prediction error vs prediction "
                      "time (Templerun)");

  bench::Series err{"error [%]", {}, {}};
  bench::Series mae{"MAE [C]", {}, {}};
  std::printf("  %-18s %-12s %-12s %-12s\n", "horizon [s]", "mean err [%]",
              "MAE [C]", "max err [%]");
  for (unsigned steps : {5u, 10u, 20u, 30u, 40u, 50u}) {
    const sim::RunResult r =
        bench::run_policy("templerun", "default+fan",
                          /*record_trace=*/false, /*observe_predictions=*/true,
                          steps);
    const double horizon_s = 0.1 * steps;
    err.x.push_back(horizon_s);
    err.y.push_back(r.prediction_mape);
    mae.x.push_back(horizon_s);
    mae.y.push_back(r.prediction_mae_c);
    std::printf("  %-18.1f %-12.2f %-12.3f %-12.2f\n", horizon_s,
                r.prediction_mape, r.prediction_mae_c, r.prediction_max_ape);
  }
  bench::print_chart({err}, "prediction time [s]", "error [%]", 6);
  std::printf(
      "  paper shape: error grows with the horizon -- <3 %% at 1 s, within\n"
      "  ~7 %% at 5 s. Reproduced ratio err(5s)/err(1s) = %.1fx.\n",
      err.y.back() / err.y[1]);
  return 0;
}
