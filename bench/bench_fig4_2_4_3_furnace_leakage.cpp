// Reproduces Figs. 4.2 and 4.3: total big-cluster power measured in the
// temperature furnace at each ambient setpoint (4.2), and the fitted leakage
// power curve as a function of temperature (4.3).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "power/leakage.hpp"

int main() {
  using namespace dtpm;
  const sim::CalibrationArtifacts& art = sim::default_calibration();
  const auto big = power::resource_index(power::Resource::kBigCluster);

  bench::print_header("Figure 4.2",
                      "Total CPU power measurement data from the furnace "
                      "(big cluster, light fixed-f/V workload)");
  // Group samples by furnace setpoint (nearest 10 C bucket).
  std::map<int, util::RunningStats> by_setpoint;
  for (const auto& s : art.furnace_samples[big]) {
    const int bucket = int((s.temp_c + 5.0) / 10.0) * 10;
    by_setpoint[bucket].add(s.total_power_w);
  }
  std::printf("  %-14s %-14s %-14s %8s\n", "setpoint [C]", "mean P [W]",
              "min..max [W]", "samples");
  for (const auto& [setpoint, stats] : by_setpoint) {
    std::printf("  %-14d %-14.4f %6.4f..%.4f %8zu\n", setpoint, stats.mean(),
                stats.min(), stats.max(), stats.count());
  }
  std::printf(
      "  paper shape: total power rises with furnace temperature while the\n"
      "  dynamic component is held constant -- the rise is leakage.\n");

  bench::print_header("Figure 4.3", "Leakage power variation with temperature "
                                    "(fitted model, Eq. 4.2)");
  const power::LeakageModel fitted(art.model.leakage[big]);
  const double v_ref = art.model.leakage[big].v_ref;
  bench::Series curve;
  curve.name = "P_leak(T)";
  std::printf("  %-14s %-14s\n", "temp [C]", "leakage [W]");
  for (double t = 40.0; t <= 80.0 + 1e-9; t += 5.0) {
    const double p = fitted.power_w(t, v_ref);
    curve.x.push_back(t);
    curve.y.push_back(p);
    std::printf("  %-14.0f %-14.4f\n", t, p);
  }
  bench::print_chart({curve}, "temp [C]", "leakage [W]", 9);
  std::printf("  fitted: c1=%.3e A/K^2, c2=%.1f K, I_gate=%.4f A (rms %.4f W)\n",
              art.model.leakage[big].c1, art.model.leakage[big].c2_k,
              art.model.leakage[big].i_gate_a,
              art.leakage_fits[big].rms_residual_w);
  std::printf("  paper shape: exponential growth, roughly 3x from 40 to 80 C "
              "(here: %.2fx).\n",
              fitted.power_w(80.0, v_ref) / fitted.power_w(40.0, v_ref));
  return 0;
}
