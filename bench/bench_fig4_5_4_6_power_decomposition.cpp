// Reproduces Figs. 4.5 and 4.6: leakage and dynamic power of the big cluster
// as a function of temperature at fixed 1.6 GHz (4.5) and as a function of
// frequency at constant temperature (4.6). Uses the *fitted* models, i.e.
// what the DTPM stack believes -- validated against the plant in Fig. 4.7.
#include <cstdio>

#include "bench_common.hpp"
#include "power/dynamic_power.hpp"
#include "power/leakage.hpp"
#include "power/opp.hpp"

int main() {
  using namespace dtpm;
  const sim::CalibrationArtifacts& art = sim::default_calibration();
  const auto big = power::resource_index(power::Resource::kBigCluster);
  const power::LeakageModel leak(art.model.leakage[big]);
  const power::OppTable opps = power::big_cluster_opp_table();
  // Characterization workload's activity-capacitance (from the furnace fit).
  const double alpha_c = art.leakage_fits[big].alpha_c_light;

  bench::print_header(
      "Figure 4.5",
      "Leakage and dynamic power variation with temperature (f = 1.6 GHz)");
  const double v16 = opps.voltage_at(1.6e9);
  bench::Series leak_t{"leakage", {}, {}}, dyn_t{"dynamic", {}, {}};
  std::printf("  %-10s %-14s %-14s\n", "temp [C]", "leakage [W]", "dynamic [W]");
  for (double t = 40.0; t <= 80.0 + 1e-9; t += 5.0) {
    const double pl = leak.power_w(t, v16);
    const double pd = power::dynamic_power_w(alpha_c, v16, 1.6e9);
    leak_t.x.push_back(t);
    leak_t.y.push_back(pl);
    dyn_t.x.push_back(t);
    dyn_t.y.push_back(pd);
    std::printf("  %-10.0f %-14.4f %-14.4f\n", t, pl, pd);
  }
  bench::print_chart({leak_t, dyn_t}, "temp [C]", "power [W]", 9);
  std::printf("  paper shape: dynamic power flat with temperature, leakage "
              "exponential.\n");

  bench::print_header(
      "Figure 4.6",
      "Leakage and dynamic power variation with frequency (constant 60 C)");
  bench::Series leak_f{"leakage", {}, {}}, dyn_f{"dynamic", {}, {}};
  std::printf("  %-12s %-10s %-14s %-14s\n", "freq [MHz]", "Vdd [V]",
              "leakage [W]", "dynamic [W]");
  for (const auto& opp : opps.points()) {
    const double pl = leak.power_w(60.0, opp.voltage_v);
    const double pd =
        power::dynamic_power_w(alpha_c, opp.voltage_v, opp.frequency_hz);
    leak_f.x.push_back(opp.frequency_hz / 1e6);
    leak_f.y.push_back(pl);
    dyn_f.x.push_back(opp.frequency_hz / 1e6);
    dyn_f.y.push_back(pd);
    std::printf("  %-12.0f %-10.2f %-14.4f %-14.4f\n", opp.frequency_hz / 1e6,
                opp.voltage_v, pl, pd);
  }
  bench::print_chart({leak_f, dyn_f}, "freq [MHz]", "power [W]", 9);
  std::printf(
      "  paper shape: dynamic grows superlinearly with f (via the V(f)\n"
      "  curve); leakage rises only slightly, through the supply voltage.\n");
  return 0;
}
