// Reproduces Fig. 4.7: validation of the combined power model. The fitted
// leakage + run-time alphaC model predicts total big-cluster power across
// the furnace temperature sweep; predictions are compared against the
// (noisy, quantized) sensor measurements from the plant.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "power/dynamic_power.hpp"
#include "power/leakage.hpp"
#include "util/metrics.hpp"

int main() {
  using namespace dtpm;
  const sim::CalibrationArtifacts& art = sim::default_calibration();
  const auto big = power::resource_index(power::Resource::kBigCluster);
  const power::LeakageModel leak(art.model.leakage[big]);
  const double alpha_c = art.leakage_fits[big].alpha_c_light;

  bench::print_header("Figure 4.7",
                      "Power model validation: predicted vs measured total "
                      "power across the furnace sweep");

  std::vector<double> predicted, measured;
  std::map<int, std::pair<util::RunningStats, util::RunningStats>> buckets;
  for (const auto& s : art.furnace_samples[big]) {
    const double p_hat =
        leak.power_w(s.temp_c, s.vdd_v) +
        power::dynamic_power_w(alpha_c, s.vdd_v, s.frequency_hz);
    predicted.push_back(p_hat);
    measured.push_back(s.total_power_w);
    const int bucket = int((s.temp_c + 5.0) / 10.0) * 10;
    buckets[bucket].first.add(p_hat);
    buckets[bucket].second.add(s.total_power_w);
  }

  std::printf("  %-12s %-16s %-16s %-10s\n", "temp [C]", "predicted [W]",
              "measured [W]", "err [%]");
  for (const auto& [t, pair] : buckets) {
    const double p = pair.first.mean();
    const double m = pair.second.mean();
    std::printf("  %-12d %-16.4f %-16.4f %-10.2f\n", t, p, m,
                100.0 * (p - m) / m);
  }
  std::printf("\n  overall: MAE %.4f W, MAPE %.2f %%, max APE %.2f %% over %zu"
              " samples\n",
              util::mean_absolute_error(predicted, measured),
              util::mape(predicted, measured),
              util::max_ape(predicted, measured), predicted.size());
  std::printf("  paper shape: predicted curve overlays the measured one "
              "across 40-80 C.\n");
  return 0;
}
