// Reproduces Fig. 4.8: the PRBS identification signal for the big cluster --
// (a) big-cluster power toggling between its extremes under the
// pseudo-random bit sequence, (b) the resulting core-0 temperature response.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dtpm;
  const sim::CalibrationArtifacts& art = sim::default_calibration();
  const auto& seg = art.excitation_segments[power::resource_index(
      power::Resource::kBigCluster)];
  const std::size_t big = power::resource_index(power::Resource::kBigCluster);

  bench::print_header("Figure 4.8",
                      "PRBS test signal for the big cluster: (a) power, "
                      "(b) core-0 temperature");

  // Plot a 150 s window (1500 control intervals) so the bit structure shows.
  const std::size_t window = std::min<std::size_t>(1500, seg.powers_w.size());
  bench::Series p_series{"P_big [W]", {}, {}};
  bench::Series t_series{"T_core0 [C]", {}, {}};
  for (std::size_t k = 0; k < window; ++k) {
    const double t = 0.1 * double(k);
    p_series.x.push_back(t);
    p_series.y.push_back(seg.powers_w[k][big]);
    t_series.x.push_back(t);
    t_series.y.push_back(seg.temps_c[k][0]);
  }
  std::printf("\n  (a) big-cluster power under PRBS excitation\n");
  bench::print_chart({p_series}, "time [s]", "power [W]", 15);
  std::printf("\n  (b) core-0 temperature response\n");
  bench::print_chart({t_series}, "time [s]", "temp [C]", 15);

  util::RunningStats p_stats;
  for (const auto& p : seg.powers_w) p_stats.add(p[big]);
  std::printf("  power range: %.2f .. %.2f W (paper: ~0.5 .. ~3 W)\n",
              p_stats.min(), p_stats.max());
  std::printf("  identification result: one-step RMS %.3f C over %zu samples, "
              "spectral radius %.4f\n",
              art.arx.rms_residual_c, art.arx.sample_count,
              art.model.thermal.stability_radius());
  std::printf("  A_s and B_s (Eq. 5.3 layout, inputs big/little/gpu/mem):\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("    A[%zu] = [%8.5f %8.5f %8.5f %8.5f]   B[%zu] = [%8.5f %8.5f"
                " %8.5f %8.5f]\n",
                i, art.model.thermal.a(i, 0), art.model.thermal.a(i, 1),
                art.model.thermal.a(i, 2), art.model.thermal.a(i, 3), i,
                art.model.thermal.b(i, 0), art.model.thermal.b(i, 1),
                art.model.thermal.b(i, 2), art.model.thermal.b(i, 3));
  }
  return 0;
}
