// Reproduces Fig. 4.9: thermal model validation on the Blowfish benchmark
// with a 1 s prediction interval -- measured core temperature vs the value
// predicted 1 s earlier by the identified state-space model.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "util/metrics.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Figure 4.9",
                      "Thermal model validation for Blowfish, 1 s prediction "
                      "interval");

  const sim::RunResult r =
      bench::run_policy("blowfish", "default+fan",
                        /*record_trace=*/true, /*observe_predictions=*/true,
                        /*horizon_steps=*/10);

  const auto time = r.trace->column("time_s");
  const auto measured = r.trace->column("t_big0_c");
  const auto predicted = r.trace->column("pred_t0_for_now_c");

  bench::Series meas = bench::sampled_series("measured", time, measured);
  bench::Series pred = bench::sampled_series("predicted", time, predicted);
  bench::print_chart({meas, pred}, "time [s]", "core0 temp [C]");

  // Error metrics over the resolved predictions only.
  std::vector<double> m, p;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if (!std::isnan(predicted[i])) {
      m.push_back(measured[i]);
      p.push_back(predicted[i]);
    }
  }
  std::printf("  core0 trace: MAE %.3f C, MAPE %.2f %% over %zu points\n",
              util::mean_absolute_error(p, m), util::mape(p, m), p.size());
  std::printf("  all four hotspots: MAE %.3f C, mean %.2f %%, max %.2f %% "
              "(%zu predictions)\n",
              r.prediction_mae_c, r.prediction_mape, r.prediction_max_ape,
              r.prediction_samples);
  std::printf("  paper: prediction error < 3 %% (~1 C) at the 1 s interval.\n");
  return 0;
}
