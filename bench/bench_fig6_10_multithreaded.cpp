// Reproduces Fig. 6.10: power savings and performance impact of the proposed
// DTPM algorithm on the multithreaded FFT and LU benchmarks.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Figure 6.10",
                      "Power savings and performance loss, multithreaded "
                      "benchmarks (FFT, LU)");

  std::printf("  %-8s %12s %12s %12s %12s %10s\n", "bench", "save [%]",
              "loss [%]", "t_def [s]", "t_dtpm [s]", "Tmax [C]");
  for (const auto& b : workload::multithreaded_suite()) {
    const sim::RunResult def =
        bench::run_policy(b.name, "default+fan", false);
    const sim::RunResult dtpm =
        bench::run_policy(b.name, "dtpm", false);
    const double save = 100.0 *
                        (def.avg_platform_power_w - dtpm.avg_platform_power_w) /
                        def.avg_platform_power_w;
    const double loss = 100.0 *
                        (dtpm.execution_time_s - def.execution_time_s) /
                        def.execution_time_s;
    std::printf("  %-8s %12.1f %12.1f %12.1f %12.1f %10.1f\n", b.name.c_str(),
                save, loss, def.execution_time_s, dtpm.execution_time_s,
                dtpm.max_temp_stats.max());
  }
  std::printf(
      "\n  paper shape: double-digit savings with only a few percent loss --\n"
      "  multithreaded workloads are memory-bandwidth-bound, so the budget\n"
      "  frequency cap is nearly free (cf. matmul in Fig. 6.8/6.9).\n");
  return 0;
}
