// Reproduces Fig. 6.2: temperature prediction error for every benchmark of
// Table 6.4 at the 1 s (10 control interval) horizon. The paper reports an
// average below 3 % (~1 C) that never exceeds 4 % (~1.4 C).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Figure 6.2",
                      "Temperature prediction error for all benchmarks "
                      "(T[k+10], i.e. 1 s ahead)");

  std::printf("  %-12s %-12s %-12s %-12s %10s\n", "benchmark", "mean err [%]",
              "MAE [C]", "max err [%]", "samples");
  double worst_mean = 0.0;
  double sum_mean = 0.0;
  std::size_t count = 0;

  // All per-benchmark observer runs execute as one parallel batch.
  std::vector<sim::ExperimentConfig> configs;
  for (const auto& b : workload::standard_suite()) {
    configs.push_back(bench::policy_config(
        b.name, "default+fan", /*record_trace=*/false,
        /*observe_predictions=*/true, /*horizon_steps=*/10));
  }
  const std::vector<sim::RunResult> results = bench::run_batch(configs);

  std::size_t i = 0;
  for (const auto& b : workload::standard_suite()) {
    const sim::RunResult& r = results[i++];
    std::printf("  %-12s %-12.2f %-12.3f %-12.2f %10zu\n", b.name.c_str(),
                r.prediction_mape, r.prediction_mae_c, r.prediction_max_ape,
                r.prediction_samples);
    worst_mean = std::max(worst_mean, r.prediction_mape);
    sum_mean += r.prediction_mape;
    ++count;
  }
  std::printf("\n  suite average of mean errors: %.2f %% (paper: < 3 %%)\n",
              sum_mean / double(count));
  std::printf("  worst per-benchmark mean error: %.2f %% (paper: never above "
              "4 %%)\n",
              worst_mean);
  return 0;
}
