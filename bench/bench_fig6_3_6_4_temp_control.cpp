// Reproduces Figs. 6.3 and 6.4: maximum core temperature traces for
// Templerun and Basicmath under the three configurations -- without fan,
// with the stock fan policy, and with the proposed DTPM algorithm.
#include <cstdio>

#include "bench_common.hpp"

namespace {

void run_figure(const char* figure, const char* benchmark) {
  using namespace dtpm;
  bench::print_header(figure, std::string("Temperature control for ") +
                                  benchmark + " (constraint 63 C)");

  const sim::RunResult without_fan =
      bench::run_policy(benchmark, "no-fan");
  const sim::RunResult with_fan =
      bench::run_policy(benchmark, "default+fan");
  const sim::RunResult dtpm =
      bench::run_policy(benchmark, "dtpm");

  std::vector<bench::Series> series;
  series.push_back(bench::sampled_series(
      "no-fan", without_fan.trace->column("time_s"),
      without_fan.trace->column("t_max_c")));
  series.push_back(bench::sampled_series("fan",
                                         with_fan.trace->column("time_s"),
                                         with_fan.trace->column("t_max_c")));
  series.push_back(bench::sampled_series("dtpm", dtpm.trace->column("time_s"),
                                         dtpm.trace->column("t_max_c")));
  bench::print_chart(series, "time [s]", "max core temp [C]");

  auto summarize = [](const char* name, const sim::RunResult& r) {
    std::printf(
        "  %-8s max %.1f C, avg %.1f C, time above 63 C: %.1f s, exec %.1f s\n",
        name, r.max_temp_stats.max(), r.max_temp_stats.mean(),
        r.violation_time_s, r.execution_time_s);
  };
  summarize("no-fan", without_fan);
  summarize("fan", with_fan);
  summarize("dtpm", dtpm);
  std::printf(
      "  paper shape: no-fan blows through the constraint; the fan holds a\n"
      "  wide oscillating band; DTPM pins the temperature just below 63 C.\n");
}

}  // namespace

int main() {
  run_figure("Figure 6.3", "templerun");
  run_figure("Figure 6.4", "basicmath");
  return 0;
}
