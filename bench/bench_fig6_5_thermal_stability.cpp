// Reproduces Fig. 6.5: thermal stability comparison for Templerun and
// Basicmath -- average temperature and max-min swing per policy, plus the
// temperature variance the abstract's "~6x reduction" claim refers to.
// Variance is reported both over the full benchmark window and over the
// regulated steady window (after the initial heat-up), since the shared
// warm-up transient otherwise masks the control-quality difference.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

struct StabilityRow {
  double avg = 0.0;
  double range = 0.0;
  double var_full = 0.0;
  double var_steady = 0.0;
};

StabilityRow measure(const char* benchmark, const char* policy) {
  using namespace dtpm;
  const sim::RunResult r = bench::run_policy(benchmark, policy);
  StabilityRow row;
  row.avg = r.max_temp_stats.mean();
  row.range = r.max_temp_stats.range();
  row.var_full = r.max_temp_stats.variance();
  const auto time = r.trace->column("time_s");
  const auto temp = r.trace->column("t_max_c");
  util::RunningStats steady;
  for (std::size_t i = 0; i < time.size(); ++i) {
    if (time[i] >= 40.0) steady.add(temp[i]);
  }
  row.var_steady = steady.variance();
  return row;
}

}  // namespace

int main() {
  using namespace dtpm;
  bench::print_header("Figure 6.5",
                      "Thermal stability comparison for Templerun and "
                      "Basicmath");

  const char* benchmarks[] = {"templerun", "basicmath"};
  const char* policies[] = {"no-fan",
                                  "default+fan",
                                  "dtpm"};
  const char* labels[] = {"without-fan", "with-fan", "proposed-dtpm"};

  for (const char* benchmark : benchmarks) {
    std::printf("\n  --- %s ---\n", benchmark);
    std::printf("  %-14s %10s %12s %12s %14s\n", "policy", "avg T [C]",
                "max-min [C]", "var [C^2]", "var>40s [C^2]");
    StabilityRow rows[3];
    for (int p = 0; p < 3; ++p) {
      rows[p] = measure(benchmark, policies[p]);
      std::printf("  %-14s %10.2f %12.2f %12.2f %14.2f\n", labels[p],
                  rows[p].avg, rows[p].range, rows[p].var_full,
                  rows[p].var_steady);
    }
    std::printf(
        "  variance reduction vs with-fan: %.1fx full-window, %.1fx steady\n",
        rows[1].var_full / std::max(rows[2].var_full, 1e-9),
        rows[1].var_steady / std::max(rows[2].var_steady, 1e-9));
  }
  std::printf(
      "\n  paper: DTPM cuts the temperature variance by as much as ~6x vs\n"
      "  the fan default, with lower average temperature than fan-less.\n");
  return 0;
}
