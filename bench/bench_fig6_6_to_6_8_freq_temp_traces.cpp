// Reproduces Figs. 6.6-6.8: big-cluster frequency and maximum core
// temperature traces under the default (fan) configuration and under the
// proposed DTPM algorithm, for one benchmark of each activity class:
// Dijkstra (low), Patricia (medium), and the multithreaded matrix
// multiplication (high).
#include <cstdio>

#include "bench_common.hpp"

namespace {

void run_figure(const char* figure, const char* benchmark,
                const char* activity) {
  using namespace dtpm;
  bench::print_header(
      figure, std::string("Frequency and temperature for ") + benchmark +
                  " (" + activity + " activity): default+fan vs DTPM");

  const sim::RunResult def =
      bench::run_policy(benchmark, "default+fan");
  const sim::RunResult dtpm =
      bench::run_policy(benchmark, "dtpm");

  std::printf("\n  big-cluster frequency [GHz]\n");
  auto to_ghz = [](std::vector<double> mhz) {
    for (double& v : mhz) v /= 1000.0;
    return mhz;
  };
  bench::print_chart(
      {bench::sampled_series("default", def.trace->column("time_s"),
                             to_ghz(def.trace->column("f_big_mhz"))),
       bench::sampled_series("dtpm", dtpm.trace->column("time_s"),
                             to_ghz(dtpm.trace->column("f_big_mhz")))},
      "time [s]", "f [GHz]");

  std::printf("\n  max core temperature [C]\n");
  bench::print_chart(
      {bench::sampled_series("default", def.trace->column("time_s"),
                             def.trace->column("t_max_c")),
       bench::sampled_series("dtpm", dtpm.trace->column("time_s"),
                             dtpm.trace->column("t_max_c"))},
      "time [s]", "T [C]");

  util::RunningStats f_def, f_dtpm;
  for (double f : def.trace->column("f_big_mhz")) f_def.add(f);
  for (double f : dtpm.trace->column("f_big_mhz")) f_dtpm.add(f);
  std::printf("  avg frequency: default %.0f MHz, dtpm %.0f MHz\n",
              f_def.mean(), f_dtpm.mean());
  std::printf("  exec time: default %.1f s, dtpm %.1f s (%.1f %% loss)\n",
              def.execution_time_s, dtpm.execution_time_s,
              100.0 * (dtpm.execution_time_s - def.execution_time_s) /
                  def.execution_time_s);
  std::printf("  platform power: default %.2f W, dtpm %.2f W (%.1f %% saved)\n",
              def.avg_platform_power_w, dtpm.avg_platform_power_w,
              100.0 *
                  (def.avg_platform_power_w - dtpm.avg_platform_power_w) /
                  def.avg_platform_power_w);
  std::printf("  dtpm actuation: %ld freq caps, %ld hotplugs, %ld migrations, "
              "%ld gpu throttles\n",
              dtpm.dtpm.frequency_cap_events, dtpm.dtpm.hotplug_events,
              dtpm.dtpm.cluster_migration_events,
              dtpm.dtpm.gpu_throttle_events);
}

}  // namespace

int main() {
  run_figure("Figure 6.6", "dijkstra", "low");
  run_figure("Figure 6.7", "patricia", "medium");
  run_figure("Figure 6.8", "matmul", "high");
  std::printf(
      "\n  paper shapes: Dijkstra's DTPM trace matches the default (no\n"
      "  throttling needed, ~3%% savings from the absent fan); Patricia is\n"
      "  mildly capped; matmul shows clear throttling regions while staying\n"
      "  at the constraint with small execution-time impact.\n");
  return 0;
}
