// Reproduces Fig. 6.9: per-benchmark platform power savings and performance
// loss of the proposed DTPM algorithm relative to the default-with-fan
// configuration, with the reactive heuristic's performance loss for
// comparison (§6.3.3: ~3.3 % average DTPM loss vs ~20 % reactive; power
// savings around 3 % / 8 % / 14 % for low / medium / high activity).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Figure 6.9",
                      "Power savings and performance loss summary "
                      "(all Table 6.4 benchmarks)");

  std::printf("  %-12s %-7s %9s %9s %9s %10s %10s\n", "benchmark", "class",
              "save [%]", "loss [%]", "react[%]", "P_def [W]", "P_dtpm [W]");
  struct ClassAccum {
    double save = 0.0;
    double loss = 0.0;
    int n = 0;
  };
  std::map<workload::PowerClass, ClassAccum> by_class;
  double total_save = 0.0, total_loss = 0.0, total_react = 0.0;
  int n = 0;

  // One parallel batch over the whole benchmark x policy grid; sweep() is
  // row-major (benchmark outermost), so each benchmark's three policy runs
  // are adjacent in the result vector.
  sim::SweepGrid grid;
  grid.base = bench::policy_config("", "default+fan",
                                   /*record_trace=*/false);
  for (const auto& b : workload::standard_suite()) {
    grid.benchmarks.push_back(b.name);
  }
  grid.policy_names = {"default+fan", "dtpm",
                   "reactive"};
  const std::vector<sim::RunResult> results =
      bench::run_batch(sim::sweep(grid));

  std::size_t i = 0;
  for (const auto& b : workload::standard_suite()) {
    const sim::RunResult& def = results[i++];
    const sim::RunResult& dtpm = results[i++];
    const sim::RunResult& react = results[i++];
    const double save = 100.0 *
                        (def.avg_platform_power_w - dtpm.avg_platform_power_w) /
                        def.avg_platform_power_w;
    const double loss = 100.0 *
                        (dtpm.execution_time_s - def.execution_time_s) /
                        def.execution_time_s;
    const double react_loss = 100.0 *
                              (react.execution_time_s - def.execution_time_s) /
                              def.execution_time_s;
    std::printf("  %-12s %-7s %9.1f %9.1f %9.1f %10.2f %10.2f\n",
                b.name.c_str(), to_string(b.power_class), save, loss,
                react_loss, def.avg_platform_power_w,
                dtpm.avg_platform_power_w);
    auto& acc = by_class[b.power_class];
    acc.save += save;
    acc.loss += loss;
    ++acc.n;
    total_save += save;
    total_loss += loss;
    total_react += react_loss;
    ++n;
  }

  std::printf("\n  per activity class (paper: ~3 %% low, ~8 %% medium, ~14 %% "
              "high savings):\n");
  for (const auto& [cls, acc] : by_class) {
    std::printf("    %-7s avg savings %.1f %%, avg perf loss %.1f %% "
                "(%d benchmarks)\n",
                to_string(cls), acc.save / acc.n, acc.loss / acc.n, acc.n);
  }
  std::printf("\n  suite averages: savings %.1f %%, DTPM perf loss %.1f %% "
              "(paper 3.3 %%), reactive perf loss %.1f %% (paper ~20 %%)\n",
              total_save / n, total_loss / n, total_react / n);
  return 0;
}
