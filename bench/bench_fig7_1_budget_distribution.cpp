// Reproduces the Chapter-7 future-work study (Fig. 7.1, Eqs. 7.1-7.3):
// distributing a dynamic power budget across the heterogeneous components.
// Compares three strategies over a budget sweep:
//   - cpu-first: throttle only the CPU (the Chapter-5 algorithm's knob),
//   - greedy: the marginal-cost heuristic of Eq. 7.3,
//   - b&b: the optimal branch-and-bound reference.
#include <cstdio>

#include "bench_common.hpp"
#include "core/budget_distribution.hpp"

namespace {

std::vector<dtpm::core::BudgetComponent> platform_components() {
  using dtpm::core::BudgetComponent;
  // Normalized frequencies from Tables 6.1/6.3, with perf/power coefficients
  // in the spirit of Eqs. 7.1/7.2 (cost ~ c_i / f_i, power ~ a_i f_i^3).
  BudgetComponent cpu{"big-cpu",
                      {0.50, 0.5625, 0.625, 0.6875, 0.75, 0.8125, 0.875,
                       0.9375, 1.0},
                      1.0, 2.4};
  BudgetComponent gpu{"gpu", {0.332, 0.499, 0.657, 0.901, 1.0}, 0.7, 1.3};
  BudgetComponent little{"little-cpu",
                         {0.4167, 0.5, 0.5833, 0.6667, 0.75, 0.8333, 0.9167,
                          1.0},
                         0.25, 0.4};
  return {cpu, gpu, little};
}

}  // namespace

int main() {
  using namespace dtpm;
  bench::print_header("Figure 7.1 / Eq. 7.3",
                      "Dynamic power budget distribution across "
                      "heterogeneous components");

  const auto comps = platform_components();
  const double p_max = core::distribution_power(
      comps, {comps[0].frequencies_hz.size() - 1,
              comps[1].frequencies_hz.size() - 1,
              comps[2].frequencies_hz.size() - 1});
  std::printf("  unconstrained power: %.2f (normalized W), cost J = %.3f\n\n",
              p_max,
              core::distribution_cost(
                  comps, {comps[0].frequencies_hz.size() - 1,
                          comps[1].frequencies_hz.size() - 1,
                          comps[2].frequencies_hz.size() - 1}));

  std::printf("  %-10s | %-18s | %-18s | %-18s | %8s\n", "budget",
              "cpu-first J (gap)", "greedy J (gap)", "b&b J (optimal)",
              "b&b nodes");
  for (double fraction : {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}) {
    const double budget = fraction * p_max;
    // CPU-first: step only the big CPU down until the budget is met.
    std::vector<std::size_t> cpu_first{comps[0].frequencies_hz.size() - 1,
                                       comps[1].frequencies_hz.size() - 1,
                                       comps[2].frequencies_hz.size() - 1};
    while (core::distribution_power(comps, cpu_first) > budget &&
           cpu_first[0] > 0) {
      --cpu_first[0];
    }
    const bool cpu_first_ok =
        core::distribution_power(comps, cpu_first) <= budget;
    const double cpu_first_cost = core::distribution_cost(comps, cpu_first);

    const core::DistributionResult greedy =
        core::distribute_greedy(comps, budget);
    const core::DistributionResult optimal =
        core::distribute_branch_and_bound(comps, budget);

    auto gap = [&](double cost, bool feasible) {
      return feasible && optimal.feasible
                 ? 100.0 * (cost - optimal.cost) / optimal.cost
                 : -1.0;
    };
    std::printf("  %-10.2f | %8.3f (%5.1f%%) | %8.3f (%5.1f%%) | %12.3f     | "
                "%8zu\n",
                budget, cpu_first_ok ? cpu_first_cost : -1.0,
                gap(cpu_first_cost, cpu_first_ok), greedy.cost,
                gap(greedy.cost, greedy.feasible), optimal.cost,
                optimal.evaluations);
  }
  std::printf(
      "\n  reading: the greedy marginal-cost rule of Eq. 7.3 stays close to\n"
      "  the branch-and-bound optimum while CPU-only throttling pays a\n"
      "  growing penalty as the budget tightens -- the paper's motivation\n"
      "  for distributing the budget across the heterogeneous components.\n");
  return 0;
}
