// Microbenchmark for the §6.2 overhead claim: "we first ran the modified
// kernel with the power models and thermal predictor without taking any real
// action ... we did not observe any noticeable change in power and
// performance due to our models." Measures the per-control-interval cost of
// the predictor, the budget computation, and the whole DTPM decision against
// the 100 ms control period.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/dtpm_governor.hpp"
#include "core/power_budget.hpp"
#include "core/thermal_predictor.hpp"
#include "governors/ondemand.hpp"

namespace {

using namespace dtpm;

soc::PlatformView hot_view() {
  soc::PlatformView v;
  v.time_s = 100.0;
  v.big_temps_c = {62.0, 61.5, 61.0, 61.5};
  v.rail_power_w = {2.3, 0.02, 0.2, 0.4};
  v.cpu_max_util = 1.0;
  v.gpu_util = 0.02;
  v.config.big_freq_hz = 1.6e9;
  v.config.little_freq_hz = 1.2e9;
  v.config.gpu_freq_hz = 177e6;
  return v;
}

void BM_ThermalPrediction10Steps(benchmark::State& state) {
  const core::ThermalPredictor predictor(bench::shared_model().thermal);
  const std::vector<double> temps{62.0, 61.5, 61.0, 61.5};
  const std::vector<double> powers{2.3, 0.02, 0.2, 0.4};
  predictor.condensed(10);  // warm the cache, as in steady operation
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.predict(temps, powers, 10));
  }
}
BENCHMARK(BM_ThermalPrediction10Steps);

void BM_PowerBudgetComputation(benchmark::State& state) {
  const core::ThermalPredictor predictor(bench::shared_model().thermal);
  const std::vector<double> temps{62.0, 61.5, 61.0, 61.5};
  const power::ResourceVector rails{2.3, 0.02, 0.2, 0.4};
  predictor.condensed(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_power_budget(
        predictor, 10, temps, rails, power::Resource::kBigCluster, 62.25,
        0.3));
  }
}
BENCHMARK(BM_PowerBudgetComputation);

void BM_OndemandDecision(benchmark::State& state) {
  governors::OndemandGovernor governor;
  const soc::PlatformView view = hot_view();
  for (auto _ : state) {
    benchmark::DoNotOptimize(governor.decide(view));
  }
}
BENCHMARK(BM_OndemandDecision);

void BM_FullDtpmAdjust(benchmark::State& state) {
  core::DtpmGovernor governor(bench::shared_model());
  governors::OndemandGovernor ondemand;
  soc::PlatformView view = hot_view();
  const governors::Decision proposal = ondemand.decide(view);
  for (auto _ : state) {
    view.time_s += 0.1;
    benchmark::DoNotOptimize(governor.adjust(view, proposal));
  }
}
BENCHMARK(BM_FullDtpmAdjust);

}  // namespace

BENCHMARK_MAIN();
