// Scenario-catalog fuzzing sweep: expands every registered scenario family
// over several seeds and both the stock-fan and proposed-DTPM policies, runs
// the whole grid through the BatchRunner, checks the physics invariants on
// every recorded trace, and prints (plus writes to CSV) a per-family
// summary. This is the scenario-diversity counterpart of the fixed
// Table-6.4 catalog: it exercises the stress shapes -- soak ramps, duty
// cycles near the thermal time constant, GPU co-stress -- where predictive
// DTPM failure modes live.
//
// Usage: bench_scenario_catalog [seed_count] [csv_path]
//   seed_count  seeds per family/policy (default 3)
//   csv_path    summary output (default scenario_catalog_summary.csv)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/scenario_catalog.hpp"

namespace {

struct FamilySummary {
  int runs = 0;
  int crashed = 0;  ///< runs that threw; excluded from the means below
  int completed = 0;
  int invariant_violations = 0;
  double exec_time_sum_s = 0.0;
  double power_sum_w = 0.0;
  double peak_temp_c = 0.0;
  double violation_time_sum_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dtpm;
  const int seed_count = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::string csv_path =
      argc > 2 ? argv[2] : "scenario_catalog_summary.csv";
  bench::print_header("Scenario catalog",
                      "Procedural stress scenarios under invariant checking");

  const sim::ScenarioCatalog catalog = sim::ScenarioCatalog::standard();
  sim::ScenarioCatalog::Sweep sweep;
  sweep.base.max_sim_time_s = 300.0;
  sweep.policy_names = {"default+fan",
                    "dtpm"};
  sweep.seeds.clear();
  for (int s = 1; s <= std::max(1, seed_count); ++s) sweep.seeds.push_back(s);

  const std::vector<sim::ExperimentConfig> configs = catalog.expand(sweep);
  std::printf("  sweeping %zu families x %zu seeds x %zu policies = %zu runs "
              "on %u workers\n\n",
              catalog.size(), sweep.seeds.size(), sweep.policy_names.size(),
              configs.size(), sim::BatchRunner().worker_count());

  std::vector<sim::BatchJob> jobs;
  for (const sim::ExperimentConfig& c : configs) {
    jobs.push_back({c, &bench::shared_model()});
  }
  const sim::BatchOutcome outcome =
      sim::BatchRunner().run_collecting(jobs);

  const sim::InvariantChecker checker;
  std::map<std::string, FamilySummary> families;
  int total_violations = 0;
  int total_crashes = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::string family =
        configs[i].benchmark.substr(0, configs[i].benchmark.find('#'));
    FamilySummary& fam = families[family];
    ++fam.runs;
    if (outcome.errors[i] != nullptr) {
      // A throwing run is reported in its own column: its physics were
      // never checked, so it must not masquerade as an invariant violation
      // (nor deflate the per-family means).
      try {
        std::rethrow_exception(outcome.errors[i]);
      } catch (const std::exception& e) {
        std::printf("  RUN FAILED %s (%s): %s\n", configs[i].benchmark.c_str(),
                    sim::resolved_policy_name(configs[i]).c_str(), e.what());
      }
      ++fam.crashed;
      ++total_crashes;
      continue;
    }
    const sim::RunResult& r = outcome.results[i];
    const auto violations = checker.check(configs[i], r);
    if (!violations.empty()) {
      std::printf("  INVARIANT FAILURES in %s (%s):\n%s",
                  configs[i].benchmark.c_str(), sim::resolved_policy_name(configs[i]).c_str(),
                  sim::InvariantChecker::describe(violations).c_str());
    }
    fam.invariant_violations += int(violations.size());
    total_violations += int(violations.size());
    fam.completed += r.completed ? 1 : 0;
    fam.exec_time_sum_s += r.execution_time_s;
    fam.power_sum_w += r.avg_platform_power_w;
    fam.peak_temp_c = std::max(fam.peak_temp_c, r.max_temp_stats.max());
    fam.violation_time_sum_s += r.violation_time_s;
  }

  std::printf("  %-22s %5s %6s %5s %9s %7s %8s %9s %6s\n", "family", "runs",
              "crash", "done", "exec[s]", "P[W]", "Tpeak[C]", ">63C[s]",
              "viol");
  std::ofstream csv(csv_path);
  if (!csv) {
    std::fprintf(stderr, "cannot open summary CSV %s for writing\n",
                 csv_path.c_str());
    return 2;
  }
  csv << "family,runs,crashed,completed,mean_exec_s,mean_power_w,"
         "peak_temp_c,mean_violation_s,invariant_violations\n";
  for (const auto& [name, fam] : families) {
    // Means are over the runs that actually produced a result.
    const double n = std::max(1, fam.runs - fam.crashed);
    std::printf("  %-22s %5d %6d %5d %9.1f %7.2f %8.1f %9.2f %6d\n",
                name.c_str(), fam.runs, fam.crashed, fam.completed,
                fam.exec_time_sum_s / n, fam.power_sum_w / n, fam.peak_temp_c,
                fam.violation_time_sum_s / n, fam.invariant_violations);
    csv << name << ',' << fam.runs << ',' << fam.crashed << ','
        << fam.completed << ',' << fam.exec_time_sum_s / n << ','
        << fam.power_sum_w / n << ',' << fam.peak_temp_c << ','
        << fam.violation_time_sum_s / n << ',' << fam.invariant_violations
        << '\n';
  }
  std::printf(
      "\n  total invariant violations: %d, failed runs: %d (%s)\n"
      "  summary CSV: %s\n",
      total_violations, total_crashes,
      total_violations == 0 && total_crashes == 0
          ? "catalog is physically consistent"
          : "SIMULATOR BUG SURFACED",
      csv_path.c_str());
  return total_violations == 0 && total_crashes == 0 ? 0 : 1;
}
