// Reproduces Tables 6.1-6.3: the DVFS frequency tables of the big CPU
// cluster, the little CPU cluster, and the GPU (with the voltage column our
// platform model attaches to each operating point).
#include <cstdio>

#include "bench_common.hpp"
#include "power/opp.hpp"

namespace {

void print_table(const char* id, const char* title,
                 const dtpm::power::OppTable& table) {
  dtpm::bench::print_header(id, title);
  std::printf("  %-16s %-12s\n", "Frequency (MHz)", "Voltage (V)");
  for (const auto& opp : table.points()) {
    std::printf("  %-16.0f %-12.2f\n", opp.frequency_hz / 1e6, opp.voltage_v);
  }
  std::printf("  (%zu discrete levels)\n", table.size());
}

}  // namespace

int main() {
  print_table("Table 6.1", "Frequency table for the big CPU cluster",
              dtpm::power::big_cluster_opp_table());
  print_table("Table 6.2", "Frequency table for the little CPU cluster",
              dtpm::power::little_cluster_opp_table());
  print_table("Table 6.3", "Frequency table for the GPU",
              dtpm::power::gpu_opp_table());
  return 0;
}
