// Reproduces Table 6.4: the benchmark catalog with its type and comparative
// CPU power category, plus the synthetic-equivalent parameters this
// reproduction attaches to each entry and, as a cross-check of the power
// classes, the measured execution time / average platform power of every
// benchmark under the default-with-fan configuration. The measurement runs
// for the whole catalog (standard + multithreaded suites) execute as one
// parallel BatchRunner batch.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Table 6.4", "Benchmarks used in the experiments");

  std::vector<const workload::Benchmark*> catalog;
  for (const auto& b : workload::standard_suite()) catalog.push_back(&b);
  for (const auto& b : workload::multithreaded_suite()) catalog.push_back(&b);

  std::vector<sim::ExperimentConfig> configs;
  for (const workload::Benchmark* b : catalog) {
    configs.push_back(bench::policy_config(b->name,
                                           "default+fan",
                                           /*record_trace=*/false));
  }
  const std::vector<sim::RunResult> measured = bench::run_batch(configs);

  std::printf("  %-12s %-14s %-8s %7s %8s %6s %5s %9s %8s\n", "benchmark",
              "type", "class", "threads", "work[u]", "gpu", "bg", "exec[s]",
              "P[W]");
  auto print_row = [](const workload::Benchmark& b, const sim::RunResult& r) {
    std::printf("  %-12s %-14s %-8s %7d %8.0f %6s %5s %9.1f %8.2f\n",
                b.name.c_str(), to_string(b.category),
                to_string(b.power_class), b.phases.front().threads,
                b.total_work_units, b.gpu_cycles_per_unit > 0 ? "yes" : "no",
                workload::wants_heavy_background(b) ? "mm" : "-",
                r.execution_time_s, r.avg_platform_power_w);
  };
  const std::size_t standard_count = workload::standard_suite().size();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (i == standard_count) {
      std::printf("  --- multithreaded pair of Fig. 6.10 ---\n");
    }
    print_row(*catalog[i], measured[i]);
  }
  std::printf(
      "\n  'bg = mm': games/video run with the background matrix\n"
      "  multiplication load, as in the paper's setup (Sec. 6.1.3).\n"
      "  exec/P measured under the default-with-fan configuration.\n");
  return 0;
}
