// Reproduces Table 6.4: the benchmark catalog with its type and comparative
// CPU power category, plus the synthetic-equivalent parameters this
// reproduction attaches to each entry.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/suite.hpp"

int main() {
  using namespace dtpm;
  bench::print_header("Table 6.4", "Benchmarks used in the experiments");
  std::printf("  %-12s %-14s %-8s %7s %8s %6s %5s\n", "benchmark", "type",
              "class", "threads", "work[u]", "gpu", "bg");
  auto print_row = [](const workload::Benchmark& b) {
    std::printf("  %-12s %-14s %-8s %7d %8.0f %6s %5s\n", b.name.c_str(),
                to_string(b.category), to_string(b.power_class),
                b.phases.front().threads, b.total_work_units,
                b.gpu_cycles_per_unit > 0 ? "yes" : "no",
                workload::wants_heavy_background(b) ? "mm" : "-");
  };
  for (const auto& b : workload::standard_suite()) print_row(b);
  std::printf("  --- multithreaded pair of Fig. 6.10 ---\n");
  for (const auto& b : workload::multithreaded_suite()) print_row(b);
  std::printf(
      "\n  'bg = mm': games/video run with the background matrix\n"
      "  multiplication load, as in the paper's setup (Sec. 6.1.3).\n");
  return 0;
}
