// Simulation throughput benchmark: the perf baseline every future PR is
// measured against. Expands the scenario catalog over {family x policy x
// seed}, runs the grid through the BatchRunner (trace recording off, so the
// hot path is what is measured), and reports aggregate steps/sec, runs/sec,
// and per-step latency percentiles from the per-run RunResult cost counters.
// Results are written to BENCH_throughput.json so CI can archive the perf
// trajectory per PR (see README "Performance").
//
// Calibration (the identified model the DTPM policy needs) runs before the
// clock starts; the measurement covers simulation stepping only.
//
// Usage: bench_throughput [--smoke] [seed_count] [json_path]
//   --smoke     CI mode: 1 seed per family, 30 s sim-time cap
//   seed_count  seeds per family/policy (default 2)
//   json_path   output JSON (default BENCH_throughput.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/scenario_catalog.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const double rank = p * double(sorted_values.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = rank - double(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtpm;
  bool smoke = false;
  int seed_count = 2;
  std::string json_path = "BENCH_throughput.json";
  std::vector<std::string> positional;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else {
      positional.emplace_back(argv[a]);
    }
  }
  // A numeric positional is the seed count; anything else is the JSON path
  // (so `bench_throughput --smoke out.json` does what it looks like).
  for (const std::string& arg : positional) {
    const int parsed = std::atoi(arg.c_str());
    if (parsed > 0) {
      seed_count = parsed;
    } else {
      json_path = arg;
    }
  }
  if (smoke) seed_count = 1;

  bench::print_header("Throughput",
                      "Scenario-catalog sweep: steps/sec, runs/sec, latency");

  // Calibrate outside the measurement window.
  const sysid::IdentifiedPlatformModel& model = bench::shared_model();

  const sim::ScenarioCatalog catalog = sim::ScenarioCatalog::standard();
  sim::ScenarioCatalog::Sweep sweep;
  sweep.base.max_sim_time_s = smoke ? 30.0 : 120.0;
  sweep.base.record_trace = false;
  sweep.policy_names = {"default+fan", "dtpm"};
  sweep.seeds.clear();
  for (int s = 1; s <= seed_count; ++s) sweep.seeds.push_back(s);
  // The perf baseline is tied to the plant it measured; record it so a
  // future platform change in this bench can't be mistaken for a perf
  // regression (or win) in the archived trajectory.
  const std::string platform = sim::resolved_platform_name(sweep.base);

  const std::vector<sim::ExperimentConfig> configs = catalog.expand(sweep);
  std::vector<sim::BatchJob> jobs;
  jobs.reserve(configs.size());
  for (const sim::ExperimentConfig& c : configs) jobs.push_back({c, &model});

  const unsigned workers = sim::BatchRunner().worker_count();
  std::printf("  %zu families x %zu seeds x %zu policies = %zu runs on %u "
              "workers (%s)\n\n",
              catalog.size(), sweep.seeds.size(), sweep.policy_names.size(),
              configs.size(), workers, smoke ? "smoke" : "full");

  const auto t0 = Clock::now();
  const sim::BatchOutcome outcome = sim::BatchRunner().run_collecting(jobs);
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::size_t control_steps = 0;
  std::size_t plant_substeps = 0;
  std::size_t failed = 0;
  std::vector<double> step_latency_us;
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (outcome.errors[i] != nullptr) {
      ++failed;
      continue;
    }
    const sim::RunResult& r = outcome.results[i];
    control_steps += r.control_steps;
    plant_substeps += r.plant_substeps;
    if (r.control_steps > 0) {
      step_latency_us.push_back(1e6 * r.wall_time_s / double(r.control_steps));
    }
  }
  std::sort(step_latency_us.begin(), step_latency_us.end());
  const double p50 = percentile(step_latency_us, 0.50);
  const double p90 = percentile(step_latency_us, 0.90);
  const double p99 = percentile(step_latency_us, 0.99);
  const double steps_per_sec = double(control_steps) / wall_s;
  const double runs_per_sec = double(configs.size() - failed) / wall_s;

  std::printf("  wall time          %10.3f s\n", wall_s);
  std::printf("  runs               %10zu (%zu failed)\n",
              configs.size(), failed);
  std::printf("  runs/sec           %10.2f\n", runs_per_sec);
  std::printf("  control steps      %10zu\n", control_steps);
  std::printf("  steps/sec          %10.0f\n", steps_per_sec);
  std::printf("  plant substeps     %10zu\n", plant_substeps);
  std::printf("  substeps/sec       %10.0f\n",
              double(plant_substeps) / wall_s);
  std::printf("  step latency p50   %10.2f us\n", p50);
  std::printf("  step latency p90   %10.2f us\n", p90);
  std::printf("  step latency p99   %10.2f us\n", p99);

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 2;
  }
  json << "{\n"
       << "  \"bench\": \"throughput\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"platform\": \"" << platform << "\",\n"
       << "  \"workers\": " << workers << ",\n"
       << "  \"families\": " << catalog.size() << ",\n"
       << "  \"seeds\": " << sweep.seeds.size() << ",\n"
       << "  \"policies\": [";
  for (std::size_t p = 0; p < sweep.policy_names.size(); ++p) {
    json << (p == 0 ? "" : ", ") << '"' << sweep.policy_names[p] << '"';
  }
  json << "],\n"
       << "  \"runs\": " << configs.size() << ",\n"
       << "  \"failed_runs\": " << failed << ",\n"
       << "  \"wall_s\": " << wall_s << ",\n"
       << "  \"runs_per_sec\": " << runs_per_sec << ",\n"
       << "  \"control_steps\": " << control_steps << ",\n"
       << "  \"steps_per_sec\": " << steps_per_sec << ",\n"
       << "  \"plant_substeps\": " << plant_substeps << ",\n"
       << "  \"substeps_per_sec\": " << double(plant_substeps) / wall_s << ",\n"
       << "  \"step_latency_us\": {\"p50\": " << p50 << ", \"p90\": " << p90
       << ", \"p99\": " << p99 << "}\n"
       << "}\n";
  std::printf("\n  wrote %s\n", json_path.c_str());
  return failed == 0 ? 0 : 1;
}
