// Simulation throughput benchmark: the perf baseline every future PR is
// measured against. Expands the scenario catalog over {family x policy x
// seed}, then runs the grid through the BatchRunner once per (stepping
// engine x worker count) cell -- reference-rk4, propagator and batched,
// each on 1, 2, 4 and all hardware workers -- and reports aggregate
// steps/sec, runs/sec, and per-step latency percentiles from the per-run
// RunResult cost counters. Each cell then runs a second, phase-profiled
// pass (ExperimentConfig::profile_phases) whose sensor/policy/schedule/
// plant tick breakdown lands in the artifact next to the throughput
// number, so "where the time goes" is diffable in CI, not folklore.
//
// Worker counts above the host's hardware concurrency are still listed --
// the artifact records the requested AND the effective count (the pool
// clamps to the hardware), so a sweep archived on a small host can't be
// misread as a scaling regression on a big one.
//
// Results (plus compiler/build metadata, so an archived number can never
// be mistaken for one from a different toolchain) are written to
// BENCH_throughput.json; scripts/check_bench_regression.py diffs a fresh
// run against the checked-in artifact in CI (see README "Performance").
//
// Calibration (the identified model the DTPM policy needs) runs before the
// clock starts; the measurement covers simulation stepping only.
//
// Usage: bench_throughput [--smoke] [seed_count] [json_path]
//   --smoke     CI mode: 1 seed per family, 30 s sim-time cap, one timed
//               pass per cell (full mode keeps the faster of two)
//   seed_count  seeds per family/policy (default 10; short cells measure
//               scheduler noise, and wide cells drive the lockstep lanes
//               at fleet-representative group widths)
//   json_path   output JSON (default BENCH_throughput.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/scenario_catalog.hpp"
#include "sim/stepping_engine.hpp"
#include "util/phase.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double percentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const double rank = p * double(sorted_values.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = rank - double(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

/// One (engine x workers) cell of the sweep.
struct Measurement {
  std::string engine;
  unsigned workers = 0;            ///< requested
  unsigned workers_effective = 0;  ///< what the pool actually spawned
  std::size_t runs = 0;
  std::size_t failed = 0;
  std::size_t control_steps = 0;
  std::size_t plant_substeps = 0;
  double wall_s = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  /// Aggregate phase ticks from the profiled pass (unit: TSC, comparable
  /// only as ratios within one run of this bench).
  dtpm::util::PhaseCycles phases;

  double runs_per_sec() const { return double(runs - failed) / wall_s; }
  double steps_per_sec() const { return double(control_steps) / wall_s; }
  double substeps_per_sec() const { return double(plant_substeps) / wall_s; }
  double phase_fraction(dtpm::util::Phase p) const {
    const double total = double(phases.total());
    return total > 0.0
               ? double(phases.ticks[static_cast<unsigned>(p)]) / total
               : 0.0;
  }
};

const char* compiler_string() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_type() {
#ifdef DTPM_BUILD_TYPE
  return DTPM_BUILD_TYPE;
#else
  return "unknown";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtpm;
  bool smoke = false;
  int seed_count = 10;
  std::string json_path = "BENCH_throughput.json";
  std::vector<std::string> positional;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else {
      positional.emplace_back(argv[a]);
    }
  }
  // A numeric positional is the seed count; anything else is the JSON path
  // (so `bench_throughput --smoke out.json` does what it looks like).
  for (const std::string& arg : positional) {
    const int parsed = std::atoi(arg.c_str());
    if (parsed > 0) {
      seed_count = parsed;
    } else {
      json_path = arg;
    }
  }
  if (smoke) seed_count = 1;

  bench::print_header(
      "Throughput",
      "Scenario-catalog sweep: steps/sec per engine and worker count");

  // Calibrate outside the measurement window.
  const sysid::IdentifiedPlatformModel& model = bench::shared_model();

  const sim::ScenarioCatalog catalog = sim::ScenarioCatalog::standard();
  sim::ScenarioCatalog::Sweep sweep;
  sweep.base.max_sim_time_s = smoke ? 30.0 : 120.0;
  sweep.base.record_trace = false;
  sweep.policy_names = {"default+fan", "dtpm"};
  sweep.seeds.clear();
  for (int s = 1; s <= seed_count; ++s) sweep.seeds.push_back(s);
  // The perf baseline is tied to the plant it measured; record it so a
  // future platform change in this bench can't be mistaken for a perf
  // regression (or win) in the archived trajectory.
  const std::string platform = sim::resolved_platform_name(sweep.base);

  std::vector<sim::ExperimentConfig> configs = catalog.expand(sweep);

  const unsigned host_cpus =
      std::max(1u, std::thread::hardware_concurrency());

  // The sweep cells: every engine on 1, 2, 4 and all-hardware workers
  // (deduplicated; counts beyond host_cpus stay listed and record their
  // clamped effective width).
  const std::vector<sim::Engine> engines = {
      sim::Engine::kReferenceRk4, sim::Engine::kPropagator,
      sim::Engine::kBatched};
  std::vector<unsigned> worker_counts = {1u, 2u, 4u, host_cpus};
  std::sort(worker_counts.begin(), worker_counts.end());
  worker_counts.erase(
      std::unique(worker_counts.begin(), worker_counts.end()),
      worker_counts.end());

  std::printf("  %zu families x %zu seeds x %zu policies = %zu runs per "
              "cell; %zu engines x %zu worker counts (%s)\n",
              catalog.size(), sweep.seeds.size(), sweep.policy_names.size(),
              configs.size(), engines.size(), worker_counts.size(),
              smoke ? "smoke" : "full");
  std::printf("  compiler %s, build %s, %u hardware thread%s\n\n",
              compiler_string(), build_type(), host_cpus,
              host_cpus == 1 ? "" : "s");

  std::vector<Measurement> measurements;
  std::printf("  %-14s %7s %9s %12s %10s %8s  %s\n", "engine", "workers",
              "effective", "steps/sec", "runs/sec", "p50 us",
              "sensor/policy/schedule/plant");
  for (const sim::Engine engine : engines) {
    for (sim::ExperimentConfig& c : configs) c.engine = engine;
    std::vector<sim::BatchJob> jobs;
    jobs.reserve(configs.size());
    for (const sim::ExperimentConfig& c : configs) jobs.push_back({c, &model});
    // The profiled twin of every job: same work, TSC stamps on. Kept as a
    // separate pass so the throughput number is never measured with the
    // stamps compiled in the loop.
    std::vector<sim::BatchJob> profiled_jobs = jobs;
    for (sim::BatchJob& job : profiled_jobs) {
      job.config.profile_phases = true;
    }

    for (const unsigned workers : worker_counts) {
      Measurement m;
      m.engine = sim::to_string(engine);
      m.workers = workers;
      m.runs = configs.size();
      const sim::BatchRunner runner(workers);
      m.workers_effective = runner.effective_worker_count();

      // Full mode times every cell twice and keeps the faster pass: the
      // runs are deterministic, so the passes do identical work and the
      // delta is scheduler noise -- best-of-2 measures the code, not the
      // host's interrupts. Smoke mode stays single-pass for CI time.
      const int timed_passes = smoke ? 1 : 2;
      sim::BatchOutcome outcome;
      for (int pass = 0; pass < timed_passes; ++pass) {
        const auto t0 = Clock::now();
        sim::BatchOutcome candidate = runner.run_collecting(jobs);
        const double wall =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (pass == 0 || wall < m.wall_s) {
          m.wall_s = wall;
          outcome = std::move(candidate);
        }
      }

      std::vector<double> step_latency_us;
      for (std::size_t i = 0; i < outcome.results.size(); ++i) {
        if (outcome.errors[i] != nullptr) {
          ++m.failed;
          continue;
        }
        const sim::RunResult& r = outcome.results[i];
        m.control_steps += r.control_steps;
        m.plant_substeps += r.plant_substeps;
        if (r.control_steps > 0) {
          step_latency_us.push_back(1e6 * r.wall_time_s /
                                    double(r.control_steps));
        }
      }
      std::sort(step_latency_us.begin(), step_latency_us.end());
      m.p50 = percentile(step_latency_us, 0.50);
      m.p90 = percentile(step_latency_us, 0.90);
      m.p99 = percentile(step_latency_us, 0.99);

      // Phase pass: same cell, stamps on, throughput discarded.
      const sim::BatchOutcome profiled = runner.run_collecting(profiled_jobs);
      for (std::size_t i = 0; i < profiled.results.size(); ++i) {
        if (profiled.errors[i] == nullptr) {
          m.phases += profiled.results[i].phase_cycles;
        }
      }

      std::printf(
          "  %-14s %7u %9u %12.0f %10.2f %8.2f  %.2f/%.2f/%.2f/%.2f%s\n",
          m.engine.c_str(), m.workers, m.workers_effective,
          m.steps_per_sec(), m.runs_per_sec(), m.p50,
          m.phase_fraction(util::Phase::kSensor),
          m.phase_fraction(util::Phase::kPolicy),
          m.phase_fraction(util::Phase::kSchedule),
          m.phase_fraction(util::Phase::kPlant),
          m.failed > 0 ? "  (FAILURES)" : "");
      measurements.push_back(std::move(m));
    }
  }

  std::size_t total_failed = 0;
  for (const Measurement& m : measurements) total_failed += m.failed;

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 2;
  }
  json << "{\n"
       << "  \"bench\": \"throughput\",\n"
       << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
       << "  \"platform\": \"" << platform << "\",\n"
       << "  \"compiler\": \"" << compiler_string() << "\",\n"
       << "  \"build_type\": \"" << build_type() << "\",\n"
       << "  \"host_cpus\": " << host_cpus << ",\n"
       << "  \"families\": " << catalog.size() << ",\n"
       << "  \"seeds\": " << sweep.seeds.size() << ",\n"
       << "  \"policies\": [";
  for (std::size_t p = 0; p < sweep.policy_names.size(); ++p) {
    json << (p == 0 ? "" : ", ") << '"' << sweep.policy_names[p] << '"';
  }
  json << "],\n"
       << "  \"runs_per_cell\": " << configs.size() << ",\n"
       << "  \"timed_passes\": " << (smoke ? 1 : 2) << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    json << "    {\"engine\": \"" << m.engine << "\", \"workers\": "
         << m.workers << ", \"workers_effective\": " << m.workers_effective
         << ", \"failed_runs\": " << m.failed
         << ", \"wall_s\": " << m.wall_s
         << ", \"runs_per_sec\": " << m.runs_per_sec()
         << ", \"control_steps\": " << m.control_steps
         << ", \"steps_per_sec\": " << m.steps_per_sec()
         << ", \"plant_substeps\": " << m.plant_substeps
         << ", \"substeps_per_sec\": " << m.substeps_per_sec()
         << ", \"step_latency_us\": {\"p50\": " << m.p50 << ", \"p90\": "
         << m.p90 << ", \"p99\": " << m.p99 << "}"
         << ", \"phase_ticks\": {";
    for (std::size_t p = 0; p < util::kPhaseCount; ++p) {
      json << (p == 0 ? "" : ", ") << '"' << util::kPhaseNames[p]
           << "\": " << m.phases.ticks[p];
    }
    json << "}}" << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::printf("\n  wrote %s\n", json_path.c_str());
  return total_failed == 0 ? 0 : 1;
}
