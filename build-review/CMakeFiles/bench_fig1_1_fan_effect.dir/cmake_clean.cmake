file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_1_fan_effect.dir/bench/bench_fig1_1_fan_effect.cpp.o"
  "CMakeFiles/bench_fig1_1_fan_effect.dir/bench/bench_fig1_1_fan_effect.cpp.o.d"
  "bench_fig1_1_fan_effect"
  "bench_fig1_1_fan_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_1_fan_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
