# Empty dependencies file for bench_fig1_1_fan_effect.
# This may be replaced when dependencies are built.
