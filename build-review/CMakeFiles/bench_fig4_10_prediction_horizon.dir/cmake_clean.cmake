file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_10_prediction_horizon.dir/bench/bench_fig4_10_prediction_horizon.cpp.o"
  "CMakeFiles/bench_fig4_10_prediction_horizon.dir/bench/bench_fig4_10_prediction_horizon.cpp.o.d"
  "bench_fig4_10_prediction_horizon"
  "bench_fig4_10_prediction_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_10_prediction_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
