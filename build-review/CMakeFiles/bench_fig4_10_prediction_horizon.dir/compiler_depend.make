# Empty compiler generated dependencies file for bench_fig4_10_prediction_horizon.
# This may be replaced when dependencies are built.
