file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_2_4_3_furnace_leakage.dir/bench/bench_fig4_2_4_3_furnace_leakage.cpp.o"
  "CMakeFiles/bench_fig4_2_4_3_furnace_leakage.dir/bench/bench_fig4_2_4_3_furnace_leakage.cpp.o.d"
  "bench_fig4_2_4_3_furnace_leakage"
  "bench_fig4_2_4_3_furnace_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_2_4_3_furnace_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
