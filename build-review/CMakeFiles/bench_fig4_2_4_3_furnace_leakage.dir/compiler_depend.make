# Empty compiler generated dependencies file for bench_fig4_2_4_3_furnace_leakage.
# This may be replaced when dependencies are built.
