# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig4_2_4_3_furnace_leakage.
