file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_5_4_6_power_decomposition.dir/bench/bench_fig4_5_4_6_power_decomposition.cpp.o"
  "CMakeFiles/bench_fig4_5_4_6_power_decomposition.dir/bench/bench_fig4_5_4_6_power_decomposition.cpp.o.d"
  "bench_fig4_5_4_6_power_decomposition"
  "bench_fig4_5_4_6_power_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_4_6_power_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
