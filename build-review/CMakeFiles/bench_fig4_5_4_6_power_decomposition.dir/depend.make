# Empty dependencies file for bench_fig4_5_4_6_power_decomposition.
# This may be replaced when dependencies are built.
