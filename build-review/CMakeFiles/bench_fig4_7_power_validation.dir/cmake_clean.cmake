file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_7_power_validation.dir/bench/bench_fig4_7_power_validation.cpp.o"
  "CMakeFiles/bench_fig4_7_power_validation.dir/bench/bench_fig4_7_power_validation.cpp.o.d"
  "bench_fig4_7_power_validation"
  "bench_fig4_7_power_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_7_power_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
