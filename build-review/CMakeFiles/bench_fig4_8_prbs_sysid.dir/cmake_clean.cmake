file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_8_prbs_sysid.dir/bench/bench_fig4_8_prbs_sysid.cpp.o"
  "CMakeFiles/bench_fig4_8_prbs_sysid.dir/bench/bench_fig4_8_prbs_sysid.cpp.o.d"
  "bench_fig4_8_prbs_sysid"
  "bench_fig4_8_prbs_sysid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_8_prbs_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
