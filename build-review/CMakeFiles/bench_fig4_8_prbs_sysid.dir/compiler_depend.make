# Empty compiler generated dependencies file for bench_fig4_8_prbs_sysid.
# This may be replaced when dependencies are built.
