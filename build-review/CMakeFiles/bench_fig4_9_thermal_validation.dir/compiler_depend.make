# Empty compiler generated dependencies file for bench_fig4_9_thermal_validation.
# This may be replaced when dependencies are built.
