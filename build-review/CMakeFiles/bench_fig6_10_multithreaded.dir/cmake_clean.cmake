file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_10_multithreaded.dir/bench/bench_fig6_10_multithreaded.cpp.o"
  "CMakeFiles/bench_fig6_10_multithreaded.dir/bench/bench_fig6_10_multithreaded.cpp.o.d"
  "bench_fig6_10_multithreaded"
  "bench_fig6_10_multithreaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_10_multithreaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
