# Empty compiler generated dependencies file for bench_fig6_10_multithreaded.
# This may be replaced when dependencies are built.
