file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_2_prediction_error_all.dir/bench/bench_fig6_2_prediction_error_all.cpp.o"
  "CMakeFiles/bench_fig6_2_prediction_error_all.dir/bench/bench_fig6_2_prediction_error_all.cpp.o.d"
  "bench_fig6_2_prediction_error_all"
  "bench_fig6_2_prediction_error_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_2_prediction_error_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
