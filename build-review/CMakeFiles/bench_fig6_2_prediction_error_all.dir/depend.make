# Empty dependencies file for bench_fig6_2_prediction_error_all.
# This may be replaced when dependencies are built.
