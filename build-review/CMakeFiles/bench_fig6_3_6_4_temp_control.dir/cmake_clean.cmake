file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_3_6_4_temp_control.dir/bench/bench_fig6_3_6_4_temp_control.cpp.o"
  "CMakeFiles/bench_fig6_3_6_4_temp_control.dir/bench/bench_fig6_3_6_4_temp_control.cpp.o.d"
  "bench_fig6_3_6_4_temp_control"
  "bench_fig6_3_6_4_temp_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_3_6_4_temp_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
