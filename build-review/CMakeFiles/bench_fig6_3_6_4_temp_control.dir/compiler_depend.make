# Empty compiler generated dependencies file for bench_fig6_3_6_4_temp_control.
# This may be replaced when dependencies are built.
