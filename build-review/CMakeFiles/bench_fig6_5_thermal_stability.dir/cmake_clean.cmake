file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_5_thermal_stability.dir/bench/bench_fig6_5_thermal_stability.cpp.o"
  "CMakeFiles/bench_fig6_5_thermal_stability.dir/bench/bench_fig6_5_thermal_stability.cpp.o.d"
  "bench_fig6_5_thermal_stability"
  "bench_fig6_5_thermal_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_5_thermal_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
