# Empty dependencies file for bench_fig6_5_thermal_stability.
# This may be replaced when dependencies are built.
