file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_6_to_6_8_freq_temp_traces.dir/bench/bench_fig6_6_to_6_8_freq_temp_traces.cpp.o"
  "CMakeFiles/bench_fig6_6_to_6_8_freq_temp_traces.dir/bench/bench_fig6_6_to_6_8_freq_temp_traces.cpp.o.d"
  "bench_fig6_6_to_6_8_freq_temp_traces"
  "bench_fig6_6_to_6_8_freq_temp_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_6_to_6_8_freq_temp_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
