# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig6_6_to_6_8_freq_temp_traces.
