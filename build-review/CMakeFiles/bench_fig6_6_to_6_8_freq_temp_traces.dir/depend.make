# Empty dependencies file for bench_fig6_6_to_6_8_freq_temp_traces.
# This may be replaced when dependencies are built.
