file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_9_power_perf_summary.dir/bench/bench_fig6_9_power_perf_summary.cpp.o"
  "CMakeFiles/bench_fig6_9_power_perf_summary.dir/bench/bench_fig6_9_power_perf_summary.cpp.o.d"
  "bench_fig6_9_power_perf_summary"
  "bench_fig6_9_power_perf_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_9_power_perf_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
