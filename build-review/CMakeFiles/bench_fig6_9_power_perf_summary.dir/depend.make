# Empty dependencies file for bench_fig6_9_power_perf_summary.
# This may be replaced when dependencies are built.
