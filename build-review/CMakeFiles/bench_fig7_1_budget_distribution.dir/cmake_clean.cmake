file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_1_budget_distribution.dir/bench/bench_fig7_1_budget_distribution.cpp.o"
  "CMakeFiles/bench_fig7_1_budget_distribution.dir/bench/bench_fig7_1_budget_distribution.cpp.o.d"
  "bench_fig7_1_budget_distribution"
  "bench_fig7_1_budget_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_1_budget_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
