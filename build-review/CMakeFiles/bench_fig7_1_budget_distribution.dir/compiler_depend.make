# Empty compiler generated dependencies file for bench_fig7_1_budget_distribution.
# This may be replaced when dependencies are built.
