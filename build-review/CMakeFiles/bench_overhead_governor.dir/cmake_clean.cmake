file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_governor.dir/bench/bench_overhead_governor.cpp.o"
  "CMakeFiles/bench_overhead_governor.dir/bench/bench_overhead_governor.cpp.o.d"
  "bench_overhead_governor"
  "bench_overhead_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
