# Empty dependencies file for bench_overhead_governor.
# This may be replaced when dependencies are built.
