file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_catalog.dir/bench/bench_scenario_catalog.cpp.o"
  "CMakeFiles/bench_scenario_catalog.dir/bench/bench_scenario_catalog.cpp.o.d"
  "bench_scenario_catalog"
  "bench_scenario_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
