# Empty compiler generated dependencies file for bench_scenario_catalog.
# This may be replaced when dependencies are built.
