
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tab6_1_to_6_3_opp_tables.cpp" "CMakeFiles/bench_tab6_1_to_6_3_opp_tables.dir/bench/bench_tab6_1_to_6_3_opp_tables.cpp.o" "gcc" "CMakeFiles/bench_tab6_1_to_6_3_opp_tables.dir/bench/bench_tab6_1_to_6_3_opp_tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/dtpm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/dtpm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
