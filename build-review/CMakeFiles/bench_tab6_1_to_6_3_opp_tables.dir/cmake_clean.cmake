file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_1_to_6_3_opp_tables.dir/bench/bench_tab6_1_to_6_3_opp_tables.cpp.o"
  "CMakeFiles/bench_tab6_1_to_6_3_opp_tables.dir/bench/bench_tab6_1_to_6_3_opp_tables.cpp.o.d"
  "bench_tab6_1_to_6_3_opp_tables"
  "bench_tab6_1_to_6_3_opp_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_1_to_6_3_opp_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
