# Empty dependencies file for bench_tab6_1_to_6_3_opp_tables.
# This may be replaced when dependencies are built.
