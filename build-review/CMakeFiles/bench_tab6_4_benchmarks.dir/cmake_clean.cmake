file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_4_benchmarks.dir/bench/bench_tab6_4_benchmarks.cpp.o"
  "CMakeFiles/bench_tab6_4_benchmarks.dir/bench/bench_tab6_4_benchmarks.cpp.o.d"
  "bench_tab6_4_benchmarks"
  "bench_tab6_4_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_4_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
