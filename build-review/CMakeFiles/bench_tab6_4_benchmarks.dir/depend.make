# Empty dependencies file for bench_tab6_4_benchmarks.
# This may be replaced when dependencies are built.
