
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/budget_distribution.cpp" "CMakeFiles/dtpm.dir/src/core/budget_distribution.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/core/budget_distribution.cpp.o.d"
  "/root/repo/src/core/dtpm_governor.cpp" "CMakeFiles/dtpm.dir/src/core/dtpm_governor.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/core/dtpm_governor.cpp.o.d"
  "/root/repo/src/core/power_budget.cpp" "CMakeFiles/dtpm.dir/src/core/power_budget.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/core/power_budget.cpp.o.d"
  "/root/repo/src/core/thermal_predictor.cpp" "CMakeFiles/dtpm.dir/src/core/thermal_predictor.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/core/thermal_predictor.cpp.o.d"
  "/root/repo/src/governors/fan_policy.cpp" "CMakeFiles/dtpm.dir/src/governors/fan_policy.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/governors/fan_policy.cpp.o.d"
  "/root/repo/src/governors/ondemand.cpp" "CMakeFiles/dtpm.dir/src/governors/ondemand.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/governors/ondemand.cpp.o.d"
  "/root/repo/src/governors/policy_registry.cpp" "CMakeFiles/dtpm.dir/src/governors/policy_registry.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/governors/policy_registry.cpp.o.d"
  "/root/repo/src/governors/reactive.cpp" "CMakeFiles/dtpm.dir/src/governors/reactive.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/governors/reactive.cpp.o.d"
  "/root/repo/src/power/dynamic_power.cpp" "CMakeFiles/dtpm.dir/src/power/dynamic_power.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/power/dynamic_power.cpp.o.d"
  "/root/repo/src/power/leakage.cpp" "CMakeFiles/dtpm.dir/src/power/leakage.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/power/leakage.cpp.o.d"
  "/root/repo/src/power/opp.cpp" "CMakeFiles/dtpm.dir/src/power/opp.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/power/opp.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "CMakeFiles/dtpm.dir/src/power/power_model.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/power/power_model.cpp.o.d"
  "/root/repo/src/power/resource.cpp" "CMakeFiles/dtpm.dir/src/power/resource.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/power/resource.cpp.o.d"
  "/root/repo/src/power/sensors.cpp" "CMakeFiles/dtpm.dir/src/power/sensors.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/power/sensors.cpp.o.d"
  "/root/repo/src/sim/batch.cpp" "CMakeFiles/dtpm.dir/src/sim/batch.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/batch.cpp.o.d"
  "/root/repo/src/sim/batch_lane.cpp" "CMakeFiles/dtpm.dir/src/sim/batch_lane.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/batch_lane.cpp.o.d"
  "/root/repo/src/sim/calibration.cpp" "CMakeFiles/dtpm.dir/src/sim/calibration.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/calibration.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "CMakeFiles/dtpm.dir/src/sim/config.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/config.cpp.o.d"
  "/root/repo/src/sim/config_io.cpp" "CMakeFiles/dtpm.dir/src/sim/config_io.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/config_io.cpp.o.d"
  "/root/repo/src/sim/control_stack.cpp" "CMakeFiles/dtpm.dir/src/sim/control_stack.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/control_stack.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "CMakeFiles/dtpm.dir/src/sim/engine.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/engine.cpp.o.d"
  "/root/repo/src/sim/invariant_checker.cpp" "CMakeFiles/dtpm.dir/src/sim/invariant_checker.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/invariant_checker.cpp.o.d"
  "/root/repo/src/sim/plant.cpp" "CMakeFiles/dtpm.dir/src/sim/plant.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/plant.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "CMakeFiles/dtpm.dir/src/sim/platform.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/platform.cpp.o.d"
  "/root/repo/src/sim/platform_registry.cpp" "CMakeFiles/dtpm.dir/src/sim/platform_registry.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/platform_registry.cpp.o.d"
  "/root/repo/src/sim/prediction_observer.cpp" "CMakeFiles/dtpm.dir/src/sim/prediction_observer.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/prediction_observer.cpp.o.d"
  "/root/repo/src/sim/preset.cpp" "CMakeFiles/dtpm.dir/src/sim/preset.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/preset.cpp.o.d"
  "/root/repo/src/sim/run_plan.cpp" "CMakeFiles/dtpm.dir/src/sim/run_plan.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/run_plan.cpp.o.d"
  "/root/repo/src/sim/scenario_catalog.cpp" "CMakeFiles/dtpm.dir/src/sim/scenario_catalog.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/scenario_catalog.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "CMakeFiles/dtpm.dir/src/sim/simulation.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/stepping_engine.cpp" "CMakeFiles/dtpm.dir/src/sim/stepping_engine.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/stepping_engine.cpp.o.d"
  "/root/repo/src/sim/trace_recorder.cpp" "CMakeFiles/dtpm.dir/src/sim/trace_recorder.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sim/trace_recorder.cpp.o.d"
  "/root/repo/src/soc/scheduler.cpp" "CMakeFiles/dtpm.dir/src/soc/scheduler.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/soc/scheduler.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "CMakeFiles/dtpm.dir/src/soc/soc.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/soc/soc.cpp.o.d"
  "/root/repo/src/soc/state.cpp" "CMakeFiles/dtpm.dir/src/soc/state.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/soc/state.cpp.o.d"
  "/root/repo/src/sysid/arx_fit.cpp" "CMakeFiles/dtpm.dir/src/sysid/arx_fit.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sysid/arx_fit.cpp.o.d"
  "/root/repo/src/sysid/leakage_fit.cpp" "CMakeFiles/dtpm.dir/src/sysid/leakage_fit.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sysid/leakage_fit.cpp.o.d"
  "/root/repo/src/sysid/model_store.cpp" "CMakeFiles/dtpm.dir/src/sysid/model_store.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sysid/model_store.cpp.o.d"
  "/root/repo/src/sysid/thermal_model.cpp" "CMakeFiles/dtpm.dir/src/sysid/thermal_model.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/sysid/thermal_model.cpp.o.d"
  "/root/repo/src/thermal/compiled_rc_model.cpp" "CMakeFiles/dtpm.dir/src/thermal/compiled_rc_model.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/thermal/compiled_rc_model.cpp.o.d"
  "/root/repo/src/thermal/fan.cpp" "CMakeFiles/dtpm.dir/src/thermal/fan.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/thermal/fan.cpp.o.d"
  "/root/repo/src/thermal/floorplan.cpp" "CMakeFiles/dtpm.dir/src/thermal/floorplan.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/thermal/floorplan.cpp.o.d"
  "/root/repo/src/thermal/lti_propagator.cpp" "CMakeFiles/dtpm.dir/src/thermal/lti_propagator.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/thermal/lti_propagator.cpp.o.d"
  "/root/repo/src/thermal/rc_network.cpp" "CMakeFiles/dtpm.dir/src/thermal/rc_network.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/thermal/rc_network.cpp.o.d"
  "/root/repo/src/thermal/sensor.cpp" "CMakeFiles/dtpm.dir/src/thermal/sensor.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/thermal/sensor.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/dtpm.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/dtpm.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/matrix.cpp" "CMakeFiles/dtpm.dir/src/util/matrix.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/util/matrix.cpp.o.d"
  "/root/repo/src/util/metrics.cpp" "CMakeFiles/dtpm.dir/src/util/metrics.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/util/metrics.cpp.o.d"
  "/root/repo/src/util/names.cpp" "CMakeFiles/dtpm.dir/src/util/names.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/util/names.cpp.o.d"
  "/root/repo/src/util/prbs.cpp" "CMakeFiles/dtpm.dir/src/util/prbs.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/util/prbs.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/dtpm.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/workload/background.cpp" "CMakeFiles/dtpm.dir/src/workload/background.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/workload/background.cpp.o.d"
  "/root/repo/src/workload/benchmark.cpp" "CMakeFiles/dtpm.dir/src/workload/benchmark.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/workload/benchmark.cpp.o.d"
  "/root/repo/src/workload/runtime.cpp" "CMakeFiles/dtpm.dir/src/workload/runtime.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/workload/runtime.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "CMakeFiles/dtpm.dir/src/workload/scenario.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/workload/scenario.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "CMakeFiles/dtpm.dir/src/workload/suite.cpp.o" "gcc" "CMakeFiles/dtpm.dir/src/workload/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
