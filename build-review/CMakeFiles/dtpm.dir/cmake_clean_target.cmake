file(REMOVE_RECURSE
  "libdtpm.a"
)
