# Empty dependencies file for dtpm.
# This may be replaced when dependencies are built.
