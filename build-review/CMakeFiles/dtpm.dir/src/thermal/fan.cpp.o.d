CMakeFiles/dtpm.dir/src/thermal/fan.cpp.o: /root/repo/src/thermal/fan.cpp \
 /usr/include/stdc-predef.h /root/repo/src/thermal/fan.hpp
