file(REMOVE_RECURSE
  "CMakeFiles/dtpm_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/dtpm_bench_common.dir/bench/bench_common.cpp.o.d"
  "libdtpm_bench_common.a"
  "libdtpm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtpm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
