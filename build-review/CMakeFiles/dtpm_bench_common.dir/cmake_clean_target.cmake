file(REMOVE_RECURSE
  "libdtpm_bench_common.a"
)
