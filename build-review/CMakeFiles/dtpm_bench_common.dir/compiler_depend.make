# Empty compiler generated dependencies file for dtpm_bench_common.
# This may be replaced when dependencies are built.
