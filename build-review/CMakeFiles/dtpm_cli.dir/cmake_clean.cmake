file(REMOVE_RECURSE
  "CMakeFiles/dtpm_cli.dir/apps/dtpm_main.cpp.o"
  "CMakeFiles/dtpm_cli.dir/apps/dtpm_main.cpp.o.d"
  "dtpm"
  "dtpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtpm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
