# Empty dependencies file for dtpm_cli.
# This may be replaced when dependencies are built.
