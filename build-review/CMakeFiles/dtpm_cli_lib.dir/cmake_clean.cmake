file(REMOVE_RECURSE
  "CMakeFiles/dtpm_cli_lib.dir/apps/dtpm_cli.cpp.o"
  "CMakeFiles/dtpm_cli_lib.dir/apps/dtpm_cli.cpp.o.d"
  "libdtpm_cli_lib.a"
  "libdtpm_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtpm_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
