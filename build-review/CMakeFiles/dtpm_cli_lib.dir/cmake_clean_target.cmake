file(REMOVE_RECURSE
  "libdtpm_cli_lib.a"
)
