# Empty compiler generated dependencies file for dtpm_cli_lib.
# This may be replaced when dependencies are built.
