file(REMOVE_RECURSE
  "CMakeFiles/example_battery_life.dir/examples/battery_life.cpp.o"
  "CMakeFiles/example_battery_life.dir/examples/battery_life.cpp.o.d"
  "example_battery_life"
  "example_battery_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_battery_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
