# Empty dependencies file for example_battery_life.
# This may be replaced when dependencies are built.
