file(REMOVE_RECURSE
  "CMakeFiles/example_custom_policy.dir/examples/custom_policy.cpp.o"
  "CMakeFiles/example_custom_policy.dir/examples/custom_policy.cpp.o.d"
  "example_custom_policy"
  "example_custom_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
