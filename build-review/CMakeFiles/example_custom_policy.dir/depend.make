# Empty dependencies file for example_custom_policy.
# This may be replaced when dependencies are built.
