file(REMOVE_RECURSE
  "CMakeFiles/example_custom_scenario.dir/examples/custom_scenario.cpp.o"
  "CMakeFiles/example_custom_scenario.dir/examples/custom_scenario.cpp.o.d"
  "example_custom_scenario"
  "example_custom_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
