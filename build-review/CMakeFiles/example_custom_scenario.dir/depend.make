# Empty dependencies file for example_custom_scenario.
# This may be replaced when dependencies are built.
