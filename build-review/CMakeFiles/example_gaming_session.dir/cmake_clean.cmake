file(REMOVE_RECURSE
  "CMakeFiles/example_gaming_session.dir/examples/gaming_session.cpp.o"
  "CMakeFiles/example_gaming_session.dir/examples/gaming_session.cpp.o.d"
  "example_gaming_session"
  "example_gaming_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gaming_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
