# Empty dependencies file for example_gaming_session.
# This may be replaced when dependencies are built.
