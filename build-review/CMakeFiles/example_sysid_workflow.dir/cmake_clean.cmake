file(REMOVE_RECURSE
  "CMakeFiles/example_sysid_workflow.dir/examples/sysid_workflow.cpp.o"
  "CMakeFiles/example_sysid_workflow.dir/examples/sysid_workflow.cpp.o.d"
  "example_sysid_workflow"
  "example_sysid_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sysid_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
