# Empty dependencies file for example_sysid_workflow.
# This may be replaced when dependencies are built.
