file(REMOVE_RECURSE
  "CMakeFiles/test_arx_fit.dir/tests/test_arx_fit.cpp.o"
  "CMakeFiles/test_arx_fit.dir/tests/test_arx_fit.cpp.o.d"
  "test_arx_fit"
  "test_arx_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arx_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
