# Empty compiler generated dependencies file for test_arx_fit.
# This may be replaced when dependencies are built.
