file(REMOVE_RECURSE
  "CMakeFiles/test_background.dir/tests/test_background.cpp.o"
  "CMakeFiles/test_background.dir/tests/test_background.cpp.o.d"
  "test_background"
  "test_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
