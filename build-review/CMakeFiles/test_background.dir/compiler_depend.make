# Empty compiler generated dependencies file for test_background.
# This may be replaced when dependencies are built.
