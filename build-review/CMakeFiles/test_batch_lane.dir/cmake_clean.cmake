file(REMOVE_RECURSE
  "CMakeFiles/test_batch_lane.dir/tests/test_batch_lane.cpp.o"
  "CMakeFiles/test_batch_lane.dir/tests/test_batch_lane.cpp.o.d"
  "test_batch_lane"
  "test_batch_lane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_lane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
