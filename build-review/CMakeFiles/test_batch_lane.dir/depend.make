# Empty dependencies file for test_batch_lane.
# This may be replaced when dependencies are built.
