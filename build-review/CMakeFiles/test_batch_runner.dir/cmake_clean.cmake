file(REMOVE_RECURSE
  "CMakeFiles/test_batch_runner.dir/tests/test_batch_runner.cpp.o"
  "CMakeFiles/test_batch_runner.dir/tests/test_batch_runner.cpp.o.d"
  "test_batch_runner"
  "test_batch_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
