# Empty compiler generated dependencies file for test_batch_runner.
# This may be replaced when dependencies are built.
