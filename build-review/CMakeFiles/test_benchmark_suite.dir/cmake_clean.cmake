file(REMOVE_RECURSE
  "CMakeFiles/test_benchmark_suite.dir/tests/test_benchmark_suite.cpp.o"
  "CMakeFiles/test_benchmark_suite.dir/tests/test_benchmark_suite.cpp.o.d"
  "test_benchmark_suite"
  "test_benchmark_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmark_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
