# Empty compiler generated dependencies file for test_benchmark_suite.
# This may be replaced when dependencies are built.
