file(REMOVE_RECURSE
  "CMakeFiles/test_budget_distribution.dir/tests/test_budget_distribution.cpp.o"
  "CMakeFiles/test_budget_distribution.dir/tests/test_budget_distribution.cpp.o.d"
  "test_budget_distribution"
  "test_budget_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_budget_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
