# Empty dependencies file for test_budget_distribution.
# This may be replaced when dependencies are built.
