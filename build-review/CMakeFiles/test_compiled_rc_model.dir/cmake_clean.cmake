file(REMOVE_RECURSE
  "CMakeFiles/test_compiled_rc_model.dir/tests/test_compiled_rc_model.cpp.o"
  "CMakeFiles/test_compiled_rc_model.dir/tests/test_compiled_rc_model.cpp.o.d"
  "test_compiled_rc_model"
  "test_compiled_rc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiled_rc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
