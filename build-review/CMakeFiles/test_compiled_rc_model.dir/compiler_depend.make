# Empty compiler generated dependencies file for test_compiled_rc_model.
# This may be replaced when dependencies are built.
