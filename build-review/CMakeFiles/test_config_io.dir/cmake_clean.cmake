file(REMOVE_RECURSE
  "CMakeFiles/test_config_io.dir/tests/test_config_io.cpp.o"
  "CMakeFiles/test_config_io.dir/tests/test_config_io.cpp.o.d"
  "test_config_io"
  "test_config_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
