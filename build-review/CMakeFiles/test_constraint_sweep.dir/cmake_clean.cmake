file(REMOVE_RECURSE
  "CMakeFiles/test_constraint_sweep.dir/tests/test_constraint_sweep.cpp.o"
  "CMakeFiles/test_constraint_sweep.dir/tests/test_constraint_sweep.cpp.o.d"
  "test_constraint_sweep"
  "test_constraint_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constraint_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
