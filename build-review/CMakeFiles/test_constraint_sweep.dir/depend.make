# Empty dependencies file for test_constraint_sweep.
# This may be replaced when dependencies are built.
