file(REMOVE_RECURSE
  "CMakeFiles/test_dtpm_cli.dir/tests/test_dtpm_cli.cpp.o"
  "CMakeFiles/test_dtpm_cli.dir/tests/test_dtpm_cli.cpp.o.d"
  "test_dtpm_cli"
  "test_dtpm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtpm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
