# Empty dependencies file for test_dtpm_cli.
# This may be replaced when dependencies are built.
