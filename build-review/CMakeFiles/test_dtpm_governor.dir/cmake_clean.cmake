file(REMOVE_RECURSE
  "CMakeFiles/test_dtpm_governor.dir/tests/test_dtpm_governor.cpp.o"
  "CMakeFiles/test_dtpm_governor.dir/tests/test_dtpm_governor.cpp.o.d"
  "test_dtpm_governor"
  "test_dtpm_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtpm_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
