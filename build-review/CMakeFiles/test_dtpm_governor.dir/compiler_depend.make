# Empty compiler generated dependencies file for test_dtpm_governor.
# This may be replaced when dependencies are built.
