file(REMOVE_RECURSE
  "CMakeFiles/test_fan_policy.dir/tests/test_fan_policy.cpp.o"
  "CMakeFiles/test_fan_policy.dir/tests/test_fan_policy.cpp.o.d"
  "test_fan_policy"
  "test_fan_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fan_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
