# Empty dependencies file for test_fan_policy.
# This may be replaced when dependencies are built.
