file(REMOVE_RECURSE
  "CMakeFiles/test_fan_sensor.dir/tests/test_fan_sensor.cpp.o"
  "CMakeFiles/test_fan_sensor.dir/tests/test_fan_sensor.cpp.o.d"
  "test_fan_sensor"
  "test_fan_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fan_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
