# Empty compiler generated dependencies file for test_fan_sensor.
# This may be replaced when dependencies are built.
