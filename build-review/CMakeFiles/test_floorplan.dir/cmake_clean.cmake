file(REMOVE_RECURSE
  "CMakeFiles/test_floorplan.dir/tests/test_floorplan.cpp.o"
  "CMakeFiles/test_floorplan.dir/tests/test_floorplan.cpp.o.d"
  "test_floorplan"
  "test_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
