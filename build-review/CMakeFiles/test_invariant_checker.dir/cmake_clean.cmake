file(REMOVE_RECURSE
  "CMakeFiles/test_invariant_checker.dir/tests/test_invariant_checker.cpp.o"
  "CMakeFiles/test_invariant_checker.dir/tests/test_invariant_checker.cpp.o.d"
  "test_invariant_checker"
  "test_invariant_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_invariant_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
