# Empty dependencies file for test_invariant_checker.
# This may be replaced when dependencies are built.
