file(REMOVE_RECURSE
  "CMakeFiles/test_leakage_dynamic.dir/tests/test_leakage_dynamic.cpp.o"
  "CMakeFiles/test_leakage_dynamic.dir/tests/test_leakage_dynamic.cpp.o.d"
  "test_leakage_dynamic"
  "test_leakage_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leakage_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
