# Empty compiler generated dependencies file for test_leakage_dynamic.
# This may be replaced when dependencies are built.
