file(REMOVE_RECURSE
  "CMakeFiles/test_leakage_fit.dir/tests/test_leakage_fit.cpp.o"
  "CMakeFiles/test_leakage_fit.dir/tests/test_leakage_fit.cpp.o.d"
  "test_leakage_fit"
  "test_leakage_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leakage_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
