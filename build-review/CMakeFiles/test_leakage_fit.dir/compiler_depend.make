# Empty compiler generated dependencies file for test_leakage_fit.
# This may be replaced when dependencies are built.
