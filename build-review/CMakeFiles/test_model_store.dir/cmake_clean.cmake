file(REMOVE_RECURSE
  "CMakeFiles/test_model_store.dir/tests/test_model_store.cpp.o"
  "CMakeFiles/test_model_store.dir/tests/test_model_store.cpp.o.d"
  "test_model_store"
  "test_model_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
