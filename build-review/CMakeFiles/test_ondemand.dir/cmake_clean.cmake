file(REMOVE_RECURSE
  "CMakeFiles/test_ondemand.dir/tests/test_ondemand.cpp.o"
  "CMakeFiles/test_ondemand.dir/tests/test_ondemand.cpp.o.d"
  "test_ondemand"
  "test_ondemand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ondemand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
