# Empty dependencies file for test_ondemand.
# This may be replaced when dependencies are built.
