file(REMOVE_RECURSE
  "CMakeFiles/test_opp.dir/tests/test_opp.cpp.o"
  "CMakeFiles/test_opp.dir/tests/test_opp.cpp.o.d"
  "test_opp"
  "test_opp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
