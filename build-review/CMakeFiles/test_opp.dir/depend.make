# Empty dependencies file for test_opp.
# This may be replaced when dependencies are built.
