file(REMOVE_RECURSE
  "CMakeFiles/test_platform_invariant_sweep.dir/tests/test_platform_invariant_sweep.cpp.o"
  "CMakeFiles/test_platform_invariant_sweep.dir/tests/test_platform_invariant_sweep.cpp.o.d"
  "test_platform_invariant_sweep"
  "test_platform_invariant_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_invariant_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
