# Empty compiler generated dependencies file for test_platform_invariant_sweep.
# This may be replaced when dependencies are built.
