file(REMOVE_RECURSE
  "CMakeFiles/test_platform_io.dir/tests/test_platform_io.cpp.o"
  "CMakeFiles/test_platform_io.dir/tests/test_platform_io.cpp.o.d"
  "test_platform_io"
  "test_platform_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
