file(REMOVE_RECURSE
  "CMakeFiles/test_policy_registry.dir/tests/test_policy_registry.cpp.o"
  "CMakeFiles/test_policy_registry.dir/tests/test_policy_registry.cpp.o.d"
  "test_policy_registry"
  "test_policy_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
