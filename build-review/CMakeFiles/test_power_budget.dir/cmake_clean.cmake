file(REMOVE_RECURSE
  "CMakeFiles/test_power_budget.dir/tests/test_power_budget.cpp.o"
  "CMakeFiles/test_power_budget.dir/tests/test_power_budget.cpp.o.d"
  "test_power_budget"
  "test_power_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
