# Empty compiler generated dependencies file for test_power_budget.
# This may be replaced when dependencies are built.
