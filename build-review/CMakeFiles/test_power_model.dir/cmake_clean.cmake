file(REMOVE_RECURSE
  "CMakeFiles/test_power_model.dir/tests/test_power_model.cpp.o"
  "CMakeFiles/test_power_model.dir/tests/test_power_model.cpp.o.d"
  "test_power_model"
  "test_power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
