file(REMOVE_RECURSE
  "CMakeFiles/test_power_sensors.dir/tests/test_power_sensors.cpp.o"
  "CMakeFiles/test_power_sensors.dir/tests/test_power_sensors.cpp.o.d"
  "test_power_sensors"
  "test_power_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
