file(REMOVE_RECURSE
  "CMakeFiles/test_prbs.dir/tests/test_prbs.cpp.o"
  "CMakeFiles/test_prbs.dir/tests/test_prbs.cpp.o.d"
  "test_prbs"
  "test_prbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
