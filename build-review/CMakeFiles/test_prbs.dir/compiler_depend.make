# Empty compiler generated dependencies file for test_prbs.
# This may be replaced when dependencies are built.
