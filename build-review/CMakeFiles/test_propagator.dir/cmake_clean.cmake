file(REMOVE_RECURSE
  "CMakeFiles/test_propagator.dir/tests/test_propagator.cpp.o"
  "CMakeFiles/test_propagator.dir/tests/test_propagator.cpp.o.d"
  "test_propagator"
  "test_propagator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propagator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
