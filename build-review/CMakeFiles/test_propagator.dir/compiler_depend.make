# Empty compiler generated dependencies file for test_propagator.
# This may be replaced when dependencies are built.
