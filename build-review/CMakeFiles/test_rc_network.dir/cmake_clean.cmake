file(REMOVE_RECURSE
  "CMakeFiles/test_rc_network.dir/tests/test_rc_network.cpp.o"
  "CMakeFiles/test_rc_network.dir/tests/test_rc_network.cpp.o.d"
  "test_rc_network"
  "test_rc_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
