file(REMOVE_RECURSE
  "CMakeFiles/test_reactive.dir/tests/test_reactive.cpp.o"
  "CMakeFiles/test_reactive.dir/tests/test_reactive.cpp.o.d"
  "test_reactive"
  "test_reactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
