# Empty dependencies file for test_reactive.
# This may be replaced when dependencies are built.
