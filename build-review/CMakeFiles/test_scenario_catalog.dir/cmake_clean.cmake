file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_catalog.dir/tests/test_scenario_catalog.cpp.o"
  "CMakeFiles/test_scenario_catalog.dir/tests/test_scenario_catalog.cpp.o.d"
  "test_scenario_catalog"
  "test_scenario_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
