file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_generator.dir/tests/test_scenario_generator.cpp.o"
  "CMakeFiles/test_scenario_generator.dir/tests/test_scenario_generator.cpp.o.d"
  "test_scenario_generator"
  "test_scenario_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
