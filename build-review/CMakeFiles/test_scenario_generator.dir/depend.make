# Empty dependencies file for test_scenario_generator.
# This may be replaced when dependencies are built.
