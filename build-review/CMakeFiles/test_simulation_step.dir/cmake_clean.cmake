file(REMOVE_RECURSE
  "CMakeFiles/test_simulation_step.dir/tests/test_simulation_step.cpp.o"
  "CMakeFiles/test_simulation_step.dir/tests/test_simulation_step.cpp.o.d"
  "test_simulation_step"
  "test_simulation_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulation_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
