# Empty dependencies file for test_simulation_step.
# This may be replaced when dependencies are built.
