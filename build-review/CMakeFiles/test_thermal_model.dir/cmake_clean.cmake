file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_model.dir/tests/test_thermal_model.cpp.o"
  "CMakeFiles/test_thermal_model.dir/tests/test_thermal_model.cpp.o.d"
  "test_thermal_model"
  "test_thermal_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
