file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_predictor.dir/tests/test_thermal_predictor.cpp.o"
  "CMakeFiles/test_thermal_predictor.dir/tests/test_thermal_predictor.cpp.o.d"
  "test_thermal_predictor"
  "test_thermal_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
