# Empty compiler generated dependencies file for test_thermal_predictor.
# This may be replaced when dependencies are built.
