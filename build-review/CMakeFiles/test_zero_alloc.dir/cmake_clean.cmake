file(REMOVE_RECURSE
  "CMakeFiles/test_zero_alloc.dir/tests/test_zero_alloc.cpp.o"
  "CMakeFiles/test_zero_alloc.dir/tests/test_zero_alloc.cpp.o.d"
  "test_zero_alloc"
  "test_zero_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
