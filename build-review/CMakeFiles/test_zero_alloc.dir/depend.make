# Empty dependencies file for test_zero_alloc.
# This may be replaced when dependencies are built.
