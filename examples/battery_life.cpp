// Example: the battery-lifetime framing of §6.3.3 -- "14 % savings
// corresponds to 0.7 W, which would increase the lifetime of a typical
// smartphone battery by around 25 % from 2h to 2h30m under continuous use".
// Runs a mixed day-in-the-life workload set under the default-with-fan and
// DTPM configurations and converts average platform power into hours on a
// battery.
#include <cstdio>
#include <vector>

#include "sim/calibration.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace dtpm;
  const sysid::IdentifiedPlatformModel& model = sim::default_calibration().model;

  // A usage mix: gaming, video, browsing-like light load, heavy compute.
  const std::vector<std::pair<const char*, double>> mix = {
      {"templerun", 0.25},  // gaming
      {"youtube", 0.35},    // video
      {"dijkstra", 0.25},   // light interactive
      {"matmul", 0.15},     // heavy burst
  };

  std::printf("== Battery life under continuous mixed use ==\n\n");
  std::printf("%-12s %8s %14s %14s %9s\n", "workload", "share",
              "P default [W]", "P dtpm [W]", "save [%]");

  double p_def_mix = 0.0, p_dtpm_mix = 0.0;
  for (const auto& [name, share] : mix) {
    sim::ExperimentConfig config;
    config.benchmark = name;
    config.record_trace = false;
    config.policy_name = "default+fan";
    const sim::RunResult def = sim::run_experiment(config, &model);
    config.policy_name = "dtpm";
    const sim::RunResult dtpm = sim::run_experiment(config, &model);
    std::printf("%-12s %8.0f%% %14.2f %14.2f %9.1f\n", name, share * 100.0,
                def.avg_platform_power_w, dtpm.avg_platform_power_w,
                100.0 * (def.avg_platform_power_w - dtpm.avg_platform_power_w) /
                    def.avg_platform_power_w);
    p_def_mix += share * def.avg_platform_power_w;
    p_dtpm_mix += share * dtpm.avg_platform_power_w;
  }

  std::printf("\nmix average: default %.2f W, dtpm %.2f W (%.1f %% saved)\n",
              p_def_mix, p_dtpm_mix,
              100.0 * (p_def_mix - p_dtpm_mix) / p_def_mix);

  for (double battery_wh : {9.0, 11.0, 15.0}) {
    const double h_def = battery_wh / p_def_mix;
    const double h_dtpm = battery_wh / p_dtpm_mix;
    std::printf("  %4.0f Wh battery: %.2f h -> %.2f h (+%.0f min, +%.0f %%)\n",
                battery_wh, h_def, h_dtpm, (h_dtpm - h_def) * 60.0,
                100.0 * (h_dtpm - h_def) / h_def);
  }
  std::printf(
      "\npaper's framing: 14 %% platform savings on heavy workloads stretch\n"
      "a 2 h continuous-use battery to about 2 h 30 min.\n");
  return 0;
}
