// Example: extending the framework with a user-defined thermal policy.
//
// The governors::ThermalPolicy interface is the extension point the paper's
// framework diagram (Fig. 3.1) leaves open: anything that transforms the
// default governor's proposal can be dropped into the simulation engine.
// Here we implement a naive "hard trip" policy (cut straight to the minimum
// frequency above a trip temperature, recover below it) and compare it
// against the shipped DTPM governor on the same benchmark.
#include <cstdio>

#include "governors/governor.hpp"
#include "power/opp.hpp"
#include "sim/calibration.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dtpm;

/// Bang-bang trip policy: everything or nothing.
class HardTripPolicy final : public governors::ThermalPolicy {
 public:
  explicit HardTripPolicy(double trip_c = 63.0)
      : trip_c_(trip_c), big_opps_(power::big_cluster_opp_table()) {}

  governors::Decision adjust(const soc::PlatformView& view,
                             const governors::Decision& proposal) override {
    if (view.max_big_temp_c() > trip_c_) {
      tripped_ = true;
    } else if (view.max_big_temp_c() < trip_c_ - 4.0) {
      tripped_ = false;
    }
    governors::Decision out = proposal;
    out.fan = thermal::FanSpeed::kOff;
    if (tripped_) out.soc.big_freq_hz = big_opps_.min().frequency_hz;
    return out;
  }

  std::string_view name() const override { return "hard-trip"; }

 private:
  double trip_c_;
  power::OppTable big_opps_;
  bool tripped_ = false;
};

}  // namespace

int main() {
  const sysid::IdentifiedPlatformModel& model = sim::default_calibration().model;
  const char* benchmark = "fft";

  std::printf("== Custom policy comparison on '%s' ==\n\n", benchmark);

  // Baseline: the shipped DTPM governor via the engine.
  sim::ExperimentConfig config;
  config.benchmark = benchmark;
  config.policy = sim::Policy::kProposedDtpm;
  const sim::RunResult dtpm = sim::run_experiment(config, &model);

  // The custom policy runs through the same engine by reusing the reactive
  // slot? No -- the engine owns policy construction, so for a custom policy
  // we demonstrate the interface directly against recorded views: replay the
  // DTPM run's sensor trace through HardTripPolicy and count how often it
  // would have tripped to f_min.
  HardTripPolicy custom;
  governors::Decision proposal;
  proposal.soc.big_freq_hz = 1.6e9;
  long trip_intervals = 0;
  const auto times = dtpm.trace->column("time_s");
  const auto temps = dtpm.trace->column("t_max_c");
  for (std::size_t k = 0; k < times.size(); ++k) {
    soc::PlatformView view;
    view.time_s = times[k];
    view.big_temps_c = {temps[k], temps[k], temps[k], temps[k]};
    const governors::Decision d = custom.adjust(view, proposal);
    if (d.soc.big_freq_hz < 1.6e9) ++trip_intervals;
  }

  std::printf("DTPM:      exec %.1f s, max temp %.1f C, %ld gentle frequency "
              "caps\n",
              dtpm.execution_time_s, dtpm.max_temp_stats.max(),
              dtpm.dtpm.frequency_cap_events);
  std::printf("hard-trip: would have spent %ld of %zu intervals (%.0f %%) "
              "slammed to f_min --\n"
              "           the performance cliff the predictive budget "
              "avoids.\n",
              trip_intervals, times.size(),
              100.0 * double(trip_intervals) / double(times.size()));
  std::printf(
      "\nTo run a custom policy closed-loop, implement\n"
      "governors::ThermalPolicy and wire it where sim/engine.cpp builds the\n"
      "policy stack (see make_policy()).\n");
  return 0;
}
