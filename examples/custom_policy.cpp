// Example: extending the framework with a user-defined thermal policy.
//
// The governors::ThermalPolicy interface is the extension point the paper's
// framework diagram (Fig. 3.1) leaves open: anything that transforms the
// default governor's proposal can be dropped into the simulation. Here we
// implement a naive "hard trip" policy (cut straight to the minimum
// frequency above a trip temperature, recover below it), run it CLOSED-LOOP
// through sim::Simulation's policy-override constructor, and compare it
// against the shipped DTPM governor on the same benchmark.
#include <cstdio>
#include <memory>

#include "governors/governor.hpp"
#include "power/opp.hpp"
#include "sim/calibration.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dtpm;

/// Bang-bang trip policy: everything or nothing.
class HardTripPolicy final : public governors::ThermalPolicy {
 public:
  explicit HardTripPolicy(double trip_c = 63.0)
      : trip_c_(trip_c), big_opps_(power::big_cluster_opp_table()) {}

  governors::Decision adjust(const soc::PlatformView& view,
                             const governors::Decision& proposal) override {
    if (view.max_big_temp_c() > trip_c_) {
      tripped_ = true;
    } else if (view.max_big_temp_c() < trip_c_ - 4.0) {
      tripped_ = false;
    }
    governors::Decision out = proposal;
    out.fan = thermal::FanSpeed::kOff;
    if (tripped_) out.soc.big_freq_hz = big_opps_.min().frequency_hz;
    return out;
  }

  std::string_view name() const override { return "hard-trip"; }

  bool tripped() const { return tripped_; }

 private:
  double trip_c_;
  power::OppTable big_opps_;
  bool tripped_ = false;
};

}  // namespace

int main() {
  const sysid::IdentifiedPlatformModel& model = sim::default_calibration().model;
  const char* benchmark = "fft";

  std::printf("== Custom policy comparison on '%s' ==\n\n", benchmark);

  // Baseline: the shipped DTPM governor via the one-shot wrapper.
  sim::ExperimentConfig config;
  config.benchmark = benchmark;
  config.policy = sim::Policy::kProposedDtpm;
  config.record_trace = false;
  const sim::RunResult dtpm = sim::run_experiment(config, &model);

  // The custom policy runs closed-loop through the same engine: pass any
  // governors::ThermalPolicy to Simulation and it replaces the built-in
  // selection. Stepping manually (instead of run_experiment) also shows the
  // incremental API -- view() exposes the live platform state between
  // control intervals; here it counts the benchmark-window intervals the
  // policy spent tripped.
  auto policy = std::make_unique<HardTripPolicy>();
  const HardTripPolicy* trip = policy.get();
  sim::Simulation simulation(config, &model, std::move(policy));
  long trip_intervals = 0;
  std::size_t total_intervals = 0;
  while (simulation.step()) {
    if (simulation.view().warmed_up) {
      ++total_intervals;
      if (trip->tripped()) ++trip_intervals;
    }
  }
  const sim::RunResult custom = simulation.finish();

  std::printf("DTPM:      exec %.1f s, max temp %.1f C, avg %.2f W, %ld "
              "gentle frequency caps\n",
              dtpm.execution_time_s, dtpm.max_temp_stats.max(),
              dtpm.avg_platform_power_w, dtpm.dtpm.frequency_cap_events);
  std::printf("hard-trip: exec %.1f s, max temp %.1f C, avg %.2f W -- spent "
              "%ld of %zu\n"
              "           intervals (%.0f %%) slammed to f_min, the "
              "performance cliff the\n"
              "           predictive budget avoids.\n",
              custom.execution_time_s, custom.max_temp_stats.max(),
              custom.avg_platform_power_w, trip_intervals, total_intervals,
              100.0 * double(trip_intervals) / double(total_intervals));
  std::printf(
      "\nTo run your own policy closed-loop, implement\n"
      "governors::ThermalPolicy and hand it to sim::Simulation's\n"
      "policy-override constructor argument.\n");
  return 0;
}
