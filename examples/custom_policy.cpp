// Example: extending the framework with a user-defined thermal policy.
//
// The governors::PolicyRegistry is the extension point the paper's framework
// diagram (Fig. 3.1) leaves open: register any ThermalPolicy factory under a
// name at startup and it becomes selectable exactly like the built-ins --
// from ExperimentConfig::policy_name, from a JSON config file through
// `dtpm run`, and from sweep grids. Here we implement a naive "hard trip"
// policy (cut straight to the minimum frequency above a trip temperature,
// recover below it), register it as "hard-trip", run it CLOSED-LOOP by name,
// and compare it against the shipped DTPM governor on the same benchmark.
#include <atomic>
#include <cstdio>
#include <memory>

#include "governors/policy_registry.hpp"
#include "power/opp.hpp"
#include "sim/calibration.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dtpm;

// The registry owns construction and the Simulation owns the instance, so
// the example observes its policy through a counter instead of a pointer.
std::atomic<long> g_trip_intervals{0};

/// Bang-bang trip policy: everything or nothing.
class HardTripPolicy final : public governors::ThermalPolicy {
 public:
  explicit HardTripPolicy(double trip_c)
      : trip_c_(trip_c), big_opps_(power::big_cluster_opp_table()) {}

  governors::Decision adjust(const soc::PlatformView& view,
                             const governors::Decision& proposal) override {
    if (view.max_big_temp_c() > trip_c_) {
      tripped_ = true;
    } else if (view.max_big_temp_c() < trip_c_ - 4.0) {
      tripped_ = false;
    }
    governors::Decision out = proposal;
    out.fan = thermal::FanSpeed::kOff;
    if (tripped_) {
      out.soc.big_freq_hz = big_opps_.min().frequency_hz;
      ++g_trip_intervals;
    }
    return out;
  }

  std::string_view name() const override { return "hard-trip"; }

 private:
  double trip_c_;
  power::OppTable big_opps_;
  bool tripped_ = false;
};

/// Startup self-registration: after this, "hard-trip" is a first-class
/// policy name -- `{"policy": "hard-trip", "policy_params": {"trip_c": 63}}`
/// in a config file runs it through `dtpm run` with zero library changes.
/// The declared ParamSchema is what lets `dtpm lint` check a config's
/// policy_params against this policy without constructing it.
const governors::PolicyRegistration kHardTrip{
    "hard-trip",
    [](const governors::PolicyContext& context) {
      return std::make_unique<HardTripPolicy>(context.param("trip_c", 63.0));
    },
    "bang-bang frequency trip (example policy)",
    governors::ParamSchema{
        true,
        {{"trip_c", 30.0, 150.0, "trip temperature in deg C (default 63)"}}}};

}  // namespace

int main() {
  const sysid::IdentifiedPlatformModel& model = sim::default_calibration().model;
  const char* benchmark = "fft";

  std::printf("== Custom policy comparison on '%s' ==\n\n", benchmark);

  // Baseline: the shipped DTPM governor, selected by registry name.
  sim::ExperimentConfig config;
  config.benchmark = benchmark;
  config.policy_name = "dtpm";
  config.record_trace = false;
  const sim::RunResult dtpm = sim::run_experiment(config, &model);

  // The custom policy runs closed-loop through the same engine, selected by
  // the name registered above; policy_params feeds its factory. Stepping
  // manually (instead of run_experiment) also shows the incremental API --
  // view() exposes the live platform state between control intervals.
  config.policy_name = "hard-trip";
  config.policy_params = {{"trip_c", 63.0}};
  sim::Simulation simulation(config, &model);
  std::size_t total_intervals = 0;
  while (simulation.step()) {
    if (simulation.view().warmed_up) {
      ++total_intervals;
    } else {
      g_trip_intervals = 0;  // only count trips in the benchmark window
    }
  }
  const sim::RunResult custom = simulation.finish();
  const long trip_intervals = g_trip_intervals.load();

  std::printf("DTPM:      exec %.1f s, max temp %.1f C, avg %.2f W, %ld "
              "gentle frequency caps\n",
              dtpm.execution_time_s, dtpm.max_temp_stats.max(),
              dtpm.avg_platform_power_w, dtpm.dtpm.frequency_cap_events);
  std::printf("hard-trip: exec %.1f s, max temp %.1f C, avg %.2f W -- spent "
              "%ld of %zu\n"
              "           intervals (%.0f %%) slammed to f_min, the "
              "performance cliff the\n"
              "           predictive budget avoids.\n",
              custom.execution_time_s, custom.max_temp_stats.max(),
              custom.avg_platform_power_w, trip_intervals, total_intervals,
              100.0 * double(trip_intervals) / double(total_intervals));
  std::printf(
      "\nTo ship your own policy: implement governors::ThermalPolicy,\n"
      "register it with a governors::PolicyRegistration at namespace scope,\n"
      "and select it by name -- config.policy_name in C++, or\n"
      "\"policy\": \"<name>\" in a JSON config run through `dtpm run`.\n");
  return 0;
}
