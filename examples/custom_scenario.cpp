// User-defined scenarios: how to describe your own workload as a Benchmark
// phase graph, register it as a seeded ScenarioCatalog family next to the
// built-in generator families, sweep it through the BatchRunner, and check
// the physics invariants on every resulting trace.
//
// The example models a "pull-to-refresh doomscroll": short render spikes on
// CPU+GPU, long mostly-idle reading pauses, and an occasional background
// sync burst whose length depends on the seed.
#include <cstdio>
#include <memory>
#include <vector>

#include "sim/batch.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/scenario_catalog.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

using namespace dtpm;

// A scenario factory is any callable mapping a seed to a valid Benchmark.
workload::Benchmark make_doomscroll(std::uint64_t seed) {
  util::Rng rng(seed);
  workload::Benchmark b;
  b.name = "doomscroll-s" + std::to_string(seed);
  b.category = workload::Category::kConsumer;
  b.power_class = workload::PowerClass::kLow;
  b.total_work_units = 30.0;
  b.cpu_cycles_per_unit = 1.6e9;

  const int swipes = int(rng.uniform_int(6, 10));
  for (int i = 0; i < swipes; ++i) {
    workload::Phase render;  // flick-and-render spike
    render.work_fraction = 1.0;
    render.cpu_activity = rng.uniform(0.6, 0.8);
    render.mem_intensity = 0.3;
    render.gpu_load = rng.uniform(0.3, 0.5);
    render.threads = 2;
    render.duty = 1.0;
    b.phases.push_back(render);

    workload::Phase reading;  // long low-duty pause
    reading.work_fraction = 0.05;
    reading.cpu_activity = 0.2;
    reading.mem_intensity = 0.1;
    reading.threads = 1;
    reading.duty = 0.05;
    b.phases.push_back(reading);
  }
  workload::Phase sync;  // one background sync burst, seed-dependent length
  sync.work_fraction = rng.uniform(0.5, 2.0);
  sync.cpu_activity = 0.5;
  sync.mem_intensity = 0.6;
  sync.threads = 2;
  sync.duty = 1.0;
  b.phases.push_back(sync);

  // The fractions above are sketched in relative units; let the library
  // rescale them to sum to exactly 1.
  workload::normalize_work_fractions(b.phases);
  b.validate();
  return b;
}

int main() {
  // Register the custom family alongside the built-in generator families.
  sim::ScenarioCatalog catalog = sim::ScenarioCatalog::standard();
  catalog.register_family("doomscroll", make_doomscroll);

  // Sweep only the custom family over a few seeds; a one-off Benchmark can
  // also be attached directly via ExperimentConfig::scenario.
  sim::ScenarioCatalog::Sweep sweep;
  sweep.families = {"doomscroll"};
  sweep.seeds = {1, 2, 3, 4};
  sweep.base.policy_name = "default+fan";
  sweep.base.max_sim_time_s = 300.0;
  const std::vector<sim::ExperimentConfig> configs = catalog.expand(sweep);

  const std::vector<sim::RunResult> results =
      sim::BatchRunner().run(configs);

  const sim::InvariantChecker checker;
  std::printf("%-16s %8s %8s %9s %10s\n", "scenario", "exec[s]", "P[W]",
              "Tmax[C]", "invariants");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto violations = checker.check(configs[i], results[i]);
    std::printf("%-16s %8.1f %8.2f %9.1f %10s\n",
                configs[i].benchmark.c_str(), results[i].execution_time_s,
                results[i].avg_platform_power_w,
                results[i].max_temp_stats.max(),
                violations.empty() ? "ok" : "VIOLATED");
    if (!violations.empty()) {
      std::printf("%s", sim::InvariantChecker::describe(violations).c_str());
    }
  }
  return 0;
}
