// Example: a mobile gaming session (Templerun with the paper's background
// matrix-multiplication load), the workload class where the fan-based
// default burns the most power. Shows the DTPM escalation ladder in action:
// CPU frequency capping first, GPU throttling as the last resort, with the
// frame-rate (GPU-gated progress) impact quantified.
#include <cstdio>

#include "sim/calibration.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace dtpm;
  const sysid::IdentifiedPlatformModel& model = sim::default_calibration().model;

  std::printf("== Gaming session: templerun + background matmul ==\n\n");

  sim::ExperimentConfig config;
  config.benchmark = "templerun";

  config.policy_name = "default+fan";
  const sim::RunResult def = sim::run_experiment(config, &model);

  config.policy_name = "dtpm";
  const sim::RunResult dtpm = sim::run_experiment(config, &model);

  std::printf("%-22s %14s %14s\n", "", "default+fan", "proposed DTPM");
  std::printf("%-22s %14.1f %14.1f\n", "session time [s]",
              def.execution_time_s, dtpm.execution_time_s);
  std::printf("%-22s %14.2f %14.2f\n", "platform power [W]",
              def.avg_platform_power_w, dtpm.avg_platform_power_w);
  std::printf("%-22s %14.1f %14.1f\n", "max core temp [C]",
              def.max_temp_stats.max(), dtpm.max_temp_stats.max());
  std::printf("%-22s %14.2f %14.2f\n", "temp variance [C^2]",
              def.max_temp_stats.variance(), dtpm.max_temp_stats.variance());

  const double savings = 100.0 *
                         (def.avg_platform_power_w - dtpm.avg_platform_power_w) /
                         def.avg_platform_power_w;
  const double fps_impact = 100.0 *
                            (dtpm.execution_time_s - def.execution_time_s) /
                            def.execution_time_s;
  std::printf("\nDTPM without any fan: %.1f %% platform power saved, %.1f %% "
              "frame-time impact.\n",
              savings, fps_impact);
  std::printf("Actuation breakdown: %ld frequency caps, %ld core hotplugs, "
              "%ld cluster migrations, %ld GPU throttles.\n",
              dtpm.dtpm.frequency_cap_events, dtpm.dtpm.hotplug_events,
              dtpm.dtpm.cluster_migration_events,
              dtpm.dtpm.gpu_throttle_events);

  // Estimate the battery impact like §6.3.3 does: a typical ~11 Wh phone
  // battery under continuous gaming.
  const double battery_wh = 11.0;
  const double hours_def = battery_wh / def.avg_platform_power_w;
  const double hours_dtpm = battery_wh / dtpm.avg_platform_power_w;
  std::printf("\nAt an %.0f Wh battery: %.2f h -> %.2f h of continuous play "
              "(+%.0f min).\n",
              battery_wh, hours_def, hours_dtpm,
              60.0 * (hours_dtpm - hours_def));
  return 0;
}
