// Quickstart: calibrate the platform models once, then run one benchmark
// under all four experimental configurations of §6.2 and compare thermal
// behaviour, platform power, and execution time.
#include <cstdio>

#include <string>

#include "sim/calibration.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace dtpm;

  // Identify the power/thermal models (furnace + PRBS + least squares).
  // default_calibration() caches the workflow; see examples/sysid_workflow
  // for the step-by-step version.
  const sysid::IdentifiedPlatformModel& model = sim::default_calibration().model;

  const char* benchmark = "basicmath";
  std::printf("benchmark: %s\n\n", benchmark);
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "policy", "time[s]",
              "avgT[C]", "maxT[C]", "varT[C^2]", "Pplat[W]");

  // Policies are selected by registry name (sim::paper_policy_names() here;
  // `dtpm list policies` shows everything registered, including your own).
  for (const std::string& policy : sim::paper_policy_names()) {
    sim::ExperimentConfig config;
    config.benchmark = benchmark;
    config.policy_name = policy;
    config.record_trace = false;
    const sim::RunResult r = sim::run_experiment(config, &model);
    std::printf("%-14s %10.1f %10.2f %10.2f %10.2f %10.2f%s\n",
                policy.c_str(), r.execution_time_s,
                r.max_temp_stats.mean(), r.max_temp_stats.max(),
                r.max_temp_stats.variance(), r.avg_platform_power_w,
                r.completed ? "" : "  (did not complete)");
  }

  std::printf(
      "\nThe proposed DTPM regulates the hotspot temperature without a fan\n"
      "while staying close to the default configuration's execution time.\n");
  return 0;
}
