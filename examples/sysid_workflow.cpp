// Example: the complete Chapter-4 modeling workflow, from furnace runs to a
// saved platform model.
//
//   1. Furnace leakage characterization per power rail (Figs. 4.1-4.3).
//   2. PRBS excitation of each rail and least-squares identification of the
//      4x4 thermal state-space model (Fig. 4.8, Eq. 4.4).
//   3. Validation: observe-only temperature prediction on the Blowfish
//      benchmark at a 1 s horizon (Fig. 4.9).
//   4. The identified model is written to dtpm_model.txt -- the "public
//      power and thermal models" artifact the paper promises.
#include <cstdio>
#include <string>

#include "sim/calibration.hpp"
#include "sim/engine.hpp"
#include "sysid/model_store.hpp"

int main() {
  using namespace dtpm;

  std::printf("== DTPM system identification workflow ==\n\n");
  std::printf("[1/4] furnace sweeps + leakage fits (40..80 C)\n");
  const sim::CalibrationArtifacts& art = sim::default_calibration();
  for (power::Resource r : power::all_resources()) {
    const auto& fit = art.leakage_fits[power::resource_index(r)];
    std::printf(
        "  %-6s c1=%.4e A/K^2  c2=%8.1f K  I_gate=%.4f A  Vref=%.3f V  "
        "rms=%.4f W (%zu samples)\n",
        std::string(power::to_string(r)).c_str(), fit.params.c1,
        fit.params.c2_k, fit.params.i_gate_a, fit.params.v_ref,
        fit.rms_residual_w,
        art.furnace_samples[power::resource_index(r)].size());
  }

  std::printf("\n[2/4] PRBS excitation + ARX identification\n");
  std::printf("  segments: %zu, samples: %zu, one-step RMS: %.4f C\n",
              art.excitation_segments.size(), art.arx.sample_count,
              art.arx.rms_residual_c);
  std::printf("  spectral radius of A: %.5f (stable: %s)\n",
              art.model.thermal.stability_radius(),
              art.model.thermal.stability_radius() < 1.0 ? "yes" : "NO");
  std::printf("  A = \n");
  for (std::size_t i = 0; i < art.model.thermal.a.rows(); ++i) {
    std::printf("    ");
    for (std::size_t j = 0; j < art.model.thermal.a.cols(); ++j) {
      std::printf("%9.5f ", art.model.thermal.a(i, j));
    }
    std::printf("\n");
  }
  std::printf("  B = \n");
  for (std::size_t i = 0; i < art.model.thermal.b.rows(); ++i) {
    std::printf("    ");
    for (std::size_t j = 0; j < art.model.thermal.b.cols(); ++j) {
      std::printf("%9.5f ", art.model.thermal.b(i, j));
    }
    std::printf("\n");
  }
  std::printf("  alphaC seeds: big=%.3e little=%.3e gpu=%.3e F\n",
              art.model.initial_alpha_c[0], art.model.initial_alpha_c[1],
              art.model.initial_alpha_c[2]);

  std::printf("\n[3/4] validation: Blowfish, 1 s prediction horizon\n");
  sim::ExperimentConfig config;
  config.benchmark = "blowfish";
  config.policy_name = "default+fan";
  config.observe_predictions = true;
  config.observe_horizon_steps = 10;
  config.record_trace = false;
  const sim::RunResult result = sim::run_experiment(config, &art.model);
  std::printf("  completed: %s, duration %.1f s\n",
              result.completed ? "yes" : "no", result.execution_time_s);
  std::printf("  prediction error: MAE %.3f C, mean %.2f %%, max %.2f %% "
              "(%zu samples)\n",
              result.prediction_mae_c, result.prediction_mape,
              result.prediction_max_ape, result.prediction_samples);

  std::printf("\n[4/4] saving identified model to dtpm_model.txt\n");
  sysid::save_model_file(art.model, "dtpm_model.txt");
  const sysid::IdentifiedPlatformModel reloaded =
      sysid::load_model_file("dtpm_model.txt");
  std::printf("  round-trip check: A matches = %s\n",
              reloaded.thermal.a.approx_equal(art.model.thermal.a, 1e-12)
                  ? "yes"
                  : "NO");
  return 0;
}
