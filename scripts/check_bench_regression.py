#!/usr/bin/env python3
"""CI gate for simulation throughput: compare a fresh bench_throughput run
against the checked-in BENCH_throughput.json and fail if steps_per_sec
regressed by more than the threshold for any (engine, workers) cell on the
same platform.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json
        [--threshold 0.20] [--relative]

Absolute mode (default) compares raw steps_per_sec cell by cell -- right
when both files come from the same class of machine. --relative first
normalizes each file by its own reference-rk4 / workers=1 cell and compares
the resulting per-engine speedup ratios; host speed cancels out, so this is
the mode CI uses on shared runners whose absolute numbers vary run to run.

Exit status: 0 clean, 1 regression found, 2 usage/schema error.
"""

import argparse
import json
import sys

REFERENCE_ENGINE = "reference-rk4"


def load_results(path):
    """Returns (platform, {(engine, workers): steps_per_sec})."""
    with open(path) as f:
        doc = json.load(f)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise SystemExit(
            f"{path}: no 'results' array -- regenerate the artifact with the "
            "current bench_throughput (the flat pre-engine schema is not "
            "comparable)"
        )
    cells = {}
    for cell in results:
        key = (cell["engine"], int(cell["workers"]))
        if key in cells:
            raise SystemExit(f"{path}: duplicate cell {key}")
        cells[key] = float(cell["steps_per_sec"])
    return doc.get("platform", "?"), cells


def normalize(cells, path):
    """Divides every cell by the reference-rk4 workers=1 cell."""
    anchor = cells.get((REFERENCE_ENGINE, 1))
    if anchor is None or anchor <= 0.0:
        raise SystemExit(
            f"{path}: --relative needs a positive ({REFERENCE_ENGINE}, "
            "workers=1) cell to normalize by"
        )
    return {key: value / anchor for key, value in cells.items()}


def main():
    parser = argparse.ArgumentParser(
        description="Fail on >threshold steps_per_sec regressions between "
        "two BENCH_throughput.json files."
    )
    parser.add_argument("baseline", help="checked-in BENCH_throughput.json")
    parser.add_argument("fresh", help="freshly measured BENCH_throughput.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional drop per cell (default 0.20)",
    )
    parser.add_argument(
        "--relative",
        action="store_true",
        help="compare per-engine speedups over reference-rk4/workers=1 "
        "instead of raw steps/sec (host speed cancels out)",
    )
    args = parser.parse_args()

    base_platform, base = load_results(args.baseline)
    fresh_platform, fresh = load_results(args.fresh)
    if base_platform != fresh_platform:
        raise SystemExit(
            f"platform mismatch: baseline measured '{base_platform}', fresh "
            f"run measured '{fresh_platform}' -- these are not comparable"
        )

    metric = "speedup" if args.relative else "steps/sec"
    if args.relative:
        base = normalize(base, args.baseline)
        fresh = normalize(fresh, args.fresh)

    shared = sorted(set(base) & set(fresh))
    if not shared:
        raise SystemExit("no (engine, workers) cells in common")
    missing = sorted(set(base) - set(fresh))
    if missing:
        print(f"note: {len(missing)} baseline cell(s) not in fresh run: "
              f"{missing}")

    regressions = []
    print(f"{'engine':<14} {'workers':>7} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}   ({metric}, threshold -{args.threshold:.0%})")
    for key in shared:
        engine, workers = key
        ratio = fresh[key] / base[key] if base[key] > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.threshold:
            regressions.append(key)
            flag = "  REGRESSION"
        print(f"{engine:<14} {workers:>7} {base[key]:>12.4g} "
              f"{fresh[key]:>12.4g} {ratio:>7.2f}{flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} cell(s) regressed more than "
              f"{args.threshold:.0%}: {regressions}")
        return 1
    print(f"\nOK: no cell regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
