#!/usr/bin/env python3
"""CI gate for simulation throughput: compare a fresh bench_throughput run
against the checked-in BENCH_throughput.json and fail if steps_per_sec
regressed by more than the threshold for any (engine, workers) cell on the
same platform.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json
        [--threshold 0.20] [--relative] [--scaling-gate] [--phase-gate]

Absolute mode (default) compares raw steps_per_sec cell by cell -- right
when both files come from the same class of machine. --relative first
normalizes each file by its own reference-rk4 / workers=1 cell and compares
the resulting per-engine speedup ratios; host speed cancels out, so this is
the mode CI uses on shared runners whose absolute numbers vary run to run.

--scaling-gate checks the FRESH run alone: no engine's multi-worker cell
may fall more than the threshold below that engine's workers=1 cell (adding
workers must never cost throughput). Cells whose effective worker count was
clamped to the anchor's width (small host) ran the identical configuration
twice, so their ratio is pure scheduler noise -- they are reported and
skipped rather than gated.

--phase-gate compares the per-phase tick fractions (sensor/policy/schedule/
plant) cell by cell and fails when a phase's share of the interval grew by
more than 10 points absolute -- the "where the time goes" breakdown is an
artifact contract, not decoration. Cells lacking phase data on either side
(pre-phase-schema baselines) are skipped with a note.

Exit status: 0 clean, 1 regression found, 2 usage/schema error.
"""

import argparse
import json
import sys

REFERENCE_ENGINE = "reference-rk4"

# One throughput cell is keyed by its (engine, workers) coordinates.
Cell = tuple[str, int]


def load_results(
    path: str,
) -> tuple[
    str,
    dict[Cell, float],
    dict[Cell, dict[str, float] | None],
    dict[Cell, int | None],
]:
    """Returns (platform, {(engine, workers): steps_per_sec},
    {(engine, workers): phase_ticks dict or None},
    {(engine, workers): workers_effective or None})."""
    with open(path) as f:
        doc = json.load(f)
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        raise SystemExit(
            f"{path}: no 'results' array -- regenerate the artifact with the "
            "current bench_throughput (the flat pre-engine schema is not "
            "comparable)"
        )
    cells: dict[Cell, float] = {}
    phases: dict[Cell, dict[str, float] | None] = {}
    effective: dict[Cell, int | None] = {}
    for cell in results:
        key = (str(cell["engine"]), int(cell["workers"]))
        if key in cells:
            raise SystemExit(f"{path}: duplicate cell {key}")
        cells[key] = float(cell["steps_per_sec"])
        ticks = cell.get("phase_ticks")
        phases[key] = (
            {str(name): float(value) for name, value in ticks.items()}
            if isinstance(ticks, dict)
            else None
        )
        width = cell.get("workers_effective")
        effective[key] = int(width) if width is not None else None
    return str(doc.get("platform", "?")), cells, phases, effective


def phase_fractions(
    ticks: dict[str, float] | None,
) -> dict[str, float] | None:
    """Tick dict -> {phase: fraction of total}, or None if unusable."""
    if not ticks:
        return None
    total = sum(float(v) for v in ticks.values())
    if total <= 0.0:
        return None
    return {name: float(v) / total for name, v in ticks.items()}


def check_scaling(
    fresh: dict[Cell, float],
    effective: dict[Cell, int | None],
    threshold: float,
) -> list[Cell]:
    """No engine's multi-worker cell may trail its own workers=1 cell by
    more than the threshold. Cells whose effective width was clamped to the
    anchor's (the pool caps at the host's cpu count) ran the identical
    configuration and are skipped: their ratio measures scheduler noise,
    not scaling. Returns the list of offending cells."""
    offenders: list[Cell] = []
    engines = sorted({engine for engine, _ in fresh})
    print(f"\nscaling gate (fresh run, threshold -{threshold:.0%} vs "
          "workers=1):")
    for engine in engines:
        anchor = fresh.get((engine, 1))
        if anchor is None or anchor <= 0.0:
            print(f"  {engine:<14} no workers=1 cell -- skipped")
            continue
        anchor_width = effective.get((engine, 1))
        for (cell_engine, workers) in sorted(fresh):
            if cell_engine != engine or workers == 1:
                continue
            width = effective.get((cell_engine, workers))
            ratio = fresh[(engine, workers)] / anchor
            if width is not None and width == anchor_width:
                print(f"  {engine:<14} {workers:>3}w / 1w = {ratio:.2f}  "
                      f"(clamped to {width} effective -- noise, skipped)")
                continue
            flag = ""
            if ratio < 1.0 - threshold:
                offenders.append((engine, workers))
                flag = "  SCALING REGRESSION"
            print(f"  {engine:<14} {workers:>3}w / 1w = {ratio:.2f}{flag}")
    return offenders


def check_phases(
    base_phases: dict[Cell, dict[str, float] | None],
    fresh_phases: dict[Cell, dict[str, float] | None],
    shared: list[Cell],
    max_growth: float = 0.10,
) -> list[tuple[Cell, str]]:
    """A phase's fraction of its cell may not grow past base + max_growth
    (absolute points). Returns the list of offending (cell, phase)."""
    offenders: list[tuple[Cell, str]] = []
    skipped = 0
    print(f"\nphase gate (fraction growth limit +{max_growth:.0%} absolute):")
    for key in shared:
        base_frac = phase_fractions(base_phases.get(key))
        fresh_frac = phase_fractions(fresh_phases.get(key))
        if base_frac is None or fresh_frac is None:
            skipped += 1
            continue
        for name in sorted(set(base_frac) | set(fresh_frac)):
            b = base_frac.get(name, 0.0)
            f = fresh_frac.get(name, 0.0)
            if f > b + max_growth:
                offenders.append((key, name))
                print(f"  {key[0]:<14} {key[1]:>3}w {name:<9} "
                      f"{b:.2f} -> {f:.2f}  PHASE REGRESSION")
    if skipped:
        print(f"  note: {skipped} cell(s) lacked phase data on one side -- "
              "skipped")
    if not offenders:
        print("  all phase shares within limits")
    return offenders


def normalize(cells: dict[Cell, float], path: str) -> dict[Cell, float]:
    """Divides every cell by the reference-rk4 workers=1 cell."""
    anchor = cells.get((REFERENCE_ENGINE, 1))
    if anchor is None or anchor <= 0.0:
        raise SystemExit(
            f"{path}: --relative needs a positive ({REFERENCE_ENGINE}, "
            "workers=1) cell to normalize by"
        )
    return {key: value / anchor for key, value in cells.items()}


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Fail on >threshold steps_per_sec regressions between "
        "two BENCH_throughput.json files."
    )
    parser.add_argument("baseline", help="checked-in BENCH_throughput.json")
    parser.add_argument("fresh", help="freshly measured BENCH_throughput.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional drop per cell (default 0.20)",
    )
    parser.add_argument(
        "--relative",
        action="store_true",
        help="compare per-engine speedups over reference-rk4/workers=1 "
        "instead of raw steps/sec (host speed cancels out)",
    )
    parser.add_argument(
        "--scaling-gate",
        action="store_true",
        help="also require every engine's multi-worker cells in the FRESH "
        "run to stay within the threshold of its own workers=1 cell",
    )
    parser.add_argument(
        "--phase-gate",
        action="store_true",
        help="also fail when any phase's share of a cell grew more than 10 "
        "points absolute versus the baseline (cells without phase data are "
        "skipped)",
    )
    args = parser.parse_args()

    base_platform, base, base_phases, _ = load_results(args.baseline)
    fresh_platform, fresh, fresh_phases, fresh_widths = load_results(
        args.fresh)
    if base_platform != fresh_platform:
        raise SystemExit(
            f"platform mismatch: baseline measured '{base_platform}', fresh "
            f"run measured '{fresh_platform}' -- these are not comparable"
        )

    metric = "speedup" if args.relative else "steps/sec"
    if args.relative:
        base = normalize(base, args.baseline)
        fresh = normalize(fresh, args.fresh)

    shared = sorted(set(base) & set(fresh))
    if not shared:
        raise SystemExit("no (engine, workers) cells in common")
    missing = sorted(set(base) - set(fresh))
    if missing:
        print(f"note: {len(missing)} baseline cell(s) not in fresh run: "
              f"{missing}")

    regressions: list[Cell] = []
    print(f"{'engine':<14} {'workers':>7} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}   ({metric}, threshold -{args.threshold:.0%})")
    for key in shared:
        engine, workers = key
        ratio = fresh[key] / base[key] if base[key] > 0 else float("inf")
        flag = ""
        if ratio < 1.0 - args.threshold:
            regressions.append(key)
            flag = "  REGRESSION"
        print(f"{engine:<14} {workers:>7} {base[key]:>12.4g} "
              f"{fresh[key]:>12.4g} {ratio:>7.2f}{flag}")

    scaling_offenders: list[Cell] = []
    if args.scaling_gate:
        # Raw fresh cells, never the normalized view: within one run the
        # host is constant, so normalization would only obscure the ratios.
        _, fresh_raw, _, _ = load_results(args.fresh)
        scaling_offenders = check_scaling(fresh_raw, fresh_widths,
                                          args.threshold)

    phase_offenders: list[tuple[Cell, str]] = []
    if args.phase_gate:
        phase_offenders = check_phases(base_phases, fresh_phases, shared)

    failed = False
    if regressions:
        print(f"\nFAIL: {len(regressions)} cell(s) regressed more than "
              f"{args.threshold:.0%}: {regressions}")
        failed = True
    if scaling_offenders:
        print(f"FAIL: {len(scaling_offenders)} cell(s) lost throughput when "
              f"workers were added: {scaling_offenders}")
        failed = True
    if phase_offenders:
        print(f"FAIL: {len(phase_offenders)} phase share(s) grew more than "
              f"10 points: {phase_offenders}")
        failed = True
    if failed:
        return 1
    print(f"\nOK: no cell regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
