#!/usr/bin/env python3
"""Reference client for the `dtpm serve` NDJSON protocol.

Submits experiment configs (--run) and fleet specs (--fleet) to a server,
streams every reply to stdout, waits for the jobs' terminal results, then
shuts the server down gracefully. Two transports:

    dtpm_client.py --server "build/dtpm serve --smoke" --fleet spec.json
        spawns the server as a child process and talks over its pipes
        (the mode CI's serve-smoke job uses -- the client owns the
        server's lifecycle, so nothing leaks on failure);

    dtpm_client.py --socket /tmp/dtpm.sock --run config.json
        connects to an already-running `dtpm serve --socket` instance.

Config files may use the repo's `//` line-comment extension; comments are
stripped (string-aware) before the JSON is embedded into the request.

--telemetry FILE writes the server's final telemetry counters (from the
"bye" reply) as JSON -- the artifact CI archives per PR.

Exit status: 0 when every submitted job reached state "done" with a
non-empty payload, 1 on any error reply / failed job / empty aggregate,
2 on usage errors. Stdlib only; typed; `mypy --strict` clean.
"""

from __future__ import annotations

import argparse
import json
import shlex
import socket
import subprocess
import sys
from collections.abc import Iterator


def strip_json_comments(text: str) -> str:
    """Removes `//` line comments, leaving string contents untouched."""
    out: list[str] = []
    in_string = False
    escaped = False
    i = 0
    while i < len(text):
        c = text[i]
        if in_string:
            out.append(c)
            if escaped:
                escaped = False
            elif c == "\\":
                escaped = True
            elif c == '"':
                in_string = False
            i += 1
            continue
        if c == '"':
            in_string = True
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < len(text) and text[i + 1] == "/":
            while i < len(text) and text[i] != "\n":
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def load_json_file(path: str) -> dict[str, object]:
    with open(path, encoding="utf-8") as f:
        data = json.loads(strip_json_comments(f.read()))
    if not isinstance(data, dict):
        raise SystemExit(f"dtpm_client: {path}: expected a JSON object")
    return data


def parse_reply(line: str) -> dict[str, object]:
    data = json.loads(line)
    if not isinstance(data, dict):
        raise SystemExit(f"dtpm_client: malformed reply line: {line!r}")
    return data


class StdioServer:
    """Spawns `dtpm serve` and talks NDJSON over its stdin/stdout."""

    def __init__(self, command: list[str]) -> None:
        self._proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )

    def send(self, request: dict[str, object]) -> None:
        stdin = self._proc.stdin
        if stdin is None:  # pragma: no cover - Popen(PIPE) guarantees it
            raise SystemExit("dtpm_client: server stdin unavailable")
        stdin.write(json.dumps(request) + "\n")
        stdin.flush()

    def lines(self) -> Iterator[str]:
        stdout = self._proc.stdout
        if stdout is None:  # pragma: no cover
            raise SystemExit("dtpm_client: server stdout unavailable")
        yield from stdout

    def close(self) -> int:
        if self._proc.stdin is not None:
            self._proc.stdin.close()
        return self._proc.wait()


class SocketClient:
    """Connects to a running `dtpm serve --socket PATH` instance."""

    def __init__(self, path: str) -> None:
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(path)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def send(self, request: dict[str, object]) -> None:
        self._sock.sendall((json.dumps(request) + "\n").encode("utf-8"))

    def lines(self) -> Iterator[str]:
        yield from self._reader

    def close(self) -> int:
        self._reader.close()
        self._sock.close()
        return 0


def build_requests(
    run_files: list[str], fleet_files: list[str], smoke: bool
) -> tuple[list[dict[str, object]], list[str]]:
    """One submit request per file; returns (requests, job ids)."""
    requests: list[dict[str, object]] = []
    job_ids: list[str] = []
    for i, path in enumerate(run_files):
        job_id = f"run-{i}"
        requests.append(
            {"op": "submit", "job": job_id, "smoke": smoke,
             "run": load_json_file(path)}
        )
        job_ids.append(job_id)
    for i, path in enumerate(fleet_files):
        job_id = f"fleet-{i}"
        requests.append(
            {"op": "submit", "job": job_id, "smoke": smoke,
             "fleet": load_json_file(path)}
        )
        job_ids.append(job_id)
    return requests, job_ids


def check_results(
    job_ids: list[str],
    results: dict[str, dict[str, object]],
    error_count: int,
) -> list[str]:
    """Returns human-readable failure descriptions; empty means success."""
    failures: list[str] = []
    if error_count:
        failures.append(f"{error_count} error repl(y/ies) from the server")
    for job_id in job_ids:
        result = results.get(job_id)
        if result is None:
            failures.append(f"job {job_id}: no result reply")
            continue
        state = result.get("state")
        if state != "done":
            failures.append(f"job {job_id}: terminal state {state!r}")
            continue
        if job_id.startswith("fleet-"):
            aggregate = result.get("aggregate")
            if not isinstance(aggregate, dict):
                failures.append(f"job {job_id}: result has no aggregate")
                continue
            devices = aggregate.get("devices")
            failed = aggregate.get("failed")
            if not isinstance(devices, int) or devices <= 0:
                failures.append(f"job {job_id}: empty aggregate")
            elif isinstance(failed, int) and failed > 0:
                failures.append(f"job {job_id}: {failed} device runs failed")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="dtpm_client.py",
        description="Drive a dtpm serve instance over NDJSON.",
    )
    transport_group = parser.add_mutually_exclusive_group()
    transport_group.add_argument(
        "--server",
        default="build/dtpm serve",
        help="command to spawn the server (shlex-split; default %(default)r)",
    )
    transport_group.add_argument(
        "--socket", help="connect to a running server on this Unix socket"
    )
    parser.add_argument(
        "--run", action="append", default=[], metavar="CONFIG",
        help="submit this experiment config (repeatable)",
    )
    parser.add_argument(
        "--fleet", action="append", default=[], metavar="SPEC",
        help="submit this fleet spec (repeatable)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="ask the server to apply smoke caps to each submitted job",
    )
    parser.add_argument(
        "--telemetry", metavar="FILE",
        help="write the server's closing telemetry counters as JSON",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-reply echo; print only the summary",
    )
    args = parser.parse_args(argv)

    requests, job_ids = build_requests(args.run, args.fleet, args.smoke)
    if not job_ids:
        parser.error("nothing to submit: pass --run and/or --fleet")

    transport: StdioServer | SocketClient
    if args.socket:
        transport = SocketClient(args.socket)
    else:
        transport = StdioServer(shlex.split(args.server))

    for request in requests:
        transport.send(request)
    transport.send({"op": "shutdown"})

    results: dict[str, dict[str, object]] = {}
    telemetry: dict[str, object] | None = None
    error_count = 0
    for line in transport.lines():
        line = line.strip()
        if not line:
            continue
        reply = parse_reply(line)
        if not args.quiet:
            print(line)
        kind = reply.get("reply")
        if kind == "error":
            error_count += 1
        elif kind == "result":
            results[str(reply.get("job"))] = reply
        elif kind == "bye":
            counters = reply.get("telemetry")
            if isinstance(counters, dict):
                telemetry = counters
    exit_code = transport.close()
    if exit_code != 0:
        print(f"dtpm_client: server exited with {exit_code}", file=sys.stderr)
        return 1

    if args.telemetry:
        if telemetry is None:
            print("dtpm_client: no closing telemetry received",
                  file=sys.stderr)
            return 1
        with open(args.telemetry, "w", encoding="utf-8") as f:
            json.dump(telemetry, f, indent=2, sort_keys=True)
            f.write("\n")

    failures = check_results(job_ids, results, error_count)
    for failure in failures:
        print(f"dtpm_client: {failure}", file=sys.stderr)
    if not failures:
        print(f"dtpm_client: {len(job_ids)} job(s) done")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
