#include "analysis/analyzer.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/stability.hpp"
#include "soc/soc.hpp"
#include "thermal/floorplan.hpp"

namespace dtpm::analysis {

namespace {

/// The platform's distinct cooling states as (label, conductance), sorted
/// ascending by conductance. A fanless floorplan collapses to one "passive"
/// state; a fan whose speeds share a conductance is deduplicated (first
/// label wins).
std::vector<std::pair<std::string, double>> cooling_states(
    const sim::PlatformDescriptor& platform) {
  if (!platform.has_fan()) {
    return {{"passive", platform.fan.conductance_off}};
  }
  const std::array<std::pair<const char*, double>, 4> speeds = {{
      {"off", platform.fan.conductance_off},
      {"low", platform.fan.conductance_low},
      {"half", platform.fan.conductance_half},
      {"full", platform.fan.conductance_full},
  }};
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [label, conductance] : speeds) {
    const bool seen =
        std::any_of(out.begin(), out.end(), [&](const auto& entry) {
          return entry.second == conductance;
        });
    if (!seen) out.emplace_back(label, conductance);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second < b.second;
  });
  return out;
}

bool point_is_safe(const OperatingPointAnalysis& point, double t_max_c) {
  return point.converged && point.stable && point.max_core_temp_c <= t_max_c;
}

EnvelopePoint derive_envelope(const CoolingStateAnalysis& best_cooling,
                              double ambient_c, double t_max_c) {
  EnvelopePoint envelope;
  envelope.ambient_c = ambient_c;
  const std::vector<OperatingPointAnalysis>& points = best_cooling.points;
  for (std::size_t i = points.size(); i-- > 0;) {
    if (point_is_safe(points[i], t_max_c)) {
      envelope.max_safe_opp_index = int(i);
      envelope.max_safe_frequency_hz = points[i].frequency_hz;
      break;
    }
  }
  if (envelope.max_safe_opp_index < 0) {
    envelope.limit = "none";
  } else if (std::size_t(envelope.max_safe_opp_index) + 1 == points.size()) {
    envelope.limit = "opp-table-max";
  } else {
    const OperatingPointAnalysis& blocked =
        points[std::size_t(envelope.max_safe_opp_index) + 1];
    envelope.limit =
        (!blocked.converged || !blocked.stable) ? "unstable" : "t-max";
  }
  return envelope;
}

}  // namespace

workload::Demand analysis_demand(const AnalysisWorkload& workload) {
  workload::Demand demand;
  for (int i = 0; i < workload.threads; ++i) {
    workload::ThreadDemand thread;
    thread.duty = workload.duty;
    thread.cpu_activity = workload.cpu_activity;
    thread.mem_intensity = workload.mem_intensity;
    thread.counts_progress = false;
    demand.threads.push_back(thread);
  }
  demand.gpu_load = workload.gpu_load;
  return demand;
}

OperatingPointAnalysis analyze_operating_point(
    const sim::PlatformDescriptor& platform,
    const OperatingPointRequest& request, const EquilibriumOptions& options,
    std::vector<double>* equilibrium_temps_c) {
  thermal::Floorplan floorplan = thermal::build_floorplan(platform.floorplan);
  soc::Soc soc(platform.power, platform.perf, platform.big_opp_table(),
               platform.little_opp_table(), platform.gpu_opp_table());
  thermal::RcNetwork& rc = floorplan.network;

  if (floorplan.has_fan_edge()) {
    rc.set_edge_conductance(floorplan.fan_edge,
                            request.cooling_conductance_w_per_k);
  }
  rc.set_boundary_temperature_c(floorplan.ambient_node_index,
                                request.ambient_c);
  // Start every free node a little above ambient: any start inside the
  // basin converges to the same fixed point, and a warm one converges fast.
  for (std::size_t i = 0; i < rc.node_count(); ++i) {
    if (!rc.node(i).is_boundary) {
      rc.set_temperature_c(i, request.ambient_c + 10.0);
    }
  }

  const power::Opp& opp = soc.big_opps().at(request.big_opp_index);
  soc::SocConfig config;
  config.active_cluster = soc::ClusterId::kBig;
  config.big_freq_hz = opp.frequency_hz;
  config.little_freq_hz = soc.little_opps().min().frequency_hz;
  config.gpu_freq_hz = soc.gpu_opps().min().frequency_hz;
  soc.apply(config);

  // One schedule-populating probe step (placement, contention, activity are
  // temperature-independent), then capture the closed-form power model.
  {
    const auto& temps = rc.temperatures_c();
    std::array<double, soc::kBigCoreCount> big{};
    for (int c = 0; c < soc::kBigCoreCount; ++c) {
      big[std::size_t(c)] = temps[floorplan.core_node_index[std::size_t(c)]];
    }
    soc.step(request.demand, {}, big, temps[floorplan.little_node_index],
             temps[floorplan.gpu_node_index], temps[floorplan.mem_node_index],
             1e-4);
  }
  const CoupledPowerModel model(floorplan, soc.interval_constants());

  const EquilibriumResult equilibrium = solve_coupled_equilibrium(
      rc,
      [&model](const std::vector<double>& temps_c,
               std::vector<double>& node_power_w) {
        model.node_power(temps_c, node_power_w);
      },
      options);

  OperatingPointAnalysis out;
  out.opp_index = request.big_opp_index;
  out.frequency_hz = opp.frequency_hz;
  out.voltage_v = opp.voltage_v;
  out.converged = equilibrium.converged;
  out.diverged = equilibrium.diverged;
  out.iterations = equilibrium.iterations;
  out.residual_c = equilibrium.residual_c;

  const std::vector<double>& temps = rc.temperatures_c();
  for (std::size_t i = 0; i < rc.node_count(); ++i) {
    if (!rc.node(i).is_boundary) {
      out.max_temp_c = std::max(out.max_temp_c, temps[i]);
    }
  }
  for (std::size_t node : floorplan.sensor_node_index) {
    out.max_core_temp_c = std::max(out.max_core_temp_c, temps[node]);
  }
  if (equilibrium.converged) {
    const StabilityReport stability = analyze_stability(floorplan, model);
    out.loop_gain = stability.loop_gain;
    out.stability_margin = stability.stability_margin;
    out.spectral_abscissa_per_s = stability.spectral_abscissa_per_s;
    out.stable = stability.stable;
    std::vector<double> node_power;
    model.node_power(temps, node_power);
    for (double p : node_power) out.total_power_w += p;
  }
  if (equilibrium_temps_c != nullptr) *equilibrium_temps_c = temps;
  return out;
}

PlatformAnalysis analyze_platform(const sim::PlatformDescriptor& platform,
                                  const AnalysisOptions& options) {
  platform.validate();
  if (options.ambients_c.empty()) {
    throw std::invalid_argument("analyze_platform: empty ambient sweep");
  }

  PlatformAnalysis analysis;
  analysis.platform = platform.name;
  analysis.t_max_c = platform.default_t_max_c;
  analysis.runaway_abort_temp_c = platform.resolved_runaway_abort_temp_c();
  analysis.workload = options.workload;

  const std::vector<std::pair<std::string, double>> states =
      cooling_states(platform);
  const workload::Demand demand = analysis_demand(options.workload);
  const std::size_t opp_count = platform.big_opp_table().size();

  for (double ambient : options.ambients_c) {
    AmbientAnalysis per_ambient;
    per_ambient.ambient_c = ambient;
    for (const auto& [label, conductance] : states) {
      CoolingStateAnalysis cooling;
      cooling.label = label;
      cooling.conductance_w_per_k = conductance;
      for (std::size_t i = 0; i < opp_count; ++i) {
        OperatingPointRequest request;
        request.big_opp_index = i;
        request.cooling_conductance_w_per_k = conductance;
        request.ambient_c = ambient;
        request.demand = demand;
        cooling.points.push_back(
            analyze_operating_point(platform, request, options.equilibrium));
      }
      per_ambient.cooling.push_back(std::move(cooling));
    }
    // Best cooling = highest conductance = last entry (sorted ascending).
    analysis.envelope.push_back(derive_envelope(
        per_ambient.cooling.back(), ambient, platform.default_t_max_c));
    analysis.ambients.push_back(std::move(per_ambient));
  }
  return analysis;
}

util::JsonValue to_json(const PlatformAnalysis& analysis) {
  using util::JsonArray;
  using util::JsonObject;
  using util::JsonValue;

  JsonValue json((JsonObject()));
  json.set("platform", analysis.platform);
  json.set("t_max_c", analysis.t_max_c);
  json.set("runaway_abort_temp_c", analysis.runaway_abort_temp_c);
  {
    JsonValue workload((JsonObject()));
    workload.set("threads", analysis.workload.threads);
    workload.set("duty", analysis.workload.duty);
    workload.set("cpu_activity", analysis.workload.cpu_activity);
    workload.set("mem_intensity", analysis.workload.mem_intensity);
    workload.set("gpu_load", analysis.workload.gpu_load);
    json.set("workload", std::move(workload));
  }
  {
    JsonArray envelope;
    for (const EnvelopePoint& point : analysis.envelope) {
      JsonValue entry((JsonObject()));
      entry.set("ambient_c", point.ambient_c);
      entry.set("max_safe_opp_index", point.max_safe_opp_index);
      entry.set("max_safe_frequency_mhz", point.max_safe_frequency_hz / 1e6);
      entry.set("limit", point.limit);
      envelope.push_back(std::move(entry));
    }
    json.set("envelope", JsonValue(std::move(envelope)));
  }
  {
    JsonArray ambients;
    for (const AmbientAnalysis& per_ambient : analysis.ambients) {
      JsonValue ambient_json((JsonObject()));
      ambient_json.set("ambient_c", per_ambient.ambient_c);
      JsonArray cooling_array;
      for (const CoolingStateAnalysis& cooling : per_ambient.cooling) {
        JsonValue cooling_json((JsonObject()));
        cooling_json.set("state", cooling.label);
        cooling_json.set("conductance_w_per_k", cooling.conductance_w_per_k);
        JsonArray opps;
        for (const OperatingPointAnalysis& point : cooling.points) {
          JsonValue point_json((JsonObject()));
          point_json.set("opp_index", point.opp_index);
          point_json.set("frequency_mhz", point.frequency_hz / 1e6);
          point_json.set("voltage_v", point.voltage_v);
          point_json.set("converged", point.converged);
          point_json.set("diverged", point.diverged);
          point_json.set("stable", point.stable);
          point_json.set("iterations", point.iterations);
          point_json.set("loop_gain", point.loop_gain);
          point_json.set("stability_margin", point.stability_margin);
          point_json.set("spectral_abscissa_per_s",
                         point.spectral_abscissa_per_s);
          point_json.set("max_core_temp_c", point.max_core_temp_c);
          point_json.set("max_temp_c", point.max_temp_c);
          point_json.set("total_power_w", point.total_power_w);
          opps.push_back(std::move(point_json));
        }
        cooling_json.set("opps", JsonValue(std::move(opps)));
        cooling_array.push_back(std::move(cooling_json));
      }
      ambient_json.set("cooling", JsonValue(std::move(cooling_array)));
      ambients.push_back(std::move(ambient_json));
    }
    json.set("ambients", JsonValue(std::move(ambients)));
  }
  return json;
}

void validate_platform_stability(const sim::PlatformDescriptor& platform) {
  // The same operating point calibration's furnace equilibrates at: lowest
  // OPP, best cooling, native ambient, light characterization load. A
  // platform that diverges or is runaway-unstable here cannot be calibrated
  // or simulated meaningfully at any operating point above it.
  AnalysisWorkload light;
  light.threads = 1;
  light.cpu_activity = 0.25;
  light.mem_intensity = 0.05;

  OperatingPointRequest request;
  request.big_opp_index = 0;
  request.cooling_conductance_w_per_k = std::max(
      {platform.fan.conductance_off, platform.fan.conductance_low,
       platform.fan.conductance_half, platform.fan.conductance_full});
  request.ambient_c = platform.floorplan.ambient_temp_c();
  request.demand = analysis_demand(light);

  const OperatingPointAnalysis point =
      analyze_operating_point(platform, request);
  if (!point.converged || !point.stable) {
    std::ostringstream message;
    message << "platform '" << platform.name
            << "': thermally unstable at the registration check (min OPP, "
               "best cooling, ambient "
            << request.ambient_c << " C): ";
    if (point.diverged) {
      message << "equilibrium iteration diverged (leakage-temperature "
                 "runaway) after "
              << point.iterations << " iterations";
    } else if (!point.converged) {
      message << "equilibrium did not converge (residual " << point.residual_c
              << " C after " << point.iterations << " iterations)";
    } else {
      message << "equilibrium at " << point.max_core_temp_c
              << " C is runaway-unstable (loop gain " << point.loop_gain
              << " >= 1)";
    }
    throw std::invalid_argument(message.str());
  }
}

}  // namespace dtpm::analysis
