// Platform-level stability & safety analysis: the `dtpm analyze` engine
// (ROADMAP item 4). For a PlatformDescriptor it sweeps (OPP x cooling state
// x ambient), solves the coupled leakage-temperature equilibrium at each
// operating point (analysis/equilibrium.hpp), classifies its stability by
// linearization (analysis/stability.hpp), and derives the safe operating
// envelope: the highest OPP per ambient that is simultaneously
// runaway-stable and inside the platform's thermal constraint under its
// best cooling. Results serialize to JSON via util/json.
//
// PlatformRegistry::add also routes through validate_platform_stability so
// a descriptor that cannot even idle stably is rejected at registration
// time instead of producing runaway simulations later.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/equilibrium.hpp"
#include "sim/platform.hpp"
#include "util/json.hpp"
#include "workload/runtime.hpp"

namespace dtpm::analysis {

/// The sustained load the analysis assumes on the big cluster.
struct AnalysisWorkload {
  int threads = 4;
  double duty = 1.0;
  double cpu_activity = 1.0;
  double mem_intensity = 0.2;
  double gpu_load = 0.0;
};

/// Demand vector equivalent of an AnalysisWorkload (non-progress-counting,
/// the shape calibration's characterization loads use).
workload::Demand analysis_demand(const AnalysisWorkload& workload);

struct AnalysisOptions {
  AnalysisWorkload workload;
  /// Ambient temperatures (Celsius) of the envelope sweep.
  std::vector<double> ambients_c = {15.0, 25.0, 35.0, 45.0};
  EquilibriumOptions equilibrium;
};

/// One (platform, OPP, cooling, ambient, demand) operating point to solve.
struct OperatingPointRequest {
  std::size_t big_opp_index = 0;
  /// Conductance applied to the fan-modulated edge; ignored on fanless
  /// floorplans (their fixed cooling path is part of the topology).
  double cooling_conductance_w_per_k = 0.0;
  double ambient_c = 25.0;
  workload::Demand demand;
};

/// Equilibrium + stability verdict of one operating point. The stability
/// fields (loop_gain, stability_margin, spectral_abscissa_per_s) are only
/// meaningful when `converged`; a diverged point has no equilibrium to
/// linearize at and is reported unstable outright.
struct OperatingPointAnalysis {
  std::size_t opp_index = 0;
  double frequency_hz = 0.0;
  double voltage_v = 0.0;
  bool converged = false;
  bool diverged = false;
  bool stable = false;
  int iterations = 0;
  double residual_c = 0.0;
  double loop_gain = 0.0;
  double stability_margin = 0.0;
  double spectral_abscissa_per_s = 0.0;
  /// Hottest core/sensor-site node at the equilibrium (what the platform's
  /// t_max constrains) and the hottest free node overall.
  double max_core_temp_c = 0.0;
  double max_temp_c = 0.0;
  double total_power_w = 0.0;
};

/// Solves one operating point. When `equilibrium_temps_c` is non-null it
/// receives the full node-temperature vector at exit (the equilibrium when
/// converged).
OperatingPointAnalysis analyze_operating_point(
    const sim::PlatformDescriptor& platform,
    const OperatingPointRequest& request,
    const EquilibriumOptions& options = {},
    std::vector<double>* equilibrium_temps_c = nullptr);

/// All OPPs of one cooling state at one ambient.
struct CoolingStateAnalysis {
  std::string label;  ///< fan speed name, or "passive" on fanless platforms
  double conductance_w_per_k = 0.0;
  std::vector<OperatingPointAnalysis> points;  ///< ascending OPP index
};

struct AmbientAnalysis {
  double ambient_c = 0.0;
  std::vector<CoolingStateAnalysis> cooling;  ///< ascending conductance
};

/// Safe-envelope entry: the highest big-cluster OPP at one ambient that is
/// converged, stable, and within t_max under the platform's best cooling.
struct EnvelopePoint {
  double ambient_c = 0.0;
  int max_safe_opp_index = -1;  ///< -1: no OPP is safe at this ambient
  double max_safe_frequency_hz = 0.0;
  /// What caps the envelope: "opp-table-max" (every OPP is safe), "t-max"
  /// (next OPP exceeds the constraint), "unstable" (next OPP runs away), or
  /// "none" (even the lowest OPP is unsafe).
  std::string limit = "none";
};

struct PlatformAnalysis {
  std::string platform;
  double t_max_c = 0.0;
  double runaway_abort_temp_c = 0.0;
  AnalysisWorkload workload;
  std::vector<AmbientAnalysis> ambients;
  std::vector<EnvelopePoint> envelope;  ///< one entry per ambient
};

PlatformAnalysis analyze_platform(const sim::PlatformDescriptor& platform,
                                  const AnalysisOptions& options = {});

/// JSON document of a full platform analysis (the `dtpm analyze` artifact).
util::JsonValue to_json(const PlatformAnalysis& analysis);

/// Registration gate used by PlatformRegistry::add: the platform must have
/// a converged, runaway-stable equilibrium at its lowest OPP under best
/// cooling and native ambient with a light characterization load -- the
/// same operating point calibration equilibrates at, so a descriptor that
/// passes here can also be calibrated. Throws std::invalid_argument.
void validate_platform_stability(const sim::PlatformDescriptor& platform);

}  // namespace dtpm::analysis
