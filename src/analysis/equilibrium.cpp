#include "analysis/equilibrium.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dtpm::analysis {

EquilibriumResult solve_coupled_equilibrium(thermal::RcNetwork& network,
                                            const NodePowerFn& node_power,
                                            const EquilibriumOptions& options) {
  if (options.max_iterations < 1) {
    throw std::invalid_argument(
        "solve_coupled_equilibrium: max_iterations must be positive");
  }
  if (!(options.tolerance_c > 0.0)) {
    throw std::invalid_argument(
        "solve_coupled_equilibrium: tolerance_c must be positive");
  }

  EquilibriumResult result;
  std::vector<double> power;
  double damping =
      std::clamp(options.initial_damping, options.min_damping, 1.0);
  double previous_residual = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    node_power(network.temperatures_c(), power);
    const std::vector<double> steady = network.steady_state(power);

    // The undamped fixed-point residual, measured before the (possibly
    // damped) update: convergence means the *physics* balances, not that
    // the relaxed step got small.
    double residual = 0.0;
    for (std::size_t i = 0; i < steady.size(); ++i) {
      if (network.node(i).is_boundary) continue;
      residual = std::max(residual,
                          std::abs(steady[i] - network.temperature_c(i)));
    }

    result.iterations = iter + 1;
    result.residual_c = residual;
    if (residual < options.tolerance_c) {
      result.converged = true;
      return result;
    }

    // A growing residual means the undamped map overshoots (oscillatory
    // approach) or has no stable fixed point at all; halving the relaxation
    // rescues the former and cannot mask the latter (the damped map's gain
    // d*rho + 1 - d stays above 1 whenever rho > 1).
    if (residual > previous_residual) {
      damping = std::max(options.min_damping, 0.5 * damping);
    }
    previous_residual = residual;

    bool runaway = false;
    for (std::size_t i = 0; i < steady.size(); ++i) {
      if (network.node(i).is_boundary) continue;
      const double current = network.temperature_c(i);
      const double updated = current + damping * (steady[i] - current);
      network.set_temperature_c(i, updated);
      if (updated > options.divergence_temp_c) runaway = true;
    }
    if (runaway) {
      result.diverged = true;
      return result;
    }
  }
  return result;
}

}  // namespace dtpm::analysis
