// Coupled leakage-temperature equilibrium solver. The RC network's
// steady_state() solves the *linear* system G.T = P at fixed power, but the
// plant's power depends on temperature through leakage, so the physical
// equilibrium is the fixed point
//
//     T* = steady_state(P(T*))
//
// This file owns the damped fixed-point iteration that finds it -- with a
// residual-based convergence test and explicit divergence reporting --
// shared by calibration's furnace equilibration (sim/calibration.cpp) and
// the stability analyzer (analysis/analyzer.hpp).
//
// The iteration map's linearization at T* is G^-1 * dP/dT, a nonnegative
// matrix for physical plants (G^-1 of an M-matrix is nonnegative; leakage
// increases with temperature), so its dominant eigenvalue is real and
// positive and damping cannot stabilize a divergent iteration: divergence of
// this fixed point *is* the thermal-runaway instability the stability
// classifier (analysis/stability.hpp) detects by linearization. See
// PAPERS.md, "Power-Temperature Stability and Safety Analysis for
// Multiprocessor Systems".
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "thermal/rc_network.hpp"

namespace dtpm::analysis {

struct EquilibriumOptions {
  int max_iterations = 200;
  /// Converged when max |steady_state(P(T)) - T| over free nodes drops
  /// below this (Celsius).
  double tolerance_c = 1e-6;
  /// Any free node exceeding this marks the iteration diverged (thermal
  /// runaway: the map has no reachable stable fixed point).
  double divergence_temp_c = 500.0;
  /// Under-relaxation factor of the first step; adapted downward (never
  /// below min_damping) when the residual grows, which smooths oscillatory
  /// approaches without changing the fixed point itself.
  double initial_damping = 1.0;
  double min_damping = 0.0625;
};

struct EquilibriumResult {
  bool converged = false;
  /// Temperatures blew past divergence_temp_c: no stable equilibrium on the
  /// physical branch (leakage-temperature runaway).
  bool diverged = false;
  int iterations = 0;
  /// Final fixed-point residual max |steady_state(P(T)) - T| in Celsius.
  double residual_c = std::numeric_limits<double>::infinity();
};

/// Evaluates the plant's node power vector (W per node, indexed like the
/// network's nodes) at the given node temperatures. Implementations write
/// into `node_power_w` (resizing as needed) so the solver loop stays
/// allocation-free after the first iteration.
using NodePowerFn = std::function<void(const std::vector<double>& temps_c,
                                       std::vector<double>& node_power_w)>;

/// Runs the damped fixed-point iteration on `network` in place: on return
/// the network's non-boundary temperatures hold the last iterate (the
/// equilibrium when result.converged). Boundary temperatures are inputs and
/// are never modified.
EquilibriumResult solve_coupled_equilibrium(thermal::RcNetwork& network,
                                            const NodePowerFn& node_power,
                                            const EquilibriumOptions& options = {});

}  // namespace dtpm::analysis
