#include "analysis/stability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "power/leakage.hpp"
#include "thermal/compiled_rc_model.hpp"

namespace dtpm::analysis {

namespace {

/// Leakage power (W) of collapsed coefficients at one temperature: the same
/// expression the batch lane's vectorized kernel evaluates per row.
double leakage_w(const power::LeakageCoeffs& k, double temp_c) {
  const double tk = power::celsius_to_kelvin(temp_c);
  return k.t2_scale_w * tk * tk * std::exp(k.c2_k / tk) + k.gate_w;
}

/// d(leakage)/dT in W/K: d/dT [s Tk^2 e^(c2/Tk)] = s e^(c2/Tk) (2 Tk - c2).
double leakage_slope_w_per_k(const power::LeakageCoeffs& k, double temp_c) {
  const double tk = power::celsius_to_kelvin(temp_c);
  return k.t2_scale_w * std::exp(k.c2_k / tk) * (2.0 * tk - k.c2_k);
}

/// Position of `node` within free_nodes (ascending), or npos for boundary.
std::size_t free_position(const std::vector<std::size_t>& free_nodes,
                          std::size_t node) {
  const auto it = std::lower_bound(free_nodes.begin(), free_nodes.end(), node);
  if (it == free_nodes.end() || *it != node) {
    return static_cast<std::size_t>(-1);
  }
  return std::size_t(it - free_nodes.begin());
}

}  // namespace

CoupledPowerModel::CoupledPowerModel(const thermal::Floorplan& floorplan,
                                     const soc::SocIntervalConstants& constants)
    : floorplan_(floorplan), constants_(constants) {
  if (floorplan.core_node_index.size() != std::size_t(soc::kBigCoreCount)) {
    throw std::invalid_argument(
        "CoupledPowerModel: floorplan must map one node per big core");
  }
}

void CoupledPowerModel::node_power(const std::vector<double>& temps_c,
                                   std::vector<double>& node_power_w) const {
  node_power_w.assign(temps_c.size(), 0.0);
  const soc::SocIntervalConstants& k = constants_;
  const double leak0 =
      leakage_w(k.big_leak, temps_c[floorplan_.core_node_index[0]]);
  for (int c = 0; c < soc::kBigCoreCount; ++c) {
    const std::size_t node = floorplan_.core_node_index[std::size_t(c)];
    node_power_w[node] = k.core_const_w[c] +
                         k.core_leak_mult[c] * leakage_w(k.big_leak,
                                                         temps_c[node]) +
                         k.core_leak0_mult[c] * leak0;
  }
  node_power_w[floorplan_.little_node_index] +=
      k.little_const_w +
      k.little_leak_mult *
          leakage_w(k.little_leak, temps_c[floorplan_.little_node_index]);
  node_power_w[floorplan_.gpu_node_index] +=
      k.gpu_const_w + leakage_w(k.gpu_leak,
                                temps_c[floorplan_.gpu_node_index]);
  node_power_w[floorplan_.mem_node_index] +=
      k.mem_const_w + leakage_w(k.mem_leak,
                                temps_c[floorplan_.mem_node_index]);
}

util::Matrix CoupledPowerModel::free_power_jacobian(
    const std::vector<double>& temps_c) const {
  const auto& free_nodes = floorplan_.network.compiled().free_nodes();
  const std::size_t n = free_nodes.size();
  util::Matrix j(n, n);
  const soc::SocIntervalConstants& k = constants_;

  const std::size_t core0 = floorplan_.core_node_index[0];
  const std::size_t core0_pos = free_position(free_nodes, core0);
  const double slope0 = leakage_slope_w_per_k(k.big_leak, temps_c[core0]);
  for (int c = 0; c < soc::kBigCoreCount; ++c) {
    const std::size_t node = floorplan_.core_node_index[std::size_t(c)];
    const std::size_t pos = free_position(free_nodes, node);
    j(pos, pos) += k.core_leak_mult[c] *
                   leakage_slope_w_per_k(k.big_leak, temps_c[node]);
    // The offline-cluster leakage rides on core 0's temperature (see the
    // batch lane's leak0 row), so it contributes an off-diagonal column.
    j(pos, core0_pos) += k.core_leak0_mult[c] * slope0;
  }
  const std::size_t little_pos =
      free_position(free_nodes, floorplan_.little_node_index);
  j(little_pos, little_pos) +=
      k.little_leak_mult *
      leakage_slope_w_per_k(k.little_leak,
                            temps_c[floorplan_.little_node_index]);
  const std::size_t gpu_pos =
      free_position(free_nodes, floorplan_.gpu_node_index);
  j(gpu_pos, gpu_pos) +=
      leakage_slope_w_per_k(k.gpu_leak, temps_c[floorplan_.gpu_node_index]);
  const std::size_t mem_pos =
      free_position(free_nodes, floorplan_.mem_node_index);
  j(mem_pos, mem_pos) +=
      leakage_slope_w_per_k(k.mem_leak, temps_c[floorplan_.mem_node_index]);
  return j;
}

StabilityReport analyze_stability(const thermal::Floorplan& floorplan,
                                  const CoupledPowerModel& model) {
  const thermal::CompiledRcModel& compiled = floorplan.network.compiled();
  const auto& free_nodes = compiled.free_nodes();
  const std::size_t n = free_nodes.size();

  // Conductance matrix reduced to the free nodes: boundary couplings only
  // contribute to the diagonal (their fixed temperatures are inputs, not
  // states).
  util::Matrix g(n, n);
  for (std::size_t e = 0; e < compiled.edge_count(); ++e) {
    const double cond = compiled.edge_conductance(e);
    const std::size_t a = compiled.edge_node_a(e);
    const std::size_t b = compiled.edge_node_b(e);
    const std::size_t pa = free_position(free_nodes, a);
    const std::size_t pb = free_position(free_nodes, b);
    const bool a_free = pa != static_cast<std::size_t>(-1);
    const bool b_free = pb != static_cast<std::size_t>(-1);
    if (a_free) g(pa, pa) += cond;
    if (b_free) g(pb, pb) += cond;
    if (a_free && b_free) {
      g(pa, pb) -= cond;
      g(pb, pa) -= cond;
    }
  }

  const util::Matrix j =
      model.free_power_jacobian(floorplan.network.temperatures_c());

  StabilityReport report;
  // Loop gain of the leakage-temperature feedback: rho(G^-1 J). G^-1 is
  // nonnegative (G is an M-matrix) and J is nonnegative, so the dominant
  // eigenvalue is the real Perron root and power iteration converges.
  report.loop_gain = g.solve(j).spectral_radius();
  report.stability_margin = 1.0 - report.loop_gain;

  // Spectral abscissa of A = C^-1 (-G + J). A is Metzler (nonnegative
  // off-diagonals), so shifting by the most negative diagonal makes it a
  // nonnegative matrix whose Perron root is abscissa + shift.
  util::Matrix a(n, n);
  double shift = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double inv_c = 1.0 / compiled.capacitance_j_per_k(free_nodes[r]);
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = inv_c * (-g(r, c) + j(r, c));
    }
    shift = std::max(shift, -a(r, r));
  }
  util::Matrix b = a;
  for (std::size_t r = 0; r < n; ++r) b(r, r) += shift;
  report.spectral_abscissa_per_s = b.spectral_radius() - shift;

  report.stable = report.loop_gain < 1.0;
  return report;
}

}  // namespace dtpm::analysis
