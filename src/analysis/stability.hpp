// Linearized stability analysis of the coupled power-temperature dynamics.
//
// The plant between DVFS decisions is the autonomous system
//
//     C dT/dt = -G.T + P(T) + g_b.T_boundary
//
// where G is the conductance matrix reduced to the free (non-boundary)
// nodes, C the diagonal heat-capacity matrix, and P(T) the closed-form
// per-node power at the applied operating point -- constants plus leakage
// terms captured by soc::SocIntervalConstants (exactly what the batch lane's
// vectorized power kernel evaluates). Linearizing at an equilibrium T*
// folds the leakage Jacobian J = dP/dT into the conductance matrix:
//
//     C dx/dt = (-G + J) x,       x = T - T*
//
// T* is asymptotically stable iff A = C^-1 (-G + J) is Hurwitz, which for
// this system is equivalent to the loop gain rho(G^-1 J) < 1 -- the same
// spectral condition that governs convergence of the equilibrium fixed
// point (analysis/equilibrium.hpp). Both quantities are reported: the loop
// gain gives the dimensionless stability margin 1 - rho, the spectral
// abscissa of A gives the growth/decay rate in 1/s. See PAPERS.md,
// "Power-Temperature Stability and Safety Analysis for Multiprocessor
// Systems" and "Analysis and Control of Power-Temperature Dynamics in
// Heterogeneous Multiprocessors".
#pragma once

#include <vector>

#include "soc/soc.hpp"
#include "thermal/floorplan.hpp"
#include "util/matrix.hpp"

namespace dtpm::analysis {

/// The plant's power as an explicit function of node temperatures at one
/// applied (config, schedule) operating point: the temperature-independent
/// constants plus the leakage curves of SocIntervalConstants, mapped onto
/// floorplan nodes through the role indices. Construct it after one
/// reuse_schedule=false Soc::step so the schedule-dependent constants are
/// captured (Soc::interval_constants' contract).
class CoupledPowerModel {
 public:
  CoupledPowerModel(const thermal::Floorplan& floorplan,
                    const soc::SocIntervalConstants& constants);

  /// Node power vector (W, indexed like the network) at `temps_c`; the
  /// NodePowerFn shape solve_coupled_equilibrium consumes.
  void node_power(const std::vector<double>& temps_c,
                  std::vector<double>& node_power_w) const;

  /// Leakage Jacobian dP/dT restricted to the free nodes, ordered like
  /// CompiledRcModel::free_nodes().
  util::Matrix free_power_jacobian(const std::vector<double>& temps_c) const;

  const soc::SocIntervalConstants& constants() const { return constants_; }

 private:
  const thermal::Floorplan& floorplan_;
  soc::SocIntervalConstants constants_;
};

struct StabilityReport {
  /// rho(G^-1 dP/dT) at the evaluated temperatures. < 1 iff stable.
  double loop_gain = 0.0;
  /// 1 - loop_gain: fraction of additional leakage-temperature feedback the
  /// operating point can absorb before running away.
  double stability_margin = 0.0;
  /// max Re(lambda) of C^-1 (-G + dP/dT), in 1/s: the slowest decay rate
  /// (negative) or the runaway growth rate (positive).
  double spectral_abscissa_per_s = 0.0;
  bool stable = false;
};

/// Linearizes the coupled dynamics at the network's *current* temperatures
/// (call after solve_coupled_equilibrium converged there).
StabilityReport analyze_stability(const thermal::Floorplan& floorplan,
                                  const CoupledPowerModel& model);

}  // namespace dtpm::analysis
