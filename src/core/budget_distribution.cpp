#include "core/budget_distribution.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dtpm::core {
namespace {

void validate(const std::vector<BudgetComponent>& components) {
  if (components.empty()) {
    throw std::invalid_argument("budget distribution: no components");
  }
  for (const auto& c : components) {
    if (c.frequencies_hz.empty()) {
      throw std::invalid_argument("budget distribution: empty OPP list");
    }
    if (!std::is_sorted(c.frequencies_hz.begin(), c.frequencies_hz.end())) {
      throw std::invalid_argument("budget distribution: OPPs must ascend");
    }
    if (c.perf_coefficient <= 0.0 || c.power_coefficient <= 0.0) {
      throw std::invalid_argument("budget distribution: non-positive coeff");
    }
  }
}

double component_power(const BudgetComponent& c, std::size_t level) {
  const double f = c.frequencies_hz[level];
  return c.power_coefficient * f * f * f;
}

double component_cost(const BudgetComponent& c, std::size_t level) {
  return c.perf_coefficient / c.frequencies_hz[level];
}

}  // namespace

double distribution_cost(const std::vector<BudgetComponent>& components,
                         const std::vector<std::size_t>& levels) {
  double j = 0.0;
  for (std::size_t i = 0; i < components.size(); ++i) {
    j += component_cost(components[i], levels[i]);
  }
  return j;
}

double distribution_power(const std::vector<BudgetComponent>& components,
                          const std::vector<std::size_t>& levels) {
  double p = 0.0;
  for (std::size_t i = 0; i < components.size(); ++i) {
    p += component_power(components[i], levels[i]);
  }
  return p;
}

DistributionResult distribute_greedy(
    const std::vector<BudgetComponent>& components, double power_budget_w) {
  validate(components);
  DistributionResult result;
  result.levels.resize(components.size());
  for (std::size_t i = 0; i < components.size(); ++i) {
    result.levels[i] = components[i].frequencies_hz.size() - 1;
  }
  double power = distribution_power(components, result.levels);
  while (power > power_budget_w) {
    // Pick the step-down with the smallest Delta-J (Eq. 7.3).
    std::size_t best = components.size();
    double best_delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < components.size(); ++i) {
      if (result.levels[i] == 0) continue;
      const double delta = component_cost(components[i], result.levels[i] - 1) -
                           component_cost(components[i], result.levels[i]);
      ++result.evaluations;
      if (delta < best_delta) {
        best_delta = delta;
        best = i;
      }
    }
    if (best == components.size()) break;  // everything at minimum
    power -= component_power(components[best], result.levels[best]);
    --result.levels[best];
    power += component_power(components[best], result.levels[best]);
  }
  result.power_w = power;
  result.cost = distribution_cost(components, result.levels);
  result.feasible = power <= power_budget_w;
  return result;
}

DistributionResult distribute_branch_and_bound(
    const std::vector<BudgetComponent>& components, double power_budget_w) {
  validate(components);
  const std::size_t n = components.size();

  // Per-component minimum achievable power and cost over the remaining
  // suffix, for pruning bounds.
  std::vector<double> suffix_min_power(n + 1, 0.0);
  std::vector<double> suffix_min_cost(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    suffix_min_power[i] =
        suffix_min_power[i + 1] + component_power(components[i], 0);
    suffix_min_cost[i] =
        suffix_min_cost[i + 1] +
        component_cost(components[i],
                       components[i].frequencies_hz.size() - 1);
  }

  DistributionResult best;
  best.cost = std::numeric_limits<double>::infinity();
  best.levels.assign(n, 0);

  // Explicit DFS stack: (component index, partial levels, power, cost).
  struct Node {
    std::size_t depth;
    std::vector<std::size_t> levels;
    double power;
    double cost;
  };
  std::vector<Node> stack;
  stack.push_back({0, {}, 0.0, 0.0});
  std::size_t visited = 0;

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    ++visited;
    if (node.depth == n) {
      if (node.power <= power_budget_w && node.cost < best.cost) {
        best.cost = node.cost;
        best.power_w = node.power;
        best.levels = node.levels;
        best.feasible = true;
      }
      continue;
    }
    // Prune: even the cheapest completion busts the budget, or even the
    // fastest completion cannot beat the incumbent.
    if (node.power + suffix_min_power[node.depth] > power_budget_w) continue;
    if (node.cost + suffix_min_cost[node.depth] >= best.cost) continue;
    const auto& comp = components[node.depth];
    for (std::size_t level = 0; level < comp.frequencies_hz.size(); ++level) {
      Node child;
      child.depth = node.depth + 1;
      child.levels = node.levels;
      child.levels.push_back(level);
      child.power = node.power + component_power(comp, level);
      child.cost = node.cost + component_cost(comp, level);
      stack.push_back(std::move(child));
    }
  }
  best.evaluations = visited;
  if (!best.feasible) {
    // Return the all-minimum assignment with feasibility flag cleared.
    best.levels.assign(n, 0);
    best.power_w = distribution_power(components, best.levels);
    best.cost = distribution_cost(components, best.levels);
  }
  return best;
}

}  // namespace dtpm::core
