// Power-budget distribution across heterogeneous components (Chapter 7,
// Fig. 7.1). The future-work formulation minimizes the execution-time cost
//
//     J(f_1..f_n) = sum_i c_i / f_i                       (Eq. 7.1)
//
// subject to the dynamic power constraint
//
//     P(f_1..f_n) = sum_i a_i f_i^3 <= P_budget           (Eq. 7.2)
//
// over each component's discrete OPP list. The paper notes branch-and-bound
// solves this optimally but is impractical in-kernel (recursion/stack), so
// it throttles the component with the least marginal performance impact
// (Eq. 7.3). Both are implemented here: the greedy marginal-cost heuristic
// the paper deploys and an iterative (explicit-stack) branch-and-bound
// reference for measuring the heuristic's optimality gap.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dtpm::core {

/// One throttleable component (big CPU, little CPU, GPU, ...).
struct BudgetComponent {
  std::string name;
  /// Ascending available frequencies (Hz, or any consistent unit).
  std::vector<double> frequencies_hz;
  /// Performance parameter c_i of Eq. 7.1.
  double perf_coefficient = 1.0;
  /// Power parameter a_i of Eq. 7.2 (P_i = a_i * f_i^3).
  double power_coefficient = 1.0;
};

struct DistributionResult {
  /// Chosen OPP level per component (index into frequencies_hz).
  std::vector<std::size_t> levels;
  double cost = 0.0;   ///< J at the chosen assignment
  double power_w = 0.0;
  bool feasible = false;
  /// Search effort: number of candidate evaluations (greedy) or visited
  /// nodes (branch-and-bound).
  std::size_t evaluations = 0;
};

/// Cost and power of an assignment.
double distribution_cost(const std::vector<BudgetComponent>& components,
                         const std::vector<std::size_t>& levels);
double distribution_power(const std::vector<BudgetComponent>& components,
                          const std::vector<std::size_t>& levels);

/// Greedy marginal-cost descent (Eq. 7.3): start at maximum frequencies and
/// repeatedly step down the component whose step costs the least added J,
/// until the budget is met or every component is at minimum.
DistributionResult distribute_greedy(
    const std::vector<BudgetComponent>& components, double power_budget_w);

/// Optimal reference via branch-and-bound with an explicit stack (no
/// recursion -- the paper's stated kernel constraint) and lower-bound
/// pruning.
DistributionResult distribute_branch_and_bound(
    const std::vector<BudgetComponent>& components, double power_budget_w);

}  // namespace dtpm::core
