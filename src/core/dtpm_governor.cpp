#include "core/dtpm_governor.hpp"

#include <algorithm>
#include <cmath>

namespace dtpm::core {
namespace {

double mean_temp(const std::array<double, soc::kBigCoreCount>& temps) {
  double sum = 0.0;
  for (double t : temps) sum += t;
  return sum / double(temps.size());
}

std::vector<double> to_vector(
    const std::array<double, soc::kBigCoreCount>& temps) {
  return std::vector<double>(temps.begin(), temps.end());
}

}  // namespace

DtpmGovernor::DtpmGovernor(const sysid::IdentifiedPlatformModel& model,
                           const DtpmParams& params)
    : DtpmGovernor(model, params, power::big_cluster_opp_table(),
                   power::little_cluster_opp_table(), power::gpu_opp_table()) {
}

DtpmGovernor::DtpmGovernor(const sysid::IdentifiedPlatformModel& model,
                           const DtpmParams& params, power::OppTable big_opps,
                           power::OppTable little_opps,
                           power::OppTable gpu_opps)
    : params_(params),
      predictor_(model.thermal),
      big_opps_(std::move(big_opps)),
      little_opps_(std::move(little_opps)),
      gpu_opps_(std::move(gpu_opps)) {
  for (power::Resource r : power::all_resources()) {
    const std::size_t i = power::resource_index(r);
    power::AlphaCEstimator::Params alpha_params;
    alpha_params.initial_alpha_c = model.initial_alpha_c[i];
    power_model_.model(r) =
        power::ResourcePowerModel(model.leakage[i], alpha_params);
  }
}

void DtpmGovernor::observe(const soc::PlatformView& view) {
  // The big cores are the only instrumented hotspots (§4.2); their mean is
  // the proxy temperature for the other rails' (small) leakage terms.
  const double t_proxy = mean_temp(view.big_temps_c);
  const bool big_active = view.config.active_cluster == soc::ClusterId::kBig;
  const auto& rails = view.rail_power_w;

  if (big_active) {
    const double v = big_opps_.voltage_at(view.config.big_freq_hz);
    power_model_.model(power::Resource::kBigCluster)
        .observe(rails[power::resource_index(power::Resource::kBigCluster)],
                 view.max_big_temp_c(), v, view.config.big_freq_hz);
  } else {
    const double v = little_opps_.voltage_at(view.config.little_freq_hz);
    power_model_.model(power::Resource::kLittleCluster)
        .observe(rails[power::resource_index(power::Resource::kLittleCluster)],
                 t_proxy, v, view.config.little_freq_hz);
  }
  if (view.gpu_util > 0.05) {
    const double v = gpu_opps_.voltage_at(view.config.gpu_freq_hz);
    power_model_.model(power::Resource::kGpu)
        .observe(rails[power::resource_index(power::Resource::kGpu)], t_proxy,
                 v, view.config.gpu_freq_hz);
  }
}

power::ResourceVector DtpmGovernor::predict_rail_powers(
    const soc::PlatformView& view, const soc::SocConfig& config) const {
  power::ResourceVector p = view.rail_power_w;  // sensor baseline (mem, ...)
  const double t_hot = view.max_big_temp_c();
  const double t_proxy = mean_temp(view.big_temps_c);
  constexpr double kParkedClusterResidualW = 0.02;

  if (config.active_cluster == soc::ClusterId::kBig) {
    const double v = big_opps_.voltage_at(config.big_freq_hz);
    p[power::resource_index(power::Resource::kBigCluster)] =
        power_model_.model(power::Resource::kBigCluster)
            .predict_total_w(t_hot, v, config.big_freq_hz);
    if (view.config.active_cluster != soc::ClusterId::kBig) {
      p[power::resource_index(power::Resource::kLittleCluster)] =
          kParkedClusterResidualW;
    }
  } else {
    const double v = little_opps_.voltage_at(config.little_freq_hz);
    p[power::resource_index(power::Resource::kLittleCluster)] =
        power_model_.model(power::Resource::kLittleCluster)
            .predict_total_w(t_proxy, v, config.little_freq_hz);
    p[power::resource_index(power::Resource::kBigCluster)] =
        kParkedClusterResidualW;
  }
  const double gpu_v = gpu_opps_.voltage_at(config.gpu_freq_hz);
  p[power::resource_index(power::Resource::kGpu)] =
      power_model_.model(power::Resource::kGpu)
          .predict_total_w(t_proxy, gpu_v, config.gpu_freq_hz);
  return p;
}

soc::SocConfig DtpmGovernor::restrict(const soc::SocConfig& proposal) const {
  soc::SocConfig config = proposal;
  if (forced_little_) {
    config.active_cluster = soc::ClusterId::kLittle;
  }
  if (config.active_cluster == soc::ClusterId::kBig) {
    int online = 0;
    for (int c = 0; c < soc::kBigCoreCount; ++c) {
      config.big_core_online[c] =
          proposal.big_core_online[c] && !forced_offline_[c];
      online += config.big_core_online[c] ? 1 : 0;
    }
    if (online == 0) config.big_core_online[0] = true;
  }
  if (gpu_cap_level_ >= 0) {
    const double cap = gpu_opps_.at(std::size_t(gpu_cap_level_)).frequency_hz;
    if (config.gpu_freq_hz > cap) config.gpu_freq_hz = cap;
  }
  return config;
}

const power::Opp* DtpmGovernor::frequency_from_budget(
    const power::OppTable& opps, double alpha_c,
    double dynamic_budget_w) const {
  // Eq. 5.7: P_budget = alphaC * V^2 * f_budget, searched over the discrete
  // OPP list (each frequency carries its own voltage).
  const power::Opp* best = nullptr;
  for (const auto& opp : opps.points()) {
    const double p = power::dynamic_power_w(alpha_c, opp.voltage_v,
                                            opp.frequency_hz);
    if (p <= dynamic_budget_w) best = &opp;
  }
  return best;
}

void DtpmGovernor::tighten(const soc::PlatformView& view,
                           soc::SocConfig& config) {
  const double t_target = params_.t_max_c - params_.guard_band_c;
  const auto temps = to_vector(view.big_temps_c);
  const double t_hot = view.max_big_temp_c();
  diagnostics_.intervened = true;

  if (config.active_cluster == soc::ClusterId::kBig) {
    const auto& big_model = power_model_.model(power::Resource::kBigCluster);
    const double v_now = big_opps_.voltage_at(config.big_freq_hz);
    const double leak = big_model.predict_leakage_w(t_hot, v_now);
    const power::ResourceVector rails = predict_rail_powers(view, config);
    const BudgetResult budget = compute_power_budget(
        predictor_, params_.horizon_steps, temps, rails,
        power::Resource::kBigCluster, t_target, leak, params_.row_policy);
    diagnostics_.total_budget_w = budget.total_budget_w;
    diagnostics_.dynamic_budget_w = budget.dynamic_budget_w;

    if (budget.valid) {
      const power::Opp* fit = frequency_from_budget(
          big_opps_, big_model.alpha_c(), budget.dynamic_budget_w);
      if (fit != nullptr) {
        if (fit->frequency_hz < config.big_freq_hz) {
          config.big_freq_hz = fit->frequency_hz;
          ++diagnostics_.frequency_cap_events;
        }
        return;  // budget satisfiable with a frequency cap alone
      }
    }
    // Even f_min exceeds the budget: escalate. First hotplug (Eq. 5.9).
    config.big_freq_hz = big_opps_.min().frequency_hz;
    ++diagnostics_.frequency_cap_events;
    if (config.online_big_cores() > params_.min_big_cores) {
      // Victim selection: the hottest core, which Eq. 5.9 tests for
      // single-core hotspotting; absent a dominant hotspot the hottest
      // online core is still the one whose removal buys the most headroom.
      double t_min_online = 1e9;
      for (int c = 0; c < soc::kBigCoreCount; ++c) {
        if (config.big_core_online[c]) {
          t_min_online = std::min(t_min_online, view.big_temps_c[c]);
        }
      }
      (void)(t_hot - t_min_online >= params_.delta_hotspot_c);
      std::size_t victim = 0;
      double best = -1e9;
      for (int c = 0; c < soc::kBigCoreCount; ++c) {
        if (config.big_core_online[c] && view.big_temps_c[c] > best) {
          best = view.big_temps_c[c];
          victim = std::size_t(c);
        }
      }
      forced_offline_[victim] = true;
      config.big_core_online[victim] = false;
      ++diagnostics_.hotplug_events;
      last_restriction_change_s_ = view.time_s;
      return;
    }
    // Out of cores to shed: migrate to the little cluster (last CPU resort).
    if (!forced_little_) {
      forced_little_ = true;
      config.active_cluster = soc::ClusterId::kLittle;
      config.little_freq_hz = little_opps_.max().frequency_hz;
      ++diagnostics_.cluster_migration_events;
      last_restriction_change_s_ = view.time_s;
      return;
    }
  }

  // Little cluster active (or just migrated): budget the little rail.
  if (config.active_cluster == soc::ClusterId::kLittle) {
    const auto& little_model =
        power_model_.model(power::Resource::kLittleCluster);
    const double t_proxy = mean_temp(view.big_temps_c);
    const double v_now = little_opps_.voltage_at(config.little_freq_hz);
    const double leak = little_model.predict_leakage_w(t_proxy, v_now);
    const power::ResourceVector rails = predict_rail_powers(view, config);
    const BudgetResult budget = compute_power_budget(
        predictor_, params_.horizon_steps, temps, rails,
        power::Resource::kLittleCluster, t_target, leak, params_.row_policy);
    if (budget.valid) {
      const power::Opp* fit = frequency_from_budget(
          little_opps_, little_model.alpha_c(), budget.dynamic_budget_w);
      if (fit != nullptr && fit->frequency_hz < config.little_freq_hz) {
        config.little_freq_hz = fit->frequency_hz;
        ++diagnostics_.frequency_cap_events;
        return;
      }
      if (fit != nullptr) return;
    }
  }

  // GPU throttling: the very last resort (§5.2).
  if (view.gpu_util > 0.1) {
    const std::size_t level = gpu_opps_.level_of(config.gpu_freq_hz);
    if (level > 0) {
      gpu_cap_level_ = int(level) - 1;
      config.gpu_freq_hz = gpu_opps_.at(std::size_t(gpu_cap_level_)).frequency_hz;
      ++diagnostics_.gpu_throttle_events;
      last_restriction_change_s_ = view.time_s;
    }
  }
}

void DtpmGovernor::maybe_relax(const soc::PlatformView& view,
                               double predicted_max_c, double now_s) {
  if (now_s - last_restriction_change_s_ < params_.restriction_dwell_s) return;
  const double trigger = params_.t_max_c - params_.guard_band_c;
  if (predicted_max_c > trigger - params_.recovery_margin_c) return;

  // Relax in reverse order of performance impact: GPU cap, cluster, cores.
  if (gpu_cap_level_ >= 0) {
    gpu_cap_level_ = gpu_cap_level_ + 1 < int(gpu_opps_.size()) - 1
                         ? gpu_cap_level_ + 1
                         : -1;
    last_restriction_change_s_ = now_s;
    return;
  }
  if (forced_little_) {
    // Gate the migration back on a prediction with the big cluster resumed
    // at minimum frequency, so we do not bounce across the (costly) switch.
    soc::SocConfig candidate = view.config;
    candidate.active_cluster = soc::ClusterId::kBig;
    candidate.big_freq_hz = big_opps_.min().frequency_hz;
    candidate.big_core_online = {true, true, true, true};
    for (int c = 0; c < soc::kBigCoreCount; ++c) {
      if (forced_offline_[c]) candidate.big_core_online[c] = false;
    }
    const power::ResourceVector rails = predict_rail_powers(view, candidate);
    const double pred = predictor_.predict_max(to_vector(view.big_temps_c),
                                               {rails.begin(), rails.end()},
                                               params_.horizon_steps);
    if (pred <= trigger - params_.recovery_margin_c) {
      forced_little_ = false;
      last_restriction_change_s_ = now_s;
    }
    return;
  }
  for (int c = 0; c < soc::kBigCoreCount; ++c) {
    if (forced_offline_[c]) {
      forced_offline_[c] = false;
      last_restriction_change_s_ = now_s;
      return;
    }
  }
}

governors::Decision DtpmGovernor::adjust(const soc::PlatformView& view,
                                         const governors::Decision& proposal) {
  observe(view);

  soc::SocConfig config = restrict(proposal.soc);
  const power::ResourceVector rails = predict_rail_powers(view, config);
  const double predicted_max = predictor_.predict_max(
      to_vector(view.big_temps_c), {rails.begin(), rails.end()},
      params_.horizon_steps);
  diagnostics_.predicted_max_c = predicted_max;
  diagnostics_.intervened = false;

  if (predicted_max > params_.t_max_c - params_.guard_band_c) {
    tighten(view, config);
  } else {
    maybe_relax(view, predicted_max, view.time_s);
    config = restrict(proposal.soc);  // re-apply possibly relaxed state
  }

  governors::Decision out;
  out.soc = config;
  out.fan = thermal::FanSpeed::kOff;  // the whole point: no fan
  return out;
}

}  // namespace dtpm::core
