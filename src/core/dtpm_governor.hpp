// The proposed DTPM algorithm (Chapters 3 and 5), implemented as a thermal
// policy over the default governor:
//
//  1. Update the power models from the latest sensor readings (Fig. 4.4).
//  2. Predict the rail powers of the default proposal, then the hotspot
//     temperatures one prediction horizon ahead (Eq. 4.5).
//  3. If no violation is predicted, affirm the default decision -- the
//     framework is non-intrusive below the constraint (Chapter 3).
//  4. Otherwise compute the power budget by inverting the thermal model at
//     the hottest core (Eqs. 5.5/5.6) and actuate, in the paper's order of
//     increasing performance impact (§5.2):
//       a. cap the big-cluster frequency to f_budget (Eq. 5.7);
//       b. if even f_min exceeds the budget, hotplug a big core out (the
//          hottest, gated by the Delta test of Eq. 5.9);
//       c. below the minimum core count, migrate to the little cluster;
//       d. throttle the GPU as the last resort.
//
// Standing restrictions (offline cores, forced little cluster, GPU caps)
// relax one step at a time once the predicted temperature shows enough
// headroom and a dwell time has passed, preventing actuation ping-pong
// across the cluster-migration overhead.
#pragma once

#include <array>

#include "core/power_budget.hpp"
#include "core/thermal_predictor.hpp"
#include "governors/governor.hpp"
#include "power/opp.hpp"
#include "power/power_model.hpp"
#include "sysid/model_store.hpp"

namespace dtpm::core {

struct DtpmParams {
  /// Temperature constraint; 63 C matches the fan policy's 50 % threshold so
  /// the comparison with the default configuration is fair (§6.3.2).
  double t_max_c = 63.0;
  /// Prediction horizon in control intervals ("1 s = 10 control intervals").
  unsigned horizon_steps = 10;
  /// Trigger/act margin below t_max, absorbing prediction bias.
  double guard_band_c = 0.75;
  /// Delta of Eq. 5.9: single-core hotspotting test before hotplug.
  double delta_hotspot_c = 3.0;
  /// Smallest big-core count before migrating to little (§5.2 keeps three).
  int min_big_cores = 3;
  /// Predicted headroom below the trigger level needed to relax a standing
  /// restriction, and the minimum time between relaxations.
  double recovery_margin_c = 1.5;
  double restriction_dwell_s = 2.0;
  /// Which hotspot rows bound the budget (ablation: kAllHotspots).
  BudgetRowPolicy row_policy = BudgetRowPolicy::kHottestCore;
};

/// Per-interval diagnostics, exposed for tracing and the experiment harness.
struct DtpmDiagnostics {
  double predicted_max_c = 0.0;
  double total_budget_w = 0.0;
  double dynamic_budget_w = 0.0;
  bool intervened = false;
  long frequency_cap_events = 0;
  long hotplug_events = 0;
  long cluster_migration_events = 0;
  long gpu_throttle_events = 0;
};

class DtpmGovernor final : public governors::ThermalPolicy {
 public:
  /// Default Exynos-5410 OPP tables.
  DtpmGovernor(const sysid::IdentifiedPlatformModel& model,
               const DtpmParams& params = {});
  /// Platform-specific DVFS tables (how the registry factory builds the
  /// policy for non-default platforms).
  DtpmGovernor(const sysid::IdentifiedPlatformModel& model,
               const DtpmParams& params, power::OppTable big_opps,
               power::OppTable little_opps, power::OppTable gpu_opps);

  governors::Decision adjust(const soc::PlatformView& view,
                             const governors::Decision& proposal) override;
  std::string_view name() const override { return "dtpm"; }

  const DtpmDiagnostics& diagnostics() const { return diagnostics_; }
  const ThermalPredictor& predictor() const { return predictor_; }
  const power::PlatformPowerModel& power_model() const { return power_model_; }
  const DtpmParams& params() const { return params_; }

 private:
  /// Feeds the sensors' rail/temperature readings to the power models.
  void observe(const soc::PlatformView& view);

  /// Predicted rail powers if `config` were applied, from the fitted models.
  power::ResourceVector predict_rail_powers(const soc::PlatformView& view,
                                            const soc::SocConfig& config) const;

  /// Applies standing restrictions to the default proposal.
  soc::SocConfig restrict(const soc::SocConfig& proposal) const;

  /// Escalation ladder of §5.2; mutates `config` and the standing state.
  void tighten(const soc::PlatformView& view, soc::SocConfig& config);

  /// Single-step relaxation when headroom allows.
  void maybe_relax(const soc::PlatformView& view, double predicted_max_c,
                   double now_s);

  /// Highest OPP whose predicted dynamic power fits the budget, or nullptr.
  const power::Opp* frequency_from_budget(const power::OppTable& opps,
                                          double alpha_c,
                                          double dynamic_budget_w) const;

  DtpmParams params_;
  ThermalPredictor predictor_;
  power::PlatformPowerModel power_model_;
  power::OppTable big_opps_;
  power::OppTable little_opps_;
  power::OppTable gpu_opps_;

  // Standing restrictions.
  std::array<bool, soc::kBigCoreCount> forced_offline_{};
  bool forced_little_ = false;
  int gpu_cap_level_ = -1;  ///< -1 = uncapped
  double last_restriction_change_s_ = -1e9;

  DtpmDiagnostics diagnostics_;
};

}  // namespace dtpm::core
