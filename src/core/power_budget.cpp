#include "core/power_budget.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dtpm::core {
namespace {

/// Budget from a single hotspot row (Eq. 5.5 rearranged).
double row_budget(const util::Matrix& an, const util::Matrix& bn,
                  std::size_t row, const std::vector<double>& temps_c,
                  const power::ResourceVector& rail_powers_w,
                  std::size_t target_idx, double t_max_c, double ambient_ref_c,
                  bool& valid) {
  const double b_target = bn(row, target_idx);
  if (b_target <= 1e-6) {
    valid = false;
    return 0.0;
  }
  double rhs = t_max_c - ambient_ref_c;
  for (std::size_t j = 0; j < temps_c.size(); ++j) {
    rhs -= an(row, j) * (temps_c[j] - ambient_ref_c);
  }
  for (std::size_t j = 0; j < rail_powers_w.size(); ++j) {
    if (j == target_idx) continue;
    rhs -= bn(row, j) * rail_powers_w[j];
  }
  valid = true;
  return rhs / b_target;
}

}  // namespace

BudgetResult compute_power_budget(const ThermalPredictor& predictor,
                                  unsigned horizon_steps,
                                  const std::vector<double>& temps_c,
                                  const power::ResourceVector& rail_powers_w,
                                  power::Resource target, double t_max_c,
                                  double leakage_estimate_w,
                                  BudgetRowPolicy row_policy) {
  const auto& model = predictor.model();
  if (temps_c.size() != model.state_dim()) {
    throw std::invalid_argument("compute_power_budget: temps dimension");
  }
  if (rail_powers_w.size() != model.input_dim()) {
    throw std::invalid_argument("compute_power_budget: powers dimension");
  }
  if (horizon_steps == 0) {
    throw std::invalid_argument("compute_power_budget: zero horizon");
  }
  const auto& [an, bn] = predictor.condensed(horizon_steps);
  const std::size_t target_idx = power::resource_index(target);

  BudgetResult out;
  if (row_policy == BudgetRowPolicy::kHottestCore) {
    std::size_t hottest = 0;
    for (std::size_t i = 1; i < temps_c.size(); ++i) {
      if (temps_c[i] > temps_c[hottest]) hottest = i;
    }
    bool valid = false;
    out.total_budget_w =
        row_budget(an, bn, hottest, temps_c, rail_powers_w, target_idx,
                   t_max_c, model.ambient_ref_c, valid);
    out.constraining_hotspot = hottest;
    out.valid = valid;
  } else {
    double best = std::numeric_limits<double>::infinity();
    bool any_valid = false;
    for (std::size_t i = 0; i < temps_c.size(); ++i) {
      bool valid = false;
      const double budget =
          row_budget(an, bn, i, temps_c, rail_powers_w, target_idx, t_max_c,
                     model.ambient_ref_c, valid);
      if (valid && budget < best) {
        best = budget;
        out.constraining_hotspot = i;
      }
      any_valid = any_valid || valid;
    }
    out.total_budget_w = any_valid ? best : 0.0;
    out.valid = any_valid;
  }
  out.dynamic_budget_w = out.total_budget_w - leakage_estimate_w;
  return out;
}

}  // namespace dtpm::core
