// Run-time power budget computation (§5.1, Eqs. 5.1-5.6).
//
// Starting from the temperature constraint T_max, the budget inverts the
// thermal model at the prediction horizon for one target rail while holding
// the other rails at their current draw:
//
//   B_i,target * P_target <= T_max - A_i T[k] - sum_{j != target} B_i,j P_j
//
// solved as equality for maximum performance (Eq. 5.5). The paper targets
// the row of the hottest core; the all-hotspots variant (minimum budget over
// all rows, i.e. the strict L-inf constraint of Eq. 5.2) is also provided
// for the ablation study in DESIGN.md §5. Subtracting the leakage estimate
// yields the dynamic budget of Eq. 5.6.
#pragma once

#include <cstddef>
#include <vector>

#include "core/thermal_predictor.hpp"
#include "power/resource.hpp"

namespace dtpm::core {

/// Which hotspot rows constrain the budget.
enum class BudgetRowPolicy {
  kHottestCore,  ///< the paper's choice (Eq. 5.5)
  kAllHotspots,  ///< min budget over every row (strict Eq. 5.2)
};

struct BudgetResult {
  /// Total power budget of the target rail (Eq. 5.5). May be negative when
  /// even zero power cannot meet the constraint at the horizon.
  double total_budget_w = 0.0;
  /// Dynamic budget after leakage subtraction (Eq. 5.6).
  double dynamic_budget_w = 0.0;
  /// Row (hotspot index) that produced the binding constraint.
  std::size_t constraining_hotspot = 0;
  /// False when the model gives the target rail no thermal authority
  /// (non-positive input coefficient), making the inversion meaningless.
  bool valid = false;
};

/// Computes the power budget for `target` at the given horizon.
///
/// @param temps_c       current hotspot sensor temperatures
/// @param rail_powers_w current rail powers; the target entry is ignored
/// @param t_max_c       temperature constraint (same for every hotspot)
/// @param leakage_estimate_w predicted leakage of the target rail, used for
///        the dynamic budget (Eq. 5.6)
BudgetResult compute_power_budget(const ThermalPredictor& predictor,
                                  unsigned horizon_steps,
                                  const std::vector<double>& temps_c,
                                  const power::ResourceVector& rail_powers_w,
                                  power::Resource target, double t_max_c,
                                  double leakage_estimate_w,
                                  BudgetRowPolicy row_policy =
                                      BudgetRowPolicy::kHottestCore);

}  // namespace dtpm::core
