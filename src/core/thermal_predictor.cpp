#include "core/thermal_predictor.hpp"

#include <algorithm>
#include <stdexcept>

namespace dtpm::core {

ThermalPredictor::ThermalPredictor(sysid::ThermalStateModel model)
    : model_(std::move(model)) {
  if (model_.a.rows() != model_.a.cols() || model_.a.rows() == 0 ||
      model_.b.rows() != model_.a.rows()) {
    throw std::invalid_argument("ThermalPredictor: malformed model");
  }
}

const std::pair<util::Matrix, util::Matrix>& ThermalPredictor::condensed(
    unsigned horizon_steps) const {
  auto it = cache_.find(horizon_steps);
  if (it == cache_.end()) {
    it = cache_.emplace(horizon_steps, model_.condensed(horizon_steps)).first;
  }
  return it->second;
}

std::vector<double> ThermalPredictor::predict(
    const std::vector<double>& temps_c, const std::vector<double>& powers_w,
    unsigned horizon_steps) const {
  if (temps_c.size() != model_.state_dim() ||
      powers_w.size() != model_.input_dim()) {
    throw std::invalid_argument("ThermalPredictor: dimension mismatch");
  }
  if (horizon_steps == 0) return temps_c;
  const auto& [an, bn] = condensed(horizon_steps);
  std::vector<double> out(model_.state_dim(), 0.0);
  for (std::size_t i = 0; i < model_.state_dim(); ++i) {
    double acc = model_.ambient_ref_c;
    for (std::size_t j = 0; j < model_.state_dim(); ++j) {
      acc += an(i, j) * (temps_c[j] - model_.ambient_ref_c);
    }
    for (std::size_t j = 0; j < model_.input_dim(); ++j) {
      acc += bn(i, j) * powers_w[j];
    }
    out[i] = acc;
  }
  return out;
}

double ThermalPredictor::predict_max(const std::vector<double>& temps_c,
                                     const std::vector<double>& powers_w,
                                     unsigned horizon_steps) const {
  const auto predicted = predict(temps_c, powers_w, horizon_steps);
  return *std::max_element(predicted.begin(), predicted.end());
}

}  // namespace dtpm::core
