// Run-time thermal predictor (§4.2, Eq. 4.5): wraps the identified
// state-space model and answers "what will the hotspot temperatures be n
// control intervals from now if the rails draw P?". Condensed horizon
// matrices are cached, so a prediction is a pair of 4x4 matrix-vector
// products -- cheap enough for a 100 ms kernel-space control loop, which is
// how the paper reports "no noticeable overhead" (§6.2).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "sysid/thermal_model.hpp"

namespace dtpm::core {

class ThermalPredictor {
 public:
  explicit ThermalPredictor(sysid::ThermalStateModel model);

  /// Temperatures n steps ahead under constant rail power (Eq. 4.5).
  std::vector<double> predict(const std::vector<double>& temps_c,
                              const std::vector<double>& powers_w,
                              unsigned horizon_steps) const;

  /// Maximum predicted hotspot temperature at the horizon.
  double predict_max(const std::vector<double>& temps_c,
                     const std::vector<double>& powers_w,
                     unsigned horizon_steps) const;

  /// Condensed (A^n, sum A^i B) pair for a horizon; cached.
  const std::pair<util::Matrix, util::Matrix>& condensed(
      unsigned horizon_steps) const;

  const sysid::ThermalStateModel& model() const { return model_; }

 private:
  sysid::ThermalStateModel model_;
  mutable std::map<unsigned, std::pair<util::Matrix, util::Matrix>> cache_;
};

}  // namespace dtpm::core
