#include "governors/fan_policy.hpp"

namespace dtpm::governors {

FanPolicy::FanPolicy(const FanPolicyParams& params) : params_(params) {}

Decision FanPolicy::adjust(const soc::PlatformView& view,
                           const Decision& proposal) {
  const double t = view.max_big_temp_c();
  using thermal::FanSpeed;
  if (view.time_s - last_action_s_ < params_.action_period_s) {
    Decision out = proposal;
    out.fan = speed_;
    return out;
  }
  const FanSpeed before = speed_;
  // Step up at each threshold; step down with hysteresis.
  switch (speed_) {
    case FanSpeed::kOff:
      if (t > params_.on_threshold_c) speed_ = FanSpeed::kLow;
      break;
    case FanSpeed::kLow:
      if (t > params_.half_threshold_c) {
        speed_ = FanSpeed::kHalf;
      } else if (t < params_.on_threshold_c - params_.hysteresis_c) {
        speed_ = FanSpeed::kOff;
      }
      break;
    case FanSpeed::kHalf:
      if (t > params_.full_threshold_c) {
        speed_ = FanSpeed::kFull;
      } else if (t < params_.half_threshold_c - params_.hysteresis_c) {
        speed_ = FanSpeed::kLow;
      }
      break;
    case FanSpeed::kFull:
      if (t < params_.full_threshold_c - params_.hysteresis_c) {
        speed_ = FanSpeed::kHalf;
      }
      break;
  }
  if (speed_ != before) last_action_s_ = view.time_s;
  Decision out = proposal;
  out.fan = speed_;
  return out;
}

}  // namespace dtpm::governors
