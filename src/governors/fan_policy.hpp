// The stock Odroid-XU+E fan controller (§6.2): the fan turns on when the
// maximum core temperature exceeds 57 C, and steps to 50 % / 100 % past
// 63 C / 68 C, with hysteresis on the way down. The SoC configuration is
// left untouched -- the board relies entirely on airflow.
#pragma once

#include "governors/governor.hpp"

namespace dtpm::governors {

struct FanPolicyParams {
  double on_threshold_c = 57.0;
  double half_threshold_c = 63.0;
  double full_threshold_c = 68.0;
  /// Temperature must drop this far below a threshold to step back down.
  double hysteresis_c = 4.0;
  /// The stock controller is a slow userspace daemon: it re-evaluates the
  /// fan speed only every few seconds, which (with the thermal inertia) is
  /// what produces the wide 57-70 C oscillation of Figs. 6.3-6.5.
  double action_period_s = 2.5;
};

class FanPolicy final : public ThermalPolicy {
 public:
  explicit FanPolicy(const FanPolicyParams& params = {});

  Decision adjust(const soc::PlatformView& view,
                  const Decision& proposal) override;
  std::string_view name() const override { return "fan"; }

  thermal::FanSpeed current_speed() const { return speed_; }

 private:
  FanPolicyParams params_;
  thermal::FanSpeed speed_ = thermal::FanSpeed::kOff;
  double last_action_s_ = -1e9;
};

}  // namespace dtpm::governors
