// Governor interfaces, mirroring the structure of Fig. 3.1: the *default*
// frequency/idle governors propose a configuration every control interval,
// and a *thermal policy* layered on top (the stock fan controller, the
// reactive throttling heuristic, or the proposed DTPM algorithm) may adjust
// it. When no thermal risk exists, policies pass the default proposal
// through unchanged -- the DTPM approach is explicitly non-intrusive below
// the temperature constraint (Chapter 3).
#pragma once

#include <string_view>

#include "soc/state.hpp"
#include "thermal/fan.hpp"

namespace dtpm::governors {

/// Everything an interval's decision actuates: the SoC knobs plus fan speed.
struct Decision {
  soc::SocConfig soc;
  thermal::FanSpeed fan = thermal::FanSpeed::kOff;
};

/// A default governor: proposes the configuration the platform would run in
/// the absence of thermal management (ondemand/interactive + GPU governor).
class Governor {
 public:
  virtual ~Governor() = default;
  virtual Decision decide(const soc::PlatformView& view) = 0;
  virtual std::string_view name() const = 0;
};

/// A thermal policy: transforms the default proposal. Implementations:
/// FanPolicy (stock), ReactiveThrottlePolicy (heuristic baseline),
/// core::DtpmGovernor (the paper's contribution), and NullPolicy (no fan,
/// no throttling -- the "Without fan" configuration).
class ThermalPolicy {
 public:
  virtual ~ThermalPolicy() = default;
  virtual Decision adjust(const soc::PlatformView& view,
                          const Decision& proposal) = 0;
  virtual std::string_view name() const = 0;
};

/// Passes the proposal through untouched: the paper's "Without fan" config.
class NullPolicy final : public ThermalPolicy {
 public:
  Decision adjust(const soc::PlatformView&, const Decision& proposal) override {
    return proposal;
  }
  std::string_view name() const override { return "none"; }
};

}  // namespace dtpm::governors
