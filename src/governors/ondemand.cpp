#include "governors/ondemand.hpp"

#include <algorithm>
#include <utility>

namespace dtpm::governors {

OndemandGovernor::OndemandGovernor(const OndemandParams& params)
    : OndemandGovernor(params, power::big_cluster_opp_table(),
                       power::little_cluster_opp_table(),
                       power::gpu_opp_table()) {}

OndemandGovernor::OndemandGovernor(const OndemandParams& params,
                                   power::OppTable big_opps,
                                   power::OppTable little_opps,
                                   power::OppTable gpu_opps)
    : params_(params),
      big_opps_(std::move(big_opps)),
      little_opps_(std::move(little_opps)),
      gpu_opps_(std::move(gpu_opps)) {}

Decision OndemandGovernor::decide(const soc::PlatformView& view) {
  Decision d;
  d.soc = view.config;
  // The default governor never hotplugs: it proposes all cores online, the
  // idle governor / thermal policy may override.
  d.soc.big_core_online = {true, true, true, true};

  const double util = view.cpu_max_util;
  const bool big_active = view.config.active_cluster == soc::ClusterId::kBig;
  const power::OppTable& opps = big_active ? big_opps_ : little_opps_;
  double freq = big_active ? view.config.big_freq_hz : view.config.little_freq_hz;

  // --- CPU DVFS (classic ondemand) ---------------------------------------
  if (util >= params_.up_threshold) {
    freq = opps.max().frequency_hz;
    low_util_intervals_ = 0;
  } else if (util <= params_.down_threshold) {
    if (++low_util_intervals_ >= params_.down_hold_intervals) {
      // Pick the frequency that would bring utilization back to ~80 %.
      const double target = freq * std::max(util, 0.05) / params_.up_threshold;
      freq = opps.highest_not_above(target).frequency_hz;
      low_util_intervals_ = 0;
    }
  } else {
    low_util_intervals_ = 0;
  }

  // --- Cluster migration ----------------------------------------------------
  soc::ClusterId cluster = view.config.active_cluster;
  if (!big_active) {
    const bool saturated = util >= params_.cluster_up_util &&
                           freq >= little_opps_.max().frequency_hz - 1.0;
    cluster_up_intervals_ = saturated ? cluster_up_intervals_ + 1 : 0;
    if (cluster_up_intervals_ >= params_.cluster_up_hold) {
      cluster = soc::ClusterId::kBig;
      freq = big_opps_.max().frequency_hz;
      cluster_up_intervals_ = 0;
    }
  } else {
    const bool idle = util <= params_.cluster_down_util &&
                      freq <= big_opps_.min().frequency_hz + 1.0;
    cluster_down_intervals_ = idle ? cluster_down_intervals_ + 1 : 0;
    if (cluster_down_intervals_ >= params_.cluster_down_hold) {
      cluster = soc::ClusterId::kLittle;
      cluster_down_intervals_ = 0;
    }
  }

  d.soc.active_cluster = cluster;
  if (cluster == soc::ClusterId::kBig) {
    d.soc.big_freq_hz = freq;
  } else {
    d.soc.little_freq_hz =
        cluster == view.config.active_cluster
            ? freq
            : little_opps_.max().frequency_hz;  // land at little f_max
  }

  // --- GPU DVFS ---------------------------------------------------------
  double gpu_freq = view.config.gpu_freq_hz;
  if (view.gpu_util >= params_.gpu_up_util) {
    const std::size_t level = gpu_opps_.level_of(gpu_freq);
    if (level + 1 < gpu_opps_.size()) gpu_freq = gpu_opps_.at(level + 1).frequency_hz;
  } else if (view.gpu_util <= params_.gpu_down_util) {
    gpu_freq = gpu_opps_.step_down(gpu_freq).frequency_hz;
  }
  d.soc.gpu_freq_hz = gpu_freq;

  d.fan = thermal::FanSpeed::kOff;  // the default governor does not manage the fan
  return d;
}

}  // namespace dtpm::governors
