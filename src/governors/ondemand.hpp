// The default frequency governor (the paper runs ondemand, §3 and [36]),
// extended with the 5410's cluster-migration behaviour: the little cluster
// serves the low end of the virtual frequency range and the big cluster the
// high end. Utilization above the up-threshold jumps the active cluster to
// its maximum frequency; sustained low utilization steps it down and
// eventually migrates to the little cluster. A separate utilization rule
// drives the GPU's DVFS, standing in for the stock GPU driver governor.
#pragma once

#include "governors/governor.hpp"
#include "power/opp.hpp"

namespace dtpm::governors {

/// Tunables, defaulted to the classic ondemand behaviour.
struct OndemandParams {
  double up_threshold = 0.80;      ///< jump to f_max above this utilization
  double down_threshold = 0.55;    ///< consider stepping down below this
  int down_hold_intervals = 3;     ///< consecutive low-util intervals to step
  /// Cluster migration: go big when the little cluster saturates, go little
  /// after sustained idleness at the big cluster's minimum frequency.
  double cluster_up_util = 0.85;
  int cluster_up_hold = 2;
  double cluster_down_util = 0.30;
  int cluster_down_hold = 12;
  /// GPU governor thresholds.
  double gpu_up_util = 0.85;
  double gpu_down_util = 0.45;
};

class OndemandGovernor final : public Governor {
 public:
  /// Default Exynos-5410 OPP tables.
  explicit OndemandGovernor(const OndemandParams& params = {});
  /// Platform-specific DVFS tables (the registry factory passes the
  /// PolicyContext's resolved tables here).
  OndemandGovernor(const OndemandParams& params, power::OppTable big_opps,
                   power::OppTable little_opps, power::OppTable gpu_opps);

  Decision decide(const soc::PlatformView& view) override;
  std::string_view name() const override { return "ondemand"; }

 private:
  OndemandParams params_;
  power::OppTable big_opps_;
  power::OppTable little_opps_;
  power::OppTable gpu_opps_;
  int low_util_intervals_ = 0;
  int cluster_up_intervals_ = 0;
  int cluster_down_intervals_ = 0;
};

}  // namespace dtpm::governors
