#include "governors/policy_registry.hpp"

#include <stdexcept>

#include "core/dtpm_governor.hpp"
#include "governors/fan_policy.hpp"
#include "governors/ondemand.hpp"
#include "governors/reactive.hpp"
#include "util/names.hpp"

namespace dtpm::governors {

double PolicyContext::param(const std::string& key, double fallback) const {
  if (params == nullptr) return fallback;
  const auto it = params->find(key);
  return it != params->end() ? it->second : fallback;
}

power::OppTable PolicyContext::resolved_big_opps() const {
  return big_opps != nullptr ? *big_opps : power::big_cluster_opp_table();
}

power::OppTable PolicyContext::resolved_little_opps() const {
  return little_opps != nullptr ? *little_opps
                                : power::little_cluster_opp_table();
}

power::OppTable PolicyContext::resolved_gpu_opps() const {
  return gpu_opps != nullptr ? *gpu_opps : power::gpu_opp_table();
}

namespace {

void register_builtin_policies(PolicyRegistry& registry) {
  // All four paper policies take their tuning from typed config members
  // (DtpmParams, ReactiveThrottleParams defaults), not the policy_params
  // bag -- declared via ParamSchema::none() so the lint layer can flag any
  // bag entry against them as a likely typo.
  registry.add(
      "default+fan",
      [](const PolicyContext&) { return std::make_unique<FanPolicy>(); },
      "stock ondemand + hysteresis fan controller (the paper's default)",
      ParamSchema::none());
  registry.add(
      "no-fan",
      [](const PolicyContext&) { return std::make_unique<NullPolicy>(); },
      "fan disabled, no thermal management", ParamSchema::none());
  registry.add(
      "reactive",
      [](const PolicyContext& context) {
        return std::make_unique<ReactiveThrottlePolicy>(
            ReactiveThrottleParams{}, context.resolved_big_opps(),
            context.resolved_little_opps());
      },
      "heuristic mimicking the fan policy with frequency throttling",
      ParamSchema::none());
  registry.add(
      "dtpm",
      [](const PolicyContext& context) -> std::unique_ptr<ThermalPolicy> {
        if (context.model == nullptr) {
          throw std::invalid_argument(
              "policy 'dtpm' requires an identified platform model");
        }
        return std::make_unique<core::DtpmGovernor>(
            *context.model,
            context.dtpm != nullptr ? *context.dtpm : core::DtpmParams{},
            context.resolved_big_opps(), context.resolved_little_opps(),
            context.resolved_gpu_opps());
      },
      "the paper's predictive dynamic thermal and power management",
      ParamSchema::none());
}

void register_builtin_governors(GovernorRegistry& registry) {
  registry.add(
      "ondemand",
      [](const PolicyContext& context) {
        return std::make_unique<OndemandGovernor>(
            OndemandParams{}, context.resolved_big_opps(),
            context.resolved_little_opps(), context.resolved_gpu_opps());
      },
      "classic ondemand with 5410-style cluster migration + GPU DVFS",
      ParamSchema::none());
}

}  // namespace

PolicyRegistry& PolicyRegistry::instance() {
  // Leaked singleton: registries must outlive every static
  // PolicyRegistration in other TUs, whatever the destruction order.
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry;
    register_builtin_policies(*r);
    return r;
  }();
  return *registry;
}

void PolicyRegistry::add(const std::string& name, Factory factory,
                         std::string description) {
  add(name, std::move(factory), std::move(description), ParamSchema{});
}

void PolicyRegistry::add(const std::string& name, Factory factory,
                         std::string description, ParamSchema schema) {
  if (name.empty()) {
    throw std::invalid_argument("PolicyRegistry: empty policy name");
  }
  if (!factory) {
    throw std::invalid_argument("PolicyRegistry: null factory for '" + name +
                                "'");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name) != 0) {
    throw std::invalid_argument("PolicyRegistry: duplicate policy '" + name +
                                "'");
  }
  entries_.emplace(name, Entry{std::move(factory), std::move(description),
                               std::move(schema)});
}

bool PolicyRegistry::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(name) != 0;
}

bool PolicyRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

std::vector<std::string> PolicyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::string PolicyRegistry::description(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.description : std::string();
}

ParamSchema PolicyRegistry::param_schema(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.schema : ParamSchema{};
}

std::unique_ptr<ThermalPolicy> PolicyRegistry::make(
    const std::string& name, const PolicyContext& context) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) factory = it->second.factory;
  }
  if (!factory) {
    throw std::invalid_argument(
        util::unknown_name_message("policy", name, names()));
  }
  // Invoked outside the lock: factories may be slow (DTPM builds predictor
  // matrices) and BatchRunner workers construct policies concurrently.
  return factory(context);
}

GovernorRegistry& GovernorRegistry::instance() {
  static GovernorRegistry* registry = [] {
    auto* r = new GovernorRegistry;
    register_builtin_governors(*r);
    return r;
  }();
  return *registry;
}

void GovernorRegistry::add(const std::string& name, Factory factory,
                           std::string description) {
  add(name, std::move(factory), std::move(description), ParamSchema{});
}

void GovernorRegistry::add(const std::string& name, Factory factory,
                           std::string description, ParamSchema schema) {
  if (name.empty()) {
    throw std::invalid_argument("GovernorRegistry: empty governor name");
  }
  if (!factory) {
    throw std::invalid_argument("GovernorRegistry: null factory for '" + name +
                                "'");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(name) != 0) {
    throw std::invalid_argument("GovernorRegistry: duplicate governor '" +
                                name + "'");
  }
  entries_.emplace(name, Entry{std::move(factory), std::move(description),
                               std::move(schema)});
}

bool GovernorRegistry::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(name) != 0;
}

bool GovernorRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

std::vector<std::string> GovernorRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::string GovernorRegistry::description(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.description : std::string();
}

ParamSchema GovernorRegistry::param_schema(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.schema : ParamSchema{};
}

std::unique_ptr<Governor> GovernorRegistry::make(
    const std::string& name, const PolicyContext& context) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) factory = it->second.factory;
  }
  if (!factory) {
    throw std::invalid_argument(
        util::unknown_name_message("governor", name, names()));
  }
  return factory(context);
}

PolicyRegistration::PolicyRegistration(const std::string& name,
                                       PolicyRegistry::Factory factory,
                                       std::string description) {
  PolicyRegistry::instance().add(name, std::move(factory),
                                 std::move(description));
}

PolicyRegistration::PolicyRegistration(const std::string& name,
                                       PolicyRegistry::Factory factory,
                                       std::string description,
                                       ParamSchema schema) {
  PolicyRegistry::instance().add(name, std::move(factory),
                                 std::move(description), std::move(schema));
}

GovernorRegistration::GovernorRegistration(const std::string& name,
                                           GovernorRegistry::Factory factory,
                                           std::string description) {
  GovernorRegistry::instance().add(name, std::move(factory),
                                   std::move(description));
}

GovernorRegistration::GovernorRegistration(const std::string& name,
                                           GovernorRegistry::Factory factory,
                                           std::string description,
                                           ParamSchema schema) {
  GovernorRegistry::instance().add(name, std::move(factory),
                                   std::move(description), std::move(schema));
}

}  // namespace dtpm::governors
