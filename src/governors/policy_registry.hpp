// Open, string-keyed registries for the two pluggable layers of the Fig. 3.1
// software stack: thermal policies (PolicyRegistry) and default governors
// (GovernorRegistry). The registries -- not the sim::Policy enum, which
// survives only as a thin compatibility shim mapped onto registry names --
// are the source of truth for what can run in a ControlStack. Anything
// registered here is selectable by name from an ExperimentConfig, a JSON
// config file, or the `dtpm` CLI without touching library code:
//
//   namespace {
//   const dtpm::governors::PolicyRegistration kMine{
//       "my-policy",
//       [](const dtpm::governors::PolicyContext& ctx) {
//         return std::make_unique<MyPolicy>(ctx.param("trip_c", 63.0));
//       },
//       "my hand-rolled trip policy"};
//   }  // namespace
//
// The four paper policies (default+fan, no-fan, reactive, dtpm) and the
// ondemand governor are pre-registered. Registration normally happens during
// static initialization (single-threaded); lookups are mutex-guarded because
// BatchRunner workers construct policies concurrently.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "governors/governor.hpp"
#include "power/opp.hpp"

namespace dtpm::core {
struct DtpmParams;
}
namespace dtpm::sysid {
struct IdentifiedPlatformModel;
}

namespace dtpm::governors {

/// Everything a factory may consume at construction time. All pointers are
/// borrowed for the duration of the factory call only.
struct PolicyContext {
  /// Identified platform model; null when the experiment did not load one.
  /// Factories that require it must throw std::invalid_argument.
  const sysid::IdentifiedPlatformModel* model = nullptr;
  /// The config's typed DTPM parameter block (consumed by "dtpm").
  const core::DtpmParams* dtpm = nullptr;
  /// Free-form per-policy parameter bag (ExperimentConfig::policy_params,
  /// filled from the config file's "policy_params" object).
  const std::map<std::string, double>* params = nullptr;

  /// The platform's DVFS tables (null = the built-in Exynos-5410 defaults).
  /// Factories that propose frequencies must construct against these so a
  /// registry policy runs correctly on every registered platform -- use the
  /// resolved accessors below.
  const power::OppTable* big_opps = nullptr;
  const power::OppTable* little_opps = nullptr;
  const power::OppTable* gpu_opps = nullptr;

  /// Bag lookup with a default; the idiom for custom-policy knobs.
  double param(const std::string& key, double fallback) const;

  /// The context's tables, falling back to the default Exynos-5410 ones.
  power::OppTable resolved_big_opps() const;
  power::OppTable resolved_little_opps() const;
  power::OppTable resolved_gpu_opps() const;
};

/// One knob a policy or governor reads from the policy_params bag, with the
/// range its factory accepts. Declared so `dtpm lint` can check params
/// statically -- construction-time throws only fire when the config runs.
struct ParamSpec {
  std::string name;
  double min_value = std::numeric_limits<double>::lowest();
  double max_value = std::numeric_limits<double>::max();
  std::string description;
};

/// What a registered policy/governor declared about its parameter bag.
/// `declared == false` (the default for registrations that pass no schema)
/// means "unknown": the lint layer can only note that params go unchecked.
/// A declared schema with an empty param list means "takes no params" --
/// anything in the bag is then a likely typo.
struct ParamSchema {
  bool declared = false;
  std::vector<ParamSpec> params;

  /// A declared empty schema: "this policy reads nothing from the bag".
  static ParamSchema none() { return {true, {}}; }
};

/// String-keyed thermal-policy registry.
class PolicyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ThermalPolicy>(const PolicyContext&)>;

  /// The process-wide registry, with the four paper policies pre-registered.
  static PolicyRegistry& instance();

  /// Registers a policy; throws std::invalid_argument on an empty name, a
  /// null factory, or a duplicate.
  void add(const std::string& name, Factory factory,
           std::string description = "");

  /// Registration with a declared parameter schema (see ParamSchema).
  void add(const std::string& name, Factory factory, std::string description,
           ParamSchema schema);

  /// Removes a registered policy (returns false when absent). Intended for
  /// tests that register throwaway policies.
  bool remove(const std::string& name);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< sorted
  std::string description(const std::string& name) const;

  /// The declared parameter schema; `declared == false` when the
  /// registration did not provide one (or the name is unknown).
  ParamSchema param_schema(const std::string& name) const;

  /// Constructs the named policy; throws std::invalid_argument with the
  /// sorted valid names and a nearest-match suggestion on an unknown name.
  std::unique_ptr<ThermalPolicy> make(const std::string& name,
                                      const PolicyContext& context) const;

 private:
  struct Entry {
    Factory factory;
    std::string description;
    ParamSchema schema;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Matching registry for default governors (the bottom layer of Fig. 3.1).
class GovernorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Governor>(const PolicyContext&)>;

  /// The process-wide registry, with "ondemand" pre-registered.
  static GovernorRegistry& instance();

  void add(const std::string& name, Factory factory,
           std::string description = "");
  void add(const std::string& name, Factory factory, std::string description,
           ParamSchema schema);
  bool remove(const std::string& name);
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< sorted
  std::string description(const std::string& name) const;
  ParamSchema param_schema(const std::string& name) const;
  std::unique_ptr<Governor> make(const std::string& name,
                                 const PolicyContext& context) const;

 private:
  struct Entry {
    Factory factory;
    std::string description;
    ParamSchema schema;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// Self-registration handle: construct one at namespace scope in any TU to
/// make a policy selectable by name before main() runs.
struct PolicyRegistration {
  PolicyRegistration(const std::string& name, PolicyRegistry::Factory factory,
                     std::string description = "");
  PolicyRegistration(const std::string& name, PolicyRegistry::Factory factory,
                     std::string description, ParamSchema schema);
};

/// Same for default governors.
struct GovernorRegistration {
  GovernorRegistration(const std::string& name,
                       GovernorRegistry::Factory factory,
                       std::string description = "");
  GovernorRegistration(const std::string& name,
                       GovernorRegistry::Factory factory,
                       std::string description, ParamSchema schema);
};

}  // namespace dtpm::governors
