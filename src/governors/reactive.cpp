#include "governors/reactive.hpp"

#include <algorithm>
#include <utility>

namespace dtpm::governors {

ReactiveThrottlePolicy::ReactiveThrottlePolicy(
    const ReactiveThrottleParams& params)
    : ReactiveThrottlePolicy(params, power::big_cluster_opp_table(),
                             power::little_cluster_opp_table()) {}

ReactiveThrottlePolicy::ReactiveThrottlePolicy(
    const ReactiveThrottleParams& params, power::OppTable big_opps,
    power::OppTable little_opps)
    : params_(params),
      big_opps_(std::move(big_opps)),
      little_opps_(std::move(little_opps)) {}

Decision ReactiveThrottlePolicy::adjust(const soc::PlatformView& view,
                                        const Decision& proposal) {
  const double t = view.max_big_temp_c();
  if (view.time_s - last_action_s_ >= params_.action_period_s) {
    if (t > params_.level2_threshold_c) {
      cap_fraction_ *= 1.0 - params_.level2_throttle;
      last_action_s_ = view.time_s;
    } else if (t > params_.level1_threshold_c) {
      cap_fraction_ *= 1.0 - params_.level1_throttle;
      last_action_s_ = view.time_s;
    } else if (t < params_.level1_threshold_c - params_.hysteresis_c &&
               cap_fraction_ < 1.0) {
      cap_fraction_ =
          std::min(cap_fraction_ / (1.0 - params_.level1_throttle), 1.0);
      last_action_s_ = view.time_s;
    }
  }
  // Never cap below the table minimum of the active cluster.
  const power::OppTable& opps =
      proposal.soc.active_cluster == soc::ClusterId::kBig ? big_opps_
                                                          : little_opps_;
  const double min_fraction =
      opps.min().frequency_hz / opps.max().frequency_hz;
  cap_fraction_ = std::clamp(cap_fraction_, min_fraction, 1.0);

  Decision out = proposal;
  out.fan = thermal::FanSpeed::kOff;  // no fan for this baseline
  const double cap_hz = opps.max().frequency_hz * cap_fraction_;
  if (out.soc.active_cluster == soc::ClusterId::kBig) {
    if (out.soc.big_freq_hz > cap_hz) {
      out.soc.big_freq_hz = big_opps_.highest_not_above(cap_hz).frequency_hz;
    }
  } else {
    if (out.soc.little_freq_hz > cap_hz) {
      out.soc.little_freq_hz =
          little_opps_.highest_not_above(cap_hz).frequency_hz;
    }
  }
  return out;
}

}  // namespace dtpm::governors
