// The reactive heuristic baseline of §6.2: a fan-less policy that mimics the
// fan controller's structure but, "instead of increasing the fan speed,
// throttles the frequency by 18 % and 25 % when the temperature passes 63 C
// and 68 C, respectively". Like the fan it mimics (which keeps stepping the
// speed while the temperature stays high), the throttle compounds at every
// action period while the violation persists and recovers one step at a
// time once the temperature falls below the threshold band -- the classic
// reactive sawtooth whose cost the paper measures at ~20 % performance loss
// (§6.3.3), against the DTPM algorithm's 3.3 %.
#pragma once

#include "governors/governor.hpp"
#include "power/opp.hpp"

namespace dtpm::governors {

struct ReactiveThrottleParams {
  double level1_threshold_c = 63.0;
  double level2_threshold_c = 68.0;
  double level1_throttle = 0.18;  ///< multiplicative cap step above level 1
  double level2_throttle = 0.25;  ///< multiplicative cap step above level 2
  double hysteresis_c = 6.0;
  /// Throttle/recovery actions happen at most this often (the thermal-zone
  /// polling period of the stock kernel driver).
  double action_period_s = 0.5;
};

class ReactiveThrottlePolicy final : public ThermalPolicy {
 public:
  /// Default Exynos-5410 OPP tables.
  explicit ReactiveThrottlePolicy(const ReactiveThrottleParams& params = {});
  /// Platform-specific DVFS tables.
  ReactiveThrottlePolicy(const ReactiveThrottleParams& params,
                         power::OppTable big_opps,
                         power::OppTable little_opps);

  Decision adjust(const soc::PlatformView& view,
                  const Decision& proposal) override;
  std::string_view name() const override { return "reactive"; }

  /// Current multiplicative frequency cap in (0, 1].
  double cap_fraction() const { return cap_fraction_; }

 private:
  ReactiveThrottleParams params_;
  power::OppTable big_opps_;
  power::OppTable little_opps_;
  double cap_fraction_ = 1.0;
  double last_action_s_ = -1e9;
};

}  // namespace dtpm::governors
