// Experiment-config lint: cross-field semantic checks (L3xx) and
// policy-parameter validation against registry-declared schemas (L4xx).
// Runs on a parse-clean ExperimentConfig, so every member is individually
// valid -- these passes catch combinations that are jointly wrong.
#include <cmath>
#include <string>
#include <vector>

#include "governors/policy_registry.hpp"
#include "lint/lint.hpp"
#include "util/json.hpp"
#include "util/names.hpp"

namespace dtpm::lint {

namespace {

std::string num(double value) {
  return util::json_write(util::JsonValue(value), 0);
}

/// L401-L403: the policy_params bag against what the resolved policy and
/// governor declared. Both factories see the same bag, so a key is known
/// when either schema declares it; unknown-key checks need both schemas
/// declared (an undeclared one could consume anything).
void lint_policy_params(const sim::ExperimentConfig& config,
                        const std::string& path, util::DiagnosticSink& sink) {
  if (config.policy_params.empty()) return;
  const std::string policy = sim::resolved_policy_name(config);
  const std::string governor = sim::resolved_governor_name(config);
  const governors::ParamSchema policy_schema =
      governors::PolicyRegistry::instance().param_schema(policy);
  const governors::ParamSchema governor_schema =
      governors::GovernorRegistry::instance().param_schema(governor);

  std::vector<std::string> declared_names;
  for (const governors::ParamSpec& spec : policy_schema.params) {
    declared_names.push_back(spec.name);
  }
  for (const governors::ParamSpec& spec : governor_schema.params) {
    declared_names.push_back(spec.name);
  }

  auto find_spec = [&](const std::string& key) -> const governors::ParamSpec* {
    for (const governors::ParamSpec& spec : policy_schema.params) {
      if (spec.name == key) return &spec;
    }
    for (const governors::ParamSpec& spec : governor_schema.params) {
      if (spec.name == key) return &spec;
    }
    return nullptr;
  };

  if (!policy_schema.declared) {
    sink.note("L403", path + ".policy_params",
              "policy '" + policy +
                  "' declares no parameter schema; these params go unchecked "
                  "(declare one via the registry's ParamSchema overload)");
  }
  if (!governor_schema.declared) {
    sink.note("L403", path + ".policy_params",
              "governor '" + governor +
                  "' declares no parameter schema; these params go unchecked "
                  "(declare one via the registry's ParamSchema overload)");
  }

  for (const auto& [key, value] : config.policy_params) {
    const std::string key_path = path + ".policy_params." + key;
    if (const governors::ParamSpec* spec = find_spec(key)) {
      // L402: outside the range the factory declared it accepts.
      if (value < spec->min_value || value > spec->max_value) {
        sink.error("L402", key_path,
                   "value " + num(value) + " outside [" +
                       num(spec->min_value) + ", " + num(spec->max_value) +
                       "] declared for parameter '" + key + "'");
      }
      continue;
    }
    // L401 only when both consumers declared their schemas -- otherwise the
    // undeclared one might legitimately read the key.
    if (!policy_schema.declared || !governor_schema.declared) continue;
    std::string message;
    if (declared_names.empty()) {
      message = "policy '" + policy + "' and governor '" + governor +
                "' take no parameters; '" + key + "' is ignored";
    } else {
      message = "unknown parameter '" + key + "'";
      const std::string suggestion = util::closest_match(key, declared_names);
      if (!suggestion.empty()) {
        message += ", did you mean '" + suggestion + "'?";
      }
    }
    sink.warning("L401", key_path, message);
  }
}

}  // namespace

void lint_experiment(const sim::ExperimentConfig& config,
                     const std::string& path, util::DiagnosticSink& sink,
                     const LintOptions& options) {
  const sim::PlatformPtr platform = sim::resolved_platform(config);
  lint_platform(*platform, path + ".platform", sink, options);

  // L301: a thermal constraint at or above the runaway-abort ceiling --
  // the abort fires before the policy ever regulates, so every run dies.
  const double abort_c = platform->resolved_runaway_abort_temp_c();
  if (config.dtpm.t_max_c >= abort_c) {
    sink.error("L301", path + ".dtpm.t_max_c",
               "t_max (" + num(config.dtpm.t_max_c) +
                   " C) is at or above the platform's runaway-abort "
                   "temperature (" +
                   num(abort_c) + " C); every run would abort as a runaway");
  } else if (config.dtpm.t_max_c > platform->default_t_max_c) {
    // L305: above the platform's recommended constraint -- legal, but the
    // margin to the abort ceiling shrinks.
    sink.warning("L305", path + ".dtpm.t_max_c",
                 "t_max (" + num(config.dtpm.t_max_c) +
                     " C) exceeds the platform's recommended constraint (" +
                     num(platform->default_t_max_c) + " C)");
  }

  // L303: the plant advances in whole substeps per control interval; a
  // non-divisible pair silently rounds the effective substep.
  const double ratio = config.control_interval_s / config.plant_substep_s;
  if (std::fabs(ratio - std::round(ratio)) > 1e-6 * ratio) {
    sink.warning("L303", path + ".plant_substep_s",
                 "control_interval_s (" + num(config.control_interval_s) +
                     " s) is not a whole number of plant substeps (" +
                     num(config.plant_substep_s) +
                     " s); the simulation rounds the substep count");
  }

  lint_policy_params(config, path, sink);
}

}  // namespace dtpm::lint
