// Fleet-spec lint (L7xx): distribution hygiene, scale warnings, axis-name
// validation, and a physical sanity check of the sampled ambient range
// against each platform's thermal limit -- plus the experiment passes over
// the base config. Mirrors serve's validate_distributions backstop, but
// with stable codes, document paths, and did-you-mean suggestions.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "sim/platform_registry.hpp"
#include "util/json.hpp"
#include "util/names.hpp"
#include "workload/scenario.hpp"

namespace dtpm::lint {

namespace {

/// Sampled-device count past which retained traces draw the L702 blowup
/// warning; matches the sweep pass's per-run trace threshold (L306).
constexpr std::uint64_t kTracedDevicesWarning = 32;

std::vector<std::string> standard_family_names() {
  std::vector<std::string> names;
  for (workload::ScenarioFamily f : workload::all_scenario_families()) {
    names.emplace_back(workload::to_string(f));
  }
  return names;
}

/// L701: an axis written as an explicitly empty array. Empty axes fall back
/// to defaults (base platform / all families) when *omitted*, so an empty
/// literal is almost always an editing accident -- and only the source
/// document can tell the two apart.
void check_empty_axis(const util::JsonValue& json, const std::string& member,
                      const std::string& path, util::DiagnosticSink& sink) {
  const util::JsonValue* v = json.find(member);
  if (v != nullptr && v->is_array() && v->as_array().empty()) {
    sink.error("L701", path + "." + member,
               "explicitly empty '" + member +
                   "' axis; the default applies when the member is omitted "
                   "-- delete it or add entries");
  }
}

/// L701 (weights) + L703 (names): one weighted axis checked in place.
void check_axis(const std::vector<serve::FleetWeight>& axis,
                const std::string& member, const std::string& kind,
                const std::vector<std::string>& valid, const std::string& path,
                util::DiagnosticSink& sink) {
  double total = 0.0;
  for (std::size_t i = 0; i < axis.size(); ++i) {
    const std::string entry_path =
        path + "." + member + "[" + std::to_string(i) + "]";
    if (axis[i].weight <= 0.0) {
      sink.error("L701", entry_path,
                 "weight of '" + axis[i].name +
                     "' must be positive; a zero weight silently removes the "
                     "entry, a negative one corrupts the draw");
    }
    total += axis[i].weight;
    if (std::find(valid.begin(), valid.end(), axis[i].name) == valid.end()) {
      sink.error("L703", entry_path,
                 util::unknown_name_message(kind, axis[i].name, valid));
    }
  }
  if (!axis.empty() && total <= 0.0) {
    sink.error("L701", path + "." + member,
               "'" + member + "' weights sum to zero; nothing can be drawn");
  }
}

void check_range(const serve::FleetRange& range, const std::string& member,
                 const std::string& path, util::DiagnosticSink& sink) {
  if (range.hi < range.lo) {
    sink.error("L701", path + "." + member,
               "'" + member + "' range is inverted (hi " +
                   std::to_string(range.hi) + " < lo " +
                   std::to_string(range.lo) + ")");
  }
}

}  // namespace

void lint_fleet(const serve::FleetSpec& spec, const util::JsonValue* json,
                const std::string& path, util::DiagnosticSink& sink,
                const LintOptions& options) {
  lint_experiment(spec.base, path + ".base", sink, options);

  if (json != nullptr && json->is_object()) {
    check_empty_axis(*json, "platforms", path, sink);
    check_empty_axis(*json, "families", path, sink);
  }

  const sim::PlatformRegistry& registry = sim::PlatformRegistry::instance();
  check_axis(spec.platforms, "platforms", "platform", registry.names(), path,
             sink);
  check_axis(spec.families, "families", "scenario family",
             standard_family_names(), path, sink);

  check_range(spec.ambient_c, "ambient_c", path, sink);
  check_range(spec.background_duty, "background_duty", path, sink);
  if (spec.background_duty.lo < 0.0 || spec.background_duty.hi > 1.0) {
    sink.error("L701", path + ".background_duty",
               "'background_duty' must lie within [0, 1]");
  }

  // L704: an ambient range reaching a sampled platform's thermal limit --
  // every device drawn near the top of the range starts in (or instantly
  // enters) violation, which no policy can manage away.
  const std::vector<serve::FleetWeight> platforms =
      spec.platforms.empty()
          ? std::vector<serve::FleetWeight>{
                {sim::resolved_platform_name(spec.base), 1.0}}
          : spec.platforms;
  for (const serve::FleetWeight& e : platforms) {
    if (!registry.contains(e.name)) continue;  // L703 already reported
    const double t_max = registry.get(e.name)->default_t_max_c;
    if (spec.ambient_c.hi >= t_max) {
      sink.error("L704", path + ".ambient_c",
                 "ambient_c reaches " + std::to_string(spec.ambient_c.hi) +
                     " C, at or above platform '" + e.name +
                     "' t_max of " + std::to_string(t_max) +
                     " C; devices sampled there are unconditionally in "
                     "thermal violation");
    }
  }

  // L702: retained traces across a fleet-scale expansion.
  if (spec.retain_traces && spec.device_count > kTracedDevicesWarning) {
    sink.warning("L702", path + ".retain_traces",
                 "retain_traces keeps a full trace for each of the " +
                     std::to_string(spec.device_count) +
                     " sampled devices; that defeats the memory-flat "
                     "aggregation -- set it false and re-run single devices "
                     "when a trace is needed");
  }

  // L705: a wave larger than the fleet is harmless but suggests the two
  // knobs were swapped.
  if (spec.wave_size > spec.device_count) {
    sink.note("L705", path + ".wave_size",
              "wave_size " + std::to_string(spec.wave_size) +
                  " exceeds device_count " +
                  std::to_string(spec.device_count) +
                  "; the fleet runs as a single wave");
  }
}

}  // namespace dtpm::lint
