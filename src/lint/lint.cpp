// The lint driver: document-kind detection, the collecting parse, and the
// decision of when semantic passes run. Mirrors a compiler front end --
// syntax (parse diagnostics, L0xx) gates semantics (L1xx+): a document that
// failed to parse cleanly gets its parse findings only, because semantic
// checks over a knowingly partial value would report follow-on noise.
#include "lint/lint.hpp"

#include <exception>
#include <string>

#include "serve/fleet_io.hpp"
#include "util/json.hpp"

namespace dtpm::lint {

namespace {

/// True when the document uses any sweep-only member. An experiment
/// document uses the singular forms ("benchmark", "platform", "policy"), so
/// any plural axis or a "base"/"scenarios" block marks a sweep grid.
bool looks_like_sweep(const util::JsonValue& json) {
  static const char* const kSweepMembers[] = {
      "base",  "benchmarks", "platforms", "policies",
      "seeds", "dtpm_grid",  "scenarios"};
  for (const char* member : kSweepMembers) {
    if (json.find(member) != nullptr) return true;
  }
  return false;
}

}  // namespace

void lint_document(const util::JsonValue& json, const std::string& path,
                   util::DiagnosticSink& sink, const LintOptions& options) {
  const std::size_t errors_before = sink.error_count();
  // Fleet first: a fleet spec also has "base", so the sweep check would
  // otherwise claim it. "device_count" is the fleet discriminator.
  if (json.is_object() && json.find("device_count") != nullptr) {
    const serve::FleetSpec spec = serve::fleet_from_json(json, path, sink);
    if (sink.error_count() == errors_before) {
      lint_fleet(spec, &json, path, sink, options);
    }
    return;
  }
  if (json.is_object() && looks_like_sweep(json)) {
    const sim::SweepSpec spec = sim::sweep_from_json(json, path, sink);
    if (sink.error_count() == errors_before) {
      lint_sweep(spec, &json, path, sink, options);
    }
    return;
  }
  if (json.is_object() && json.find("floorplan") != nullptr) {
    // A standalone platform file (load_platform's input).
    const sim::PlatformDescriptor descriptor =
        sim::platform_from_json(json, path, sink);
    if (sink.error_count() == errors_before) {
      lint_platform(descriptor, path, sink, options);
    }
    return;
  }
  const sim::ExperimentConfig config =
      sim::experiment_from_json(json, path, sink);
  if (sink.error_count() != errors_before) return;
  lint_experiment(config, path, sink, options);
  // L304 is about *standalone* runs only -- inside a sweep base, "batched"
  // is exactly what enables the lockstep lane, so the driver (which knows
  // the document kind) owns this note rather than lint_experiment.
  if (config.engine == sim::Engine::kBatched) {
    sink.note("L304", path + ".engine",
              "'batched' engages the lockstep lane only inside a batch "
              "wave; a standalone run behaves as 'propagator'");
  }
}

void lint_file(const std::string& file_path, util::DiagnosticSink& sink,
               const LintOptions& options) {
  util::JsonValue json;
  try {
    json = util::json_parse_file(file_path);
  } catch (const std::exception& e) {
    // File access and JSON syntax failures in one code: there is no
    // document to attach a deeper path to.
    sink.error("L001", "$", e.what());
    return;
  }
  lint_document(json, "$", sink, options);
}

}  // namespace dtpm::lint
