// Static analysis of the data layer: everything `dtpm lint` knows how to
// check, exposed as composable passes over parsed artifacts. Nothing here
// executes a simulation -- the passes inspect descriptors, configs, and
// sweep documents and report findings into a util::DiagnosticSink.
//
// Layering: sim/config_io's collecting parsers produce the parse-level
// diagnostics (codes L001-L006); the passes below add the semantic layers
// on top. lint_document is the driver the CLI uses -- it detects the
// document kind (experiment, standalone platform, sweep grid), runs the
// collecting parse, and runs the semantic passes only when the parse
// produced no errors (semantics over a knowingly broken value would only
// bury the parse findings under follow-ons).
//
// Diagnostic code blocks (stable; documented in README "Linting configs"):
//   L0xx  parse: syntax, types, ranges, unknown fields/names, structure
//   L1xx  floorplan graph: connectivity, roles, duplicate/self edges, fan
//   L2xx  OPP tables: monotonicity, duplicates, cluster mismatch
//   L3xx  cross-field: abort vs t_max, sensor noise, interval divisibility,
//         engine semantics
//   L4xx  policy params vs registry-declared schemas
//   L5xx  sweep grids: empty axes, duplicates, expansion size
//   L6xx  deep (opt-in): equilibrium/stability pre-check
//   L7xx  fleet specs: degenerate distributions, trace-retention blowup,
//         unknown axis names, ambient vs thermal limit, wave sizing
#pragma once

#include <string>

#include "serve/fleet.hpp"
#include "sim/config_io.hpp"
#include "util/diagnostics.hpp"

namespace dtpm::lint {

struct LintOptions {
  /// Run the expensive equilibrium/stability pre-check
  /// (analysis::validate_platform_stability) on every linted platform.
  bool deep = false;
};

// --- Semantic passes over typed artifacts ------------------------------------
// Callable directly on C++-built values (what `dtpm lint --platforms` does
// for the registry); lint_document routes parsed JSON through them.

/// Floorplan graph + OPP-table + platform cross-field checks (L1xx, L2xx,
/// L302), plus the deep stability pass (L601) when options.deep is set.
void lint_platform(const sim::PlatformDescriptor& descriptor,
                   const std::string& path, util::DiagnosticSink& sink,
                   const LintOptions& options = {});

/// Cross-field experiment checks (L3xx) and policy-param schema validation
/// (L4xx); also lints the config's resolved platform.
void lint_experiment(const sim::ExperimentConfig& config,
                     const std::string& path, util::DiagnosticSink& sink,
                     const LintOptions& options = {});

/// Sweep-axis checks (L5xx) and the base-experiment passes. `json` is the
/// source document when available (detects explicitly-empty axis arrays,
/// which the parsed spec cannot distinguish from absent ones); pass nullptr
/// for C++-built specs.
void lint_sweep(const sim::SweepSpec& spec, const util::JsonValue* json,
                const std::string& path, util::DiagnosticSink& sink,
                const LintOptions& options = {});

/// Fleet-spec checks (L7xx) and the experiment passes over the base config.
/// `json` plays the same role as in lint_sweep (explicitly-empty axis
/// detection); pass nullptr for C++-built specs.
void lint_fleet(const serve::FleetSpec& spec, const util::JsonValue* json,
                const std::string& path, util::DiagnosticSink& sink,
                const LintOptions& options = {});

// --- Document drivers --------------------------------------------------------

/// Lints one parsed JSON document: detects its kind (sweep grid when any
/// sweep-only member is present, standalone platform when "floorplan" is,
/// experiment otherwise), runs the collecting parse, then the semantic
/// passes on a parse-clean value.
void lint_document(const util::JsonValue& json, const std::string& path,
                   util::DiagnosticSink& sink, const LintOptions& options = {});

/// Reads and lints one file; file-access and JSON syntax errors become L001.
void lint_file(const std::string& file_path, util::DiagnosticSink& sink,
               const LintOptions& options = {});

}  // namespace dtpm::lint
