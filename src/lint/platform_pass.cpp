// Platform-descriptor lint: floorplan graph checks (L1xx), OPP-table checks
// (L2xx), platform-local cross-field checks, and the opt-in deep stability
// pre-check (L601). Works on any PlatformDescriptor -- parsed from JSON or
// built in C++ -- so `dtpm lint --platforms` can sweep the whole registry.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "lint/lint.hpp"
#include "util/json.hpp"
#include "util/names.hpp"

namespace dtpm::lint {

namespace {

/// Compact numeric rendering for messages ("0.9", "63", "1.5e+09").
std::string num(double value) {
  return util::json_write(util::JsonValue(value), 0);
}

std::string mhz(double frequency_hz) {
  return num(frequency_hz / 1e6) + " MHz";
}

void lint_floorplan(const thermal::FloorplanSpec& spec,
                    const std::string& path, util::DiagnosticSink& sink) {
  std::map<std::string, std::size_t> index;
  std::vector<std::string> node_names;
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    index.emplace(spec.nodes[i].name, i);
    node_names.push_back(spec.nodes[i].name);
  }

  // L102: a role (heat injection site, sensor site) naming no node. The
  // JSON parser rejects these too, but C++-built descriptors arrive here
  // unchecked.
  auto check_role = [&](const std::string& name, const std::string& at) {
    if (name.empty() || index.count(name) != 0) return true;
    std::string message = "role references unknown node '" + name + "'";
    const std::string suggestion = util::closest_match(name, node_names);
    if (!suggestion.empty()) message += ", did you mean '" + suggestion + "'?";
    sink.error("L102", at, message);
    return false;
  };
  for (std::size_t i = 0; i < spec.core_nodes.size(); ++i) {
    check_role(spec.core_nodes[i],
               path + ".core_nodes[" + std::to_string(i) + "]");
  }
  check_role(spec.little_node, path + ".little_node");
  check_role(spec.gpu_node, path + ".gpu_node");
  check_role(spec.mem_node, path + ".mem_node");
  bool sensors_resolved = true;
  for (std::size_t i = 0; i < spec.sensor_nodes.size(); ++i) {
    sensors_resolved &=
        check_role(spec.sensor_nodes[i],
                   path + ".sensor_nodes[" + std::to_string(i) + "]");
  }

  // L103/L104: non-positive thermal parameters. A boundary node's
  // capacitance is unused (its temperature is pinned), so only heat-bearing
  // nodes are held to it.
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const thermal::FloorplanNodeSpec& node = spec.nodes[i];
    if (!node.is_boundary && node.capacitance_j_per_k <= 0.0) {
      sink.error("L103",
                 path + ".nodes[" + std::to_string(i) + "].capacitance_j_per_k",
                 "non-positive capacitance (" + num(node.capacitance_j_per_k) +
                     " J/K) on node '" + node.name +
                     "' makes its temperature dynamics ill-defined");
    }
  }

  // Edge sweep: dangling endpoints (L102), self-loops (L108), non-positive
  // conductance (L104), duplicate pairs (L107).
  std::set<std::pair<std::string, std::string>> seen_pairs;
  for (std::size_t i = 0; i < spec.edges.size(); ++i) {
    const thermal::FloorplanEdgeSpec& edge = spec.edges[i];
    const std::string edge_path = path + ".edges[" + std::to_string(i) + "]";
    const bool a_known = check_role(edge.node_a, edge_path + ".a");
    const bool b_known = check_role(edge.node_b, edge_path + ".b");
    if (edge.conductance_w_per_k <= 0.0) {
      sink.error("L104", edge_path + ".conductance_w_per_k",
                 "non-positive conductance (" + num(edge.conductance_w_per_k) +
                     " W/K); the edge conducts no heat");
    }
    if (!a_known || !b_known) continue;
    if (edge.node_a == edge.node_b) {
      sink.error("L108", edge_path,
                 "self-loop edge on node '" + edge.node_a +
                     "'; an edge must couple two distinct nodes");
      continue;
    }
    const auto pair = std::minmax(edge.node_a, edge.node_b);
    if (!seen_pairs.insert(pair).second) {
      sink.warning("L107", edge_path,
                   "duplicate edge between '" + pair.first + "' and '" +
                       pair.second +
                       "'; parallel conductances add -- merge into one edge");
    }
  }

  // L101: every node must have a conductance path to a boundary node,
  // otherwise its heat has nowhere to go and its temperature can only run
  // away. BFS from the boundary set over the (valid) edges.
  std::vector<std::size_t> boundary;
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    if (spec.nodes[i].is_boundary) boundary.push_back(i);
  }
  if (boundary.empty()) {
    sink.error("L101", path + ".nodes",
               "no boundary (ambient) node; every node is thermally "
               "disconnected from the environment");
  } else {
    std::vector<std::vector<std::size_t>> adjacency(spec.nodes.size());
    for (const thermal::FloorplanEdgeSpec& edge : spec.edges) {
      const auto a = index.find(edge.node_a);
      const auto b = index.find(edge.node_b);
      if (a == index.end() || b == index.end() || a->second == b->second) {
        continue;  // already reported above
      }
      adjacency[a->second].push_back(b->second);
      adjacency[b->second].push_back(a->second);
    }
    std::vector<bool> reached(spec.nodes.size(), false);
    std::vector<std::size_t> frontier = boundary;
    for (std::size_t i : frontier) reached[i] = true;
    while (!frontier.empty()) {
      const std::size_t node = frontier.back();
      frontier.pop_back();
      for (std::size_t next : adjacency[node]) {
        if (!reached[next]) {
          reached[next] = true;
          frontier.push_back(next);
        }
      }
    }
    for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
      if (!reached[i]) {
        sink.error("L101", path + ".nodes[" + std::to_string(i) + "]",
                   "node '" + spec.nodes[i].name +
                       "' has no conductance path to a boundary node; its "
                       "temperature can only run away");
      }
    }
  }

  // L106: a per-core hotspot no sensor observes. The policies regulate off
  // sensor readings, so an uninstrumented hotspot is invisible to control.
  if (sensors_resolved && !spec.sensor_nodes.empty()) {
    for (const std::string& core : spec.core_nodes) {
      if (index.count(core) != 0 &&
          std::find(spec.sensor_nodes.begin(), spec.sensor_nodes.end(),
                    core) == spec.sensor_nodes.end()) {
        sink.warning("L106", path + ".sensor_nodes",
                     "core hotspot '" + core +
                         "' has no sensor site; thermal policies cannot "
                         "observe it");
      }
    }
  }
}

void lint_opp_table(const std::vector<power::Opp>& opps,
                    const std::string& path, util::DiagnosticSink& sink) {
  if (opps.empty()) {
    sink.error("L201", path,
               "empty operating-point table; the cluster has no selectable "
               "frequency");
    return;
  }
  for (std::size_t i = 1; i < opps.size(); ++i) {
    const std::string row = path + "[" + std::to_string(i) + "]";
    if (opps[i].frequency_hz == opps[i - 1].frequency_hz) {
      sink.error("L203", row,
                 "duplicate operating point: " + mhz(opps[i].frequency_hz) +
                     " appears twice");
    } else if (opps[i].frequency_hz < opps[i - 1].frequency_hz) {
      sink.error("L202", row,
                 "operating points must be sorted by ascending frequency (" +
                     mhz(opps[i].frequency_hz) + " after " +
                     mhz(opps[i - 1].frequency_hz) + ")");
    }
    if (opps[i].voltage_v < opps[i - 1].voltage_v) {
      sink.warning("L204", row + ".voltage_v",
                   "voltage drops from " + num(opps[i - 1].voltage_v) +
                       " V to " + num(opps[i].voltage_v) +
                       " V as frequency rises; DVFS rows are normally "
                       "voltage-monotone -- check for swapped rows");
    }
  }
}

}  // namespace

void lint_platform(const sim::PlatformDescriptor& descriptor,
                   const std::string& path, util::DiagnosticSink& sink,
                   const LintOptions& options) {
  lint_floorplan(descriptor.floorplan, path + ".floorplan", sink);
  lint_opp_table(descriptor.big_opps, path + ".big_opps", sink);
  lint_opp_table(descriptor.little_opps, path + ".little_opps", sink);
  lint_opp_table(descriptor.gpu_opps, path + ".gpu_opps", sink);

  // L205: a little cluster clocking at or above the big cluster's ceiling
  // usually means the two tables were swapped.
  if (!descriptor.big_opps.empty() && !descriptor.little_opps.empty()) {
    const double big_max = descriptor.big_opps.back().frequency_hz;
    const double little_max = descriptor.little_opps.back().frequency_hz;
    if (little_max >= big_max) {
      sink.warning("L205", path + ".little_opps",
                   "little-cluster top frequency (" + mhz(little_max) +
                       ") is not below the big-cluster top (" + mhz(big_max) +
                       "); the cluster tables may be swapped");
    }
  }

  // L105: a fan table that varies (conductance steps or powered speeds) on
  // a floorplan with no fan-modulated edge -- fan actuation would be a
  // silent no-op. The passive idiom (all speeds equal, zero power) is the
  // documented way to express "fanless" and does not trigger.
  if (!descriptor.floorplan.has_fan_edge()) {
    const thermal::FanParams& fan = descriptor.fan;
    const bool varies = fan.conductance_low != fan.conductance_off ||
                        fan.conductance_half != fan.conductance_off ||
                        fan.conductance_full != fan.conductance_off ||
                        fan.power_off != 0.0 || fan.power_low != 0.0 ||
                        fan.power_half != 0.0 || fan.power_full != 0.0;
    if (varies) {
      sink.warning("L105", path + ".fan",
                   "fan table varies but the floorplan has no fan-modulated "
                   "edge; fan actuation is a silent no-op on this platform");
    }
  }

  // L302: sensor noise above the quantization step means readings dither
  // across quantization levels every interval -- usually a units mistake.
  if (descriptor.temp_sensor.quantization_c > 0.0 &&
      descriptor.temp_sensor.noise_stddev_c >
          descriptor.temp_sensor.quantization_c) {
    sink.warning("L302", path + ".temp_sensor.noise_stddev_c",
                 "sensor noise (sigma = " +
                     num(descriptor.temp_sensor.noise_stddev_c) +
                     " C) exceeds the quantization step (" +
                     num(descriptor.temp_sensor.quantization_c) +
                     " C); readings will dither across quantization levels");
  }

  // L601 (opt-in --deep): the coupled power-temperature equilibrium and
  // stability pre-check the registry applies at registration time.
  if (options.deep) {
    try {
      analysis::validate_platform_stability(descriptor);
    } catch (const std::exception& e) {
      sink.error("L601", path,
                 std::string("stability pre-check failed: ") + e.what());
    }
  }
}

}  // namespace dtpm::lint
