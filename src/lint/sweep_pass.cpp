// Sweep-grid lint (L5xx): axis hygiene and expansion-size checks, plus the
// experiment passes over the base config. Axis *names* (unknown benchmarks,
// platforms, policies, families -- with did-you-mean suggestions) are
// already validated by the collecting parser, so this pass focuses on what
// the parsed spec alone can say about the grid's shape.
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "util/json.hpp"

namespace dtpm::lint {

namespace {

/// Expanded-run count past which a per-run trace recording warning (L306)
/// fires; traces dominate memory and output size at fleet scale.
constexpr std::size_t kTracedRunsWarning = 32;

/// Expanded-run count past which the size note (L503) fires.
constexpr std::size_t kExpansionNote = 1000;

/// L501: an axis written as an explicitly empty array. Only the source
/// document can tell (the parsed spec cannot distinguish empty from
/// absent); axes inherit from base when omitted, so an empty literal is
/// almost always an editing accident.
void check_empty_axis(const util::JsonValue& json, const std::string& member,
                      const std::string& path, util::DiagnosticSink& sink) {
  const util::JsonValue* v = json.find(member);
  if (v != nullptr && v->is_array() && v->as_array().empty()) {
    sink.error("L501", path + "." + member,
               "explicitly empty '" + member +
                   "' axis; axes inherit from base when omitted -- delete "
                   "the member or add entries");
  }
}

/// L502: duplicate axis entries -- each duplicate multiplies the expansion
/// with runs identical to ones already in the grid.
template <typename T>
void check_duplicates(const std::vector<T>& axis, const std::string& member,
                      const std::string& path, util::DiagnosticSink& sink,
                      std::string (*render)(const T&)) {
  std::set<T> seen;
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (!seen.insert(axis[i]).second) {
      sink.warning("L502", path + "." + member + "[" + std::to_string(i) + "]",
                   "duplicate '" + member + "' entry " + render(axis[i]) +
                       "; each duplicate re-runs an identical grid point");
    }
  }
}

std::string render_string(const std::string& value) { return "'" + value + "'"; }

std::string render_seed(const std::uint64_t& value) {
  return std::to_string(value);
}

std::size_t axis_factor(std::size_t size) { return size == 0 ? 1 : size; }

}  // namespace

void lint_sweep(const sim::SweepSpec& spec, const util::JsonValue* json,
                const std::string& path, util::DiagnosticSink& sink,
                const LintOptions& options) {
  lint_experiment(spec.base, path + ".base", sink, options);

  if (json != nullptr && json->is_object()) {
    check_empty_axis(*json, "benchmarks", path, sink);
    check_empty_axis(*json, "platforms", path, sink);
    check_empty_axis(*json, "policies", path, sink);
    check_empty_axis(*json, "seeds", path, sink);
    check_empty_axis(*json, "dtpm_grid", path, sink);
    if (const util::JsonValue* scenarios = json->find("scenarios")) {
      if (scenarios->is_object()) {
        check_empty_axis(*scenarios, "families", path + ".scenarios", sink);
        check_empty_axis(*scenarios, "seeds", path + ".scenarios", sink);
      }
    }
  }

  check_duplicates(spec.benchmarks, "benchmarks", path, sink, render_string);
  check_duplicates(spec.platforms, "platforms", path, sink, render_string);
  check_duplicates(spec.policies, "policies", path, sink, render_string);
  check_duplicates(spec.seeds, "seeds", path, sink, render_seed);
  check_duplicates(spec.families, "families", path + ".scenarios", sink,
                   render_string);
  check_duplicates(spec.scenario_seeds, "seeds", path + ".scenarios", sink,
                   render_seed);

  // Duplicate dtpm_grid points compare by serialization: DtpmParams has no
  // operator==, but its JSON round-trip is canonical.
  {
    std::set<std::string> seen;
    for (std::size_t i = 0; i < spec.dtpm_grid.size(); ++i) {
      const std::string rendered =
          util::json_write(sim::to_json(spec.dtpm_grid[i]), 0);
      if (!seen.insert(rendered).second) {
        sink.warning("L502",
                     path + ".dtpm_grid[" + std::to_string(i) + "]",
                     "duplicate 'dtpm_grid' entry; each duplicate re-runs an "
                     "identical grid point");
      }
    }
  }

  // Expansion size: the product of the populated axes (empty = one run
  // inheriting base). Scenario selections expand families x seeds instead
  // of benchmarks x seeds x dtpm_grid.
  std::size_t runs = axis_factor(spec.platforms.size()) *
                     axis_factor(spec.policies.size());
  if (spec.has_scenarios) {
    runs *= axis_factor(spec.families.size()) *
            axis_factor(spec.scenario_seeds.size());
  } else {
    runs *= axis_factor(spec.benchmarks.size()) *
            axis_factor(spec.seeds.size()) *
            axis_factor(spec.dtpm_grid.size());
  }

  // L306: per-run traces across a large expansion.
  if (spec.base.record_trace && runs > kTracedRunsWarning) {
    sink.warning("L306", path + ".base.record_trace",
                 "record_trace is on for each of the " + std::to_string(runs) +
                     " expanded runs; traces dominate memory and output at "
                     "this scale -- set it false and re-run single cells "
                     "when a trace is needed");
  }

  // L503: a size heads-up for very large grids.
  if (runs >= kExpansionNote) {
    sink.note("L503", path,
              "this grid expands to " + std::to_string(runs) + " runs");
  }
}

}  // namespace dtpm::lint
