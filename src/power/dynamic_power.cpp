#include "power/dynamic_power.hpp"

#include <algorithm>
#include <stdexcept>

namespace dtpm::power {

double alpha_c_from_power(double dynamic_power_w, double vdd_v,
                          double frequency_hz) {
  if (vdd_v <= 0.0 || frequency_hz <= 0.0) {
    throw std::invalid_argument("alpha_c_from_power: non-positive V or f");
  }
  return dynamic_power_w / (vdd_v * vdd_v * frequency_hz);
}

AlphaCEstimator::AlphaCEstimator(const Params& params)
    : params_(params), alpha_c_(params.initial_alpha_c) {
  if (params_.smoothing <= 0.0 || params_.smoothing > 1.0) {
    throw std::invalid_argument("AlphaCEstimator: smoothing must be in (0,1]");
  }
}

void AlphaCEstimator::update(double observed_dynamic_power_w, double vdd_v,
                             double frequency_hz) {
  const double sample = std::clamp(
      alpha_c_from_power(std::max(observed_dynamic_power_w, 0.0), vdd_v,
                         frequency_hz),
      params_.min_alpha_c, params_.max_alpha_c);
  alpha_c_ = (1.0 - params_.smoothing) * alpha_c_ + params_.smoothing * sample;
}

double AlphaCEstimator::predict_power_w(double vdd_v,
                                        double frequency_hz) const {
  return dynamic_power_w(alpha_c_, vdd_v, frequency_hz);
}

void AlphaCEstimator::reset(double alpha_c) {
  alpha_c_ = std::clamp(alpha_c, params_.min_alpha_c, params_.max_alpha_c);
}

}  // namespace dtpm::power
