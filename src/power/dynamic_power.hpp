// Dynamic (switching) power model, P_dyn = alphaC * Vdd^2 * f (Eq. 4.1), and
// the run-time alphaC estimator of Fig. 4.4: at every control interval the
// measured total power is decomposed by subtracting modeled leakage, and the
// remaining dynamic component yields the activity-capacitance product at the
// current (V, f). An exponential moving average smooths sensor noise while
// tracking workload phase changes.
#pragma once

namespace dtpm::power {

/// Switching power in W for an activity-capacitance product (F), supply (V)
/// and clock (Hz). Inline: this runs several times per plant substep.
inline double dynamic_power_w(double alpha_c_f, double vdd_v,
                              double frequency_hz) {
  return alpha_c_f * vdd_v * vdd_v * frequency_hz;
}

/// Inverse: alphaC from an observed dynamic power at known (V, f).
double alpha_c_from_power(double dynamic_power_w, double vdd_v,
                          double frequency_hz);

/// EMA tracker of alphaC. Clamps to a configurable non-negative range so a
/// transient sensor glitch (e.g. dynamic power momentarily computed negative
/// when leakage is over-estimated) cannot poison later power predictions.
class AlphaCEstimator {
 public:
  struct Params {
    double smoothing = 0.35;      ///< EMA weight of the newest sample
    double initial_alpha_c = 1e-10;  ///< F, before any sample arrives
    double min_alpha_c = 0.0;
    double max_alpha_c = 1e-8;
  };

  AlphaCEstimator() : AlphaCEstimator(Params{}) {}
  explicit AlphaCEstimator(const Params& params);

  /// Feeds one decomposed dynamic-power observation.
  void update(double observed_dynamic_power_w, double vdd_v,
              double frequency_hz);

  /// Current estimate in F.
  double value() const { return alpha_c_; }

  /// Predicted dynamic power at a candidate operating point.
  double predict_power_w(double vdd_v, double frequency_hz) const;

  void reset(double alpha_c);

 private:
  Params params_;
  double alpha_c_;
};

}  // namespace dtpm::power
