#include "power/leakage.hpp"

#include <cmath>

namespace dtpm::power {

double LeakageModel::current_a(double temp_c, double vdd_v) const {
  const double t_k = celsius_to_kelvin(temp_c);
  double subthreshold = params_.c1 * t_k * t_k * std::exp(params_.c2_k / t_k);
  if (params_.dibl_exponent != 0.0 && params_.v_ref > 0.0) {
    subthreshold *= std::pow(vdd_v / params_.v_ref, params_.dibl_exponent);
  }
  return subthreshold + params_.i_gate_a;
}

double LeakageModel::power_w(double temp_c, double vdd_v) const {
  return vdd_v * current_a(temp_c, vdd_v);
}

}  // namespace dtpm::power
