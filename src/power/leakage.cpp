// LeakageModel is header-only (the evaluation inlines into the per-substep
// power loops); this TU intentionally has no out-of-line definitions.
#include "power/leakage.hpp"
