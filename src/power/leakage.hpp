// Temperature-dependent leakage model (Eq. 4.2 of the paper):
//
//     I_leak = c1 * T^2 * exp(c2 / T) + I_gate          (T in Kelvin, c2 < 0)
//     P_leak = Vdd * I_leak
//
// The plant ("true physics") additionally scales the subthreshold term with
// supply voltage (a DIBL-like effect), which the paper's fitted model does
// not capture -- this is a deliberate, realistic structural mismatch between
// what the hardware does and what the modeling methodology of Chapter 4 can
// recover from furnace measurements at a single fixed voltage.
#pragma once

#include <cmath>

namespace dtpm::power {

/// Celsius/Kelvin helpers used across the power stack.
constexpr double kKelvinOffset = 273.15;
constexpr double celsius_to_kelvin(double c) { return c + kKelvinOffset; }

/// Parameters of the leakage current model.
struct LeakageParams {
  double c1 = 0.0;      ///< A/K^2 prefactor of the subthreshold term
  double c2_k = 0.0;    ///< exponent scale in Kelvin (negative)
  double i_gate_a = 0.0;  ///< temperature-independent gate leakage, A
  double v_ref = 1.0;   ///< voltage at which c1/i_gate were characterized
  /// Exponent of the (Vdd/v_ref) scaling on the subthreshold term. The
  /// fitted model uses 0 (no scaling beyond the explicit Vdd factor of
  /// P = V*I); the plant uses ~1.5.
  double dibl_exponent = 0.0;
};

inline bool operator==(const LeakageParams& a, const LeakageParams& b) {
  return a.c1 == b.c1 && a.c2_k == b.c2_k && a.i_gate_a == b.i_gate_a &&
         a.v_ref == b.v_ref && a.dibl_exponent == b.dibl_exponent;
}

/// The leakage model collapsed to coefficients at a fixed supply voltage:
///
///     power_w(T, vdd) == t2_scale_w * Tk^2 * exp(c2_k / Tk) + gate_w,
///     Tk = celsius_to_kelvin(T).
///
/// This is the form the structure-of-arrays batch power kernel evaluates
/// across lanes (sim/batch_lane.cpp): the voltage factors (including the
/// DIBL term) fold into the two scale coefficients, leaving temperature as
/// the only per-substep input. Equal to LeakageModel::power_w up to
/// floating-point reassociation.
struct LeakageCoeffs {
  double t2_scale_w = 0.0;  ///< vdd * c1 * dibl(vdd), W/K^2
  double c2_k = 0.0;        ///< exponent scale, Kelvin
  double gate_w = 0.0;      ///< vdd * i_gate, W
};

/// Evaluates leakage current and power from the parameters.
///
/// The DIBL factor pow(Vdd/v_ref, e) depends only on the supply voltage,
/// which changes at DVFS decisions (at most once per control interval) while
/// current_a runs every plant substep for every rail -- so the factor is
/// memoized per voltage. The cache returns the exact pow() result, so
/// evaluation stays bit-identical to the uncached model.
class LeakageModel {
 public:
  explicit LeakageModel(const LeakageParams& params = {}) : params_(params) {}

  /// Leakage current in A at the given temperature (Celsius) and supply.
  /// Inline: this runs for every rail on every plant substep.
  double current_a(double temp_c, double vdd_v) const {
    const double t_k = celsius_to_kelvin(temp_c);
    double subthreshold = params_.c1 * t_k * t_k * std::exp(params_.c2_k / t_k);
    if (params_.dibl_exponent != 0.0 && params_.v_ref > 0.0) {
      if (vdd_v != cached_vdd_v_) {
        cached_vdd_v_ = vdd_v;
        cached_dibl_factor_ =
            std::pow(vdd_v / params_.v_ref, params_.dibl_exponent);
      }
      subthreshold *= cached_dibl_factor_;
    }
    return subthreshold + params_.i_gate_a;
  }

  /// Leakage power in W: Vdd * I_leak.
  double power_w(double temp_c, double vdd_v) const {
    return vdd_v * current_a(temp_c, vdd_v);
  }

  /// Coefficient form of this model at a fixed supply (see LeakageCoeffs).
  LeakageCoeffs coeffs_at(double vdd_v) const {
    double dibl = 1.0;
    if (params_.dibl_exponent != 0.0 && params_.v_ref > 0.0) {
      dibl = std::pow(vdd_v / params_.v_ref, params_.dibl_exponent);
    }
    return {vdd_v * params_.c1 * dibl, params_.c2_k,
            vdd_v * params_.i_gate_a};
  }

  const LeakageParams& params() const { return params_; }

 private:
  LeakageParams params_;
  /// Memoized pow(vdd/v_ref, dibl_exponent) for the last-seen vdd.
  mutable double cached_vdd_v_ = -1.0;
  mutable double cached_dibl_factor_ = 1.0;
};

}  // namespace dtpm::power
