// Temperature-dependent leakage model (Eq. 4.2 of the paper):
//
//     I_leak = c1 * T^2 * exp(c2 / T) + I_gate          (T in Kelvin, c2 < 0)
//     P_leak = Vdd * I_leak
//
// The plant ("true physics") additionally scales the subthreshold term with
// supply voltage (a DIBL-like effect), which the paper's fitted model does
// not capture -- this is a deliberate, realistic structural mismatch between
// what the hardware does and what the modeling methodology of Chapter 4 can
// recover from furnace measurements at a single fixed voltage.
#pragma once

namespace dtpm::power {

/// Celsius/Kelvin helpers used across the power stack.
constexpr double kKelvinOffset = 273.15;
constexpr double celsius_to_kelvin(double c) { return c + kKelvinOffset; }

/// Parameters of the leakage current model.
struct LeakageParams {
  double c1 = 0.0;      ///< A/K^2 prefactor of the subthreshold term
  double c2_k = 0.0;    ///< exponent scale in Kelvin (negative)
  double i_gate_a = 0.0;  ///< temperature-independent gate leakage, A
  double v_ref = 1.0;   ///< voltage at which c1/i_gate were characterized
  /// Exponent of the (Vdd/v_ref) scaling on the subthreshold term. The
  /// fitted model uses 0 (no scaling beyond the explicit Vdd factor of
  /// P = V*I); the plant uses ~1.5.
  double dibl_exponent = 0.0;
};

/// Evaluates leakage current and power from the parameters.
class LeakageModel {
 public:
  explicit LeakageModel(const LeakageParams& params = {}) : params_(params) {}

  /// Leakage current in A at the given temperature (Celsius) and supply.
  double current_a(double temp_c, double vdd_v) const;

  /// Leakage power in W: Vdd * I_leak.
  double power_w(double temp_c, double vdd_v) const;

  const LeakageParams& params() const { return params_; }

 private:
  LeakageParams params_;
};

}  // namespace dtpm::power
