#include "power/opp.hpp"

#include <cmath>
#include <stdexcept>

namespace dtpm::power {
namespace {

constexpr double kMega = 1e6;

bool close(double a, double b) { return std::fabs(a - b) < 1.0; }

}  // namespace

OppTable::OppTable(std::vector<Opp> points) : points_(std::move(points)) {
  if (points_.empty()) throw std::invalid_argument("OppTable: empty");
  double prev = 0.0;
  for (const auto& p : points_) {
    if (p.frequency_hz <= prev) {
      throw std::invalid_argument("OppTable: frequencies must ascend");
    }
    if (p.voltage_v <= 0.0) {
      throw std::invalid_argument("OppTable: non-positive voltage");
    }
    prev = p.frequency_hz;
  }
}

std::size_t OppTable::level_of(double frequency_hz) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (close(points_[i].frequency_hz, frequency_hz)) return i;
  }
  throw std::invalid_argument("OppTable: frequency not in table");
}

bool OppTable::contains(double frequency_hz) const {
  for (const auto& p : points_) {
    if (close(p.frequency_hz, frequency_hz)) return true;
  }
  return false;
}

const Opp& OppTable::highest_not_above(double frequency_cap_hz) const {
  const Opp* best = &points_.front();
  for (const auto& p : points_) {
    if (p.frequency_hz <= frequency_cap_hz + 1.0) best = &p;
  }
  return *best;
}

const Opp& OppTable::step_down(double frequency_hz) const {
  const Opp* below = nullptr;
  for (const auto& p : points_) {
    if (p.frequency_hz < frequency_hz - 1.0) below = &p;
  }
  return below != nullptr ? *below : points_.front();
}

double OppTable::voltage_at(double frequency_hz) const {
  return points_.at(level_of(frequency_hz)).voltage_v;
}

OppTable big_cluster_opp_table() {
  return OppTable({
      {800 * kMega, 0.92},
      {900 * kMega, 0.95},
      {1000 * kMega, 0.98},
      {1100 * kMega, 1.01},
      {1200 * kMega, 1.04},
      {1300 * kMega, 1.08},
      {1400 * kMega, 1.12},
      {1500 * kMega, 1.16},
      {1600 * kMega, 1.20},
  });
}

OppTable little_cluster_opp_table() {
  return OppTable({
      {500 * kMega, 0.90},
      {600 * kMega, 0.92},
      {700 * kMega, 0.94},
      {800 * kMega, 0.96},
      {900 * kMega, 0.98},
      {1000 * kMega, 1.00},
      {1100 * kMega, 1.02},
      {1200 * kMega, 1.04},
  });
}

OppTable gpu_opp_table() {
  return OppTable({
      {177 * kMega, 0.85},
      {266 * kMega, 0.90},
      {350 * kMega, 0.95},
      {480 * kMega, 1.00},
      {533 * kMega, 1.05},
  });
}

}  // namespace dtpm::power
