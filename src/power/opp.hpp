// Operating performance points (frequency/voltage pairs) for the DVFS
// domains. The frequency lists reproduce Tables 6.1-6.3 of the paper exactly
// (big cluster: nine levels 800-1600 MHz; little cluster: eight levels
// 500-1200 MHz; GPU: 177/266/350/480/533 MHz). Voltages are not published in
// the paper; the curves here follow the stock Exynos 5410 DVFS tables'
// shape.
#pragma once

#include <cstddef>
#include <vector>

namespace dtpm::power {

/// One DVFS operating point.
struct Opp {
  double frequency_hz = 0.0;
  double voltage_v = 0.0;
};

inline bool operator==(const Opp& a, const Opp& b) {
  return a.frequency_hz == b.frequency_hz && a.voltage_v == b.voltage_v;
}

/// Immutable, ascending-frequency list of operating points for one domain.
class OppTable {
 public:
  /// @throws std::invalid_argument if the list is empty, unsorted, or has
  ///         non-positive entries.
  explicit OppTable(std::vector<Opp> points);

  std::size_t size() const { return points_.size(); }
  const Opp& at(std::size_t level) const { return points_.at(level); }
  const Opp& min() const { return points_.front(); }
  const Opp& max() const { return points_.back(); }
  const std::vector<Opp>& points() const { return points_; }

  /// Index of the exact frequency; throws if not a table entry.
  std::size_t level_of(double frequency_hz) const;

  /// True if the frequency is one of the table entries.
  bool contains(double frequency_hz) const;

  /// Highest operating point with frequency <= cap. Returns the lowest point
  /// when the cap is below the whole table (the caller decides whether that
  /// constitutes "budget not satisfiable", per §5.2).
  const Opp& highest_not_above(double frequency_cap_hz) const;

  /// The operating point one level below the given frequency, or the minimum
  /// if already at the bottom.
  const Opp& step_down(double frequency_hz) const;

  /// Voltage at the given table frequency; throws if not a table entry.
  double voltage_at(double frequency_hz) const;

 private:
  std::vector<Opp> points_;
};

/// Table 6.1: big (A15) cluster, 800-1600 MHz in 100 MHz steps.
OppTable big_cluster_opp_table();

/// Table 6.2: little (A7) cluster, 500-1200 MHz in 100 MHz steps.
OppTable little_cluster_opp_table();

/// Table 6.3: GPU, 177/266/350/480/533 MHz.
OppTable gpu_opp_table();

}  // namespace dtpm::power
