#include "power/power_model.hpp"

#include <algorithm>

namespace dtpm::power {

ResourcePowerModel::ResourcePowerModel(
    const LeakageParams& leakage, const AlphaCEstimator::Params& alpha_params)
    : leakage_(leakage), alpha_c_(alpha_params) {}

PowerBreakdown ResourcePowerModel::observe(double measured_total_w,
                                           double temp_c, double vdd_v,
                                           double frequency_hz) {
  PowerBreakdown out;
  out.total_w = measured_total_w;
  out.leakage_w = leakage_.power_w(temp_c, vdd_v);
  out.dynamic_w = std::max(measured_total_w - out.leakage_w, 0.0);
  if (frequency_hz > 0.0 && vdd_v > 0.0) {
    alpha_c_.update(out.dynamic_w, vdd_v, frequency_hz);
  }
  return out;
}

double ResourcePowerModel::predict_total_w(double temp_c, double vdd_v,
                                           double frequency_hz) const {
  return predict_leakage_w(temp_c, vdd_v) +
         predict_dynamic_w(vdd_v, frequency_hz);
}

double ResourcePowerModel::predict_leakage_w(double temp_c,
                                             double vdd_v) const {
  return leakage_.power_w(temp_c, vdd_v);
}

double ResourcePowerModel::predict_dynamic_w(double vdd_v,
                                             double frequency_hz) const {
  return alpha_c_.predict_power_w(vdd_v, frequency_hz);
}

}  // namespace dtpm::power
