// The run-time power model used by the DTPM stack (Chapter 4): per resource,
// a fitted leakage model plus a continuously updated alphaC estimate. It
// decomposes measured total power into leakage + dynamic components and
// predicts the total power of candidate operating points before they are
// applied (Fig. 4.4 and §5.2).
#pragma once

#include <array>

#include "power/dynamic_power.hpp"
#include "power/leakage.hpp"
#include "power/resource.hpp"

namespace dtpm::power {

/// Decomposition of one power reading.
struct PowerBreakdown {
  double total_w = 0.0;
  double leakage_w = 0.0;
  double dynamic_w = 0.0;
};

/// Power model for a single metered resource.
class ResourcePowerModel {
 public:
  ResourcePowerModel() = default;
  ResourcePowerModel(const LeakageParams& leakage,
                     const AlphaCEstimator::Params& alpha_params);

  /// Splits a measured total power into leakage and dynamic components using
  /// the current temperature/voltage, and feeds the dynamic part to the
  /// alphaC estimator (the run-time loop of Fig. 4.4).
  PowerBreakdown observe(double measured_total_w, double temp_c, double vdd_v,
                         double frequency_hz);

  /// Predicted total power at a candidate operating point, using the current
  /// alphaC estimate and the fitted leakage model.
  double predict_total_w(double temp_c, double vdd_v,
                         double frequency_hz) const;

  /// Predicted leakage alone (needed for the dynamic budget of Eq. 5.6).
  double predict_leakage_w(double temp_c, double vdd_v) const;

  /// Predicted dynamic power alone.
  double predict_dynamic_w(double vdd_v, double frequency_hz) const;

  double alpha_c() const { return alpha_c_.value(); }
  const LeakageModel& leakage() const { return leakage_; }

  void reset_alpha_c(double alpha_c) { alpha_c_.reset(alpha_c); }

 private:
  LeakageModel leakage_;
  AlphaCEstimator alpha_c_;
};

/// Bundle of the four per-resource models.
class PlatformPowerModel {
 public:
  PlatformPowerModel() = default;

  ResourcePowerModel& model(Resource r) { return models_[resource_index(r)]; }
  const ResourcePowerModel& model(Resource r) const {
    return models_[resource_index(r)];
  }

 private:
  std::array<ResourcePowerModel, kResourceCount> models_;
};

}  // namespace dtpm::power
