#include "power/resource.hpp"

namespace dtpm::power {

std::string_view to_string(Resource r) {
  switch (r) {
    case Resource::kBigCluster:
      return "big";
    case Resource::kLittleCluster:
      return "little";
    case Resource::kGpu:
      return "gpu";
    case Resource::kMem:
      return "mem";
    case Resource::kCount:
      break;
  }
  return "?";
}

double total(const ResourceVector& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum;
}

}  // namespace dtpm::power
