// The four separately metered power resources of the Exynos 5410 on the
// Odroid-XU+E: big CPU cluster, little CPU cluster, GPU, and memory
// (§4.2.1: P = [P_A7, P_A15, P_GPU, P_mem]). Everything in the library that
// speaks "per-resource" indexes by this enum.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace dtpm::power {

enum class Resource : std::size_t {
  kBigCluster = 0,
  kLittleCluster,
  kGpu,
  kMem,
  kCount,
};

constexpr std::size_t kResourceCount = static_cast<std::size_t>(Resource::kCount);

constexpr std::size_t resource_index(Resource r) {
  return static_cast<std::size_t>(r);
}

/// All resources in index order, for range-for iteration.
constexpr std::array<Resource, kResourceCount> all_resources() {
  return {Resource::kBigCluster, Resource::kLittleCluster, Resource::kGpu,
          Resource::kMem};
}

std::string_view to_string(Resource r);

/// Fixed-size per-resource value pack (power readings, budgets, ...).
using ResourceVector = std::array<double, kResourceCount>;

/// Sum across all resources.
double total(const ResourceVector& v);

}  // namespace dtpm::power
