#include "power/sensors.hpp"

#include <cmath>
#include <stdexcept>

#include "util/vgauss.hpp"

namespace dtpm::power {

PowerSensorBank::PowerSensorBank(const PowerSensorParams& params,
                                 util::Rng rng)
    : params_(params), rng_(rng) {
  if (params_.noise_fraction < 0.0 || params_.quantization_w < 0.0) {
    throw std::invalid_argument("PowerSensorBank: negative parameter");
  }
}

ResourceVector PowerSensorBank::read(const ResourceVector& true_power_w) {
  ResourceVector out{};
  for (std::size_t i = 0; i < kResourceCount; ++i) {
    double reading =
        true_power_w[i] * (1.0 + rng_.gaussian(0.0, params_.noise_fraction));
    if (params_.quantization_w > 0.0) {
      reading = std::round(reading / params_.quantization_w) * params_.quantization_w;
    }
    out[i] = std::max(reading, 0.0);
  }
  return out;
}

void PowerSensorBank::draw_noise_into(double* noise_out) {
  util::gaussian_fill(rng_, 0.0, params_.noise_fraction, noise_out,
                      kResourceCount);
}

ResourceVector PowerSensorBank::read_with_noise(
    const ResourceVector& true_power_w, const double* noise) const {
  ResourceVector out{};
  for (std::size_t i = 0; i < kResourceCount; ++i) {
    double reading = true_power_w[i] * (1.0 + noise[i]);
    if (params_.quantization_w > 0.0) {
      reading = std::round(reading / params_.quantization_w) * params_.quantization_w;
    }
    out[i] = std::max(reading, 0.0);
  }
  return out;
}

ExternalPowerMeter::ExternalPowerMeter(const PlatformLoadParams& params,
                                       util::Rng rng, double noise_fraction)
    : params_(params), rng_(rng), noise_fraction_(noise_fraction) {
  if (noise_fraction_ < 0.0) {
    throw std::invalid_argument("ExternalPowerMeter: negative noise");
  }
}

double ExternalPowerMeter::read(const ResourceVector& true_rail_power_w,
                                double fan_power_w) {
  const double truth = total(true_rail_power_w) + fan_power_w +
                       params_.board_base_w + params_.display_w;
  return truth * (1.0 + rng_.gaussian(0.0, noise_fraction_));
}

void ExternalPowerMeter::draw_noise_into(double* noise_out) {
  util::gaussian_fill(rng_, 0.0, noise_fraction_, noise_out, 1);
}

double ExternalPowerMeter::read_with_noise(
    const ResourceVector& true_rail_power_w, double fan_power_w,
    const double* noise) const {
  const double truth = total(true_rail_power_w) + fan_power_w +
                       params_.board_base_w + params_.display_w;
  return truth * (1.0 + noise[0]);
}

}  // namespace dtpm::power
