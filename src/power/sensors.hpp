// Power sensor models. The Odroid-XU+E exposes per-rail current sensors
// (big cluster, little cluster, GPU, memory) and the paper's setup adds an
// external power meter for the whole platform (Fig. 6.1). Rail readings are
// noisy and quantized; the external meter also sees the fan, display and
// board base power, which is exactly why "total platform power" savings in
// Fig. 6.9 include the removed fan.
#pragma once

#include "power/resource.hpp"
#include "util/rng.hpp"

namespace dtpm::power {

/// Rail sensor error characteristics (INA231-class parts).
struct PowerSensorParams {
  double noise_fraction = 0.01;     ///< multiplicative Gaussian noise (1 sigma)
  double quantization_w = 0.001;    ///< reading granularity
};

inline bool operator==(const PowerSensorParams& a, const PowerSensorParams& b) {
  return a.noise_fraction == b.noise_fraction &&
         a.quantization_w == b.quantization_w;
}

/// Samples true per-rail powers into sensor readings.
class PowerSensorBank {
 public:
  PowerSensorBank(const PowerSensorParams& params, util::Rng rng);

  ResourceVector read(const ResourceVector& true_power_w);

  /// Batched-noise split of read(), mirroring TempSensorBank: draw the rail
  /// noise up front (consuming the RNG exactly as one read would), then
  /// convert true powers to readings bit-identical to read().
  std::size_t noise_count() const { return kResourceCount; }
  void draw_noise_into(double* noise_out);
  ResourceVector read_with_noise(const ResourceVector& true_power_w,
                                 const double* noise) const;

 private:
  PowerSensorParams params_;
  util::Rng rng_;
};

/// Non-SoC platform loads seen only by the external meter.
struct PlatformLoadParams {
  double board_base_w = 1.2;   ///< regulators, storage, networking
  double display_w = 1.8;      ///< panel + backlight, always on in experiments
};

inline bool operator==(const PlatformLoadParams& a,
                       const PlatformLoadParams& b) {
  return a.board_base_w == b.board_base_w && a.display_w == b.display_w;
}

/// External platform power meter: SoC rails + fan + fixed platform loads.
class ExternalPowerMeter {
 public:
  ExternalPowerMeter(const PlatformLoadParams& params, util::Rng rng,
                     double noise_fraction = 0.005);

  /// One platform-power sample in W.
  double read(const ResourceVector& true_rail_power_w, double fan_power_w);

  /// Batched-noise split of read(): one pre-drawn noise value per sample.
  std::size_t noise_count() const { return 1; }
  void draw_noise_into(double* noise_out);
  double read_with_noise(const ResourceVector& true_rail_power_w,
                         double fan_power_w, const double* noise) const;

  const PlatformLoadParams& params() const { return params_; }

 private:
  PlatformLoadParams params_;
  util::Rng rng_;
  double noise_fraction_;
};

}  // namespace dtpm::power
