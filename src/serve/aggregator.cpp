#include "serve/aggregator.hpp"

namespace dtpm::serve {

namespace {

using util::JsonObject;
using util::JsonValue;

JsonValue percentile_block(const util::RunningStats& stats,
                           const util::QuantileSketch& sketch) {
  JsonValue block((JsonObject()));
  block.set("mean", stats.mean());
  block.set("p50", sketch.quantile(0.50));
  block.set("p90", sketch.quantile(0.90));
  block.set("p99", sketch.quantile(0.99));
  block.set("min", stats.min());
  block.set("max", stats.max());
  return block;
}

}  // namespace

void FleetAggregate::fold_result(const sim::RunResult& result) {
  ++devices_;
  if (result.completed) ++completed_;
  if (result.runaway) ++runaway_;
  if (result.violation_time_s > 0.0) ++violated_;

  energy_j_ += result.platform_energy_j;
  violation_s_ += result.violation_time_s;
  simulated_time_s_ += result.execution_time_s;

  const double peak = result.max_temp_stats.max();
  peak_temp_c_.add(peak);
  peak_temp_sketch_.add(peak);
  exec_time_s_.add(result.execution_time_s);
  exec_time_sketch_.add(result.execution_time_s);
  avg_power_w_.add(result.avg_platform_power_w);
}

void FleetAggregate::fold_error() {
  ++devices_;
  ++failed_;
}

void FleetAggregate::merge(const FleetAggregate& other) {
  devices_ += other.devices_;
  failed_ += other.failed_;
  completed_ += other.completed_;
  runaway_ += other.runaway_;
  violated_ += other.violated_;
  energy_j_ += other.energy_j_;
  violation_s_ += other.violation_s_;
  simulated_time_s_ += other.simulated_time_s_;
  peak_temp_c_.merge(other.peak_temp_c_);
  exec_time_s_.merge(other.exec_time_s_);
  avg_power_w_.merge(other.avg_power_w_);
  peak_temp_sketch_.merge(other.peak_temp_sketch_);
  exec_time_sketch_.merge(other.exec_time_sketch_);
}

JsonValue FleetAggregate::to_json() const {
  const std::uint64_t ran = devices_ - failed_;
  JsonValue json((JsonObject()));
  json.set("devices", devices_);
  json.set("failed", failed_);
  json.set("completed", completed_);
  json.set("runaway", runaway_);
  json.set("violated", violated_);
  // Rates are over the runs that actually produced a result; a fleet where
  // every slot failed reports rate 0 rather than dividing by zero.
  json.set("violation_rate", ran > 0 ? double(violated_) / double(ran) : 0.0);
  json.set("runaway_rate", ran > 0 ? double(runaway_) / double(ran) : 0.0);
  json.set("violation_time_s_total", violation_s_);
  json.set("platform_energy_j_total", energy_j_);
  json.set("platform_energy_j_mean",
           ran > 0 ? energy_j_ / double(ran) : 0.0);
  json.set("simulated_time_s_total", simulated_time_s_);
  json.set("peak_temp_c", percentile_block(peak_temp_c_, peak_temp_sketch_));
  json.set("exec_time_s", percentile_block(exec_time_s_, exec_time_sketch_));
  {
    JsonValue power((JsonObject()));
    power.set("mean", avg_power_w_.mean());
    power.set("min", avg_power_w_.min());
    power.set("max", avg_power_w_.max());
    json.set("avg_power_w", power);
  }
  {
    JsonValue sketch((JsonObject()));
    sketch.set("capacity", std::uint64_t(peak_temp_sketch_.capacity()));
    sketch.set("retained", std::uint64_t(peak_temp_sketch_.retained() +
                                         exec_time_sketch_.retained()));
    json.set("sketch", sketch);
  }
  return json;
}

}  // namespace dtpm::serve
