// Streaming fleet aggregation: one FleetAggregate absorbs a RunResult at a
// time and keeps only O(sketch) state -- counts, exact sums, Welford stats,
// and fixed-size quantile sketches for the percentile columns. This is what
// makes a 100k-device fleet memory-flat: waves of results fold in and are
// dropped, never retained.
//
// Determinism contract: fold_result is called in device (input) order by
// both the serve path and the offline BatchRunner reference path, and
// BatchRunner results are bit-identical to serial execution regardless of
// worker count -- so the aggregate JSON is bit-identical across 1 vs N
// workers and across server restarts. merge() exists for callers that
// combine per-shard aggregates and is exact for counts/sums/min/max and
// within sketch tolerance for percentiles.
#pragma once

#include <cstdint>

#include "sim/run_result.hpp"
#include "util/json.hpp"
#include "util/quantile_sketch.hpp"
#include "util/stats.hpp"

namespace dtpm::serve {

class FleetAggregate {
 public:
  /// Folds one completed (or aborted-but-simulated) device run in.
  void fold_result(const sim::RunResult& result);

  /// Folds one failed slot (the run threw; there is no result to read).
  void fold_error();

  /// Folds another aggregate in (exact except percentile sketches).
  void merge(const FleetAggregate& other);

  std::uint64_t devices() const { return devices_; }
  std::uint64_t failed() const { return failed_; }

  /// Everything a fleet report needs, as one JSON object: counts and rates,
  /// exact energy/violation totals, and mean/p50/p90/p99/max blocks for
  /// peak temperature, execution time, and average platform power.
  util::JsonValue to_json() const;

 private:
  std::uint64_t devices_ = 0;    ///< every folded slot, failed or not
  std::uint64_t failed_ = 0;     ///< slots whose run threw
  std::uint64_t completed_ = 0;  ///< benchmark finished before the time cap
  std::uint64_t runaway_ = 0;    ///< aborted at the platform's ceiling
  std::uint64_t violated_ = 0;   ///< runs with any time above t_max

  double energy_j_ = 0.0;          ///< exact sum of platform_energy_j
  double violation_s_ = 0.0;       ///< exact sum of violation_time_s
  double simulated_time_s_ = 0.0;  ///< exact sum of execution_time_s

  util::RunningStats peak_temp_c_;
  util::RunningStats exec_time_s_;
  util::RunningStats avg_power_w_;
  util::QuantileSketch peak_temp_sketch_;
  util::QuantileSketch exec_time_sketch_;
};

}  // namespace dtpm::serve
