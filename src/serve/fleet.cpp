#include "serve/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/batch.hpp"
#include "sim/calibration.hpp"
#include "sim/platform_registry.hpp"
#include "sim/run_plan.hpp"
#include "util/names.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/suite.hpp"

namespace dtpm::serve {

namespace {

std::vector<std::string> standard_family_names() {
  std::vector<std::string> names;
  for (workload::ScenarioFamily f : workload::all_scenario_families()) {
    names.emplace_back(workload::to_string(f));
  }
  return names;
}

/// The categorical axes after defaulting: platforms fall back to the base
/// config's platform, families to every standard family.
std::vector<FleetWeight> effective_platforms(const FleetSpec& spec) {
  if (!spec.platforms.empty()) return spec.platforms;
  return {{sim::resolved_platform_name(spec.base), 1.0}};
}

std::vector<FleetWeight> effective_families(const FleetSpec& spec) {
  if (!spec.families.empty()) return spec.families;
  std::vector<FleetWeight> families;
  for (std::string& name : standard_family_names()) {
    families.push_back({std::move(name), 1.0});
  }
  return families;
}

double total_weight(const std::vector<FleetWeight>& entries) {
  double total = 0.0;
  for (const FleetWeight& e : entries) total += e.weight;
  return total;
}

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("fleet: " + message);
}

/// Structural validation mirroring the L7xx lint pass; the server lints the
/// JSON document (with paths and codes) before a spec ever gets here, so
/// these throws are the programmatic-API backstop.
void validate_distributions(const FleetSpec& spec) {
  if (spec.device_count == 0) fail("device_count must be positive");
  if (spec.wave_size == 0) fail("wave_size must be positive");
  for (const auto* axis : {&spec.platforms, &spec.families}) {
    for (const FleetWeight& e : *axis) {
      if (e.weight <= 0.0) {
        fail("weight of '" + e.name + "' must be positive");
      }
    }
  }
  const std::vector<FleetWeight> platforms = effective_platforms(spec);
  const std::vector<FleetWeight> families = effective_families(spec);
  if (total_weight(platforms) <= 0.0) fail("platform weights sum to zero");
  if (total_weight(families) <= 0.0) fail("family weights sum to zero");
  const sim::PlatformRegistry& registry = sim::PlatformRegistry::instance();
  for (const FleetWeight& e : platforms) {
    if (!registry.contains(e.name)) {
      fail(util::unknown_name_message("platform", e.name, registry.names()));
    }
  }
  const std::vector<std::string> known = standard_family_names();
  for (const FleetWeight& e : families) {
    if (std::find(known.begin(), known.end(), e.name) == known.end()) {
      fail(util::unknown_name_message("scenario family", e.name, known));
    }
  }
  if (spec.ambient_c.hi < spec.ambient_c.lo) {
    fail("ambient_c range is inverted (hi < lo)");
  }
  if (spec.background_duty.hi < spec.background_duty.lo) {
    fail("background_duty range is inverted (hi < lo)");
  }
  if (spec.background_duty.lo < 0.0 || spec.background_duty.hi > 1.0) {
    fail("background_duty must lie within [0, 1]");
  }
  if (spec.scenario_nominal_duration_s <= 0.0) {
    fail("scenario_nominal_duration_s must be positive");
  }
  if (spec.scenario_intensity <= 0.0) {
    fail("scenario_intensity must be positive");
  }
}

/// One cumulative-weight draw. `u` must come from rng.uniform(0, total);
/// walking the prefix sums keeps the pick a pure function of the draw, so
/// the sampled fleet never depends on container iteration quirks.
const std::string& pick_weighted(const std::vector<FleetWeight>& entries,
                                 double u) {
  double cumulative = 0.0;
  for (const FleetWeight& e : entries) {
    cumulative += e.weight;
    if (u < cumulative) return e.name;
  }
  return entries.back().name;  // u == total (or fp residue): last bucket
}

/// Quantize to 0.25 C steps inside [lo, hi] so the fleet materializes a
/// bounded number of distinct ambient descriptors (and so floorplan
/// templates) no matter how many devices sample the range.
double quantize_ambient(double ambient, const FleetRange& range) {
  const double q = std::round(ambient * 4.0) / 4.0;
  return std::min(std::max(q, range.lo), range.hi);
}

long ambient_bin(double ambient_c) {
  return std::lround(ambient_c * 4.0);
}

}  // namespace

std::vector<DeviceProfile> sample_fleet(const FleetSpec& spec) {
  validate_distributions(spec);
  const std::vector<FleetWeight> platforms = effective_platforms(spec);
  const std::vector<FleetWeight> families = effective_families(spec);
  const double platform_total = total_weight(platforms);
  const double family_total = total_weight(families);

  util::Rng rng(spec.seed);
  std::vector<DeviceProfile> profiles;
  profiles.reserve(std::size_t(spec.device_count));
  for (std::uint64_t i = 0; i < spec.device_count; ++i) {
    // Fixed draw order per device -- platform, family, ambient, duty, seed --
    // so the profile list is a pure function of (spec fields, spec.seed).
    DeviceProfile device;
    device.index = i;
    device.platform = pick_weighted(platforms, rng.uniform(0.0, platform_total));
    device.family = pick_weighted(families, rng.uniform(0.0, family_total));
    device.ambient_c = quantize_ambient(
        rng.uniform(spec.ambient_c.lo, spec.ambient_c.hi), spec.ambient_c);
    device.background_duty =
        rng.uniform(spec.background_duty.lo, spec.background_duty.hi);
    device.seed = rng.engine()();
    profiles.push_back(std::move(device));
  }
  return profiles;
}

FleetMaterializer::FleetMaterializer(const FleetSpec& spec)
    : spec_(spec),
      catalog_(sim::ScenarioCatalog::standard([&spec] {
        workload::ScenarioParams params;
        params.nominal_duration_s = spec.scenario_nominal_duration_s;
        params.intensity = spec.scenario_intensity;
        return params;
      }())),
      needs_model_(sim::needs_identified_model(spec.base)),
      // Heuristic for "the base config pins its own thermal constraint": a
      // t_max that differs from its platform's default was set on purpose
      // and survives per-device platform selection.
      t_max_pinned_(spec.base.dtpm.t_max_c !=
                    sim::resolved_platform(spec.base)->default_t_max_c) {}

sim::PlatformPtr FleetMaterializer::descriptor_for(
    const DeviceProfile& device) {
  const std::pair<std::string, long> key{device.platform,
                                         ambient_bin(device.ambient_c)};
  auto it = descriptors_.find(key);
  if (it != descriptors_.end()) return it->second;

  const sim::PlatformPtr nominal =
      sim::PlatformRegistry::instance().get(device.platform);
  const double nominal_ambient = nominal->floorplan.ambient_temp_c();
  const double delta = device.ambient_c - nominal_ambient;
  sim::PlatformPtr resolved = nominal;
  if (delta != 0.0) {
    // Clone the registry descriptor into this ambient: the boundary node
    // pins to the sampled ambient and every other node's warm-start initial
    // temperature shifts by the same delta (a device soaked at 35 C ambient
    // idles 10 C hotter throughout). Name and physics are untouched, so
    // labels and calibration still identify the platform.
    auto shifted = std::make_shared<sim::PlatformDescriptor>(*nominal);
    for (thermal::FloorplanNodeSpec& node : shifted->floorplan.nodes) {
      if (node.is_boundary) {
        node.initial_temp_c = device.ambient_c;
      } else {
        node.initial_temp_c += delta;
      }
    }
    resolved = std::move(shifted);
  }
  descriptors_.emplace(key, resolved);
  return resolved;
}

const sysid::IdentifiedPlatformModel* FleetMaterializer::model_for(
    const std::string& platform_name) {
  if (!needs_model_) return nullptr;
  // Calibrate once per platform NAME at its nominal registry descriptor and
  // share that model across every ambient variant -- mirroring reality
  // (a device model is identified once, then deployed across conditions)
  // and keeping the process-wide calibration cache at one entry per
  // platform instead of one per sampled ambient.
  return &sim::platform_calibration(
              sim::PlatformRegistry::instance().get(platform_name))
              .model;
}

sim::ExperimentConfig FleetMaterializer::config_for(
    const DeviceProfile& device) {
  sim::ExperimentConfig config = spec_.base;
  const double base_t_max = spec_.base.dtpm.t_max_c;
  sim::set_platform(config, descriptor_for(device));
  if (t_max_pinned_) config.dtpm.t_max_c = base_t_max;

  config.scenario = std::make_shared<const workload::Benchmark>(
      catalog_.make(device.family, device.seed));
  config.benchmark = device.family + "#s" + std::to_string(device.seed);
  config.seed = device.seed;
  config.record_trace = spec_.retain_traces;

  workload::BackgroundParams background;
  background.base_duty = device.background_duty;
  background.heavy_load = workload::wants_heavy_background(*config.scenario);
  config.background = background;
  return config;
}

FleetRunResult run_fleet(const FleetSpec& spec,
                         const FleetRunOptions& options) {
  const std::vector<DeviceProfile> profiles = sample_fleet(spec);
  FleetMaterializer materializer(spec);
  sim::BatchRunner runner(options.workers);
  // The plan grows wave to wave (single-threaded between run() calls) and is
  // shared read-only by every wave's workers: each distinct (platform,
  // ambient bin) descriptor compiles its floorplan template exactly once for
  // the whole fleet -- or once for the server's lifetime when the caller
  // hands in its warm per-executor plan. Models travel on the jobs
  // themselves (model_for), so the plan never calibrates.
  std::unique_ptr<sim::RunPlan> local_plan;
  if (options.plan == nullptr) {
    local_plan = std::make_unique<sim::RunPlan>(spec.base);
  }
  sim::RunPlan& plan = options.plan != nullptr ? *options.plan : *local_plan;

  FleetRunResult out;
  const std::uint64_t total = profiles.size();
  std::vector<sim::BatchJob> jobs;
  for (std::uint64_t start = 0; start < total;
       start += spec.wave_size) {
    if (options.should_stop && options.should_stop()) {
      out.stopped_early = true;
      break;
    }
    const std::uint64_t end = std::min(total, start + spec.wave_size);
    jobs.clear();
    jobs.reserve(std::size_t(end - start));
    for (std::uint64_t i = start; i < end; ++i) {
      const DeviceProfile& device = profiles[std::size_t(i)];
      sim::BatchJob job;
      job.config = materializer.config_for(device);
      job.model = materializer.model_for(device.platform);
      plan.cache_platform(job.config.platform);
      jobs.push_back(std::move(job));
    }
    const sim::BatchOutcome outcome = runner.run_collecting(jobs, &plan);
    // Fold in input order: with BatchRunner results bit-identical to serial
    // execution, the aggregate is too -- across 1 vs N workers and restarts.
    for (std::size_t i = 0; i < outcome.results.size(); ++i) {
      if (outcome.errors[i]) {
        out.aggregate.fold_error();
      } else {
        out.aggregate.fold_result(outcome.results[i]);
      }
    }
    out.devices_run += end - start;
    if (options.on_wave) {
      options.on_wave(FleetProgress{out.devices_run, total, out.aggregate});
    }
  }
  return out;
}

void apply_smoke_caps(FleetSpec& spec) {
  sim::apply_smoke_caps(spec.base);
  spec.scenario_nominal_duration_s =
      std::min(spec.scenario_nominal_duration_s, 6.0);
  spec.retain_traces = false;
}

}  // namespace dtpm::serve
