// Fleet mode: sample N device profiles from distributions over platform x
// ambient x background load x scenario family x seed, stream them through
// the batched engine in waves, and fold every run into a FleetAggregate --
// no per-run traces, so a 100k-device fleet is a memory-flat streaming
// computation whose aggregates are reproducible from the spec's seed.
//
// Reproducibility: sample_fleet is a pure function of the spec (one
// util::Rng stream, consumed device by device in a fixed draw order), and
// run_fleet folds wave results in input order through the BatchRunner's
// bit-identical-to-serial contract -- so the aggregate JSON is identical
// across worker counts and across server restarts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "serve/aggregator.hpp"
#include "sim/config.hpp"
#include "sim/scenario_catalog.hpp"

namespace dtpm::sim {
class RunPlan;
}  // namespace dtpm::sim

namespace dtpm::serve {

/// One weighted entry of a categorical fleet axis ("platforms", "families").
struct FleetWeight {
  std::string name;
  double weight = 1.0;
};

/// Inclusive uniform range of a continuous fleet axis.
struct FleetRange {
  double lo = 0.0;
  double hi = 0.0;
};

/// A declarative fleet: the template experiment plus the distributions the
/// sampler draws device profiles from. Serialized via sim/config_io
/// (fleet_from_json / to_json) and linted by the L7xx pass.
struct FleetSpec {
  /// Devices to sample. This member doubles as the document-kind
  /// discriminator: a JSON object with "device_count" lints as a fleet.
  std::uint64_t device_count = 1000;
  std::uint64_t seed = 1;
  /// Devices per BatchRunner wave; bounds per-wave memory.
  std::uint64_t wave_size = 256;

  /// Template config (policy, engine, intervals, durations). Sampling
  /// overrides platform, scenario, seed, ambient, and background per device.
  sim::ExperimentConfig base;

  /// Weighted platform mix; empty means the base config's platform only.
  std::vector<FleetWeight> platforms;
  /// Weighted scenario-family mix; empty means every standard family,
  /// equally weighted.
  std::vector<FleetWeight> families;

  /// Uniform ambient-temperature range, quantized to 0.25 C steps at
  /// sampling time so the number of distinct platform descriptors (and so
  /// floorplan templates) stays bounded. Degenerate lo == hi pins it.
  FleetRange ambient_c{25.0, 25.0};
  /// Uniform per-device background duty cycle (BackgroundParams::base_duty).
  FleetRange background_duty{0.10, 0.10};

  /// Generator knobs applied to every sampled scenario.
  double scenario_nominal_duration_s = 60.0;
  double scenario_intensity = 1.0;

  /// Keep per-run traces (the L702 blowup warning exists because this
  /// defeats the memory-flat design; off by default).
  bool retain_traces = false;
};

/// One sampled device, small enough to hold 100k of: configs are
/// materialized per wave, not up front.
struct DeviceProfile {
  std::uint64_t index = 0;
  std::string platform;
  std::string family;
  double ambient_c = 25.0;
  double background_duty = 0.10;
  std::uint64_t seed = 0;
};

/// Samples every device profile deterministically from spec.seed. Throws
/// std::invalid_argument on degenerate distributions (run_fleet lints
/// first, so server-submitted specs fail with diagnostics instead).
std::vector<DeviceProfile> sample_fleet(const FleetSpec& spec);

/// Turns profiles into runnable configs, caching the expensive per-device
/// invariants: one ambient-adjusted descriptor per (platform, ambient bin)
/// and one identified model per platform name, calibrated at the platform's
/// nominal registry descriptor -- a fleet models reality, where a device is
/// calibrated once and then deployed across ambient conditions.
class FleetMaterializer {
 public:
  explicit FleetMaterializer(const FleetSpec& spec);

  sim::ExperimentConfig config_for(const DeviceProfile& device);

  /// The shared identified model for runs on `platform_name`; null when the
  /// base config's policy does not need one.
  const sysid::IdentifiedPlatformModel* model_for(
      const std::string& platform_name);

 private:
  sim::PlatformPtr descriptor_for(const DeviceProfile& device);

  const FleetSpec& spec_;
  sim::ScenarioCatalog catalog_;
  bool needs_model_ = false;
  bool t_max_pinned_ = false;
  /// (platform name, ambient quantized to 0.25 C bins) -> adjusted descriptor.
  std::map<std::pair<std::string, long>, sim::PlatformPtr> descriptors_;
};

/// Per-wave progress snapshot handed to FleetRunOptions::on_wave.
struct FleetProgress {
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  const FleetAggregate& aggregate;
};

struct FleetRunOptions {
  /// BatchRunner width; 0 picks hardware concurrency.
  unsigned workers = 0;
  /// Caller-owned warm cache (the serve executor's per-thread plan): grown
  /// wave to wave and reused across fleets, so repeat platforms skip
  /// floorplan compilation. Null builds a plan local to this call.
  sim::RunPlan* plan = nullptr;
  /// Called after each folded wave (progress streaming). May be empty.
  std::function<void(const FleetProgress&)> on_wave;
  /// Polled between waves; returning true stops after the current wave and
  /// finalizes the partial aggregate (graceful drain / job cancel).
  std::function<bool()> should_stop;
};

struct FleetRunResult {
  FleetAggregate aggregate;
  std::uint64_t devices_run = 0;  ///< slots folded (== sampled unless stopped)
  bool stopped_early = false;
};

/// Samples, waves, and folds one fleet. Throws std::invalid_argument (with
/// the first lint finding) when the spec fails the L7xx semantic pass.
FleetRunResult run_fleet(const FleetSpec& spec,
                         const FleetRunOptions& options = {});

/// Smoke caps for CI-sized fleet jobs: base durations capped via
/// sim::apply_smoke_caps, scenario length capped, traces off.
void apply_smoke_caps(FleetSpec& spec);

}  // namespace dtpm::serve
