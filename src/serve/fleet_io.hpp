// JSON round-trip for FleetSpec, on the same util::diagnostics engine as
// every other config parser (sim/config_io.hpp): a throwing mode for
// programmatic use and a collecting mode that reports every problem in one
// pass -- which is what both `dtpm lint` and the server's submit-time
// validation build on. Implemented alongside the other parsers in
// sim/config_io.cpp so the field-reading machinery (type/range checks,
// unknown-member did-you-mean) stays in one place.
#pragma once

#include <string>

#include "serve/fleet.hpp"
#include "util/diagnostics.hpp"
#include "util/json.hpp"

namespace dtpm::serve {

/// Lossless emission: every member is written (the "base" experiment via
/// sim::to_json), so a spec round-trips exactly.
util::JsonValue to_json(const FleetSpec& spec);

/// Throwing mode: the first validation failure raises sim::ConfigError with
/// its "$.path".
FleetSpec fleet_from_json(const util::JsonValue& json,
                          const std::string& path = "$");

/// Collecting mode: reports every problem into `sink`, returns best-effort
/// (only runnable when the sink stayed error-free).
FleetSpec fleet_from_json(const util::JsonValue& json, const std::string& path,
                          util::DiagnosticSink& sink);

/// Parses a `dtpm serve` / `dtpm fleet` spec file.
FleetSpec load_fleet_spec(const std::string& file_path);

}  // namespace dtpm::serve
