#include "serve/job_queue.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dtpm::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

BoundedJobQueue::BoundedJobQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool BoundedJobQueue::try_push(JobPtr job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_.load(std::memory_order_relaxed)) return false;
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

JobPtr BoundedJobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopped_.load(std::memory_order_relaxed)) return nullptr;
    if (!queue_.empty()) {
      JobPtr job = std::move(queue_.front());
      queue_.pop_front();
      return job;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

void BoundedJobQueue::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

std::vector<JobPtr> BoundedJobQueue::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobPtr> drained(queue_.begin(), queue_.end());
  queue_.clear();
  return drained;
}

std::size_t BoundedJobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace dtpm::serve
