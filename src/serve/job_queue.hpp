// Job lifecycle and the bounded submission queue of the dtpm server. A
// JobRecord is shared between the request loop (submits, answers status,
// flips cancel) and the executor pool (runs it, publishes the outcome);
// BoundedJobQueue is the hand-off in between, with a fixed capacity so a
// client that submits faster than the pool drains gets an immediate
// backpressure error instead of growing server memory.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/fleet.hpp"
#include "sim/config.hpp"
#include "util/json.hpp"

namespace dtpm::serve {

enum class JobKind { kRun, kFleet };

/// queued -> running -> one of {done, failed, cancelled}. `cancelled` covers
/// both never-started jobs and fleets whose cancel curtailed them mid-run
/// (their partial aggregate still ships in the result reply).
enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state);

struct JobRecord {
  std::string id;  ///< client-chosen, unique among live jobs
  JobKind kind = JobKind::kRun;
  bool smoke = false;

  sim::ExperimentConfig run;  ///< kRun payload
  FleetSpec fleet;            ///< kFleet payload

  std::atomic<JobState> state{JobState::kQueued};
  /// Set by `cancel` (and by server stop); fleet executors poll it between
  /// waves, so cancellation lands within one wave.
  std::atomic<bool> cancel_requested{false};

  /// Fleet progress, readable by `status` while the job runs.
  std::atomic<std::uint64_t> devices_done{0};
  std::atomic<std::uint64_t> devices_total{0};

  /// Published exactly once by the executor under `mutex`, before the final
  /// state store; `error` is non-empty iff the final state is kFailed.
  mutable std::mutex mutex;
  util::JsonValue outcome;
  std::string error;
};

using JobPtr = std::shared_ptr<JobRecord>;

/// FIFO with a hard capacity. Producers never block (try_push reports
/// backpressure); consumers block in pop() until a job, a stop, or -- as a
/// belt-and-braces against a lost notify -- a 100 ms poll tick.
class BoundedJobQueue {
 public:
  explicit BoundedJobQueue(std::size_t capacity);

  /// False when the queue is at capacity or stopped (caller replies with the
  /// matching protocol error either way).
  bool try_push(JobPtr job);

  /// Next job in FIFO order; null once stopped (remaining entries are
  /// reclaimed via drain(), not handed to executors).
  JobPtr pop();

  /// Wakes every blocked pop() and makes further try_push fail. Queued jobs
  /// stay in place for drain().
  void request_stop();

  /// Removes and returns everything still queued (the server marks these
  /// cancelled on stop).
  std::vector<JobPtr> drain();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<JobPtr> queue_;
  std::atomic<bool> stopped_{false};
};

}  // namespace dtpm::serve
