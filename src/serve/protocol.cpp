#include "serve/protocol.hpp"

#include <algorithm>
#include <utility>

#include "lint/lint.hpp"
#include "serve/fleet_io.hpp"
#include "sim/config_io.hpp"
#include "util/names.hpp"

namespace dtpm::serve {

namespace {

using util::JsonObject;
using util::JsonValue;

const std::vector<std::string>& op_names() {
  static const std::vector<std::string> kNames{"submit", "status", "cancel",
                                              "shutdown"};
  return kNames;
}

/// Allowed top-level members of each op; anything else draws an S002
/// warning with a did-you-mean, mirroring the config parsers' L004.
std::vector<std::string> allowed_members(Request::Op op) {
  switch (op) {
    case Request::Op::kSubmit:
      return {"op", "job", "run", "fleet", "smoke"};
    case Request::Op::kStatus:
      return {"op", "job"};
    case Request::Op::kCancel:
      return {"op", "job"};
    case Request::Op::kShutdown:
      return {"op"};
  }
  return {"op"};
}

void check_unknown_members(const JsonValue& json, Request::Op op,
                           util::DiagnosticSink& sink) {
  const std::vector<std::string> allowed = allowed_members(op);
  for (const auto& [key, value] : json.as_object()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    std::string message = "unknown request member '" + key + "'";
    const std::string suggestion = util::closest_match(key, allowed);
    if (!suggestion.empty()) {
      message += ", did you mean '" + suggestion + "'?";
    }
    sink.warning(kCodeShape, "$." + key, message);
  }
}

/// Reads an optional string member; reports S002 on a non-string.
std::string string_member(const JsonValue& json, const char* key,
                          util::DiagnosticSink& sink) {
  const JsonValue* value = json.find(key);
  if (value == nullptr) return "";
  if (!value->is_string()) {
    sink.error(kCodeShape, std::string("$.") + key,
               std::string("'") + key + "' must be a string");
    return "";
  }
  return value->as_string();
}

}  // namespace

std::optional<Request> parse_request(const std::string& line,
                                     util::DiagnosticSink& sink) {
  JsonValue json;
  try {
    json = util::json_parse(line);
  } catch (const util::JsonParseError& error) {
    sink.error(kCodeSyntax, "$", error.what());
    return std::nullopt;
  }
  if (!json.is_object()) {
    sink.error(kCodeShape, "$", "a request must be a JSON object");
    return std::nullopt;
  }

  const JsonValue* op = json.find("op");
  if (op == nullptr || !op->is_string()) {
    sink.error(kCodeShape, "$.op", "every request needs a string 'op'");
    return std::nullopt;
  }
  Request request;
  const std::string& name = op->as_string();
  if (name == "submit") {
    request.op = Request::Op::kSubmit;
  } else if (name == "status") {
    request.op = Request::Op::kStatus;
  } else if (name == "cancel") {
    request.op = Request::Op::kCancel;
  } else if (name == "shutdown") {
    request.op = Request::Op::kShutdown;
  } else {
    sink.error(kCodeUnknownOp, "$.op",
               util::unknown_name_message("op", name, op_names()));
    return std::nullopt;
  }

  check_unknown_members(json, request.op, sink);
  request.job = string_member(json, "job", sink);
  if (request.job.empty() && (request.op == Request::Op::kSubmit ||
                              request.op == Request::Op::kCancel)) {
    sink.error(kCodeShape, "$.job",
               "'" + name + "' requires a non-empty job id");
  }

  if (request.op == Request::Op::kSubmit) {
    if (const JsonValue* smoke = json.find("smoke")) {
      if (smoke->is_bool()) {
        request.smoke = smoke->as_bool();
      } else {
        sink.error(kCodeShape, "$.smoke", "'smoke' must be a boolean");
      }
    }
    const JsonValue* run = json.find("run");
    const JsonValue* fleet = json.find("fleet");
    if ((run != nullptr) == (fleet != nullptr)) {
      sink.error(kCodeShape, "$",
                 "a submit carries exactly one of 'run' or 'fleet'");
    } else if (run != nullptr) {
      request.run = sim::experiment_from_json(*run, "$.run", sink);
    } else {
      // The fleet payload gets the full lint treatment (parse-level L0xx
      // plus the semantic L7xx pass) so a submit fails with exactly the
      // findings `dtpm lint` would print for the same document.
      request.fleet = fleet_from_json(*fleet, "$.fleet", sink);
      if (!sink.has_errors()) {
        lint::lint_fleet(*request.fleet, fleet, "$.fleet", sink);
      }
    }
  }

  if (sink.has_errors()) return std::nullopt;
  return request;
}

JsonValue diagnostics_json(const std::vector<util::Diagnostic>& diagnostics) {
  util::JsonArray array;
  array.reserve(diagnostics.size());
  for (const util::Diagnostic& d : diagnostics) {
    JsonValue entry((JsonObject()));
    entry.set("severity", util::to_string(d.severity));
    entry.set("code", d.code);
    entry.set("path", d.path);
    entry.set("message", d.message);
    array.push_back(std::move(entry));
  }
  return JsonValue(std::move(array));
}

JsonValue make_ack(const std::string& job, std::size_t queue_depth) {
  JsonValue reply((JsonObject()));
  reply.set("reply", "ack");
  reply.set("job", job);
  reply.set("queued", std::uint64_t(queue_depth));
  return reply;
}

JsonValue make_error(const std::string& code, const std::string& message,
                     const std::string& job,
                     const std::vector<util::Diagnostic>& diagnostics) {
  JsonValue reply((JsonObject()));
  reply.set("reply", "error");
  if (!job.empty()) reply.set("job", job);
  reply.set("code", code);
  reply.set("message", message);
  if (!diagnostics.empty()) {
    reply.set("diagnostics", diagnostics_json(diagnostics));
  }
  return reply;
}

JsonValue run_summary_json(const sim::RunResult& result) {
  JsonValue json((JsonObject()));
  json.set("completed", result.completed);
  json.set("runaway", result.runaway);
  json.set("execution_time_s", result.execution_time_s);
  json.set("violation_time_s", result.violation_time_s);
  json.set("platform_energy_j", result.platform_energy_j);
  json.set("avg_platform_power_w", result.avg_platform_power_w);
  json.set("avg_soc_power_w", result.avg_soc_power_w);
  json.set("peak_temp_c", result.max_temp_stats.max());
  json.set("mean_temp_c", result.max_temp_stats.mean());
  json.set("control_steps", std::uint64_t(result.control_steps));
  json.set("wall_time_s", result.wall_time_s);
  return json;
}

}  // namespace dtpm::serve
