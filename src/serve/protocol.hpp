// The dtpm serve wire protocol: newline-delimited JSON in both directions.
// One request object per line; every request produces at least one reply
// line, and long-running jobs additionally stream progress lines. Replies
// carry a "reply" discriminator ("ack", "error", "status", "progress",
// "result", "bye") and echo the job id they concern.
//
// Requests:
//   {"op":"submit","job":"r1","run":{...experiment config...}}
//   {"op":"submit","job":"f1","fleet":{...fleet spec...},"smoke":true}
//   {"op":"status"}            server telemetry + queue + live jobs
//   {"op":"status","job":"f1"} one job's state (and fleet progress)
//   {"op":"cancel","job":"f1"}
//   {"op":"shutdown"}          drain queued+running jobs, reply "bye", exit
//
// Error replies reuse the util::diagnostics machinery: an "error" reply has
// a stable S-code plus the full diagnostic list (so an embedded config
// problem arrives with its L-code and "$.fleet..." path, exactly as `dtpm
// lint` would report it).
//
// Protocol codes (stable, documented in README "Serve"):
//   S001  request line is not valid JSON
//   S002  request shape: wrong type, missing/unknown member
//   S003  unknown op (with a did-you-mean suggestion)
//   S004  unknown job id on status/cancel, or duplicate id on submit
//   S005  submit rejected: server is draining for shutdown
//   S006  job execution failed (the result reply's state is "failed")
//   S007  submit rejected: job queue is at capacity (backpressure)
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "serve/fleet.hpp"
#include "sim/config.hpp"
#include "sim/run_result.hpp"
#include "util/diagnostics.hpp"
#include "util/json.hpp"

namespace dtpm::serve {

inline constexpr const char* kCodeSyntax = "S001";
inline constexpr const char* kCodeShape = "S002";
inline constexpr const char* kCodeUnknownOp = "S003";
inline constexpr const char* kCodeUnknownJob = "S004";
inline constexpr const char* kCodeDraining = "S005";
inline constexpr const char* kCodeJobFailed = "S006";
inline constexpr const char* kCodeQueueFull = "S007";

/// One parsed request line.
struct Request {
  enum class Op { kSubmit, kStatus, kCancel, kShutdown };

  Op op = Op::kStatus;
  std::string job;     ///< job id; "" when the request names none
  bool smoke = false;  ///< submit: cap durations server-side before running

  /// Submit payloads: exactly one is set after a successful parse.
  std::optional<sim::ExperimentConfig> run;
  std::optional<FleetSpec> fleet;
};

/// Parses and validates one request line. On failure reports into `sink`
/// (S-codes for protocol problems; embedded "run"/"fleet" payloads go
/// through the collecting config parsers and the fleet lint pass, so their
/// findings arrive as L-codes with "$.run..."/"$.fleet..." paths) and
/// returns nullopt. A Request is only returned when the sink stayed
/// error-free, and is then safe to execute.
std::optional<Request> parse_request(const std::string& line,
                                     util::DiagnosticSink& sink);

/// Diagnostics as a JSON array of {severity, code, path, message}.
util::JsonValue diagnostics_json(
    const std::vector<util::Diagnostic>& diagnostics);

util::JsonValue make_ack(const std::string& job, std::size_t queue_depth);

/// `code` is the reply-level S-code; `diagnostics`, when non-empty, carries
/// the detailed findings.
util::JsonValue make_error(
    const std::string& code, const std::string& message,
    const std::string& job = "",
    const std::vector<util::Diagnostic>& diagnostics = {});

/// The summary block of a single-run result reply (trace-free: serve never
/// ships traces, which is what keeps it memory-flat).
util::JsonValue run_summary_json(const sim::RunResult& result);

}  // namespace dtpm::serve
