#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/calibration.hpp"
#include "sim/engine.hpp"
#include "sim/run_plan.hpp"
#include "util/json.hpp"

namespace dtpm::serve {

namespace {

using util::JsonObject;
using util::JsonValue;

constexpr std::chrono::milliseconds kIdlePoll{50};

}  // namespace

Server::Server(ServeOptions options)
    : options_(options),
      queue_(options.queue_capacity) {
  const unsigned executors = std::max(1u, options_.executors);
  executors_.reserve(executors);
  for (unsigned i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

Server::~Server() {
  request_stop();
  for (std::thread& t : executors_) t.join();
}

bool Server::stopping() {
  if (stop_.load(std::memory_order_relaxed)) return true;
  if (options_.stop_flag != nullptr &&
      options_.stop_flag->load(std::memory_order_relaxed)) {
    // Latch the external flag into the full stop path exactly once (the
    // handler only set an atomic; cancelling queued jobs and notifying
    // executors needs a normal thread context).
    request_stop();
    return true;
  }
  return false;
}

void Server::request_stop() {
  if (stop_.exchange(true, std::memory_order_relaxed)) return;
  queue_.request_stop();
  for (const JobPtr& job : queue_.drain()) {
    job->cancel_requested.store(true, std::memory_order_relaxed);
    finish_job(*job, JobState::kCancelled);
    emit([&] {
      JsonValue reply((JsonObject()));
      reply.set("reply", "result");
      reply.set("job", job->id);
      reply.set("state", to_string(JobState::kCancelled));
      return reply;
    }());
  }
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  for (const auto& [id, job] : jobs_) {
    (void)id;
    job->cancel_requested.store(true, std::memory_order_relaxed);
  }
}

// --- Executors ---------------------------------------------------------------

void Server::executor_loop() {
  // The per-thread warm cache: floorplan templates and calibrated models
  // accumulate across every job this executor runs. Single-threaded use by
  // construction (each executor owns its plan; BatchRunner workers inside a
  // fleet only read it).
  sim::RunPlan plan((sim::ExperimentConfig()));
  for (;;) {
    JobPtr job = queue_.pop();
    if (job == nullptr) return;
    execute(job, plan);
  }
}

void Server::execute(const JobPtr& job, sim::RunPlan& plan) {
  if (job->cancel_requested.load(std::memory_order_relaxed)) {
    // Emit before finish_job everywhere: finishing releases wait_idle, and
    // the session may emit its closing "bye" and detach the stream the
    // moment the last pending job is done -- the result line must already
    // be out by then.
    JsonValue reply((JsonObject()));
    reply.set("reply", "result");
    reply.set("job", job->id);
    reply.set("state", to_string(JobState::kCancelled));
    emit(reply);
    finish_job(*job, JobState::kCancelled);
    return;
  }
  job->state.store(JobState::kRunning, std::memory_order_release);
  try {
    if (job->kind == JobKind::kRun) {
      execute_run(*job, plan);
    } else {
      execute_fleet(*job, plan);
    }
  } catch (const std::exception& error) {
    {
      std::lock_guard<std::mutex> lock(job->mutex);
      job->error = error.what();
    }
    emit(make_error(kCodeJobFailed, error.what(), job->id));
    finish_job(*job, JobState::kFailed);
  }
}

void Server::execute_run(JobRecord& job, sim::RunPlan& plan) {
  sim::ExperimentConfig config = job.run;
  if (job.smoke || options_.smoke) sim::apply_smoke_caps(config);
  // The serve layer never ships traces -- results are one summary line, so
  // a burst of submitted runs cannot grow server memory.
  config.record_trace = false;

  plan.cache_platform(sim::resolved_platform(config));
  plan.cache_benchmark_for(config);
  const sysid::IdentifiedPlatformModel* model =
      sim::needs_identified_model(config) ? plan.cache_model_for(config)
                                          : nullptr;
  const sim::RunResult result = sim::run_experiment(config, model, &plan);

  JsonValue summary = run_summary_json(result);
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.outcome = summary;
  }
  telemetry_.runs_simulated.fetch_add(1, std::memory_order_relaxed);

  JsonValue reply((JsonObject()));
  reply.set("reply", "result");
  reply.set("job", job.id);
  reply.set("state", to_string(JobState::kDone));
  reply.set("run", std::move(summary));
  emit(reply);
  finish_job(job, JobState::kDone);
}

void Server::execute_fleet(JobRecord& job, sim::RunPlan& plan) {
  FleetSpec spec = job.fleet;
  if (job.smoke || options_.smoke) apply_smoke_caps(spec);
  job.devices_total.store(spec.device_count, std::memory_order_relaxed);

  FleetRunOptions options;
  options.workers = options_.fleet_workers;
  options.plan = &plan;
  options.should_stop = [this, &job] {
    return job.cancel_requested.load(std::memory_order_relaxed) ||
           stop_.load(std::memory_order_relaxed);
  };
  std::uint64_t folded = 0;
  std::uint64_t waves = 0;
  options.on_wave = [this, &job, &folded, &waves](const FleetProgress& p) {
    job.devices_done.store(p.done, std::memory_order_relaxed);
    telemetry_.devices_simulated.fetch_add(p.done - folded,
                                           std::memory_order_relaxed);
    folded = p.done;
    ++waves;
    const std::uint64_t every = options_.progress_every_waves;
    if (every == 0) return;
    if (waves % every != 0 && p.done != p.total) return;
    JsonValue reply((JsonObject()));
    reply.set("reply", "progress");
    reply.set("job", job.id);
    reply.set("done", p.done);
    reply.set("total", p.total);
    reply.set("aggregate", p.aggregate.to_json());
    emit(reply);
  };

  const FleetRunResult result = run_fleet(spec, options);
  JsonValue aggregate = result.aggregate.to_json();
  {
    std::lock_guard<std::mutex> lock(job.mutex);
    job.outcome = aggregate;
  }
  const JobState state =
      result.stopped_early ? JobState::kCancelled : JobState::kDone;

  JsonValue reply((JsonObject()));
  reply.set("reply", "result");
  reply.set("job", job.id);
  reply.set("state", to_string(state));
  reply.set("devices", result.devices_run);
  reply.set("aggregate", std::move(aggregate));
  emit(reply);
  finish_job(job, state);
}

void Server::finish_job(JobRecord& job, JobState state) {
  job.state.store(state, std::memory_order_release);
  switch (state) {
    case JobState::kDone:
      telemetry_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kFailed:
      telemetry_.jobs_failed.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kCancelled:
      telemetry_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;
  }
  {
    // Evict the oldest finished jobs beyond the history cap so the registry
    // stays bounded however long the server lives.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    finished_order_.push_back(job.id);
    while (finished_order_.size() > options_.history_capacity) {
      jobs_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  pending_cv_.notify_all();
}

void Server::wait_idle() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  while (pending_.load(std::memory_order_relaxed) != 0) {
    // Keep polling the external stop flag: a SIGINT during a shutdown drain
    // downgrades it to a curtailing stop.
    lock.unlock();
    const bool stop = stopping();
    lock.lock();
    if (stop && pending_.load(std::memory_order_relaxed) == 0) break;
    pending_cv_.wait_for(lock, kIdlePoll);
  }
}

// --- Request loop ------------------------------------------------------------

ServeStatus Server::serve(std::istream& in, std::ostream& out) {
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    out_ = &out;
  }
  ServeStatus status = ServeStatus::kEof;
  std::string line;
  int retries = 0;
  for (;;) {
    if (stopping()) {
      status = ServeStatus::kStopped;
      break;
    }
    if (!std::getline(in, line)) {
      if (stopping()) {
        status = ServeStatus::kStopped;
        break;
      }
      if (in.eof() || in.bad() || ++retries > 1000) {
        // True EOF: drain what was accepted so every reply reaches the
        // stream before the session ends.
        wait_idle();
        status = stopping() ? ServeStatus::kStopped : ServeStatus::kEof;
        break;
      }
      // failbit without EOF: an interrupted read (the CLI installs its
      // signal handlers without SA_RESTART precisely so a blocked stdin
      // read wakes up here). Clear and re-check the stop flag.
      in.clear();
      continue;
    }
    retries = 0;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line.rfind("//", line.find_first_not_of(" \t")) ==
        line.find_first_not_of(" \t")) {
      continue;  // comment line between requests (scripted sessions)
    }
    handle_line(line);
    if (draining_.load(std::memory_order_relaxed)) {
      wait_idle();
      JsonValue bye((JsonObject()));
      bye.set("reply", "bye");
      bye.set("telemetry", telemetry_.to_json());
      emit(bye);
      status = stopping() ? ServeStatus::kStopped : ServeStatus::kShutdown;
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(out_mutex_);
    out_ = nullptr;
  }
  return status;
}

void Server::handle_line(const std::string& line) {
  telemetry_.requests.fetch_add(1, std::memory_order_relaxed);
  util::CollectingSink sink;
  std::optional<Request> request = parse_request(line, sink);
  if (!request.has_value()) {
    telemetry_.malformed.fetch_add(1, std::memory_order_relaxed);
    std::vector<util::Diagnostic> diagnostics = sink.take();
    // The reply-level code is the first protocol-level (S-code) error;
    // embedded config findings keep their own L-codes in the diagnostics
    // array under a generic S002 shape error.
    std::string code = kCodeShape;
    std::string message = "invalid request";
    for (const util::Diagnostic& d : diagnostics) {
      if (d.severity != util::Severity::kError) continue;
      if (!d.code.empty() && d.code[0] == 'S') {
        code = d.code;
        message = d.message;
      }
      break;
    }
    emit(make_error(code, message, "", diagnostics));
    return;
  }
  switch (request->op) {
    case Request::Op::kSubmit:
      handle_submit(std::move(*request), sink.take());
      return;
    case Request::Op::kStatus:
      handle_status(*request);
      return;
    case Request::Op::kCancel:
      handle_cancel(*request);
      return;
    case Request::Op::kShutdown:
      draining_.store(true, std::memory_order_relaxed);
      return;  // serve() drains and says bye
  }
}

void Server::handle_submit(Request&& request,
                           std::vector<util::Diagnostic> notes) {
  if (draining_.load(std::memory_order_relaxed) || stopping()) {
    emit(make_error(kCodeDraining, "server is draining, submit rejected",
                    request.job));
    return;
  }
  JobPtr job = std::make_shared<JobRecord>();
  job->id = request.job;
  job->smoke = request.smoke;
  if (request.run.has_value()) {
    job->kind = JobKind::kRun;
    job->run = std::move(*request.run);
  } else {
    job->kind = JobKind::kFleet;
    job->fleet = std::move(*request.fleet);
    job->devices_total.store(job->fleet.device_count,
                             std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    if (jobs_.count(job->id) == 0) jobs_.emplace(job->id, job);
    else job = nullptr;
  }
  if (job == nullptr) {
    emit(make_error(kCodeUnknownJob,
                    "job id '" + request.job + "' already exists",
                    request.job));
    return;
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (!queue_.try_push(job)) {
    {
      std::lock_guard<std::mutex> lock(jobs_mutex_);
      jobs_.erase(job->id);
    }
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    pending_cv_.notify_all();
    emit(queue_.stopped()
             ? make_error(kCodeDraining, "server is stopping", job->id)
             : make_error(kCodeQueueFull,
                          "job queue is full (capacity " +
                              std::to_string(queue_.capacity()) +
                              "), retry after a result lands",
                          job->id));
    return;
  }
  telemetry_.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
  telemetry_.observe_queue_depth(queue_.depth());
  JsonValue ack = make_ack(job->id, queue_.depth());
  if (!notes.empty()) ack.set("diagnostics", diagnostics_json(notes));
  emit(ack);
}

void Server::handle_status(const Request& request) {
  if (request.job.empty()) {
    emit(server_status_json());
    return;
  }
  JobPtr job = find_job(request.job);
  if (job == nullptr) {
    emit(make_error(kCodeUnknownJob, "unknown job '" + request.job + "'",
                    request.job));
    return;
  }
  emit(job_status_json(*job));
}

void Server::handle_cancel(const Request& request) {
  JobPtr job = find_job(request.job);
  if (job == nullptr) {
    emit(make_error(kCodeUnknownJob, "unknown job '" + request.job + "'",
                    request.job));
    return;
  }
  job->cancel_requested.store(true, std::memory_order_relaxed);
  JsonValue ack((JsonObject()));
  ack.set("reply", "ack");
  ack.set("op", "cancel");
  ack.set("job", job->id);
  ack.set("state", to_string(job->state.load(std::memory_order_acquire)));
  emit(ack);
}

// --- Replies -----------------------------------------------------------------

void Server::emit(const JsonValue& reply) {
  std::lock_guard<std::mutex> lock(out_mutex_);
  if (out_ == nullptr) return;
  *out_ << util::json_write(reply, 0) << '\n';
  out_->flush();
}

JsonValue Server::server_status_json() {
  JsonValue status((JsonObject()));
  status.set("reply", "status");
  status.set("queue_depth", std::uint64_t(queue_.depth()));
  status.set("queue_capacity", std::uint64_t(queue_.capacity()));
  status.set("pending", pending_.load(std::memory_order_relaxed));
  status.set("executors", std::uint64_t(executors_.size()));
  status.set("draining", draining_.load(std::memory_order_relaxed));
  util::JsonArray jobs;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    for (const auto& [id, job] : jobs_) {
      JsonValue entry((JsonObject()));
      entry.set("job", id);
      entry.set("kind", job->kind == JobKind::kRun ? "run" : "fleet");
      entry.set("state",
                to_string(job->state.load(std::memory_order_acquire)));
      if (job->kind == JobKind::kFleet) {
        entry.set("done", job->devices_done.load(std::memory_order_relaxed));
        entry.set("total",
                  job->devices_total.load(std::memory_order_relaxed));
      }
      jobs.push_back(std::move(entry));
    }
  }
  status.set("jobs", JsonValue(std::move(jobs)));
  status.set("telemetry", telemetry_.to_json());
  return status;
}

JsonValue Server::job_status_json(const JobRecord& job) {
  const JobState state = job.state.load(std::memory_order_acquire);
  JsonValue status((JsonObject()));
  status.set("reply", "status");
  status.set("job", job.id);
  status.set("kind", job.kind == JobKind::kRun ? "run" : "fleet");
  status.set("state", to_string(state));
  if (job.kind == JobKind::kFleet) {
    status.set("done", job.devices_done.load(std::memory_order_relaxed));
    status.set("total", job.devices_total.load(std::memory_order_relaxed));
  }
  if (state == JobState::kDone || state == JobState::kFailed ||
      state == JobState::kCancelled) {
    std::lock_guard<std::mutex> lock(job.mutex);
    if (!job.error.empty()) status.set("error", job.error);
    if (!job.outcome.is_null()) status.set("result", job.outcome);
  }
  return status;
}

JobPtr Server::find_job(const std::string& id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

// --- Unix-socket front end ---------------------------------------------------

namespace {

/// Minimal blocking streambuf over a file descriptor. Reads honor the
/// interrupted-read contract the stdin path relies on: EINTR surfaces as a
/// retry (checking the external stop through the owning loop's getline
/// failure), every other error as EOF.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int underflow() override {
    const ssize_t n = ::read(fd_, buf_, sizeof(buf_));
    if (n > 0) {
      setg(buf_, buf_, buf_ + n);
      return traits_type::to_int_type(buf_[0]);
    }
    // 0 = peer closed; < 0 covers both real errors and EINTR -- either way
    // the session's getline fails and serve() consults the stop flag.
    return traits_type::eof();
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    std::streamsize written = 0;
    while (written < count) {
      const ssize_t n =
          ::write(fd_, data + written, std::size_t(count - written));
      if (n < 0) {
        if (errno == EINTR) continue;
        return written;  // peer went away; the session ends on next read
      }
      written += n;
    }
    return written;
  }

  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    const char c = char(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }

 private:
  int fd_;
  char buf_[4096];
};

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

ServeStatus Server::serve_unix(const std::string& socket_path) {
  FdCloser listener;
  listener.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener.fd < 0) {
    throw std::runtime_error("serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());  // stale socket from a previous server
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::runtime_error("serve: cannot bind '" + socket_path +
                             "': " + std::strerror(errno));
  }
  if (::listen(listener.fd, 4) != 0) {
    throw std::runtime_error("serve: listen() failed: " +
                             std::string(std::strerror(errno)));
  }

  ServeStatus status = ServeStatus::kEof;
  for (;;) {
    if (stopping()) {
      status = ServeStatus::kStopped;
      break;
    }
    // Poll so a stop request never waits on the next client (accept alone
    // would block until a connection or a signal).
    pollfd pfd{listener.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) {
      throw std::runtime_error("serve: poll() failed: " +
                               std::string(std::strerror(errno)));
    }
    if (ready <= 0) continue;
    FdCloser connection;
    connection.fd = ::accept(listener.fd, nullptr, nullptr);
    if (connection.fd < 0) continue;  // EINTR or client vanished; re-poll
    FdStreamBuf in_buf(connection.fd);
    FdStreamBuf out_buf(connection.fd);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    status = serve(in, out);
    if (status != ServeStatus::kEof) break;  // shutdown or stop ends serving
    draining_.store(false, std::memory_order_relaxed);
  }
  ::unlink(socket_path.c_str());
  return status;
}

}  // namespace dtpm::serve
