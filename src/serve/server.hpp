// `dtpm serve` -- a persistent fleet-simulation service. One Server owns a
// warm executor pool and a bounded job queue; the request loop (serve(), fed
// by stdin or a Unix socket) parses NDJSON requests, answers status/cancel
// immediately, and enqueues submitted jobs for the executors, which stream
// progress and result replies back over the same connection.
//
// What stays warm across requests: each executor thread owns a sim::RunPlan
// that accumulates compiled floorplan templates and calibrated models for
// every platform it has seen, and sim::platform_calibration's process-wide
// cache persists regardless -- so the second job on a platform skips the
// expensive invariants entirely.
//
// What stays flat: job payloads are bounded (queue capacity + a capped
// finished-job history), fleets aggregate through serve::FleetAggregate
// (O(sketch) state, no retained traces), and replies stream out as they are
// produced. A 100k-device fleet leaves no more than a wave of results alive
// at any instant.
//
// Stopping: a shutdown request drains -- no new submits, queued and running
// jobs finish, "bye" is the last reply. An external stop (SIGINT/SIGTERM via
// ServeOptions::stop_flag, or request_stop()) curtails instead: queued jobs
// are cancelled, running fleets stop at the next wave boundary and ship
// their partial aggregates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/telemetry.hpp"

namespace dtpm::sim {
class RunPlan;
}  // namespace dtpm::sim

namespace dtpm::serve {

struct ServeOptions {
  /// BatchRunner width inside a fleet job (0 = hardware concurrency).
  unsigned fleet_workers = 0;
  /// Executor threads = jobs in flight at once. The default keeps job
  /// execution serial (each fleet already parallelizes internally).
  unsigned executors = 1;
  /// Submission queue capacity; a full queue rejects with S007.
  std::size_t queue_capacity = 16;
  /// Apply smoke caps (sim/serve apply_smoke_caps) to every submitted job.
  bool smoke = false;
  /// External stop flag, typically set by a signal handler. Polled by the
  /// request loop and every wait; when it flips, the server behaves as if
  /// request_stop() had been called.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Finished jobs retained for later status queries before eviction
  /// (bounds registry memory on a long-lived server).
  std::size_t history_capacity = 64;
  /// Emit a progress reply every N fleet waves (0 disables progress lines).
  std::uint64_t progress_every_waves = 1;
};

/// Why serve() returned.
enum class ServeStatus {
  kEof,       ///< input ended; all accepted jobs were drained first
  kShutdown,  ///< a shutdown request drained the server
  kStopped,   ///< external stop curtailed it
};

class Server {
 public:
  explicit Server(ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs one NDJSON session: request lines from `in`, reply lines to
  /// `out`. Returns on EOF (after draining accepted jobs so every reply
  /// reaches the stream), on a shutdown request, or on stop. The executor
  /// pool outlives the call -- a second serve() reuses the warm caches.
  ServeStatus serve(std::istream& in, std::ostream& out);

  /// Listens on a Unix domain socket, serving one connection at a time
  /// (each via serve()) until a shutdown request or stop. Throws
  /// std::runtime_error when the socket cannot be bound.
  ServeStatus serve_unix(const std::string& socket_path);

  /// Curtails: cancels queued jobs, asks running jobs to stop at their next
  /// wave boundary. Callable from any thread (NOT from a signal handler --
  /// handlers should set ServeOptions::stop_flag instead).
  void request_stop();

  const ServerTelemetry& telemetry() const { return telemetry_; }

 private:
  void executor_loop();
  void execute(const JobPtr& job, sim::RunPlan& plan);
  void execute_run(JobRecord& job, sim::RunPlan& plan);
  void execute_fleet(JobRecord& job, sim::RunPlan& plan);
  void finish_job(JobRecord& job, JobState state);

  void handle_line(const std::string& line);
  void handle_submit(Request&& request, std::vector<util::Diagnostic> notes);
  void handle_status(const Request& request);
  void handle_cancel(const Request& request);

  /// One NDJSON reply line to the live session (dropped when none).
  void emit(const util::JsonValue& reply);

  util::JsonValue server_status_json();
  util::JsonValue job_status_json(const JobRecord& job);

  JobPtr find_job(const std::string& id);
  bool stopping();  ///< also latches an external stop_flag into request_stop
  void wait_idle();

  ServeOptions options_;
  ServerTelemetry telemetry_;
  BoundedJobQueue queue_;

  std::mutex jobs_mutex_;
  std::map<std::string, JobPtr> jobs_;
  std::deque<std::string> finished_order_;  ///< eviction order (FIFO)

  /// Jobs accepted but not yet terminal; wait_idle blocks on it.
  std::atomic<std::uint64_t> pending_{0};
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};

  std::mutex out_mutex_;
  std::ostream* out_ = nullptr;

  std::vector<std::thread> executors_;
};

}  // namespace dtpm::serve
