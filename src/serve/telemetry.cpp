#include "serve/telemetry.hpp"

namespace dtpm::serve {

util::JsonValue ServerTelemetry::to_json() const {
  auto get = [](const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  util::JsonValue json((util::JsonObject()));
  json.set("requests", get(requests));
  json.set("malformed", get(malformed));
  json.set("jobs_submitted", get(jobs_submitted));
  json.set("jobs_completed", get(jobs_completed));
  json.set("jobs_failed", get(jobs_failed));
  json.set("jobs_cancelled", get(jobs_cancelled));
  json.set("devices_simulated", get(devices_simulated));
  json.set("runs_simulated", get(runs_simulated));
  json.set("queue_high_water", get(queue_high_water));
  return json;
}

}  // namespace dtpm::serve
