// Server-side counters. One ServerTelemetry instance lives as long as the
// server; executors and the request loop bump it from their own threads
// (relaxed atomics -- these are monotone counters, not synchronization), and
// a `status` request snapshots it to JSON. Nothing here grows with job count
// or fleet size, so a long-lived server's footprint stays flat.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/json.hpp"

namespace dtpm::serve {

struct ServerTelemetry {
  std::atomic<std::uint64_t> requests{0};         ///< parsed protocol lines
  std::atomic<std::uint64_t> malformed{0};        ///< lines rejected with S0xx
  std::atomic<std::uint64_t> jobs_submitted{0};
  std::atomic<std::uint64_t> jobs_completed{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  std::atomic<std::uint64_t> jobs_cancelled{0};
  std::atomic<std::uint64_t> devices_simulated{0};  ///< fleet slots folded
  std::atomic<std::uint64_t> runs_simulated{0};     ///< single-run jobs done
  std::atomic<std::uint64_t> queue_high_water{0};

  /// Records a queue depth observation, ratcheting the high-water mark.
  void observe_queue_depth(std::uint64_t depth) {
    std::uint64_t seen = queue_high_water.load(std::memory_order_relaxed);
    while (depth > seen &&
           !queue_high_water.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
  }

  /// Point-in-time snapshot (relaxed loads; counters may be mid-flight).
  util::JsonValue to_json() const;
};

}  // namespace dtpm::serve
