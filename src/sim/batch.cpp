#include "sim/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <thread>

#include "sim/batch_lane.hpp"
#include "sim/engine.hpp"
#include "sim/platform_registry.hpp"
#include "sim/run_plan.hpp"

namespace dtpm::sim {

BatchRunner::BatchRunner(unsigned worker_count) : worker_count_(worker_count) {
  if (worker_count_ == 0) {
    worker_count_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

unsigned BatchRunner::effective_worker_count() const {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max(1u, std::min(worker_count_, hw));
}

std::vector<RunResult> BatchRunner::run(const std::vector<BatchJob>& jobs,
                                        const RunPlan* shared_plan) const {
  BatchOutcome outcome = run_collecting(jobs, shared_plan);
  for (const std::exception_ptr& e : outcome.errors) {
    if (e) std::rethrow_exception(e);
  }
  return std::move(outcome.results);
}

BatchOutcome BatchRunner::run_collecting(const std::vector<BatchJob>& jobs,
                                         const RunPlan* shared_plan) const {
  BatchOutcome outcome;
  outcome.results.resize(jobs.size());
  outcome.errors.resize(jobs.size());
  if (jobs.empty()) return outcome;

  // Hoist the per-run invariants (per-platform floorplan templates,
  // benchmark resolution, per-platform calibration) once, single-threaded,
  // before the pool spawns; workers share the plan read-only. Configs the
  // plan does not cover fall back transparently. A caller-supplied shared
  // plan (the serve layer's warm cache) replaces the per-call build; its
  // population -- including any models jobs rely on -- is the caller's
  // responsibility, because a plan shared across calls must stay read-only
  // here.
  std::unique_ptr<RunPlan> local_plan;
  if (shared_plan == nullptr) {
    local_plan = std::make_unique<RunPlan>(jobs);
    for (const BatchJob& job : jobs) {
      // Jobs that need the identified model but were not handed one get it
      // from the plan's per-platform calibration cache (one calibration per
      // distinct platform, shared read-only by every run on it). A job that
      // carries its own model keeps it.
      if (job.model == nullptr && needs_identified_model(job.config)) {
        local_plan->cache_model_for(job.config);
      }
    }
  }
  const RunPlan& plan = shared_plan != nullptr ? *shared_plan : *local_plan;

  // Lockstep partition: batched-engine jobs that share a platform and a
  // step geometry run as structure-of-arrays lane groups (sim/batch_lane);
  // every other job -- and batched jobs with no partner -- stays on the
  // ordinary one-Simulation-per-run path. Both kinds of task share the
  // same pool below, and both write only their own batch-aligned slots.
  // Plan for the workers that will actually run: lockstep buckets shard
  // into one column tile per effective worker, so a multi-worker pool gets
  // parallel lane groups instead of one monolithic group on one thread.
  const unsigned pool_size = effective_worker_count();
  std::vector<std::size_t> singles;
  const std::vector<LockstepGroup> groups =
      plan_lockstep_groups(jobs, singles, pool_size);

  auto run_one = [&](std::size_t i) {
    try {
      const sysid::IdentifiedPlatformModel* model =
          jobs[i].model != nullptr ? jobs[i].model
                                   : plan.model_for(jobs[i].config);
      outcome.results[i] = run_experiment(jobs[i].config, model, &plan);
    } catch (...) {
      outcome.errors[i] = std::current_exception();
    }
  };
  const std::size_t task_count = singles.size() + groups.size();
  auto run_task = [&](std::size_t t) {
    if (t < singles.size()) {
      run_one(singles[t]);
    } else {
      run_lockstep_group(jobs, groups[t - singles.size()], plan,
                         outcome.results, outcome.errors);
    }
  };
  auto count_failures = [&outcome] {
    for (const std::exception_ptr& e : outcome.errors) {
      if (e) ++outcome.failure_count;
    }
  };

  const unsigned workers = std::min<unsigned>(pool_size, unsigned(task_count));
  if (workers <= 1) {
    for (std::size_t t = 0; t < task_count; ++t) run_task(t);
    count_failures();
    return outcome;
  }

  // Work-stealing by atomic index: each worker pops the next unclaimed
  // task (a single run or a whole lockstep group), so stragglers never
  // serialize the whole batch. Every task only touches its own
  // Simulation(s) (seeded from their configs) and its own results/errors
  // slots, which is what makes parallel output bit-identical to serial --
  // including batches where some runs throw.
  // Cache-line-aligned so the claim counter never false-shares with the
  // surrounding stack frame (results/errors are only written at run end).
  alignas(64) std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= task_count) return;
      run_task(t);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  count_failures();
  return outcome;
}

std::vector<RunResult> BatchRunner::run(
    const std::vector<ExperimentConfig>& configs,
    const sysid::IdentifiedPlatformModel* model) const {
  std::vector<BatchJob> jobs;
  jobs.reserve(configs.size());
  for (const ExperimentConfig& c : configs) jobs.push_back({c, model});
  return run(jobs);
}

std::vector<ExperimentConfig> sweep(const SweepGrid& grid) {
  const std::vector<std::string> benchmarks =
      grid.benchmarks.empty() ? std::vector<std::string>{grid.base.benchmark}
                              : grid.benchmarks;
  const std::vector<std::string> policies =
      merged_policy_axis(grid.policies, grid.policy_names, grid.base);
  const std::vector<std::uint64_t> seeds =
      grid.seeds.empty() ? std::vector<std::uint64_t>{grid.base.seed}
                         : grid.seeds;
  const std::vector<core::DtpmParams> dtpm_params =
      grid.dtpm_params.empty()
          ? std::vector<core::DtpmParams>{grid.base.dtpm}
          : grid.dtpm_params;
  // Resolve each platform once; every generated config shares the
  // descriptor (cheap shared_ptr copies, and RunPlan dedupes by pointer).
  std::vector<PlatformPtr> platforms;
  for (const std::string& name : grid.platforms) {
    platforms.push_back(PlatformRegistry::instance().get(name));
  }
  if (platforms.empty()) platforms.push_back(nullptr);  // inherit from base

  std::vector<ExperimentConfig> configs;
  configs.reserve(benchmarks.size() * platforms.size() * policies.size() *
                  dtpm_params.size() * seeds.size());
  for (const std::string& benchmark : benchmarks) {
    for (const PlatformPtr& platform : platforms) {
      for (const std::string& policy : policies) {
        for (const core::DtpmParams& dtpm : dtpm_params) {
          for (std::uint64_t seed : seeds) {
            ExperimentConfig config = grid.base;
            config.benchmark = benchmark;
            // A named benchmarks dimension must actually take effect: an
            // inline scenario inherited from `base` would otherwise shadow
            // every name (Simulation prefers config.scenario).
            if (!grid.benchmarks.empty()) config.scenario.reset();
            if (platform != nullptr) set_platform(config, platform);
            set_policy(config, policy);
            // An explicit dtpm axis overrides the platform's default t_max;
            // without one the grid inherits base.dtpm (already copied),
            // adjusted by set_platform above.
            if (!grid.dtpm_params.empty()) config.dtpm = dtpm;
            config.seed = seed;
            configs.push_back(std::move(config));
          }
        }
      }
    }
  }
  return configs;
}

}  // namespace dtpm::sim
