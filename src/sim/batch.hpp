// Parallel scenario execution: runs a vector of ExperimentConfigs on a
// std::thread worker pool and returns the RunResults in input order. Every
// run is an isolated Simulation seeded from its own config, so a parallel
// batch is bit-identical to running the same configs serially -- the
// property the figure/table benches and the large policy/constraint/horizon
// grids of the related DTPM literature rely on.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/run_result.hpp"
#include "sysid/model_store.hpp"

namespace dtpm::sim {

class RunPlan;

/// One batch entry: a config plus the (shared, read-only) identified model
/// it needs. `model` may be null: policies that require one then get the
/// config's platform calibrated through the batch's RunPlan (once per
/// distinct platform, cached process-wide) instead of failing.
struct BatchJob {
  ExperimentConfig config;
  const sysid::IdentifiedPlatformModel* model = nullptr;
};

/// Outcome of a batch where individual runs are allowed to fail: results
/// and errors align with the input jobs slot for slot, so one malformed
/// scenario never poisons its neighbours or their ordering.
struct BatchOutcome {
  std::vector<RunResult> results;  ///< default-constructed at failed slots
  /// Per-job exception (null where the run succeeded).
  std::vector<std::exception_ptr> errors;
  std::size_t failure_count = 0;

  bool all_succeeded() const { return failure_count == 0; }
};

/// Executes batches of experiments on a worker pool.
class BatchRunner {
 public:
  /// `worker_count` = 0 picks std::thread::hardware_concurrency() (at least
  /// one worker). Workers are spawned per run() call, never outliving it.
  explicit BatchRunner(unsigned worker_count = 0);

  /// Runs every job; results come back in input order. The first exception
  /// thrown by any run (e.g. an unknown benchmark name) is rethrown after
  /// every job has executed -- even with a single worker there is no
  /// fast-fail, so a batch always costs the same wall-clock whether or not
  /// something throws. Use run_collecting() to inspect partial results.
  ///
  /// `shared_plan`, when non-null, supplies the batch invariants (floorplan
  /// templates, resolved benchmarks, calibrated models) instead of building
  /// a fresh RunPlan per call -- this is how a persistent server keeps its
  /// caches warm across requests. The caller owns its population: jobs that
  /// need an identified model must either carry one or find it in the plan
  /// (the per-call auto-calibration step is skipped, since a shared plan is
  /// read-only while workers run). Results are identical either way.
  std::vector<RunResult> run(const std::vector<BatchJob>& jobs,
                             const RunPlan* shared_plan = nullptr) const;

  /// Like run(), but a throwing job (malformed scenario, unknown benchmark)
  /// is captured in its own slot instead of aborting the batch: the pool
  /// always drains, and every other slot holds the same result it would in
  /// a failure-free batch. This is the entry point for fuzzing sweeps that
  /// must survive pathological catalog entries.
  BatchOutcome run_collecting(const std::vector<BatchJob>& jobs,
                              const RunPlan* shared_plan = nullptr) const;

  /// Convenience overload: the same model pointer for every config.
  std::vector<RunResult> run(
      const std::vector<ExperimentConfig>& configs,
      const sysid::IdentifiedPlatformModel* model = nullptr) const;

  unsigned worker_count() const { return worker_count_; }

  /// Workers a run() will actually spawn: the configured count clamped to
  /// the host's hardware concurrency. Oversubscribing compute-bound
  /// simulation threads onto fewer cores only adds context-switch thrash
  /// (the classic "2 workers slower than 1 worker" on a 1-core host), so
  /// the pool never does; artifacts that record a worker count should
  /// record this one next to the requested one.
  unsigned effective_worker_count() const;

 private:
  unsigned worker_count_;
};

/// Cartesian sweep grid over the experiment dimensions the DTPM evaluations
/// iterate on. Empty dimensions fall back to the corresponding field of
/// `base`, so a grid only names the axes it actually sweeps.
struct SweepGrid {
  ExperimentConfig base;  ///< template for every generated config

  std::vector<std::string> benchmarks;
  /// PlatformRegistry names ("odroid-xu-e", "dragon", ...); every scenario x
  /// policy cell runs once per platform. Empty falls back to base's
  /// platform, so existing grids expand exactly as before.
  std::vector<std::string> platforms;
  std::vector<Policy> policies;
  /// Registry-name policy axis; appended after `policies` (mapped onto their
  /// registry names), so enum-based and name-based selections mix freely and
  /// user-registered policies sweep exactly like the built-ins. Both axes
  /// empty falls back to base's resolved policy.
  std::vector<std::string> policy_names;
  std::vector<std::uint64_t> seeds;
  std::vector<core::DtpmParams> dtpm_params;
};

/// Expands the grid in row-major order (benchmark outermost, then platform,
/// then policy, then DtpmParams, then seed), giving every config a
/// deterministic seed from the grid -- the same grid always produces the
/// same configs. Every generated config carries its policy by registry name
/// (policy_name, enum shim kept in sync for the four paper policies) and
/// its platform by descriptor (set_platform, which also adopts the
/// platform's default t_max unless a dtpm axis overrides it).
std::vector<ExperimentConfig> sweep(const SweepGrid& grid);

}  // namespace dtpm::sim
