#include "sim/batch_lane.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "power/leakage.hpp"
#include "power/resource.hpp"
#include "sim/run_plan.hpp"
#include "sim/simulation.hpp"
#include "util/vexp.hpp"

namespace dtpm::sim {

namespace {

/// Lanes per group. Bounds how many Simulations one worker keeps alive at
/// once; well past the point where wider SoA rows stop paying.
constexpr std::size_t kMaxLanesPerGroup = 64;

constexpr std::size_t kBigRail =
    power::resource_index(power::Resource::kBigCluster);
constexpr std::size_t kLittleRail =
    power::resource_index(power::Resource::kLittleCluster);
constexpr std::size_t kGpuRail = power::resource_index(power::Resource::kGpu);
constexpr std::size_t kMemRail = power::resource_index(power::Resource::kMem);

}  // namespace

void BatchPlantStepper::run_interval(std::vector<Simulation*>& wave) {
  const std::size_t lanes = wave.size();
  if (lanes == 0) return;
  Simulation& first = *wave.front();
  const int substeps = first.plant_substeps();
  const double sub_dt = first.plant_sub_dt_s();
  const thermal::Floorplan& fp = first.plant().floorplan();
  const std::size_t nodes = fp.network.node_count();
  for (Simulation* sim : wave) {
    if (sim->plant_substeps() != substeps ||
        sim->plant_sub_dt_s() != sub_dt ||
        sim->plant().floorplan().network.node_count() != nodes) {
      throw std::logic_error(
          "BatchPlantStepper: lanes are not lockstep-compatible");
    }
  }

  // Bucket lanes by their fan-edge conductance -- the only conductance
  // that can differ between same-platform lanes (Simulation's sole runtime
  // conductance mutation is Plant::set_fan) -- so the propagator's
  // signature hash and cache scan run once per bucket, not once per lane.
  fan_g_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const thermal::Floorplan& lane_fp = wave[l]->plant().floorplan();
    fan_g_[l] = lane_fp.has_fan_edge()
                    ? lane_fp.network.edge_conductance(lane_fp.fan_edge)
                    : 0.0;
  }
  order_.resize(lanes);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return fan_g_[a] < fan_g_[b];
                   });
  sorted_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) sorted_[l] = wave[order_[l]];
  wave.swap(sorted_);
  std::sort(fan_g_.begin(), fan_g_.end());
  // Compile every distinct fan state first (a compile can grow the cache
  // and move earlier entries, so pointers are only taken on the second,
  // compile-free pass), then hand each bucket its shared matrices.
  for (std::size_t l = 0; l < lanes; ++l) {
    if (l == 0 || fan_g_[l] != fan_g_[l - 1]) {
      propagator_.matrices_for(wave[l]->plant().network(), sub_dt);
    }
  }
  mats_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    mats_[l] = (l > 0 && fan_g_[l] == fan_g_[l - 1])
                   ? mats_[l - 1]
                   : &propagator_.matrices_for(wave[l]->plant().network(),
                                               sub_dt);
  }

  // Leak row -> heat-injection node (identical across lanes: one platform).
  row_node_.assign(fp.core_node_index.begin(), fp.core_node_index.end());
  row_node_.push_back(fp.little_node_index);
  row_node_.push_back(fp.gpu_node_index);
  row_node_.push_back(fp.mem_node_index);

  temps_.resize(nodes * lanes);
  power_.resize(nodes * lanes);
  c2_.resize(kLeakRows * lanes);
  scale_.resize(kLeakRows * lanes);
  gate_.resize(kLeakRows * lanes);
  tk_.resize(kLeakRows * lanes);
  leak_.resize(kLeakRows * lanes);
  konst_.resize(lanes);
  committing_.assign(lanes, 1);

  // --- Substep 0: scalar schedule + power per lane, packed into columns.
  for (std::size_t l = 0; l < lanes; ++l) {
    Simulation& sim = *wave[l];
    Plant& plant = sim.plant();
    plant.interval_begin();
    const std::vector<double>& node_power = plant.substep_prepare(
        sim.staged_demand(), sim.staged_background(), sub_dt,
        /*reuse_schedule=*/false);
    konst_[l] = plant.soc().interval_constants();
    const std::vector<double>& t = plant.network().temperatures_c();
    for (std::size_t n = 0; n < nodes; ++n) {
      temps_[n * lanes + l] = t[n];
      power_[n * lanes + l] = node_power[n];
    }
    const soc::SocIntervalConstants& k = konst_[l];
    for (std::size_t r = 0; r < kLeakRows; ++r) {
      const power::LeakageCoeffs& c =
          r < std::size_t(soc::kBigCoreCount)
              ? k.big_leak
              : (r == kLeakRows - 3
                     ? k.little_leak
                     : (r == kLeakRows - 2 ? k.gpu_leak : k.mem_leak));
      c2_[r * lanes + l] = c.c2_k;
      scale_[r * lanes + l] = c.t2_scale_w;
      gate_[r * lanes + l] = c.gate_w;
    }
  }

  for (int s = 0; s < substeps; ++s) {
    if (s > 0) compute_lane_powers(wave, sub_dt);
    thermal_matvec(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!committing_[l]) continue;
      Simulation& sim = *wave[l];
      if (!sim.plant().substep_commit(sim.staged_instance(), sub_dt)) {
        // Benchmark done mid-interval: freeze this lane where the scalar
        // loop would have broken; its column keeps being computed (and
        // discarded) so the bucket stays dense.
        committing_[l] = 0;
        scatter_lane(sim, l, lanes, nodes);
      }
    }
  }

  for (std::size_t l = 0; l < lanes; ++l) {
    Simulation& sim = *wave[l];
    if (committing_[l]) scatter_lane(sim, l, lanes, nodes);
    sim.finish_step(sim.plant().interval_end());
  }
}

void BatchPlantStepper::compute_lane_powers(std::vector<Simulation*>& wave,
                                            double sub_dt) {
  const std::size_t lanes = wave.size();
  // Structure-of-arrays leakage: Kelvin rows, then exp, then the collapsed
  // coefficient form -- three flat loops the compiler vectorizes across
  // lanes (the whole reason for vexp and LeakageCoeffs).
  for (std::size_t r = 0; r < kLeakRows; ++r) {
    const double* t_row = &temps_[row_node_[r] * lanes];
    double* tk_row = &tk_[r * lanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      tk_row[l] = t_row[l] + power::kKelvinOffset;
    }
  }
  const std::size_t total = kLeakRows * lanes;
  for (std::size_t i = 0; i < total; ++i) leak_[i] = c2_[i] / tk_[i];
  for (std::size_t i = 0; i < total; ++i) leak_[i] = util::vexp(leak_[i]);
  for (std::size_t i = 0; i < total; ++i) {
    leak_[i] = scale_[i] * (tk_[i] * tk_[i]) * leak_[i] + gate_[i];
  }

  // Rail assembly stays per-lane scalar (a handful of fmas) and writes
  // through pending_substep() so the ordinary substep_commit sees exactly
  // what the scalar SoC step would have produced.
  for (std::size_t l = 0; l < lanes; ++l) {
    if (!committing_[l]) continue;
    Plant& plant = wave[l]->plant();
    soc::SocStepResult& sub = plant.pending_substep();
    const soc::SocIntervalConstants& k = konst_[l];
    const double leak0 = leak_[l];  // big core 0 row
    double big_rail = 0.0;
    for (int c = 0; c < soc::kBigCoreCount; ++c) {
      const double p = k.core_const_w[c] +
                       k.core_leak_mult[c] * leak_[std::size_t(c) * lanes + l] +
                       k.core_leak0_mult[c] * leak0;
      sub.big_core_power_w[c] = p;
      big_rail += p;
      power_[row_node_[std::size_t(c)] * lanes + l] = p;
    }
    sub.rail_power_w[kBigRail] = big_rail;
    const double p_little =
        k.little_const_w +
        k.little_leak_mult * leak_[(kLeakRows - 3) * lanes + l];
    const double p_gpu = k.gpu_const_w + leak_[(kLeakRows - 2) * lanes + l];
    const double p_mem = k.mem_const_w + leak_[(kLeakRows - 1) * lanes + l];
    sub.rail_power_w[kLittleRail] = p_little;
    sub.rail_power_w[kGpuRail] = p_gpu;
    sub.rail_power_w[kMemRail] = p_mem;
    power_[row_node_[kLeakRows - 3] * lanes + l] = p_little;
    power_[row_node_[kLeakRows - 2] * lanes + l] = p_gpu;
    power_[row_node_[kLeakRows - 1] * lanes + l] = p_mem;
    sub.progress_units =
        k.progress_rate * plant.soc().consume_migration_stall(sub_dt);
  }
}

void BatchPlantStepper::thermal_matvec(std::size_t lane_count) {
  // One pass per fan-state bucket (contiguous columns after the sort). The
  // per-lane sum order -- all Phi terms in ascending j, then all Gamma
  // terms -- matches PropagatorRcModel::step exactly, so a lane's thermal
  // update is bit-identical to the scalar propagator for identical inputs.
  std::size_t lo = 0;
  while (lo < lane_count) {
    const thermal::PropagatorMatrices* m = mats_[lo];
    std::size_t hi = lo + 1;
    while (hi < lane_count && mats_[hi] == m) ++hi;
    const std::size_t width = hi - lo;
    const std::size_t n = m->free_count;
    tf_.resize(n * width);
    z_.resize(n * width);
    out_.resize(n * width);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t node = m->free_nodes[i];
      const double* t_row = &temps_[node * lane_count + lo];
      const double* p_row = &power_[node * lane_count + lo];
      double* tf_row = &tf_[i * width];
      double* z_row = &z_[i * width];
      for (std::size_t l = 0; l < width; ++l) {
        tf_row[l] = t_row[l];
        z_row[l] = p_row[l];
      }
    }
    for (const thermal::PropagatorMatrices::BoundaryTerm& bt :
         m->boundary_terms) {
      const double* b_row = &temps_[bt.boundary_node * lane_count + lo];
      double* z_row = &z_[bt.free_slot * width];
      for (std::size_t l = 0; l < width; ++l) z_row[l] += bt.g * b_row[l];
    }
    const double* phi = m->phi.data();
    const double* gamma = m->gamma.data();
    for (std::size_t i = 0; i < n; ++i) {
      double* acc = &out_[i * width];
      for (std::size_t l = 0; l < width; ++l) acc[l] = 0.0;
      const double* phi_row = phi + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double pij = phi_row[j];
        const double* tf_row = &tf_[j * width];
        for (std::size_t l = 0; l < width; ++l) acc[l] += pij * tf_row[l];
      }
      const double* gamma_row = gamma + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double gij = gamma_row[j];
        const double* z_row = &z_[j * width];
        for (std::size_t l = 0; l < width; ++l) acc[l] += gij * z_row[l];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      double* t_row = &temps_[m->free_nodes[i] * lane_count + lo];
      const double* o_row = &out_[i * width];
      for (std::size_t l = 0; l < width; ++l) t_row[l] = o_row[l];
    }
    lo = hi;
  }
}

void BatchPlantStepper::scatter_lane(Simulation& sim, std::size_t lane,
                                     std::size_t lane_count,
                                     std::size_t node_count) {
  std::vector<double>& temps = sim.plant().network().temperatures_mut();
  for (std::size_t n = 0; n < node_count; ++n) {
    temps[n] = temps_[n * lane_count + lane];
  }
}

std::vector<LockstepGroup> plan_lockstep_groups(
    const std::vector<BatchJob>& jobs, std::vector<std::size_t>& singles) {
  struct Bucket {
    PlatformPtr platform;
    double control_interval_s;
    double plant_substep_s;
    LockstepGroup members;
  };
  std::vector<Bucket> buckets;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ExperimentConfig& config = jobs[i].config;
    if (config.engine != Engine::kBatched) {
      singles.push_back(i);
      continue;
    }
    // Value equality, not pointer identity: preset-only configs synthesize
    // a fresh descriptor each, and sweeps mixing the two must still group.
    const PlatformPtr platform = resolved_platform(config);
    bool placed = false;
    for (Bucket& b : buckets) {
      if (b.control_interval_s == config.control_interval_s &&
          b.plant_substep_s == config.plant_substep_s &&
          *b.platform == *platform) {
        b.members.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      buckets.push_back({platform, config.control_interval_s,
                         config.plant_substep_s, LockstepGroup{i}});
    }
  }

  std::vector<LockstepGroup> groups;
  for (Bucket& b : buckets) {
    if (b.members.size() < 2) {
      singles.insert(singles.end(), b.members.begin(), b.members.end());
      continue;
    }
    for (std::size_t off = 0; off < b.members.size();
         off += kMaxLanesPerGroup) {
      const std::size_t end =
          std::min(off + kMaxLanesPerGroup, b.members.size());
      if (end - off == 1) {
        singles.push_back(b.members[off]);  // a chunk of one gains nothing
      } else {
        groups.emplace_back(b.members.begin() + std::ptrdiff_t(off),
                            b.members.begin() + std::ptrdiff_t(end));
      }
    }
  }
  return groups;
}

void run_lockstep_group(const std::vector<BatchJob>& jobs,
                        const LockstepGroup& members, const RunPlan& plan,
                        std::vector<RunResult>& results,
                        std::vector<std::exception_ptr>& errors) {
  struct Lane {
    std::size_t slot = 0;
    std::unique_ptr<Simulation> sim;
    bool finished = false;
  };
  std::vector<Lane> lanes;
  lanes.reserve(members.size());
  for (std::size_t slot : members) {
    try {
      const sysid::IdentifiedPlatformModel* model =
          jobs[slot].model != nullptr ? jobs[slot].model
                                      : plan.model_for(jobs[slot].config);
      Lane lane;
      lane.slot = slot;
      lane.sim = std::make_unique<Simulation>(jobs[slot].config, model,
                                              nullptr, &plan);
      lanes.push_back(std::move(lane));
    } catch (...) {
      errors[slot] = std::current_exception();
    }
  }

  BatchPlantStepper stepper;
  std::vector<Simulation*> wave;
  try {
    for (;;) {
      wave.clear();
      for (Lane& lane : lanes) {
        if (lane.finished) continue;
        bool running = false;
        try {
          running = lane.sim->begin_step();
        } catch (...) {
          errors[lane.slot] = std::current_exception();
          lane.finished = true;
          continue;
        }
        if (running) {
          wave.push_back(lane.sim.get());
        } else {
          results[lane.slot] = lane.sim->finish();
          lane.finished = true;
        }
      }
      if (wave.empty()) break;
      stepper.run_interval(wave);
    }
  } catch (...) {
    // A failure inside the shared kernel has no single owning lane; every
    // lane still in flight reports it rather than silently returning a
    // default-constructed result.
    for (Lane& lane : lanes) {
      if (!lane.finished) {
        errors[lane.slot] = std::current_exception();
        lane.finished = true;
      }
    }
  }
}

}  // namespace dtpm::sim
