#include "sim/batch_lane.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "power/leakage.hpp"
#include "power/resource.hpp"
#include "sim/run_plan.hpp"
#include "sim/simulation.hpp"
#include "util/phase.hpp"
#include "util/vexp.hpp"

namespace dtpm::sim {

namespace {

/// Lanes per group. Bounds how many Simulations one worker keeps alive at
/// once; well past the point where wider SoA rows stop paying.
constexpr std::size_t kMaxLanesPerGroup = 64;

constexpr std::size_t kBigRail =
    power::resource_index(power::Resource::kBigCluster);
constexpr std::size_t kLittleRail =
    power::resource_index(power::Resource::kLittleCluster);
constexpr std::size_t kGpuRail = power::resource_index(power::Resource::kGpu);
constexpr std::size_t kMemRail = power::resource_index(power::Resource::kMem);

/// Schedule-memo equivalence class key: a cheap mix over the bit patterns
/// of everything the Soc schedule solve reads -- staged demand, background
/// threads, applied config. Collisions are resolved by the full equality
/// check below, so the hash only has to be cheap, not perfect.
std::uint64_t mix_bits(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::uint64_t hash_thread(std::uint64_t h, const workload::ThreadDemand& t) {
  h = mix_bits(h, double_bits(t.duty));
  h = mix_bits(h, double_bits(t.cpu_activity));
  h = mix_bits(h, double_bits(t.mem_intensity));
  h = mix_bits(h, t.counts_progress ? 1 : 0);
  h = mix_bits(h, double_bits(t.cpu_cycles_per_unit));
  h = mix_bits(h, double_bits(t.mem_seconds_per_unit));
  return h;
}

std::uint64_t schedule_class_hash(Simulation& sim) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const workload::Demand& d = sim.staged_demand();
  h = mix_bits(h, d.threads.size());
  for (const workload::ThreadDemand& t : d.threads) h = hash_thread(h, t);
  h = mix_bits(h, double_bits(d.gpu_load));
  h = mix_bits(h, double_bits(d.gpu_cycles_per_unit));
  const std::vector<workload::ThreadDemand>& bg = sim.staged_background();
  h = mix_bits(h, bg.size());
  for (const workload::ThreadDemand& t : bg) h = hash_thread(h, t);
  const soc::SocConfig& c = sim.plant().soc().config();
  h = mix_bits(h, static_cast<std::uint64_t>(c.active_cluster));
  std::uint64_t mask = 0;
  for (bool online : c.big_core_online) mask = (mask << 1) | (online ? 1 : 0);
  h = mix_bits(h, mask);
  h = mix_bits(h, double_bits(c.big_freq_hz));
  h = mix_bits(h, double_bits(c.little_freq_hz));
  h = mix_bits(h, double_bits(c.gpu_freq_hz));
  return h;
}

bool same_schedule_class(Simulation& a, Simulation& b) {
  return a.plant().soc().config() == b.plant().soc().config() &&
         a.staged_demand() == b.staged_demand() &&
         a.staged_background() == b.staged_background();
}

}  // namespace

void BatchPlantStepper::stage_wave_noise(
    const std::vector<Simulation*>& lanes) {
  if (lanes.empty()) return;
  const std::size_t stride = lanes.front()->plant().sensor_noise_count();
  noise_.resize(lanes.size() * stride);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    Simulation& sim = *lanes[l];
    const bool profiling = sim.profile_phases();
    const std::uint64_t t0 = profiling ? util::cycle_now() : 0;
    double* row = &noise_[l * stride];
    sim.plant().draw_sensor_noise_into(row);
    sim.plant().stage_sensor_noise(row);
    if (profiling) {
      util::PhaseCycles cycles;
      cycles.add(util::Phase::kSensor, util::cycle_now() - t0);
      sim.add_phase_cycles(cycles);
    }
  }
}

void BatchPlantStepper::run_interval(std::vector<Simulation*>& wave) {
  const std::size_t lanes = wave.size();
  if (lanes == 0) return;
  Simulation& first = *wave.front();
  const int substeps = first.plant_substeps();
  const double sub_dt = first.plant_sub_dt_s();
  const thermal::Floorplan& fp = first.plant().floorplan();
  const std::size_t nodes = fp.network.node_count();
  const bool profiling = first.profile_phases();
  std::uint64_t mark = profiling ? util::cycle_now() : 0;
  std::uint64_t setup_ticks = 0;
  std::uint64_t schedule_ticks = 0;
  for (Simulation* sim : wave) {
    if (sim->plant_substeps() != substeps ||
        sim->plant_sub_dt_s() != sub_dt ||
        sim->plant().floorplan().network.node_count() != nodes) {
      throw std::logic_error(
          "BatchPlantStepper: lanes are not lockstep-compatible");
    }
  }

  // Bucket lanes by their fan-edge conductance -- the only conductance
  // that can differ between same-platform lanes (Simulation's sole runtime
  // conductance mutation is Plant::set_fan) -- so the propagator's
  // signature hash and cache scan run once per bucket, not once per lane.
  fan_g_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    const thermal::Floorplan& lane_fp = wave[l]->plant().floorplan();
    fan_g_[l] = lane_fp.has_fan_edge()
                    ? lane_fp.network.edge_conductance(lane_fp.fan_edge)
                    : 0.0;
  }
  order_.resize(lanes);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  // Stable insertion sort: at most kMaxLanesPerGroup keys, nearly sorted
  // from the previous interval's order -- and unlike std::stable_sort it
  // allocates nothing, which keeps the steady-state batched path under the
  // zero-allocation guard (tests/test_zero_alloc.cpp).
  for (std::size_t i = 1; i < lanes; ++i) {
    const std::size_t key = order_[i];
    const double key_g = fan_g_[key];
    std::size_t j = i;
    for (; j > 0 && fan_g_[order_[j - 1]] > key_g; --j) {
      order_[j] = order_[j - 1];
    }
    order_[j] = key;
  }
  sorted_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) sorted_[l] = wave[order_[l]];
  wave.swap(sorted_);
  for (std::size_t l = 0; l < lanes; ++l) {
    const thermal::Floorplan& lane_fp = wave[l]->plant().floorplan();
    fan_g_[l] = lane_fp.has_fan_edge()
                    ? lane_fp.network.edge_conductance(lane_fp.fan_edge)
                    : 0.0;
  }
  // Compile every distinct fan state first (a compile can grow the cache
  // and move earlier entries, so pointers are only taken on the second,
  // compile-free pass), then hand each bucket its shared matrices.
  for (std::size_t l = 0; l < lanes; ++l) {
    if (l == 0 || fan_g_[l] != fan_g_[l - 1]) {
      propagator_.matrices_for(wave[l]->plant().network(), sub_dt);
    }
  }
  mats_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    mats_[l] = (l > 0 && fan_g_[l] == fan_g_[l - 1])
                   ? mats_[l - 1]
                   : &propagator_.matrices_for(wave[l]->plant().network(),
                                               sub_dt);
  }

  // Leak row -> heat-injection node (identical across lanes: one platform).
  row_node_.assign(fp.core_node_index.begin(), fp.core_node_index.end());
  row_node_.push_back(fp.little_node_index);
  row_node_.push_back(fp.gpu_node_index);
  row_node_.push_back(fp.mem_node_index);

  temps_.resize(nodes * lanes);
  temps_alt_.resize(nodes * lanes);
  power_.resize(nodes * lanes);
  c2_.resize(kLeakRows * lanes);
  scale_.resize(kLeakRows * lanes);
  gate_.resize(kLeakRows * lanes);
  tk_.resize(kLeakRows * lanes);
  leak_.resize(kLeakRows * lanes);
  konst_.resize(lanes);
  committing_.assign(lanes, 1);
  if (profiling) {
    const std::uint64_t now = util::cycle_now();
    setup_ticks = now - mark;
    mark = now;
  }

  // --- Substep 0: scalar schedule + power per lane, packed into columns.
  // The schedule solve (thread placement, contention bisection, activity)
  // is a pure function of (staged demand, background, applied config);
  // lanes matching an earlier lane's tuple adopt its solved schedule and
  // take the reuse path, so each equivalence class solves once per wave.
  memo_hash_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    Simulation& sim = *wave[l];
    Plant& plant = sim.plant();
    plant.interval_begin();
    bool reuse = false;
    if (schedule_memo_) {
      memo_hash_[l] = schedule_class_hash(sim);
      for (std::size_t r = 0; r < l; ++r) {
        if (memo_hash_[r] == memo_hash_[l] &&
            same_schedule_class(*wave[r], sim)) {
          plant.soc().adopt_schedule(wave[r]->plant().soc().schedule());
          reuse = true;
          break;
        }
      }
    }
    const std::vector<double>& node_power =
        plant.substep_prepare(sim.staged_demand(), sim.staged_background(),
                              sub_dt, /*reuse_schedule=*/reuse);
    konst_[l] = plant.soc().interval_constants();
    const std::vector<double>& t = plant.network().temperatures_c();
    for (std::size_t n = 0; n < nodes; ++n) {
      temps_[n * lanes + l] = t[n];
      power_[n * lanes + l] = node_power[n];
    }
    const soc::SocIntervalConstants& k = konst_[l];
    for (std::size_t r = 0; r < kLeakRows; ++r) {
      const power::LeakageCoeffs& c =
          r < std::size_t(soc::kBigCoreCount)
              ? k.big_leak
              : (r == kLeakRows - 3
                     ? k.little_leak
                     : (r == kLeakRows - 2 ? k.gpu_leak : k.mem_leak));
      c2_[r * lanes + l] = c.c2_k;
      scale_[r * lanes + l] = c.t2_scale_w;
      gate_[r * lanes + l] = c.gate_w;
    }
  }

  if (profiling) {
    const std::uint64_t now = util::cycle_now();
    schedule_ticks = now - mark;
    mark = now;
  }

  // Seed the matvec ping-pong buffer once per interval: boundary-node rows
  // never change inside an interval and every free row is rewritten before
  // it is read, so one bulk copy here keeps the fixed-temperature rows of
  // both buffers valid for every substep's swap.
  std::copy(temps_.begin(), temps_.end(), temps_alt_.begin());

  // The thermal input vector z = power + boundary-conductance terms is
  // constant across substeps except on the leakage rows (the only node
  // powers compute_lane_powers rewrites), so build it in full once here
  // and refresh just those rows per substep. The leak-row -> free-slot map
  // is the same for every bucket (one platform, one free/boundary split).
  leak_slot_.assign(kLeakRows, std::size_t(-1));
  z_leak_only_ok_ = true;
  {
    const thermal::PropagatorMatrices* m0 = mats_[0];
    for (std::size_t r = 0; r < kLeakRows; ++r) {
      for (std::size_t i = 0; i < m0->free_count; ++i) {
        if (m0->free_nodes[i] == row_node_[r]) {
          leak_slot_[r] = i;
          break;
        }
      }
      if (leak_slot_[r] == std::size_t(-1)) z_leak_only_ok_ = false;
    }
    z_.resize(m0->free_count * lanes);
  }
  refresh_z(lanes, /*leak_rows_only=*/false);

  for (int s = 0; s < substeps; ++s) {
    if (s > 0) {
      compute_lane_powers(wave, sub_dt);
      refresh_z(lanes, /*leak_rows_only=*/z_leak_only_ok_);
    }
    thermal_matvec(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!committing_[l]) continue;
      Simulation& sim = *wave[l];
      if (!sim.plant().substep_commit(sim.staged_instance(), sub_dt)) {
        // Benchmark done mid-interval: freeze this lane where the scalar
        // loop would have broken; its column keeps being computed (and
        // discarded) so the bucket stays dense.
        committing_[l] = 0;
        scatter_lane(sim, l, lanes, nodes);
      }
    }
  }

  if (profiling) {
    // Setup (bucketing, matrix resolution) rides with the plant phase; the
    // group totals are split evenly across lanes, mirroring how the work
    // was actually shared.
    const std::uint64_t plant_ticks =
        util::cycle_now() - mark + setup_ticks;
    util::PhaseCycles share;
    share.add(util::Phase::kSchedule, schedule_ticks / lanes);
    share.add(util::Phase::kPlant, plant_ticks / lanes);
    for (std::size_t l = 0; l < lanes; ++l) wave[l]->add_phase_cycles(share);
  }

  for (std::size_t l = 0; l < lanes; ++l) {
    Simulation& sim = *wave[l];
    if (committing_[l]) scatter_lane(sim, l, lanes, nodes);
    sim.finish_step(sim.plant().interval_end());
  }
}

void BatchPlantStepper::compute_lane_powers(std::vector<Simulation*>& wave,
                                            double sub_dt) {
  const std::size_t lanes = wave.size();
  // Structure-of-arrays leakage: Kelvin rows, then exp, then the collapsed
  // coefficient form -- three flat loops the compiler vectorizes across
  // lanes (the whole reason for vexp and LeakageCoeffs).
  for (std::size_t r = 0; r < kLeakRows; ++r) {
    const double* t_row = &temps_[row_node_[r] * lanes];
    double* tk_row = &tk_[r * lanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      tk_row[l] = t_row[l] + power::kKelvinOffset;
    }
  }
  const std::size_t total = kLeakRows * lanes;
  for (std::size_t i = 0; i < total; ++i) leak_[i] = c2_[i] / tk_[i];
  for (std::size_t i = 0; i < total; ++i) leak_[i] = util::vexp(leak_[i]);
  for (std::size_t i = 0; i < total; ++i) {
    leak_[i] = scale_[i] * (tk_[i] * tk_[i]) * leak_[i] + gate_[i];
  }

  // Rail assembly stays per-lane scalar (a handful of fmas) and writes
  // through pending_substep() so the ordinary substep_commit sees exactly
  // what the scalar SoC step would have produced.
  for (std::size_t l = 0; l < lanes; ++l) {
    if (!committing_[l]) continue;
    Plant& plant = wave[l]->plant();
    soc::SocStepResult& sub = plant.pending_substep();
    const soc::SocIntervalConstants& k = konst_[l];
    const double leak0 = leak_[l];  // big core 0 row
    double big_rail = 0.0;
    for (int c = 0; c < soc::kBigCoreCount; ++c) {
      const double p = k.core_const_w[c] +
                       k.core_leak_mult[c] * leak_[std::size_t(c) * lanes + l] +
                       k.core_leak0_mult[c] * leak0;
      sub.big_core_power_w[c] = p;
      big_rail += p;
      power_[row_node_[std::size_t(c)] * lanes + l] = p;
    }
    sub.rail_power_w[kBigRail] = big_rail;
    const double p_little =
        k.little_const_w +
        k.little_leak_mult * leak_[(kLeakRows - 3) * lanes + l];
    const double p_gpu = k.gpu_const_w + leak_[(kLeakRows - 2) * lanes + l];
    const double p_mem = k.mem_const_w + leak_[(kLeakRows - 1) * lanes + l];
    sub.rail_power_w[kLittleRail] = p_little;
    sub.rail_power_w[kGpuRail] = p_gpu;
    sub.rail_power_w[kMemRail] = p_mem;
    power_[row_node_[kLeakRows - 3] * lanes + l] = p_little;
    power_[row_node_[kLeakRows - 2] * lanes + l] = p_gpu;
    power_[row_node_[kLeakRows - 1] * lanes + l] = p_mem;
    sub.progress_units =
        k.progress_rate * plant.soc().consume_migration_stall(sub_dt);
  }
}

void BatchPlantStepper::refresh_z(std::size_t lane_count,
                                  bool leak_rows_only) {
  // Rebuilds the thermal input rows z = power + sum(boundary g * T_b),
  // applying each bucket's boundary terms in declaration order so every
  // row's floating-point sum matches PropagatorRcModel::step exactly. In
  // leak_rows_only mode just the rows compute_lane_powers rewrote are
  // rebuilt (same per-row op order: copy, then matching terms in order).
  std::size_t lo = 0;
  while (lo < lane_count) {
    const thermal::PropagatorMatrices* m = mats_[lo];
    std::size_t hi = lo + 1;
    while (hi < lane_count && mats_[hi] == m) ++hi;
    const std::size_t width = hi - lo;
    if (leak_rows_only) {
      for (std::size_t r = 0; r < kLeakRows; ++r) {
        const std::size_t slot = leak_slot_[r];
        const double* p_row = &power_[row_node_[r] * lane_count + lo];
        double* z_row = &z_[slot * lane_count + lo];
        for (std::size_t l = 0; l < width; ++l) z_row[l] = p_row[l];
        for (const thermal::PropagatorMatrices::BoundaryTerm& bt :
             m->boundary_terms) {
          if (bt.free_slot != slot) continue;
          const double* b_row = &temps_[bt.boundary_node * lane_count + lo];
          for (std::size_t l = 0; l < width; ++l) {
            z_row[l] += bt.g * b_row[l];
          }
        }
      }
    } else {
      const std::size_t n = m->free_count;
      for (std::size_t i = 0; i < n; ++i) {
        const double* p_row = &power_[m->free_nodes[i] * lane_count + lo];
        double* z_row = &z_[i * lane_count + lo];
        for (std::size_t l = 0; l < width; ++l) z_row[l] = p_row[l];
      }
      for (const thermal::PropagatorMatrices::BoundaryTerm& bt :
           m->boundary_terms) {
        const double* b_row = &temps_[bt.boundary_node * lane_count + lo];
        double* z_row = &z_[bt.free_slot * lane_count + lo];
        for (std::size_t l = 0; l < width; ++l) z_row[l] += bt.g * b_row[l];
      }
    }
    lo = hi;
  }
}

void BatchPlantStepper::thermal_matvec(std::size_t lane_count) {
  // One pass per fan-state bucket (contiguous columns after the sort). The
  // per-lane sum order -- all Phi terms in ascending j, then all Gamma
  // terms -- matches PropagatorRcModel::step exactly, so a lane's thermal
  // update is bit-identical to the scalar propagator for identical inputs.
  //
  // Free-node temperatures are read out of temps_ while each row's result
  // is written straight into temps_alt_ (ping-pong: a single pointer swap
  // at the end replaces the old copy-back scatter), and the lanes are
  // walked in 8-wide blocks whose accumulators live in registers across
  // the whole j loop -- one vector register per block instead of a
  // load/store per (i, j) pair -- with a half-width tier ahead of the
  // scalar remainder so odd bucket widths keep most lanes vectorized.
  // The input rows z_ are maintained by refresh_z between substeps.
  constexpr std::size_t kBlock = 8;
  std::size_t lo = 0;
  while (lo < lane_count) {
    const thermal::PropagatorMatrices* m = mats_[lo];
    std::size_t hi = lo + 1;
    while (hi < lane_count && mats_[hi] == m) ++hi;
    const std::size_t width = hi - lo;
    const std::size_t n = m->free_count;
    const double* phi = m->phi.data();
    const double* gamma = m->gamma.data();
    for (std::size_t i = 0; i < n; ++i) {
      const double* phi_row = phi + i * n;
      const double* gamma_row = gamma + i * n;
      double* out_row = &temps_alt_[m->free_nodes[i] * lane_count + lo];
      std::size_t l = 0;
      for (; l + kBlock <= width; l += kBlock) {
        double acc[kBlock] = {};
        for (std::size_t j = 0; j < n; ++j) {
          const double pij = phi_row[j];
          const double* t_row = &temps_[m->free_nodes[j] * lane_count + lo + l];
          for (std::size_t k = 0; k < kBlock; ++k) acc[k] += pij * t_row[k];
        }
        for (std::size_t j = 0; j < n; ++j) {
          const double gij = gamma_row[j];
          const double* z_row = &z_[j * lane_count + lo + l];
          for (std::size_t k = 0; k < kBlock; ++k) acc[k] += gij * z_row[k];
        }
        for (std::size_t k = 0; k < kBlock; ++k) out_row[l + k] = acc[k];
      }
      constexpr std::size_t kHalf = kBlock / 2;
      for (; l + kHalf <= width; l += kHalf) {
        double acc[kHalf] = {};
        for (std::size_t j = 0; j < n; ++j) {
          const double pij = phi_row[j];
          const double* t_row = &temps_[m->free_nodes[j] * lane_count + lo + l];
          for (std::size_t k = 0; k < kHalf; ++k) acc[k] += pij * t_row[k];
        }
        for (std::size_t j = 0; j < n; ++j) {
          const double gij = gamma_row[j];
          const double* z_row = &z_[j * lane_count + lo + l];
          for (std::size_t k = 0; k < kHalf; ++k) acc[k] += gij * z_row[k];
        }
        for (std::size_t k = 0; k < kHalf; ++k) out_row[l + k] = acc[k];
      }
      for (; l < width; ++l) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          acc += phi_row[j] * temps_[m->free_nodes[j] * lane_count + lo + l];
        }
        for (std::size_t j = 0; j < n; ++j) {
          acc += gamma_row[j] * z_[j * lane_count + lo + l];
        }
        out_row[l] = acc;
      }
    }
    lo = hi;
  }
  temps_.swap(temps_alt_);
}

void BatchPlantStepper::scatter_lane(Simulation& sim, std::size_t lane,
                                     std::size_t lane_count,
                                     std::size_t node_count) {
  std::vector<double>& temps = sim.plant().network().temperatures_mut();
  for (std::size_t n = 0; n < node_count; ++n) {
    temps[n] = temps_[n * lane_count + lane];
  }
}

std::vector<LockstepGroup> plan_lockstep_groups(
    const std::vector<BatchJob>& jobs, std::vector<std::size_t>& singles,
    unsigned worker_count) {
  struct Bucket {
    PlatformPtr platform;
    double control_interval_s;
    double plant_substep_s;
    LockstepGroup members;
  };
  std::vector<Bucket> buckets;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ExperimentConfig& config = jobs[i].config;
    if (config.engine != Engine::kBatched) {
      singles.push_back(i);
      continue;
    }
    // Value equality, not pointer identity: preset-only configs synthesize
    // a fresh descriptor each, and sweeps mixing the two must still group.
    const PlatformPtr platform = resolved_platform(config);
    bool placed = false;
    for (Bucket& b : buckets) {
      if (b.control_interval_s == config.control_interval_s &&
          b.plant_substep_s == config.plant_substep_s &&
          *b.platform == *platform) {
        b.members.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      buckets.push_back({platform, config.control_interval_s,
                         config.plant_substep_s, LockstepGroup{i}});
    }
  }

  // SoA rows narrower than this stop paying for the lockstep machinery, so
  // sharding never cuts a bucket into tiles smaller than it.
  constexpr std::size_t kMinShardLanes = 4;

  std::vector<LockstepGroup> groups;
  for (Bucket& b : buckets) {
    const std::size_t count = b.members.size();
    if (count < 2) {
      singles.insert(singles.end(), b.members.begin(), b.members.end());
      continue;
    }
    // One balanced contiguous tile per worker (as far as the minimum tile
    // width allows); the lane cap forces further splits regardless.
    std::size_t shards = std::max<std::size_t>(
        1, std::min<std::size_t>(worker_count, count / kMinShardLanes));
    shards = std::max(shards,
                      (count + kMaxLanesPerGroup - 1) / kMaxLanesPerGroup);
    const std::size_t base = count / shards;
    const std::size_t rem = count % shards;
    std::size_t off = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t len = base + (s < rem ? 1 : 0);
      if (len == 1) {
        singles.push_back(b.members[off]);  // a tile of one gains nothing
      } else {
        groups.emplace_back(b.members.begin() + std::ptrdiff_t(off),
                            b.members.begin() + std::ptrdiff_t(off + len));
      }
      off += len;
    }
  }
  return groups;
}

void run_lockstep_group(const std::vector<BatchJob>& jobs,
                        const LockstepGroup& members, const RunPlan& plan,
                        std::vector<RunResult>& results,
                        std::vector<std::exception_ptr>& errors) {
  struct Lane {
    std::size_t slot = 0;
    std::unique_ptr<Simulation> sim;
    bool finished = false;
  };
  std::vector<Lane> lanes;
  lanes.reserve(members.size());
  for (std::size_t slot : members) {
    try {
      const sysid::IdentifiedPlatformModel* model =
          jobs[slot].model != nullptr ? jobs[slot].model
                                      : plan.model_for(jobs[slot].config);
      Lane lane;
      lane.slot = slot;
      lane.sim = std::make_unique<Simulation>(jobs[slot].config, model,
                                              nullptr, &plan);
      lanes.push_back(std::move(lane));
    } catch (...) {
      errors[slot] = std::current_exception();
    }
  }

  BatchPlantStepper stepper;
  std::vector<Simulation*> wave;
  try {
    for (;;) {
      // Batched sensor pass: draw every in-flight lane's whole-interval
      // noise in one sweep and stage it, so the begin_step() reads below
      // are pure arithmetic. A lane whose run turns out to be done never
      // consumes its staged block -- harmless, nothing reads its sensors
      // again.
      wave.clear();
      for (Lane& lane : lanes) {
        if (!lane.finished) wave.push_back(lane.sim.get());
      }
      if (wave.empty()) break;
      stepper.stage_wave_noise(wave);

      wave.clear();
      for (Lane& lane : lanes) {
        if (lane.finished) continue;
        bool running = false;
        try {
          running = lane.sim->begin_step();
        } catch (...) {
          errors[lane.slot] = std::current_exception();
          lane.finished = true;
          continue;
        }
        if (running) {
          wave.push_back(lane.sim.get());
        } else {
          results[lane.slot] = lane.sim->finish();
          lane.finished = true;
        }
      }
      if (wave.empty()) break;
      stepper.run_interval(wave);
    }
  } catch (...) {
    // A failure inside the shared kernel has no single owning lane; every
    // lane still in flight reports it rather than silently returning a
    // default-constructed result.
    for (Lane& lane : lanes) {
      if (!lane.finished) {
        errors[lane.slot] = std::current_exception();
        lane.finished = true;
      }
    }
  }
}

}  // namespace dtpm::sim
