// Structure-of-arrays batch stepping: the `batched` engine's fleet lane.
//
// A BatchRunner wave usually runs many configs that share one platform and
// one step geometry while differing only in benchmark/policy/seed. Each of
// those runs spends its interval budget on the same arithmetic -- leakage
// exponentials, the LTI propagator matvec -- over different state. The
// batch lane exploits that: same-platform runs are grouped into lockstep
// lanes whose per-node state lives column-major (`temps[node][lane]`), so
// one pass of the thermal propagator and one pass of the leakage kernel
// advance every lane at once, in loops the compiler vectorizes across
// lanes.
//
// Division of labour per control interval:
//
//   * sensor noise: one batched pass (stage_wave_noise) draws every lane's
//     whole-interval noise block up front -- util/vgauss.hpp, sequence-
//     identical to the per-read draws -- and stages it on the Plants, so
//     begin_step's sensor reads become pure arithmetic,
//   * control + actuation: per-lane scalar (Simulation::begin_step --
//     policies are stateful and branchy; no value in lanes there),
//   * substep 0: per-lane scalar Plant::substep_prepare (recomputes the
//     workload schedule) whose outputs seed the lane columns, plus a
//     Soc::interval_constants() capture of the temperature-independent
//     power terms. Lanes whose (demand, background, applied config) tuple
//     matches an earlier lane's adopt that lane's solved schedule instead
//     of re-running the placement/contention bisection -- the memo that
//     collapses the schedule solve to once per equivalence class,
//   * substeps >= 1: structure-of-arrays leakage (util/vexp.hpp) + rail
//     assembly + propagator matvec across all lanes, with lanes bucketed by
//     fan-state conductance so each bucket shares one (Phi, Gamma) pair,
//   * bookkeeping: the ordinary Plant::substep_commit / interval_end /
//     Simulation::finish_step per lane, so termination, recording and
//     metrics share the scalar code path operation for operation.
//
// A lane whose benchmark completes mid-interval is peeled: its column is
// scattered back to its own RcNetwork immediately and it stops committing,
// exactly where the scalar loop would have broken. Lanes that finish their
// runs retire from subsequent waves; the rest keep stepping.
//
// Numerics: within one interval the thermal matvec reproduces the scalar
// propagator sum order bit for bit; the power evaluation differs from the
// scalar path by documented reassociation (SocIntervalConstants) and by
// vexp()'s few-ulp deviation from std::exp, so `batched` trades golden-trace
// bit-identity for throughput the same way `propagator` trades the RK4
// fallback's -- see sim/stepping_engine.hpp for the contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/batch.hpp"
#include "sim/run_result.hpp"
#include "soc/soc.hpp"
#include "thermal/lti_propagator.hpp"

namespace dtpm::sim {

class RunPlan;
class Simulation;

/// Indices into a BatchRunner job vector that run in lockstep as lanes of
/// one structure-of-arrays group.
using LockstepGroup = std::vector<std::size_t>;

/// Steps N same-platform simulations through one control interval in
/// structure-of-arrays form. All lanes must share the platform (hence
/// floorplan topology), substep count and substep dt -- the invariants
/// plan_lockstep_groups() groups by; run_interval throws std::logic_error
/// on a violation. Owns the group-shared propagator whose conductance-keyed
/// cache serves every fan-state bucket. Not thread-safe; one stepper per
/// group per worker.
class BatchPlantStepper {
 public:
  explicit BatchPlantStepper(
      thermal::PropagatorMode mode = thermal::PropagatorMode::kRk4Map)
      : propagator_(mode) {}

  /// Draws and stages one control interval's sensor noise for every lane,
  /// in one pass, before the lanes' begin_step() calls. Each lane's draws
  /// consume its own sensor-bank RNG streams exactly as the scalar reads
  /// would, so staged reads stay bit-identical to unstaged ones. The staged
  /// block stays valid until the next stage_wave_noise() call.
  void stage_wave_noise(const std::vector<Simulation*>& lanes);

  /// Runs one control interval for every lane in `wave`. Every lane must
  /// have returned true from Simulation::begin_step() and not yet advanced;
  /// on return every lane has been through finish_step(). Reorders `wave`
  /// (lanes sharing a fan-state bucket become contiguous columns).
  void run_interval(std::vector<Simulation*>& wave);

  /// The per-wave schedule memo (on by default). Off forces every lane
  /// through its own schedule solve -- the reference the memo is tested
  /// bit-identical against.
  void set_schedule_memo(bool on) { schedule_memo_ = on; }

  thermal::PropagatorRcModel& propagator() { return propagator_; }

 private:
  /// Leakage evaluation rows: the big cores + little + GPU + mem.
  static constexpr std::size_t kLeakRows = soc::kBigCoreCount + 3;

  void compute_lane_powers(std::vector<Simulation*>& wave, double sub_dt);
  void refresh_z(std::size_t lane_count, bool leak_rows_only);
  void thermal_matvec(std::size_t lane_count);
  void scatter_lane(Simulation& sim, std::size_t lane, std::size_t lane_count,
                    std::size_t node_count);

  thermal::PropagatorRcModel propagator_;
  bool schedule_memo_ = true;

  // Per-wave scratch, resized (capacity-preserving) each interval. SoA rows
  // have stride = current lane count.
  std::vector<const thermal::PropagatorMatrices*> mats_;  ///< per lane
  std::vector<soc::SocIntervalConstants> konst_;          ///< per lane
  std::vector<char> committing_;                          ///< per lane
  std::vector<std::size_t> row_node_;        ///< leak row -> node index
  std::vector<double> temps_, power_;        ///< [node][lane]
  std::vector<double> temps_alt_;            ///< matvec ping-pong target
  std::vector<double> c2_, scale_, gate_;    ///< [leak row][lane]
  std::vector<double> tk_, leak_;            ///< [leak row][lane]
  std::vector<double> z_;                    ///< [free slot][lane]
  std::vector<std::size_t> leak_slot_;       ///< leak row -> free slot
  bool z_leak_only_ok_ = false;              ///< every leak node is free
  std::vector<double> fan_g_;                ///< per-lane bucket key
  std::vector<std::size_t> order_;
  std::vector<Simulation*> sorted_;
  std::vector<double> noise_;                ///< [lane][sensor noise slot]
  std::vector<std::uint64_t> memo_hash_;     ///< schedule-memo class key
};

/// Partitions a batch into lockstep groups: jobs whose config selects
/// Engine::kBatched and agrees on (platform value, control interval, plant
/// substep) land in one group; everything else -- other engines, and
/// batched jobs with no lockstep partner -- is appended to `singles` for
/// the ordinary per-run path. Groups larger than the lane cap are split.
///
/// `worker_count` shards each bucket into balanced contiguous column tiles
/// so a multi-worker pool has one tile per worker instead of one monolithic
/// group serializing on a single thread. Tiles never drop below a few lanes
/// (SoA rows narrower than a vector register stop paying), and since lanes
/// are fully independent Simulations, any sharding produces bit-identical
/// per-run results.
std::vector<LockstepGroup> plan_lockstep_groups(
    const std::vector<BatchJob>& jobs, std::vector<std::size_t>& singles,
    unsigned worker_count = 1);

/// Runs one lockstep group to completion, writing each job's RunResult (or
/// exception) into its own slot of the batch-aligned arrays. Construction
/// and control-step errors are attributed per lane; a failure inside the
/// shared stepping kernel is reported by every lane still in flight.
void run_lockstep_group(const std::vector<BatchJob>& jobs,
                        const LockstepGroup& members, const RunPlan& plan,
                        std::vector<RunResult>& results,
                        std::vector<std::exception_ptr>& errors);

}  // namespace dtpm::sim
