#include "sim/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "analysis/equilibrium.hpp"
#include "power/dynamic_power.hpp"
#include "soc/soc.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/sensor.hpp"
#include "util/prbs.hpp"
#include "util/rng.hpp"

namespace dtpm::sim {
namespace {

using power::Resource;
using power::resource_index;

/// A fresh plant instance (floorplan + SoC + sensors) for one experiment,
/// built from the platform descriptor's topology and role indices.
struct PlantBundle {
  thermal::Floorplan floorplan;
  soc::Soc soc;
  thermal::TempSensorBank temp_bank;
  power::PowerSensorBank power_bank;

  PlantBundle(const PlatformDescriptor& platform, util::Rng& root)
      : floorplan(thermal::build_floorplan(platform.floorplan)),
        soc(platform.power, platform.perf, platform.big_opp_table(),
            platform.little_opp_table(), platform.gpu_opp_table()),
        temp_bank(floorplan.sensor_node_index, platform.temp_sensor,
                  root.fork()),
        power_bank(platform.power_sensor, root.fork()) {}

  std::array<double, soc::kBigCoreCount> big_true_temps() const {
    const auto& temps = floorplan.network.temperatures_c();
    const auto& cores = floorplan.core_node_index;
    return {temps[cores[0]], temps[cores[1]], temps[cores[2]],
            temps[cores[3]]};
  }

  soc::SocStepResult plant_substep(const workload::Demand& demand,
                                   double dt_s) {
    const auto& temps = floorplan.network.temperatures_c();
    soc::SocStepResult out =
        soc.step(demand, {}, big_true_temps(),
                 temps[floorplan.little_node_index],
                 temps[floorplan.gpu_node_index],
                 temps[floorplan.mem_node_index], dt_s);
    std::vector<double> node_power;
    floorplan.assemble_node_power_into(out.big_core_power_w, out.rail_power_w,
                                       node_power);
    floorplan.network.step(dt_s, node_power);
    return out;
  }

  /// One control interval; returns the average true rail powers.
  power::ResourceVector interval(const workload::Demand& demand, double dt_s,
                                 double substep_s) {
    const int n = std::max(1, int(std::lround(dt_s / substep_s)));
    const double h = dt_s / n;
    power::ResourceVector accum{};
    for (int s = 0; s < n; ++s) {
      const soc::SocStepResult out = plant_substep(demand, h);
      for (std::size_t r = 0; r < power::kResourceCount; ++r) {
        accum[r] += out.rail_power_w[r] / double(n);
      }
    }
    return accum;
  }

  /// Leakage-consistent equilibration through the shared coupled solver
  /// (analysis/equilibrium.hpp): iterate to the fixed point where the
  /// network's steady state under temperature-dependent power reproduces the
  /// temperatures the power was computed at, to a tight tolerance. Loud
  /// failure instead of a silently-unconverged plant: calibration data taken
  /// off-equilibrium would poison every coefficient fitted from it.
  void equilibrate(const workload::Demand& demand) {
    const analysis::NodePowerFn probe = [&](const std::vector<double>& temps,
                                            std::vector<double>& node_power) {
      // Probe powers at the solver's trial temperatures without advancing
      // time meaningfully (the network still holds `temps`; the SoC step is
      // fed from it directly).
      const auto& cores = floorplan.core_node_index;
      const std::array<double, soc::kBigCoreCount> big = {
          temps[cores[0]], temps[cores[1]], temps[cores[2]], temps[cores[3]]};
      soc::SocStepResult out =
          soc.step(demand, {}, big, temps[floorplan.little_node_index],
                   temps[floorplan.gpu_node_index],
                   temps[floorplan.mem_node_index], 1e-4);
      floorplan.assemble_node_power_into(out.big_core_power_w,
                                         out.rail_power_w, node_power);
    };
    const analysis::EquilibriumResult eq =
        analysis::solve_coupled_equilibrium(floorplan.network, probe);
    if (!eq.converged) {
      throw std::runtime_error(
          "calibration: plant failed to reach a leakage-consistent "
          "equilibrium (" +
          std::string(eq.diverged ? "diverged -- thermal runaway"
                                  : "did not converge") +
          " after " + std::to_string(eq.iterations) +
          " iterations, residual " + std::to_string(eq.residual_c) + " C)");
    }
  }
};

/// Light characterization workload for a CPU cluster (single low-activity
/// thread, §4.1.1's "light workload ... with fixed f and Vdd").
workload::Demand light_cpu_demand(double activity, double mem_intensity) {
  workload::Demand d;
  workload::ThreadDemand td;
  td.duty = 1.0;
  td.cpu_activity = activity;
  td.mem_intensity = mem_intensity;
  td.counts_progress = false;
  d.threads.push_back(td);
  return d;
}

workload::Demand heavy_cpu_demand(int threads, double activity,
                                  double mem_intensity) {
  workload::Demand d;
  for (int i = 0; i < threads; ++i) {
    workload::ThreadDemand td;
    td.duty = 1.0;
    td.cpu_activity = activity;
    td.mem_intensity = mem_intensity;
    td.counts_progress = false;
    d.threads.push_back(td);
  }
  return d;
}

/// Furnace sweep for one resource at one fixed operating point.
std::vector<sysid::FurnaceSample> furnace_run(const CalibrationOptions& opt,
                                              const PlatformDescriptor& platform,
                                              util::Rng& root, Resource target,
                                              std::size_t op_index) {
  std::vector<sysid::FurnaceSample> samples;
  for (double t_furnace : opt.furnace_temps_c) {
    PlantBundle plant(platform, root);
    auto& rc = plant.floorplan.network;
    const std::size_t ambient = plant.floorplan.ambient_node_index;
    rc.set_boundary_temperature_c(ambient, t_furnace);
    rc.set_all_temperatures_c(t_furnace);

    soc::SocConfig config;
    workload::Demand demand;
    double sample_v = 0.0, sample_f = 0.0;
    switch (target) {
      case Resource::kBigCluster: {
        const auto& opp = plant.soc.big_opps().at(op_index);
        config.active_cluster = soc::ClusterId::kBig;
        config.big_freq_hz = opp.frequency_hz;
        config.little_freq_hz = plant.soc.little_opps().min().frequency_hz;
        config.gpu_freq_hz = plant.soc.gpu_opps().min().frequency_hz;
        demand = light_cpu_demand(0.25, 0.05);
        sample_v = opp.voltage_v;
        sample_f = opp.frequency_hz;
        break;
      }
      case Resource::kLittleCluster: {
        const auto& opp = plant.soc.little_opps().at(op_index);
        config.active_cluster = soc::ClusterId::kLittle;
        config.big_freq_hz = plant.soc.big_opps().min().frequency_hz;
        config.little_freq_hz = opp.frequency_hz;
        config.gpu_freq_hz = plant.soc.gpu_opps().min().frequency_hz;
        demand = light_cpu_demand(0.30, 0.05);
        sample_v = opp.voltage_v;
        sample_f = opp.frequency_hz;
        break;
      }
      case Resource::kGpu: {
        const auto& opp = plant.soc.gpu_opps().at(op_index);
        config.active_cluster = soc::ClusterId::kBig;
        config.big_freq_hz = plant.soc.big_opps().min().frequency_hz;
        config.little_freq_hz = plant.soc.little_opps().min().frequency_hz;
        config.gpu_freq_hz = opp.frequency_hz;
        demand = light_cpu_demand(0.15, 0.05);
        // Saturating load: the GPU is 100 % busy at both characterization
        // OPPs, so the (V^2 f) basis column actually varies between them and
        // the dynamic term separates from gate leakage.
        demand.gpu_load = 1.0;
        sample_v = opp.voltage_v;
        sample_f = opp.frequency_hz;
        break;
      }
      case Resource::kMem: {
        config.active_cluster = soc::ClusterId::kBig;
        config.big_freq_hz = plant.soc.big_opps().min().frequency_hz;
        config.little_freq_hz = plant.soc.little_opps().min().frequency_hz;
        config.gpu_freq_hz = plant.soc.gpu_opps().min().frequency_hz;
        demand = light_cpu_demand(0.15, 0.30);
        sample_v = platform.power.mem_nominal_voltage_v;
        sample_f = platform.power.mem_nominal_frequency_hz;
        break;
      }
      case Resource::kCount:
        throw std::invalid_argument("furnace_run: bad resource");
    }
    plant.soc.apply(config);
    plant.equilibrate(demand);

    const int n_samples =
        std::max(1, int(opt.furnace_sample_s / opt.control_interval_s));
    for (int n = 0; n < n_samples; ++n) {
      const power::ResourceVector rails = plant.interval(
          demand, opt.control_interval_s, opt.plant_substep_s);
      const power::ResourceVector sensed = plant.power_bank.read(rails);
      const std::vector<double> temps =
          plant.temp_bank.read(rc.temperatures_c());
      double t_mean = 0.0;
      for (double x : temps) t_mean += x / double(temps.size());
      samples.push_back(
          {t_mean, sensed[resource_index(target)], sample_v, sample_f});
    }
  }
  return samples;
}

struct ExcitationResult {
  sysid::TraceSegment segment;
  double alpha_c_high = 0.0;  ///< mean alphaC estimate over high-bit samples
};

/// PRBS excitation of one resource (§4.2.1): toggle its knob between the
/// extremes while everything else idles; record sensor T/P traces.
ExcitationResult excitation_run(const CalibrationOptions& opt,
                                const PlatformDescriptor& platform,
                                util::Rng& root, Resource target,
                                const power::LeakageParams& fitted_leakage) {
  PlantBundle plant(platform, root);
  auto& rc = plant.floorplan.network;
  util::Prbs prbs(15, opt.prbs_hold_intervals,
                  std::uint32_t(0x1234 + 97 * resource_index(target)));

  const std::size_t total_intervals =
      std::size_t((opt.prbs_warmup_s + opt.prbs_duration_s) /
                  opt.control_interval_s);
  const std::size_t warmup_intervals =
      std::size_t(opt.prbs_warmup_s / opt.control_interval_s);

  ExcitationResult result;
  power::LeakageModel leak(fitted_leakage);
  double alpha_sum = 0.0;
  std::size_t alpha_count = 0;

  for (std::size_t k = 0; k < total_intervals; ++k) {
    const bool bit = prbs.next();

    soc::SocConfig config;
    workload::Demand demand;
    double knob_v = 0.0, knob_f = 0.0;
    switch (target) {
      case Resource::kBigCluster: {
        const auto& opp = bit ? plant.soc.big_opps().max()
                              : plant.soc.big_opps().min();
        config.active_cluster = soc::ClusterId::kBig;
        config.big_freq_hz = opp.frequency_hz;
        config.little_freq_hz = plant.soc.little_opps().min().frequency_hz;
        config.gpu_freq_hz = plant.soc.gpu_opps().min().frequency_hz;
        demand = heavy_cpu_demand(4, 0.8, 0.2);
        knob_v = opp.voltage_v;
        knob_f = opp.frequency_hz;
        break;
      }
      case Resource::kLittleCluster: {
        const auto& opp = bit ? plant.soc.little_opps().max()
                              : plant.soc.little_opps().min();
        config.active_cluster = soc::ClusterId::kLittle;
        config.big_freq_hz = plant.soc.big_opps().min().frequency_hz;
        config.little_freq_hz = opp.frequency_hz;
        config.gpu_freq_hz = plant.soc.gpu_opps().min().frequency_hz;
        demand = heavy_cpu_demand(4, 0.8, 0.2);
        knob_v = opp.voltage_v;
        knob_f = opp.frequency_hz;
        break;
      }
      case Resource::kGpu: {
        const auto& opp = bit ? plant.soc.gpu_opps().max()
                              : plant.soc.gpu_opps().min();
        config.active_cluster = soc::ClusterId::kBig;
        config.big_freq_hz = plant.soc.big_opps().min().frequency_hz;
        config.little_freq_hz = plant.soc.little_opps().min().frequency_hz;
        config.gpu_freq_hz = opp.frequency_hz;
        demand = light_cpu_demand(0.3, 0.1);
        demand.gpu_load = 0.9;
        knob_v = opp.voltage_v;
        knob_f = opp.frequency_hz;
        break;
      }
      case Resource::kMem: {
        config.active_cluster = soc::ClusterId::kBig;
        config.big_freq_hz = plant.soc.big_opps().min().frequency_hz;
        config.little_freq_hz = plant.soc.little_opps().min().frequency_hz;
        config.gpu_freq_hz = plant.soc.gpu_opps().min().frequency_hz;
        demand = heavy_cpu_demand(2, 0.3, bit ? 0.95 : 0.02);
        knob_v = platform.power.mem_nominal_voltage_v;
        knob_f = platform.power.mem_nominal_frequency_hz;
        break;
      }
      case Resource::kCount:
        throw std::invalid_argument("excitation_run: bad resource");
    }
    plant.soc.apply(config);

    const std::vector<double> temps_before =
        plant.temp_bank.read(rc.temperatures_c());
    const power::ResourceVector rails =
        plant.interval(demand, opt.control_interval_s, opt.plant_substep_s);
    const power::ResourceVector sensed = plant.power_bank.read(rails);

    if (k >= warmup_intervals) {
      result.segment.temps_c.push_back(temps_before);
      result.segment.powers_w.push_back({sensed.begin(), sensed.end()});
      if (bit && target != Resource::kMem) {
        double t_mean = 0.0;
        for (double x : temps_before) t_mean += x / double(temps_before.size());
        const double dyn =
            sensed[resource_index(target)] - leak.power_w(t_mean, knob_v);
        if (dyn > 0.0 && knob_f > 0.0) {
          alpha_sum += power::alpha_c_from_power(dyn, knob_v, knob_f);
          ++alpha_count;
        }
      }
    }
  }
  // Close the segment with a final temperature sample so the last recorded
  // (T, P) pair has a successor.
  result.segment.temps_c.push_back(plant.temp_bank.read(rc.temperatures_c()));
  result.segment.powers_w.push_back(result.segment.powers_w.back());

  if (alpha_count > 0) result.alpha_c_high = alpha_sum / double(alpha_count);
  return result;
}

std::size_t second_op_index(Resource r) {
  // A mid-table second operating point per resource, giving the fit a
  // distinct (V^2 f, V) pair to separate dynamic power from gate leakage.
  switch (r) {
    case Resource::kBigCluster:
      return 2;  // 1000 MHz
    case Resource::kLittleCluster:
      return 3;  // 800 MHz
    case Resource::kGpu:
      return 2;  // 350 MHz (busy stays saturated at the low end)
    default:
      return 0;
  }
}

}  // namespace

CalibrationArtifacts calibrate_platform_full(const CalibrationOptions& options) {
  CalibrationArtifacts art;
  util::Rng root(options.seed);
  const PlatformPtr platform =
      options.platform != nullptr
          ? options.platform
          : std::make_shared<const PlatformDescriptor>(
                descriptor_from_preset(options.preset));

  // --- 1. Furnace leakage characterization -----------------------------------
  for (Resource r : power::all_resources()) {
    const std::size_t idx = resource_index(r);
    auto samples = furnace_run(options, *platform, root, r, 0);
    if (r != Resource::kMem) {
      auto more = furnace_run(options, *platform, root, r, second_op_index(r));
      samples.insert(samples.end(), more.begin(), more.end());
    }
    sysid::LeakageFitOptions fit_options;
    fit_options.fit_dynamic_term = r != Resource::kMem;
    art.furnace_samples[idx] = samples;
    art.leakage_fits[idx] = sysid::fit_leakage(samples, fit_options);
    art.model.leakage[idx] = art.leakage_fits[idx].params;
  }

  // --- 2. PRBS excitation + 3. ARX identification ---------------------------
  for (Resource r : power::all_resources()) {
    ExcitationResult ex = excitation_run(options, *platform, root, r,
                                         art.model.leakage[resource_index(r)]);
    art.excitation_segments.push_back(std::move(ex.segment));
    art.model.initial_alpha_c[resource_index(r)] = ex.alpha_c_high;
  }
  sysid::ArxFitOptions arx_options;
  arx_options.ambient_ref_c = platform->floorplan.ambient_temp_c();
  art.arx = sysid::fit_thermal_model(art.excitation_segments,
                                     options.control_interval_s, arx_options);
  art.model.thermal = art.arx.model;
  return art;
}

sysid::IdentifiedPlatformModel calibrate_platform(
    const CalibrationOptions& options) {
  return calibrate_platform_full(options).model;
}

const CalibrationArtifacts& default_calibration() {
  static const CalibrationArtifacts artifacts = calibrate_platform_full();
  return artifacts;
}

const CalibrationArtifacts& platform_calibration(const PlatformPtr& platform) {
  if (platform == nullptr) {
    throw std::invalid_argument("platform_calibration: null platform");
  }
  // The default platform shares the default_calibration() artifacts, so
  // legacy callers and platform-aware callers agree on one model.
  if (*platform == PlatformDescriptor{}) return default_calibration();

  // Keyed by descriptor *identity* (pointer fast path, then memberwise
  // equality), never by name alone: two different descriptors that happen to
  // share a name each get their own calibration. The linear scan is fine --
  // a process calibrates a handful of platforms, each costing far more than
  // any lookup.
  using Entry = std::pair<PlatformPtr, std::unique_ptr<CalibrationArtifacts>>;
  static std::mutex mutex;
  static std::vector<Entry>* cache = new std::vector<Entry>();
  std::lock_guard<std::mutex> lock(mutex);
  for (const Entry& entry : *cache) {
    if (entry.first == platform || *entry.first == *platform) {
      return *entry.second;
    }
  }
  CalibrationOptions options;
  options.platform = platform;
  cache->emplace_back(platform, std::make_unique<CalibrationArtifacts>(
                                    calibrate_platform_full(options)));
  return *cache->back().second;
}

}  // namespace dtpm::sim
