// The full Chapter-4 modeling workflow, run against the simulated plant:
//
//   1. Furnace leakage characterization (§4.1.1): pin the ambient node to
//      each furnace setpoint, run a light fixed-(f,V) workload, equilibrate,
//      record (temperature, rail power) samples, and fit the condensed
//      leakage parameters. The harness sweeps two fixed operating points so
//      the constant dynamic power separates from gate leakage (the paper's
//      furnace runs at one fixed point and performs this separation with its
//      run-time alphaC machinery; the two-point sweep is equivalent and
//      self-contained).
//   2. PRBS excitation (§4.2.1, Fig. 4.8): toggle each power resource's knob
//      between its extremes with a pseudo-random binary sequence while the
//      other resources idle, recording sensor temperature/power traces.
//   3. Least-squares identification of (A_s, B_s) over the concatenated
//      excitation segments (replacing the MATLAB sysid toolbox).
//
// The result is the IdentifiedPlatformModel consumed by the DTPM governor.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/preset.hpp"
#include "sysid/arx_fit.hpp"
#include "sysid/leakage_fit.hpp"
#include "sysid/model_store.hpp"

namespace dtpm::sim {

struct CalibrationOptions {
  /// Legacy scalar-parameter plant description; used only when `platform`
  /// is null (the workflow then runs against the default Odroid topology
  /// with these parameters).
  PlatformPreset preset = default_preset();
  /// The platform to calibrate. Null = descriptor_from_preset(preset).
  PlatformPtr platform;
  double control_interval_s = 0.1;
  double plant_substep_s = 0.02;

  /// Furnace sweep (§4.1.1): 40..80 C in 10 C increments.
  std::vector<double> furnace_temps_c{40.0, 50.0, 60.0, 70.0, 80.0};
  /// Sampling window at each setpoint after equilibration.
  double furnace_sample_s = 5.0;

  /// PRBS excitation per resource.
  double prbs_duration_s = 240.0;
  double prbs_warmup_s = 10.0;
  unsigned prbs_hold_intervals = 5;  ///< 0.5 s bit hold at 100 ms intervals

  std::uint64_t seed = 7;
};

/// Everything produced along the way, for the figure-regeneration benches.
struct CalibrationArtifacts {
  /// Furnace samples per resource (big, little, gpu, mem).
  std::array<std::vector<sysid::FurnaceSample>, power::kResourceCount>
      furnace_samples;
  std::array<sysid::LeakageFitResult, power::kResourceCount> leakage_fits;
  /// Excitation recordings in resource order (big, little, gpu, mem).
  std::vector<sysid::TraceSegment> excitation_segments;
  sysid::ArxFitResult arx;
  sysid::IdentifiedPlatformModel model;
};

/// Runs the full workflow.
CalibrationArtifacts calibrate_platform_full(const CalibrationOptions& options = {});

/// Convenience wrapper returning only the model.
sysid::IdentifiedPlatformModel calibrate_platform(
    const CalibrationOptions& options = {});

/// Process-wide cached calibration with default options; benches and tests
/// share it so the (cheap but not free) workflow runs once. Equivalent to
/// platform_calibration() on the odroid-xu-e descriptor.
const CalibrationArtifacts& default_calibration();

/// Process-wide per-platform calibration cache, keyed by descriptor name:
/// the first call for a platform runs the full Chapter-4 workflow against
/// that plant (with otherwise-default options); later calls return the
/// cached artifacts. This is what gives every platform in a sweep its own
/// identified model without recalibrating per run.
const CalibrationArtifacts& platform_calibration(const PlatformPtr& platform);

}  // namespace dtpm::sim
