// The Policy-enum compatibility shim: the enum is nothing but four registry
// names, and this is the single place that knows the mapping (previously a
// switch copy-pasted between engine.cpp and control_stack.cpp).
#include "sim/config.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/platform_registry.hpp"
#include "util/names.hpp"

namespace dtpm::sim {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kDefaultWithFan:
      return "default+fan";
    case Policy::kWithoutFan:
      return "no-fan";
    case Policy::kReactive:
      return "reactive";
    case Policy::kProposedDtpm:
      return "dtpm";
  }
  return "?";
}

const std::vector<std::string>& paper_policy_names() {
  static const std::vector<std::string> names = {
      to_string(Policy::kDefaultWithFan), to_string(Policy::kWithoutFan),
      to_string(Policy::kReactive), to_string(Policy::kProposedDtpm)};
  return names;
}

std::optional<Policy> try_parse_policy(const std::string& name) {
  for (Policy p : {Policy::kDefaultWithFan, Policy::kWithoutFan,
                   Policy::kReactive, Policy::kProposedDtpm}) {
    if (name == to_string(p)) return p;
  }
  return std::nullopt;
}

Policy parse_policy(const std::string& name) {
  const std::optional<Policy> parsed = try_parse_policy(name);
  if (!parsed.has_value()) {
    throw std::invalid_argument("parse_policy: " + util::unknown_name_message(
                                                      "policy", name,
                                                      paper_policy_names()));
  }
  return *parsed;
}

std::string resolved_policy_name(const ExperimentConfig& config) {
  return config.policy_name.empty() ? to_string(config.policy)
                                    : config.policy_name;
}

std::string resolved_governor_name(const ExperimentConfig& config) {
  return config.governor_name.empty() ? "ondemand" : config.governor_name;
}

PlatformPtr resolved_platform(const ExperimentConfig& config) {
  if (config.platform != nullptr) return config.platform;
  return std::make_shared<const PlatformDescriptor>(
      descriptor_from_preset(config.preset));
}

std::string resolved_platform_name(const ExperimentConfig& config) {
  return config.platform != nullptr ? config.platform->name : "odroid-xu-e";
}

bool needs_identified_model(const ExperimentConfig& config) {
  return resolved_policy_name(config) == "dtpm" || config.observe_predictions;
}

void set_platform(ExperimentConfig& config, const std::string& name) {
  set_platform(config, PlatformRegistry::instance().get(name));
}

void set_platform(ExperimentConfig& config, PlatformPtr platform) {
  if (platform == nullptr) {
    throw std::invalid_argument("set_platform: null platform descriptor");
  }
  // Hand-built descriptors reach the plant only through here; registry and
  // JSON descriptors were validated at registration/parse time but revalidate
  // cheaply.
  platform->validate();
  config.platform = std::move(platform);
  config.preset = preset_from_descriptor(*config.platform);
  config.dtpm.t_max_c = config.platform->default_t_max_c;
}

void set_policy(ExperimentConfig& config, const std::string& name) {
  config.policy_name = name;
  if (const std::optional<Policy> p = try_parse_policy(name)) {
    config.policy = *p;
  }
}

void apply_smoke_caps(ExperimentConfig& config) {
  config.warmup_s = std::min(config.warmup_s, 2.0);
  config.max_sim_time_s = std::min(config.max_sim_time_s, 15.0);
  config.record_trace = false;
  config.observe_predictions = false;
}

std::vector<std::string> merged_policy_axis(
    const std::vector<Policy>& policies,
    const std::vector<std::string>& policy_names,
    const ExperimentConfig& base) {
  std::vector<std::string> merged;
  merged.reserve(policies.size() + policy_names.size());
  for (Policy p : policies) merged.emplace_back(to_string(p));
  merged.insert(merged.end(), policy_names.begin(), policy_names.end());
  if (merged.empty()) merged.push_back(resolved_policy_name(base));
  return merged;
}

}  // namespace dtpm::sim
