// Experiment configuration: which benchmark, under which thermal policy,
// reproducing the four configurations of §6.2 -- and, through the
// string-keyed governors::PolicyRegistry, any policy registered at startup.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dtpm_governor.hpp"
#include "sim/preset.hpp"
#include "sim/stepping_engine.hpp"
#include "workload/background.hpp"
#include "workload/benchmark.hpp"

namespace dtpm::sim {

/// The experimental configurations of §6.2. Compatibility shim only: the
/// source of truth for selectable policies is governors::PolicyRegistry, and
/// each enumerator is just a registry name ("default+fan", "no-fan",
/// "reactive", "dtpm") -- see to_string/parse_policy. New code should select
/// policies via ExperimentConfig::policy_name.
enum class Policy {
  kDefaultWithFan,  ///< stock ondemand + fan controller
  kWithoutFan,      ///< fan disabled, no thermal management
  kReactive,        ///< heuristic mimicking the fan policy with throttling
  kProposedDtpm,    ///< the paper's contribution
};

/// Registry name of the enumerator ("default+fan", "no-fan", ...).
const char* to_string(Policy p);

/// Inverse of to_string; throws std::invalid_argument (with the valid names
/// and a nearest-match suggestion) when the name is not one of the four
/// paper policies. Registry-only policies have no enumerator by design.
Policy parse_policy(const std::string& name);

/// Like parse_policy, but returns nullopt instead of throwing.
std::optional<Policy> try_parse_policy(const std::string& name);

/// The four enum-backed registry names, in enumerator order.
const std::vector<std::string>& paper_policy_names();

struct ExperimentConfig {
  std::string benchmark = "basicmath";
  /// Inline workload: when set, the simulation runs this benchmark (validated
  /// at Simulation construction) instead of looking `benchmark` up in the
  /// Table-6.4 suite, and `benchmark` only labels the run. Shared-const so
  /// configs stay cheap to copy across BatchRunner workers; this is how the
  /// ScenarioCatalog feeds generated scenarios into batches.
  std::shared_ptr<const workload::Benchmark> scenario;
  Policy policy = Policy::kDefaultWithFan;
  /// Registry name of the thermal policy to run. When non-empty it takes
  /// precedence over `policy` (which then only matters to legacy readers);
  /// when empty the enum is mapped onto its registry name. This is how
  /// user-registered policies -- which have no enumerator -- are selected.
  std::string policy_name;
  /// Free-form numeric knobs handed to the policy factory
  /// (governors::PolicyContext::params); built-in policies ignore it.
  std::map<std::string, double> policy_params;
  /// Registry name of the default governor; empty means "ondemand".
  std::string governor_name;
  /// Legacy scalar-parameter view of the platform. When `platform` is null
  /// the plant is built from these (with the default Odroid topology), so
  /// code that tweaks preset fields keeps working; when `platform` is set
  /// it is the source of truth and this mirrors its scalar params.
  PlatformPreset preset = default_preset();
  /// The platform the experiment runs on: a shared descriptor from the
  /// PlatformRegistry ("platform": "dragon" in JSON) or a user-built one.
  /// Select via set_platform() so `preset` and dtpm.t_max_c stay coherent.
  PlatformPtr platform;
  core::DtpmParams dtpm{};  ///< used when the resolved policy is "dtpm"

  /// Explicit ambient background-load parameters. Unset (the default), the
  /// simulation derives them from the benchmark exactly as it always has
  /// (paper defaults, heavy matmul for games/video), so existing configs and
  /// golden traces are untouched. The fleet sampler sets this to give every
  /// simulated device its own background duty cycle.
  std::optional<workload::BackgroundParams> background;

  double control_interval_s = 0.1;  ///< 100 ms driver period (§6.2)
  double plant_substep_s = 0.01;
  /// Plant stepping engine (sim/stepping_engine.hpp). The default
  /// reference-rk4 is bit-exact with the golden traces; `propagator` and
  /// `batched` trade that for throughput (bounded error, documented in the
  /// README's Performance section).
  Engine engine = Engine::kReferenceRk4;
  /// Settling time before the benchmark starts and recording begins. A
  /// moderate warm-up load runs during this window so traces start from the
  /// warm platform visible in the paper's figures (~50 C).
  double warmup_s = 20.0;
  double warmup_activity = 0.65;  ///< CPU activity of the warm-up thread
  double max_sim_time_s = 900.0;
  std::uint64_t seed = 1;

  bool record_trace = true;
  /// Per-phase cycle accounting (util/phase.hpp): when true, every control
  /// interval stamps sensor/policy/schedule/plant tick deltas into
  /// RunResult::phase_cycles. The stamps are TSC reads -- cheap, but not
  /// free -- so the default keeps the hot path unstamped; bench_throughput
  /// runs a second, profiled pass per cell to build its phase breakdown.
  bool profile_phases = false;
  /// Observe-only prediction validation (§6.3.1): log T[k+h] predictions and
  /// compare them against later measurements. Requires an identified model.
  bool observe_predictions = false;
  unsigned observe_horizon_steps = 10;
};

/// The registry name the config selects: `policy_name` when set, otherwise
/// the enum's name. Every dispatch site (ControlStack, InvariantChecker,
/// summary/labeling code) resolves through this, never through the enum.
std::string resolved_policy_name(const ExperimentConfig& config);

/// The default-governor registry name ("ondemand" when unset).
std::string resolved_governor_name(const ExperimentConfig& config);

/// The descriptor the plant is built from: `platform` when set, otherwise a
/// descriptor synthesized from `preset` (default topology + the preset's
/// parameters). Never null. Every dispatch site that needs platform data
/// (Plant, InvariantChecker, calibration, summary labels) resolves through
/// this.
PlatformPtr resolved_platform(const ExperimentConfig& config);

/// The platform name for labels/summaries ("odroid-xu-e" when unset).
std::string resolved_platform_name(const ExperimentConfig& config);

/// Whether running `config` requires the identified platform model (the
/// "dtpm" policy or observe-only prediction validation). Shared by the CLI
/// and the BatchRunner's per-platform calibration fallback.
bool needs_identified_model(const ExperimentConfig& config);

/// Selects a platform: by registry name or as an explicit descriptor.
/// Syncs the legacy `preset` mirror and adopts the platform's recommended
/// thermal constraint as dtpm.t_max_c (set config.dtpm afterwards to
/// override).
void set_platform(ExperimentConfig& config, const std::string& name);
void set_platform(ExperimentConfig& config, PlatformPtr platform);

/// Selects a policy by registry name, keeping the enum shim in sync for the
/// four paper policies (registry-only names rely on policy_name alone).
void set_policy(ExperimentConfig& config, const std::string& name);

/// Caps simulated durations for CI-sized smoke runs and disables traces /
/// prediction observation so artifact sizes stay bounded. One definition
/// shared by the CLI's --smoke flag and the serve layer's smoke jobs.
void apply_smoke_caps(ExperimentConfig& config);

/// Merges an enum axis and a registry-name axis into one name axis (enum
/// entries first, mapped onto their registry names), falling back to base's
/// resolved policy when both are empty. The one policy-axis expansion rule,
/// shared by sim::sweep and ScenarioCatalog::expand.
std::vector<std::string> merged_policy_axis(
    const std::vector<Policy>& policies,
    const std::vector<std::string>& policy_names, const ExperimentConfig& base);

}  // namespace dtpm::sim
