// Experiment configuration: which benchmark, under which thermal policy,
// reproducing the four configurations of §6.2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/dtpm_governor.hpp"
#include "sim/preset.hpp"
#include "workload/benchmark.hpp"

namespace dtpm::sim {

/// The experimental configurations of §6.2.
enum class Policy {
  kDefaultWithFan,  ///< stock ondemand + fan controller
  kWithoutFan,      ///< fan disabled, no thermal management
  kReactive,        ///< heuristic mimicking the fan policy with throttling
  kProposedDtpm,    ///< the paper's contribution
};

const char* to_string(Policy p);

struct ExperimentConfig {
  std::string benchmark = "basicmath";
  /// Inline workload: when set, the simulation runs this benchmark (validated
  /// at Simulation construction) instead of looking `benchmark` up in the
  /// Table-6.4 suite, and `benchmark` only labels the run. Shared-const so
  /// configs stay cheap to copy across BatchRunner workers; this is how the
  /// ScenarioCatalog feeds generated scenarios into batches.
  std::shared_ptr<const workload::Benchmark> scenario;
  Policy policy = Policy::kDefaultWithFan;
  PlatformPreset preset = default_preset();
  core::DtpmParams dtpm{};  ///< used when policy == kProposedDtpm

  double control_interval_s = 0.1;  ///< 100 ms driver period (§6.2)
  double plant_substep_s = 0.01;
  /// Settling time before the benchmark starts and recording begins. A
  /// moderate warm-up load runs during this window so traces start from the
  /// warm platform visible in the paper's figures (~50 C).
  double warmup_s = 20.0;
  double warmup_activity = 0.65;  ///< CPU activity of the warm-up thread
  double max_sim_time_s = 900.0;
  std::uint64_t seed = 1;

  bool record_trace = true;
  /// Observe-only prediction validation (§6.3.1): log T[k+h] predictions and
  /// compare them against later measurements. Requires an identified model.
  bool observe_predictions = false;
  unsigned observe_horizon_steps = 10;
};

}  // namespace dtpm::sim
