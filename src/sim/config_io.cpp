#include "sim/config_io.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "governors/policy_registry.hpp"
#include "serve/fleet_io.hpp"
#include "sim/platform_registry.hpp"
#include "sim/scenario_catalog.hpp"
#include "sim/stepping_engine.hpp"
#include "util/names.hpp"
#include "workload/suite.hpp"

namespace dtpm::sim {

namespace {

using util::DiagnosticSink;
using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

std::string type_of(const JsonValue& v) {
  return JsonValue::type_name(v.type());
}

// Diagnostic codes of the parse layer (the L0xx block; the lint passes own
// L1xx and up). Stable identifiers -- never renumber.
constexpr char kCodeType[] = "L002";      // type mismatch
constexpr char kCodeRange[] = "L003";     // value outside its valid range
constexpr char kCodeUnknownField[] = "L004";
constexpr char kCodeUnknownName[] = "L005";
constexpr char kCodeConstraint[] = "L006";  // structural/semantic violation

/// Collecting-mode control flow: thrown *after* an error was reported when
/// the surrounding subtree cannot be parsed further (e.g. a member that is
/// not even an object). Callers recover at element/section boundaries via
/// with_recovery. In throwing mode the ThrowingSink raises ConfigError
/// before this is reached, so the legacy first-error contract is untouched.
struct ParseAbort {};

/// Reports an error and abandons the current subtree.
[[noreturn]] void fail(DiagnosticSink& sink, const char* code,
                       const std::string& path, const std::string& message) {
  sink.error(code, path, message);
  throw ParseAbort{};
}

/// A collecting-mode recovery boundary: swallows ParseAbort (the error it
/// travels with is already in the sink) so parsing resumes with the next
/// element or section. ConfigError from a ThrowingSink passes through.
template <typename Fn>
void with_recovery(Fn&& fn) {
  try {
    fn();
  } catch (const ParseAbort&) {
  }
}

/// Reads one JSON object: typed, range-checked member access plus an
/// unknown-member sweep (with a did-you-mean suggestion against the members
/// this reader consulted) that every *_from_json runs before returning.
/// Member getters report recoverable problems and leave the output untouched;
/// only a non-object document aborts the subtree.
class ObjectReader {
 public:
  ObjectReader(const JsonValue& json, std::string path, DiagnosticSink& sink)
      : json_(json), path_(std::move(path)), sink_(sink) {
    if (!json_.is_object()) {
      fail(sink_, kCodeConstraint, path_,
           "expected an object, got " + type_of(json_));
    }
  }

  DiagnosticSink& sink() { return sink_; }

  std::string member_path(const std::string& key) const {
    return path_ + "." + key;
  }

  /// Looks a member up and marks the key as known; nullptr when absent.
  const JsonValue* get(const std::string& key) {
    known_.push_back(key);
    return json_.find(key);
  }

  void number(const std::string& key, double& out,
              double lo = std::numeric_limits<double>::lowest(),
              double hi = std::numeric_limits<double>::max()) {
    const JsonValue* v = get(key);
    if (v == nullptr) return;
    if (!v->is_number()) {
      sink_.error(kCodeType, member_path(key),
                  "expected a number, got " + type_of(*v));
      return;
    }
    const double n = v->as_number();
    if (n < lo || n > hi) {
      sink_.error(kCodeRange, member_path(key),
                  "value " + util::json_write(*v, 0) + " outside [" +
                      util::json_write(JsonValue(lo), 0) + ", " +
                      util::json_write(JsonValue(hi), 0) + "]");
      return;
    }
    out = n;
  }

  void boolean(const std::string& key, bool& out) {
    const JsonValue* v = get(key);
    if (v == nullptr) return;
    if (!v->is_bool()) {
      sink_.error(kCodeType, member_path(key),
                  "expected true or false, got " + type_of(*v));
      return;
    }
    out = v->as_bool();
  }

  template <typename Int>
  void integer(const std::string& key, Int& out, std::int64_t lo,
               std::int64_t hi) {
    const JsonValue* v = get(key);
    if (v == nullptr) return;
    if (!v->is_number()) {
      sink_.error(kCodeType, member_path(key),
                  "expected an integer, got " + type_of(*v));
      return;
    }
    try {
      out = static_cast<Int>(v->as_integer(lo, hi));
    } catch (const std::exception& e) {
      sink_.error(kCodeRange, member_path(key), e.what());
    }
  }

  void string(const std::string& key, std::string& out) {
    const JsonValue* v = get(key);
    if (v == nullptr) return;
    if (!v->is_string()) {
      sink_.error(kCodeType, member_path(key),
                  "expected a string, got " + type_of(*v));
      return;
    }
    out = v->as_string();
  }

  /// Reports members no getter consulted; catches config typos like
  /// "plant_substeps_s" with a suggestion from the consulted keys. In
  /// collecting mode every unknown member is reported, not just the first.
  void finish() const {
    for (const auto& [key, value] : json_.as_object()) {
      if (std::find(known_.begin(), known_.end(), key) == known_.end()) {
        std::string message = "unknown field '" + key + "'";
        const std::string suggestion = util::closest_match(key, known_);
        if (!suggestion.empty()) {
          message += ", did you mean '" + suggestion + "'?";
        }
        sink_.error(kCodeUnknownField, path_ + "." + key, message);
      }
    }
  }

 private:
  const JsonValue& json_;
  std::string path_;
  DiagnosticSink& sink_;
  std::vector<std::string> known_;
};

/// Validated name-list member: either absent, or an array of strings.
/// Non-string elements are reported and skipped.
std::vector<std::string> string_list(ObjectReader& reader,
                                     const std::string& key) {
  std::vector<std::string> out;
  const JsonValue* v = reader.get(key);
  if (v == nullptr) return out;
  if (!v->is_array()) {
    reader.sink().error(kCodeType, reader.member_path(key),
                        "expected an array of strings, got " + type_of(*v));
    return out;
  }
  const JsonArray& array = v->as_array();
  for (std::size_t i = 0; i < array.size(); ++i) {
    if (!array[i].is_string()) {
      reader.sink().error(
          kCodeType, reader.member_path(key) + "[" + std::to_string(i) + "]",
          "expected a string, got " + type_of(array[i]));
      continue;
    }
    out.push_back(array[i].as_string());
  }
  return out;
}

std::vector<std::uint64_t> seed_list(ObjectReader& reader,
                                     const std::string& key) {
  std::vector<std::uint64_t> out;
  const JsonValue* v = reader.get(key);
  if (v == nullptr) return out;
  if (!v->is_array()) {
    reader.sink().error(kCodeType, reader.member_path(key),
                        "expected an array of seeds, got " + type_of(*v));
    return out;
  }
  const JsonArray& array = v->as_array();
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string path =
        reader.member_path(key) + "[" + std::to_string(i) + "]";
    if (!array[i].is_number()) {
      reader.sink().error(kCodeType, path,
                          "expected a seed, got " + type_of(array[i]));
      continue;
    }
    try {
      out.push_back(std::uint64_t(array[i].as_integer(0)));
    } catch (const std::exception& e) {
      reader.sink().error(kCodeRange, path, e.what());
    }
  }
  return out;
}

/// True when the name is registered; reports L005 otherwise.
bool validate_policy_name(const std::string& name, const std::string& path,
                          DiagnosticSink& sink) {
  const governors::PolicyRegistry& registry =
      governors::PolicyRegistry::instance();
  if (!registry.contains(name)) {
    sink.error(kCodeUnknownName, path,
               util::unknown_name_message("policy", name, registry.names()));
    return false;
  }
  return true;
}

bool validate_benchmark_name(const std::string& name, const std::string& path,
                             DiagnosticSink& sink) {
  const std::vector<std::string> names = workload::all_benchmark_names();
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    sink.error(kCodeUnknownName, path,
               util::unknown_name_message("benchmark", name, names));
    return false;
  }
  return true;
}

// --- enum <-> string tables --------------------------------------------------

const char* to_string(core::BudgetRowPolicy p) {
  return p == core::BudgetRowPolicy::kHottestCore ? "hottest-core"
                                                  : "all-hotspots";
}

/// Parses into `out`; reports L005 (and leaves `out` untouched) on a miss.
void row_policy_from_string(const std::string& name, const std::string& path,
                            core::BudgetRowPolicy& out, DiagnosticSink& sink) {
  if (name == "hottest-core") {
    out = core::BudgetRowPolicy::kHottestCore;
  } else if (name == "all-hotspots") {
    out = core::BudgetRowPolicy::kAllHotspots;
  } else {
    sink.error(kCodeUnknownName, path,
               util::unknown_name_message("row policy", name,
                                          {"hottest-core", "all-hotspots"}));
  }
}

const std::vector<std::pair<workload::Category, std::string>>& categories() {
  static const std::vector<std::pair<workload::Category, std::string>> table =
      [] {
        std::vector<std::pair<workload::Category, std::string>> t;
        for (workload::Category c :
             {workload::Category::kSecurity, workload::Category::kNetwork,
              workload::Category::kComputational,
              workload::Category::kTelecomm, workload::Category::kConsumer,
              workload::Category::kGames, workload::Category::kVideo}) {
          t.emplace_back(c, workload::to_string(c));
        }
        return t;
      }();
  return table;
}

const std::vector<std::pair<workload::PowerClass, std::string>>&
power_classes() {
  static const std::vector<std::pair<workload::PowerClass, std::string>>
      table = [] {
        std::vector<std::pair<workload::PowerClass, std::string>> t;
        for (workload::PowerClass c :
             {workload::PowerClass::kLow, workload::PowerClass::kMedium,
              workload::PowerClass::kHigh}) {
          t.emplace_back(c, workload::to_string(c));
        }
        return t;
      }();
  return table;
}

template <typename Enum>
void enum_from_string(const std::vector<std::pair<Enum, std::string>>& table,
                      const std::string& kind, const std::string& name,
                      const std::string& path, Enum& out,
                      DiagnosticSink& sink) {
  std::vector<std::string> valid;
  for (const auto& [value, string] : table) {
    if (string == name) {
      out = value;
      return;
    }
    valid.push_back(string);
  }
  sink.error(kCodeUnknownName, path,
             util::unknown_name_message(kind, name, valid));
}

}  // namespace

// --- DtpmParams --------------------------------------------------------------

JsonValue to_json(const core::DtpmParams& params) {
  JsonValue json((JsonObject()));
  json.set("t_max_c", params.t_max_c);
  json.set("horizon_steps", params.horizon_steps);
  json.set("guard_band_c", params.guard_band_c);
  json.set("delta_hotspot_c", params.delta_hotspot_c);
  json.set("min_big_cores", params.min_big_cores);
  json.set("recovery_margin_c", params.recovery_margin_c);
  json.set("restriction_dwell_s", params.restriction_dwell_s);
  json.set("row_policy", to_string(params.row_policy));
  return json;
}

namespace {

void dtpm_params_into(core::DtpmParams& params, const JsonValue& json,
                      const std::string& path, DiagnosticSink& sink) {
  ObjectReader reader(json, path, sink);
  reader.number("t_max_c", params.t_max_c, 0.0, 150.0);
  reader.integer("horizon_steps", params.horizon_steps, 1, 1000);
  reader.number("guard_band_c", params.guard_band_c, 0.0, 50.0);
  reader.number("delta_hotspot_c", params.delta_hotspot_c, 0.0, 50.0);
  reader.integer("min_big_cores", params.min_big_cores, 1,
                 soc::kBigCoreCount);
  reader.number("recovery_margin_c", params.recovery_margin_c, 0.0, 50.0);
  reader.number("restriction_dwell_s", params.restriction_dwell_s, 0.0,
                3600.0);
  std::string row_policy;
  reader.string("row_policy", row_policy);
  if (!row_policy.empty()) {
    row_policy_from_string(row_policy, path + ".row_policy",
                           params.row_policy, sink);
  }
  reader.finish();
}

}  // namespace

core::DtpmParams dtpm_params_from_json(const JsonValue& json,
                                       const std::string& path,
                                       const core::DtpmParams& base,
                                       DiagnosticSink& sink) {
  core::DtpmParams params = base;
  with_recovery([&] { dtpm_params_into(params, json, path, sink); });
  return params;
}

core::DtpmParams dtpm_params_from_json(const JsonValue& json,
                                       const std::string& path,
                                       const core::DtpmParams& base) {
  ThrowingSink sink;
  return dtpm_params_from_json(json, path, base, sink);
}

// --- workload::Benchmark -----------------------------------------------------

JsonValue to_json(const workload::Benchmark& benchmark) {
  JsonValue json((JsonObject()));
  json.set("name", benchmark.name);
  json.set("category", workload::to_string(benchmark.category));
  json.set("power_class", workload::to_string(benchmark.power_class));
  JsonArray phases;
  for (const workload::Phase& phase : benchmark.phases) {
    JsonValue p((JsonObject()));
    p.set("work_fraction", phase.work_fraction);
    p.set("cpu_activity", phase.cpu_activity);
    p.set("mem_intensity", phase.mem_intensity);
    p.set("gpu_load", phase.gpu_load);
    p.set("threads", phase.threads);
    p.set("duty", phase.duty);
    phases.push_back(std::move(p));
  }
  json.set("phases", JsonValue(std::move(phases)));
  json.set("total_work_units", benchmark.total_work_units);
  json.set("cpu_cycles_per_unit", benchmark.cpu_cycles_per_unit);
  json.set("mem_seconds_per_unit", benchmark.mem_seconds_per_unit);
  json.set("gpu_cycles_per_unit", benchmark.gpu_cycles_per_unit);
  json.set("multithreaded", benchmark.multithreaded);
  return json;
}

namespace {

void benchmark_into(workload::Benchmark& benchmark, const JsonValue& json,
                    const std::string& path, DiagnosticSink& sink) {
  ObjectReader reader(json, path, sink);
  reader.string("name", benchmark.name);
  std::string category, power_class;
  reader.string("category", category);
  if (!category.empty()) {
    enum_from_string(categories(), "category", category, path + ".category",
                     benchmark.category, sink);
  }
  reader.string("power_class", power_class);
  if (!power_class.empty()) {
    enum_from_string(power_classes(), "power class", power_class,
                     path + ".power_class", benchmark.power_class, sink);
  }
  if (const JsonValue* phases = reader.get("phases")) {
    if (!phases->is_array()) {
      sink.error(kCodeType, path + ".phases",
                 "expected an array of phase objects, got " + type_of(*phases));
    } else {
      benchmark.phases.clear();
      const JsonArray& array = phases->as_array();
      for (std::size_t i = 0; i < array.size(); ++i) {
        const std::string phase_path =
            path + ".phases[" + std::to_string(i) + "]";
        with_recovery([&] {
          workload::Phase phase;
          ObjectReader phase_reader(array[i], phase_path, sink);
          phase_reader.number("work_fraction", phase.work_fraction, 0.0, 1.0);
          phase_reader.number("cpu_activity", phase.cpu_activity, 0.0, 1.0);
          phase_reader.number("mem_intensity", phase.mem_intensity, 0.0, 1.0);
          phase_reader.number("gpu_load", phase.gpu_load, 0.0, 1.0);
          phase_reader.integer("threads", phase.threads, 1, 64);
          phase_reader.number("duty", phase.duty, 0.0, 1.0);
          phase_reader.finish();
          benchmark.phases.push_back(phase);
        });
      }
    }
  }
  reader.number("total_work_units", benchmark.total_work_units, 0.0,
                std::numeric_limits<double>::max());
  reader.number("cpu_cycles_per_unit", benchmark.cpu_cycles_per_unit, 0.0,
                std::numeric_limits<double>::max());
  reader.number("mem_seconds_per_unit", benchmark.mem_seconds_per_unit, 0.0,
                std::numeric_limits<double>::max());
  reader.number("gpu_cycles_per_unit", benchmark.gpu_cycles_per_unit, 0.0,
                std::numeric_limits<double>::max());
  reader.boolean("multithreaded", benchmark.multithreaded);
  reader.finish();
  try {
    benchmark.validate();
  } catch (const std::exception& e) {
    sink.error(kCodeConstraint, path,
               std::string("invalid benchmark: ") + e.what());
  }
}

}  // namespace

workload::Benchmark benchmark_from_json(const JsonValue& json,
                                        const std::string& path,
                                        DiagnosticSink& sink) {
  workload::Benchmark benchmark;
  with_recovery([&] { benchmark_into(benchmark, json, path, sink); });
  return benchmark;
}

workload::Benchmark benchmark_from_json(const JsonValue& json,
                                        const std::string& path) {
  ThrowingSink sink;
  return benchmark_from_json(json, path, sink);
}

// --- workload::ScenarioParams ------------------------------------------------

JsonValue to_json(const workload::ScenarioParams& params) {
  JsonValue json((JsonObject()));
  json.set("nominal_duration_s", params.nominal_duration_s);
  json.set("intensity", params.intensity);
  json.set("thermal_time_constant_s", params.thermal_time_constant_s);
  return json;
}

workload::ScenarioParams scenario_params_from_json(const JsonValue& json,
                                                   const std::string& path,
                                                   DiagnosticSink& sink) {
  workload::ScenarioParams params;
  with_recovery([&] {
    ObjectReader reader(json, path, sink);
    reader.number("nominal_duration_s", params.nominal_duration_s, 1.0, 1e6);
    reader.number("intensity", params.intensity, 0.0, 10.0);
    reader.number("thermal_time_constant_s", params.thermal_time_constant_s,
                  0.1, 1e4);
    reader.finish();
  });
  return params;
}

workload::ScenarioParams scenario_params_from_json(const JsonValue& json,
                                                   const std::string& path) {
  ThrowingSink sink;
  return scenario_params_from_json(json, path, sink);
}

// --- sim::PlatformDescriptor -------------------------------------------------

namespace {

JsonValue leakage_to_json(const power::LeakageParams& params) {
  JsonValue json((JsonObject()));
  json.set("c1", params.c1);
  json.set("c2_k", params.c2_k);
  json.set("i_gate_a", params.i_gate_a);
  json.set("v_ref", params.v_ref);
  json.set("dibl_exponent", params.dibl_exponent);
  return json;
}

void leakage_from_json(ObjectReader& parent, const std::string& key,
                       power::LeakageParams& out, const std::string& path) {
  const JsonValue* v = parent.get(key);
  if (v == nullptr) return;
  with_recovery([&] {
    ObjectReader reader(*v, path + "." + key, parent.sink());
    reader.number("c1", out.c1, 0.0, 1.0);
    reader.number("c2_k", out.c2_k, -1e5, 0.0);
    reader.number("i_gate_a", out.i_gate_a, 0.0, 10.0);
    reader.number("v_ref", out.v_ref, 1e-3, 10.0);
    reader.number("dibl_exponent", out.dibl_exponent, 0.0, 10.0);
    reader.finish();
  });
}

JsonValue opps_to_json(const std::vector<power::Opp>& opps) {
  JsonArray array;
  for (const power::Opp& opp : opps) {
    JsonValue p((JsonObject()));
    p.set("frequency_hz", opp.frequency_hz);
    p.set("voltage_v", opp.voltage_v);
    array.push_back(std::move(p));
  }
  return JsonValue(std::move(array));
}

void opps_from_json(ObjectReader& parent, const std::string& key,
                    std::vector<power::Opp>& out, const std::string& path) {
  const JsonValue* v = parent.get(key);
  if (v == nullptr) return;
  DiagnosticSink& sink = parent.sink();
  const std::string list_path = path + "." + key;
  if (!v->is_array()) {
    sink.error(kCodeType, list_path,
               "expected an array of operating points, got " + type_of(*v));
    return;
  }
  out.clear();
  const JsonArray& array = v->as_array();
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string p = list_path + "[" + std::to_string(i) + "]";
    with_recovery([&] {
      power::Opp opp;
      ObjectReader reader(array[i], p, sink);
      reader.number("frequency_hz", opp.frequency_hz, 1.0, 1e12);
      reader.number("voltage_v", opp.voltage_v, 1e-3, 10.0);
      reader.finish();
      if (opp.frequency_hz <= 0.0) {
        sink.error(kCodeConstraint, p,
                   "operating point needs a positive frequency_hz");
        return;
      }
      out.push_back(opp);
    });
  }
}

JsonValue floorplan_to_json(const thermal::FloorplanSpec& spec) {
  JsonValue json((JsonObject()));
  JsonArray nodes;
  for (const thermal::FloorplanNodeSpec& node : spec.nodes) {
    JsonValue n((JsonObject()));
    n.set("name", node.name);
    n.set("capacitance_j_per_k", node.capacitance_j_per_k);
    n.set("initial_temp_c", node.initial_temp_c);
    if (node.is_boundary) n.set("boundary", true);
    nodes.push_back(std::move(n));
  }
  json.set("nodes", JsonValue(std::move(nodes)));
  JsonArray edges;
  for (const thermal::FloorplanEdgeSpec& edge : spec.edges) {
    JsonValue e((JsonObject()));
    e.set("a", edge.node_a);
    e.set("b", edge.node_b);
    e.set("conductance_w_per_k", edge.conductance_w_per_k);
    if (edge.fan_modulated) e.set("fan", true);
    edges.push_back(std::move(e));
  }
  json.set("edges", JsonValue(std::move(edges)));
  JsonArray cores;
  for (const std::string& name : spec.core_nodes) cores.emplace_back(name);
  json.set("core_nodes", JsonValue(std::move(cores)));
  json.set("little_node", spec.little_node);
  json.set("gpu_node", spec.gpu_node);
  json.set("mem_node", spec.mem_node);
  JsonArray sensors;
  for (const std::string& name : spec.sensor_nodes) sensors.emplace_back(name);
  json.set("sensor_nodes", JsonValue(std::move(sensors)));
  return json;
}

void floorplan_into(thermal::FloorplanSpec& spec, const JsonValue& json,
                    const std::string& path, DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();
  ObjectReader reader(json, path, sink);

  const JsonValue* nodes = reader.get("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    fail(sink, nodes == nullptr ? kCodeConstraint : kCodeType, path + ".nodes",
         nodes == nullptr ? "a floorplan requires a 'nodes' array"
                          : "expected an array of node objects, "
                            "got " + type_of(*nodes));
  }
  for (std::size_t i = 0; i < nodes->as_array().size(); ++i) {
    const std::string node_path =
        path + ".nodes[" + std::to_string(i) + "]";
    with_recovery([&] {
      thermal::FloorplanNodeSpec node;
      ObjectReader node_reader(nodes->as_array()[i], node_path, sink);
      node_reader.string("name", node.name);
      if (node.name.empty()) {
        fail(sink, kCodeConstraint, node_path,
             "node needs a non-empty 'name'");
      }
      node_reader.number("capacitance_j_per_k", node.capacitance_j_per_k, 1e-9,
                         1e9);
      node_reader.number("initial_temp_c", node.initial_temp_c, -273.15,
                         1000.0);
      node_reader.boolean("boundary", node.is_boundary);
      node_reader.finish();
      spec.nodes.push_back(std::move(node));
    });
  }

  const JsonValue* edges = reader.get("edges");
  if (edges == nullptr || !edges->is_array()) {
    fail(sink, edges == nullptr ? kCodeConstraint : kCodeType, path + ".edges",
         edges == nullptr ? "a floorplan requires an 'edges' array"
                          : "expected an array of edge objects, "
                            "got " + type_of(*edges));
  }
  // Known node names, for reference checks that pin the exact member --
  // "$.platform.floorplan.edges[3].a: unknown node 'big9'" beats a
  // whole-floorplan error.
  std::vector<std::string> node_names;
  for (const thermal::FloorplanNodeSpec& node : spec.nodes) {
    node_names.push_back(node.name);
  }
  auto check_node_ref = [&](const std::string& name,
                            const std::string& ref_path) {
    if (std::find(node_names.begin(), node_names.end(), name) ==
        node_names.end()) {
      sink.error(kCodeUnknownName, ref_path,
                 util::unknown_name_message("node", name, node_names));
    }
  };

  for (std::size_t i = 0; i < edges->as_array().size(); ++i) {
    const std::string edge_path =
        path + ".edges[" + std::to_string(i) + "]";
    with_recovery([&] {
      thermal::FloorplanEdgeSpec edge;
      ObjectReader edge_reader(edges->as_array()[i], edge_path, sink);
      edge_reader.string("a", edge.node_a);
      edge_reader.string("b", edge.node_b);
      if (edge.node_a.empty() || edge.node_b.empty()) {
        fail(sink, kCodeConstraint, edge_path,
             "edge needs node names 'a' and 'b'");
      }
      check_node_ref(edge.node_a, edge_path + ".a");
      check_node_ref(edge.node_b, edge_path + ".b");
      edge_reader.number("conductance_w_per_k", edge.conductance_w_per_k,
                         1e-12, 1e9);
      edge_reader.boolean("fan", edge.fan_modulated);
      edge_reader.finish();
      spec.edges.push_back(std::move(edge));
    });
  }

  spec.core_nodes = string_list(reader, "core_nodes");
  for (std::size_t i = 0; i < spec.core_nodes.size(); ++i) {
    check_node_ref(spec.core_nodes[i],
                   path + ".core_nodes[" + std::to_string(i) + "]");
  }
  reader.string("little_node", spec.little_node);
  if (!spec.little_node.empty()) {
    check_node_ref(spec.little_node, path + ".little_node");
  }
  reader.string("gpu_node", spec.gpu_node);
  if (!spec.gpu_node.empty()) check_node_ref(spec.gpu_node, path + ".gpu_node");
  reader.string("mem_node", spec.mem_node);
  if (!spec.mem_node.empty()) check_node_ref(spec.mem_node, path + ".mem_node");
  spec.sensor_nodes = string_list(reader, "sensor_nodes");
  for (std::size_t i = 0; i < spec.sensor_nodes.size(); ++i) {
    check_node_ref(spec.sensor_nodes[i],
                   path + ".sensor_nodes[" + std::to_string(i) + "]");
  }
  reader.finish();

  // Whole-spec validation only when the members parsed clean: re-checking a
  // knowingly partial spec would bury the real findings under follow-ons.
  if (sink.error_count() != errors_before) return;
  try {
    thermal::validate_floorplan_spec(spec);
  } catch (const std::exception& e) {
    sink.error(kCodeConstraint, path, e.what());
  }
}

thermal::FloorplanSpec floorplan_from_json(const JsonValue& json,
                                           const std::string& path,
                                           DiagnosticSink& sink) {
  thermal::FloorplanSpec spec;
  with_recovery([&] { floorplan_into(spec, json, path, sink); });
  return spec;
}

void plant_power_from_json(ObjectReader& parent, const std::string& key,
                           soc::PlantPowerParams& out,
                           const std::string& parent_path) {
  const JsonValue* v = parent.get(key);
  if (v == nullptr) return;
  const std::string path = parent_path + "." + key;
  with_recovery([&] {
    ObjectReader reader(*v, path, parent.sink());
    leakage_from_json(reader, "big_leakage", out.big_leakage, path);
    leakage_from_json(reader, "little_leakage", out.little_leakage, path);
    leakage_from_json(reader, "gpu_leakage", out.gpu_leakage, path);
    leakage_from_json(reader, "mem_leakage", out.mem_leakage, path);
    reader.number("big_core_alpha_c_max", out.big_core_alpha_c_max, 0.0, 1.0);
    reader.number("little_core_alpha_c_max", out.little_core_alpha_c_max, 0.0,
                  1.0);
    reader.number("gpu_alpha_c_max", out.gpu_alpha_c_max, 0.0, 1.0);
    reader.number("big_uncore_alpha_c", out.big_uncore_alpha_c, 0.0, 1.0);
    reader.number("little_uncore_alpha_c", out.little_uncore_alpha_c, 0.0,
                  1.0);
    reader.number("big_idle_activity", out.big_idle_activity, 0.0, 1.0);
    reader.number("little_idle_activity", out.little_idle_activity, 0.0, 1.0);
    reader.number("gpu_idle_util", out.gpu_idle_util, 0.0, 1.0);
    reader.number("mem_bandwidth_cap", out.mem_bandwidth_cap, 1e-3, 1e3);
    reader.number("offline_core_leakage_fraction",
                  out.offline_core_leakage_fraction, 0.0, 1.0);
    reader.number("inactive_cluster_leakage_fraction",
                  out.inactive_cluster_leakage_fraction, 0.0, 1.0);
    reader.number("mem_dynamic_max_w", out.mem_dynamic_max_w, 0.0, 100.0);
    reader.number("mem_base_w", out.mem_base_w, 0.0, 100.0);
    reader.number("mem_gpu_traffic_weight", out.mem_gpu_traffic_weight, 0.0,
                  10.0);
    reader.number("mem_nominal_voltage_v", out.mem_nominal_voltage_v, 1e-3,
                  10.0);
    reader.number("mem_nominal_frequency_hz", out.mem_nominal_frequency_hz,
                  1.0, 1e12);
    reader.finish();
  });
}

JsonValue plant_power_to_json(const soc::PlantPowerParams& p) {
  JsonValue json((JsonObject()));
  json.set("big_leakage", leakage_to_json(p.big_leakage));
  json.set("little_leakage", leakage_to_json(p.little_leakage));
  json.set("gpu_leakage", leakage_to_json(p.gpu_leakage));
  json.set("mem_leakage", leakage_to_json(p.mem_leakage));
  json.set("big_core_alpha_c_max", p.big_core_alpha_c_max);
  json.set("little_core_alpha_c_max", p.little_core_alpha_c_max);
  json.set("gpu_alpha_c_max", p.gpu_alpha_c_max);
  json.set("big_uncore_alpha_c", p.big_uncore_alpha_c);
  json.set("little_uncore_alpha_c", p.little_uncore_alpha_c);
  json.set("big_idle_activity", p.big_idle_activity);
  json.set("little_idle_activity", p.little_idle_activity);
  json.set("gpu_idle_util", p.gpu_idle_util);
  json.set("mem_bandwidth_cap", p.mem_bandwidth_cap);
  json.set("offline_core_leakage_fraction", p.offline_core_leakage_fraction);
  json.set("inactive_cluster_leakage_fraction",
           p.inactive_cluster_leakage_fraction);
  json.set("mem_dynamic_max_w", p.mem_dynamic_max_w);
  json.set("mem_base_w", p.mem_base_w);
  json.set("mem_gpu_traffic_weight", p.mem_gpu_traffic_weight);
  json.set("mem_nominal_voltage_v", p.mem_nominal_voltage_v);
  json.set("mem_nominal_frequency_hz", p.mem_nominal_frequency_hz);
  return json;
}

}  // namespace

JsonValue to_json(const PlatformDescriptor& d) {
  JsonValue json((JsonObject()));
  json.set("name", d.name);
  json.set("description", d.description);
  json.set("floorplan", floorplan_to_json(d.floorplan));
  json.set("big_cores", d.big_cores);
  json.set("little_cores", d.little_cores);
  json.set("big_opps", opps_to_json(d.big_opps));
  json.set("little_opps", opps_to_json(d.little_opps));
  json.set("gpu_opps", opps_to_json(d.gpu_opps));
  json.set("power", plant_power_to_json(d.power));
  {
    JsonValue perf((JsonObject()));
    perf.set("big_ipc_scale", d.perf.big_ipc_scale);
    perf.set("little_ipc_scale", d.perf.little_ipc_scale);
    perf.set("cluster_switch_stall_s", d.perf.cluster_switch_stall_s);
    json.set("perf", std::move(perf));
  }
  {
    JsonValue fan((JsonObject()));
    fan.set("conductance_off", d.fan.conductance_off);
    fan.set("conductance_low", d.fan.conductance_low);
    fan.set("conductance_half", d.fan.conductance_half);
    fan.set("conductance_full", d.fan.conductance_full);
    fan.set("power_off", d.fan.power_off);
    fan.set("power_low", d.fan.power_low);
    fan.set("power_half", d.fan.power_half);
    fan.set("power_full", d.fan.power_full);
    json.set("fan", std::move(fan));
  }
  {
    JsonValue sensor((JsonObject()));
    sensor.set("quantization_c", d.temp_sensor.quantization_c);
    sensor.set("noise_stddev_c", d.temp_sensor.noise_stddev_c);
    json.set("temp_sensor", std::move(sensor));
  }
  {
    JsonValue sensor((JsonObject()));
    sensor.set("noise_fraction", d.power_sensor.noise_fraction);
    sensor.set("quantization_w", d.power_sensor.quantization_w);
    json.set("power_sensor", std::move(sensor));
  }
  {
    JsonValue load((JsonObject()));
    load.set("board_base_w", d.platform_load.board_base_w);
    load.set("display_w", d.platform_load.display_w);
    json.set("platform_load", std::move(load));
  }
  json.set("default_t_max_c", d.default_t_max_c);
  json.set("runaway_abort_temp_c", d.runaway_abort_temp_c);
  return json;
}

namespace {

void platform_into(PlatformDescriptor& d, const JsonValue& json,
                   const std::string& path, DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();
  ObjectReader reader(json, path, sink);
  reader.string("name", d.name);
  reader.string("description", d.description);
  if (const JsonValue* floorplan = reader.get("floorplan")) {
    d.floorplan = floorplan_from_json(*floorplan, path + ".floorplan", sink);
  }
  reader.integer("big_cores", d.big_cores, 1, 64);
  reader.integer("little_cores", d.little_cores, 0, 64);
  opps_from_json(reader, "big_opps", d.big_opps, path);
  opps_from_json(reader, "little_opps", d.little_opps, path);
  opps_from_json(reader, "gpu_opps", d.gpu_opps, path);
  plant_power_from_json(reader, "power", d.power, path);
  if (const JsonValue* perf = reader.get("perf")) {
    with_recovery([&] {
      ObjectReader perf_reader(*perf, path + ".perf", sink);
      perf_reader.number("big_ipc_scale", d.perf.big_ipc_scale, 1e-3, 100.0);
      perf_reader.number("little_ipc_scale", d.perf.little_ipc_scale, 1e-3,
                         100.0);
      perf_reader.number("cluster_switch_stall_s",
                         d.perf.cluster_switch_stall_s, 0.0, 10.0);
      perf_reader.finish();
    });
  }
  if (const JsonValue* fan = reader.get("fan")) {
    with_recovery([&] {
      ObjectReader fan_reader(*fan, path + ".fan", sink);
      fan_reader.number("conductance_off", d.fan.conductance_off, 0.0, 1e6);
      fan_reader.number("conductance_low", d.fan.conductance_low, 0.0, 1e6);
      fan_reader.number("conductance_half", d.fan.conductance_half, 0.0, 1e6);
      fan_reader.number("conductance_full", d.fan.conductance_full, 0.0, 1e6);
      fan_reader.number("power_off", d.fan.power_off, 0.0, 1e3);
      fan_reader.number("power_low", d.fan.power_low, 0.0, 1e3);
      fan_reader.number("power_half", d.fan.power_half, 0.0, 1e3);
      fan_reader.number("power_full", d.fan.power_full, 0.0, 1e3);
      fan_reader.finish();
    });
  }
  if (const JsonValue* sensor = reader.get("temp_sensor")) {
    with_recovery([&] {
      ObjectReader sensor_reader(*sensor, path + ".temp_sensor", sink);
      sensor_reader.number("quantization_c", d.temp_sensor.quantization_c, 0.0,
                           100.0);
      sensor_reader.number("noise_stddev_c", d.temp_sensor.noise_stddev_c, 0.0,
                           100.0);
      sensor_reader.finish();
    });
  }
  if (const JsonValue* sensor = reader.get("power_sensor")) {
    with_recovery([&] {
      ObjectReader sensor_reader(*sensor, path + ".power_sensor", sink);
      sensor_reader.number("noise_fraction", d.power_sensor.noise_fraction,
                           0.0, 1.0);
      sensor_reader.number("quantization_w", d.power_sensor.quantization_w,
                           0.0, 100.0);
      sensor_reader.finish();
    });
  }
  if (const JsonValue* load = reader.get("platform_load")) {
    with_recovery([&] {
      ObjectReader load_reader(*load, path + ".platform_load", sink);
      load_reader.number("board_base_w", d.platform_load.board_base_w, 0.0,
                         1e3);
      load_reader.number("display_w", d.platform_load.display_w, 0.0, 1e3);
      load_reader.finish();
    });
  }
  reader.number("default_t_max_c", d.default_t_max_c, 0.0, 150.0);
  reader.number("runaway_abort_temp_c", d.runaway_abort_temp_c, 0.0, 500.0);
  reader.finish();

  // Descriptor-level validation only on a member-clean parse (see
  // floorplan_into).
  if (sink.error_count() != errors_before) return;
  try {
    d.validate();
  } catch (const std::exception& e) {
    sink.error(kCodeConstraint, path,
               std::string("invalid platform: ") + e.what());
  }
}

}  // namespace

PlatformDescriptor platform_from_json(const JsonValue& json,
                                      const std::string& path,
                                      DiagnosticSink& sink) {
  PlatformDescriptor d;  // defaults: the Odroid plant
  with_recovery([&] { platform_into(d, json, path, sink); });
  return d;
}

PlatformDescriptor platform_from_json(const JsonValue& json,
                                      const std::string& path) {
  ThrowingSink sink;
  return platform_from_json(json, path, sink);
}

PlatformDescriptor load_platform(const std::string& file_path) {
  return platform_from_json(util::json_parse_file(file_path));
}

// --- ExperimentConfig --------------------------------------------------------

JsonValue to_json(const ExperimentConfig& config) {
  JsonValue json((JsonObject()));
  json.set("benchmark", config.benchmark);
  if (config.scenario != nullptr) {
    JsonValue scenario((JsonObject()));
    scenario.set("benchmark", to_json(*config.scenario));
    json.set("scenario", std::move(scenario));
  }
  json.set("policy", resolved_policy_name(config));
  if (!config.policy_params.empty()) {
    JsonValue params((JsonObject()));
    for (const auto& [key, value] : config.policy_params) {
      params.set(key, value);
    }
    json.set("policy_params", std::move(params));
  }
  json.set("governor", resolved_governor_name(config));
  if (config.background.has_value()) {
    // Emitted only when set, so configs that derive their background from
    // the benchmark (the default) round-trip byte-identically.
    const workload::BackgroundParams& b = *config.background;
    JsonValue background((JsonObject()));
    background.set("thread_count", b.thread_count);
    background.set("base_duty", b.base_duty);
    background.set("duty_jitter", b.duty_jitter);
    background.set("spike_probability", b.spike_probability);
    background.set("spike_duty", b.spike_duty);
    background.set("cpu_activity", b.cpu_activity);
    background.set("mem_intensity", b.mem_intensity);
    background.set("heavy_load", b.heavy_load);
    background.set("heavy_threads", b.heavy_threads);
    background.set("heavy_activity", b.heavy_activity);
    background.set("heavy_mem_intensity", b.heavy_mem_intensity);
    json.set("background", std::move(background));
  }
  if (config.platform != nullptr) {
    // Emit the compact registry reference when the descriptor is exactly a
    // registered one; a customized descriptor rides along fully inline so
    // every config stays lossless.
    const PlatformRegistry& registry = PlatformRegistry::instance();
    if (registry.contains(config.platform->name) &&
        *registry.get(config.platform->name) == *config.platform) {
      json.set("platform", config.platform->name);
    } else {
      json.set("platform", to_json(*config.platform));
    }
  } else {
    json.set("preset", "default");
  }
  json.set("dtpm", to_json(config.dtpm));
  json.set("engine", to_string(config.engine));
  json.set("control_interval_s", config.control_interval_s);
  json.set("plant_substep_s", config.plant_substep_s);
  json.set("warmup_s", config.warmup_s);
  json.set("warmup_activity", config.warmup_activity);
  json.set("max_sim_time_s", config.max_sim_time_s);
  json.set("seed", config.seed);
  json.set("record_trace", config.record_trace);
  json.set("observe_predictions", config.observe_predictions);
  json.set("observe_horizon_steps", config.observe_horizon_steps);
  return json;
}

namespace {

void experiment_into(ExperimentConfig& config, const JsonValue& json,
                     const std::string& path, DiagnosticSink& sink) {
  ObjectReader reader(json, path, sink);

  bool benchmark_named = false;
  {
    const JsonValue* v = reader.get("benchmark");
    if (v != nullptr) {
      if (!v->is_string()) {
        sink.error(kCodeType, path + ".benchmark",
                   "expected a string, got " + type_of(*v));
      } else {
        config.benchmark = v->as_string();
        benchmark_named = true;
      }
    }
  }

  if (const JsonValue* scenario = reader.get("scenario")) {
    const std::string scenario_path = path + ".scenario";
    with_recovery([&] {
      ObjectReader scenario_reader(*scenario, scenario_path, sink);
      const JsonValue* family = scenario_reader.get("family");
      const JsonValue* inline_benchmark = scenario_reader.get("benchmark");
      if ((family != nullptr) == (inline_benchmark != nullptr)) {
        fail(sink, kCodeConstraint, scenario_path,
             "expected exactly one of 'family' (generated via the "
             "scenario catalog) or 'benchmark' (fully inline)");
      }
      if (family != nullptr) {
        if (!family->is_string()) {
          fail(sink, kCodeType, scenario_path + ".family",
               "expected a string, got " + type_of(*family));
        }
        std::uint64_t seed = 1;
        scenario_reader.integer("seed", seed, 0, INT64_MAX);
        workload::ScenarioParams params;
        if (const JsonValue* p = scenario_reader.get("params")) {
          params = scenario_params_from_json(*p, scenario_path + ".params",
                                             sink);
        }
        const ScenarioCatalog catalog = ScenarioCatalog::standard(params);
        const std::string& name = family->as_string();
        if (!catalog.contains(name)) {
          fail(sink, kCodeUnknownName, scenario_path + ".family",
               util::unknown_name_message("scenario family", name,
                                          catalog.family_names()));
        }
        config.scenario = std::make_shared<const workload::Benchmark>(
            catalog.make(name, seed));
        if (!benchmark_named) {
          config.benchmark = name + "#s" + std::to_string(seed);
        }
        // Mirror ScenarioCatalog::expand: unless the document pins its own
        // simulation seed, reuse the scenario seed so a `dtpm run` of
        // {family, seed} reproduces the matching sweep row bit-for-bit.
        if (json.find("seed") == nullptr) config.seed = seed;
      } else {
        config.scenario = std::make_shared<const workload::Benchmark>(
            benchmark_from_json(*inline_benchmark,
                                scenario_path + ".benchmark", sink));
        if (!benchmark_named) config.benchmark = config.scenario->name;
      }
      scenario_reader.finish();
    });
  } else if (benchmark_named) {
    // Without an inline scenario the benchmark must resolve in the suite.
    validate_benchmark_name(config.benchmark, path + ".benchmark", sink);
  }

  std::string policy;
  reader.string("policy", policy);
  if (!policy.empty() &&
      validate_policy_name(policy, path + ".policy", sink)) {
    set_policy(config, policy);
  }

  if (const JsonValue* params = reader.get("policy_params")) {
    with_recovery([&] {
      ObjectReader ignored(*params, path + ".policy_params", sink);
      for (const auto& [key, value] : params->as_object()) {
        if (!value.is_number()) {
          sink.error(kCodeType, path + ".policy_params." + key,
                     "expected a number, got " + type_of(value));
          continue;
        }
        config.policy_params[key] = value.as_number();
      }
    });
  }

  std::string governor;
  reader.string("governor", governor);
  if (!governor.empty()) {
    const governors::GovernorRegistry& registry =
        governors::GovernorRegistry::instance();
    if (!registry.contains(governor)) {
      sink.error(kCodeUnknownName, path + ".governor",
                 util::unknown_name_message("governor", governor,
                                            registry.names()));
    } else {
      config.governor_name = governor;
    }
  }

  if (const JsonValue* background = reader.get("background")) {
    const std::string background_path = path + ".background";
    with_recovery([&] {
      workload::BackgroundParams params =
          config.background.value_or(workload::BackgroundParams{});
      ObjectReader bg(*background, background_path, sink);
      bg.integer("thread_count", params.thread_count, 0, 64);
      bg.number("base_duty", params.base_duty, 0.0, 1.0);
      bg.number("duty_jitter", params.duty_jitter, 0.0, 1.0);
      bg.number("spike_probability", params.spike_probability, 0.0, 1.0);
      bg.number("spike_duty", params.spike_duty, 0.0, 1.0);
      bg.number("cpu_activity", params.cpu_activity, 0.0, 1.0);
      bg.number("mem_intensity", params.mem_intensity, 0.0, 1.0);
      bg.boolean("heavy_load", params.heavy_load);
      bg.integer("heavy_threads", params.heavy_threads, 0, 64);
      bg.number("heavy_activity", params.heavy_activity, 0.0, 1.0);
      bg.number("heavy_mem_intensity", params.heavy_mem_intensity, 0.0, 1.0);
      bg.finish();
      config.background = params;
    });
  }

  std::string preset;
  reader.string("preset", preset);
  if (!preset.empty()) {
    try {
      config.preset = preset_by_name(preset);
    } catch (const std::exception&) {
      sink.error(kCodeUnknownName, path + ".preset",
                 util::unknown_name_message("preset", preset, preset_names()));
    }
  }

  // "platform" selects the plant: a registry name ("dragon") or a fully
  // inline descriptor object. Parsed before "dtpm" so the platform's
  // default t_max applies unless the document overrides it explicitly.
  if (const JsonValue* platform = reader.get("platform")) {
    const std::string platform_path = path + ".platform";
    if (platform->is_string()) {
      const PlatformRegistry& registry = PlatformRegistry::instance();
      const std::string& name = platform->as_string();
      if (!registry.contains(name)) {
        sink.error(kCodeUnknownName, platform_path,
                   util::unknown_name_message("platform", name,
                                              registry.names()));
      } else {
        set_platform(config, registry.get(name));
      }
    } else if (platform->is_object()) {
      // Adopt the inline descriptor only when its subtree parsed clean:
      // set_platform derives the preset mirror from the descriptor, which
      // a knowingly broken one cannot support.
      const std::size_t errors_before = sink.error_count();
      PlatformDescriptor d = platform_from_json(*platform, platform_path,
                                                sink);
      if (sink.error_count() == errors_before) {
        set_platform(config, std::make_shared<const PlatformDescriptor>(
                                 std::move(d)));
      }
    } else {
      sink.error(kCodeType, platform_path,
                 "expected a platform name or an inline platform "
                 "object, got " + type_of(*platform));
    }
  }

  if (const JsonValue* dtpm = reader.get("dtpm")) {
    config.dtpm =
        dtpm_params_from_json(*dtpm, path + ".dtpm", config.dtpm, sink);
  }

  std::string engine;
  reader.string("engine", engine);
  if (!engine.empty()) {
    const std::optional<Engine> parsed = try_parse_engine(engine);
    if (!parsed.has_value()) {
      sink.error(kCodeUnknownName, path + ".engine",
                 util::unknown_name_message("engine", engine, engine_names()));
    } else {
      config.engine = *parsed;
    }
  }

  reader.number("control_interval_s", config.control_interval_s, 1e-4, 60.0);
  reader.number("plant_substep_s", config.plant_substep_s, 1e-5, 60.0);
  reader.number("warmup_s", config.warmup_s, 0.0, 1e6);
  reader.number("warmup_activity", config.warmup_activity, 0.0, 1.0);
  reader.number("max_sim_time_s", config.max_sim_time_s, 0.0, 1e9);
  reader.integer("seed", config.seed, 0, INT64_MAX);
  reader.boolean("record_trace", config.record_trace);
  reader.boolean("observe_predictions", config.observe_predictions);
  reader.integer("observe_horizon_steps", config.observe_horizon_steps, 1,
                 100000);
  reader.finish();

  if (config.plant_substep_s > config.control_interval_s) {
    sink.error(kCodeConstraint, path + ".plant_substep_s",
               "plant substep must not exceed control_interval_s");
  }
}

}  // namespace

ExperimentConfig experiment_from_json(const JsonValue& json,
                                      const std::string& path,
                                      DiagnosticSink& sink) {
  ExperimentConfig config;
  with_recovery([&] { experiment_into(config, json, path, sink); });
  return config;
}

ExperimentConfig experiment_from_json(const JsonValue& json,
                                      const std::string& path) {
  ThrowingSink sink;
  return experiment_from_json(json, path, sink);
}

ExperimentConfig load_experiment_config(const std::string& file_path) {
  const JsonValue json = util::json_parse_file(file_path);
  if (json.is_object() && json.find("device_count") != nullptr) {
    throw ConfigError(
        "$", "this looks like a fleet spec (has 'device_count'); run it "
             "with `dtpm serve` instead");
  }
  if (json.is_object() &&
      (json.find("base") != nullptr || json.find("scenarios") != nullptr ||
       json.find("benchmarks") != nullptr ||
       json.find("platforms") != nullptr)) {
    throw ConfigError(
        "$", "this looks like a sweep grid (has 'base'/'benchmarks'/"
             "'platforms'/'scenarios'); run it with `dtpm sweep` instead");
  }
  return experiment_from_json(json);
}

// --- SweepSpec ---------------------------------------------------------------

std::vector<ExperimentConfig> SweepSpec::expand() const {
  if (has_scenarios) {
    ScenarioCatalog::Sweep sweep;
    sweep.base = base;
    sweep.families = families;
    sweep.platforms = platforms;
    sweep.policy_names = policies;
    if (!scenario_seeds.empty()) sweep.seeds = scenario_seeds;
    return ScenarioCatalog::standard(scenario_params).expand(sweep);
  }
  SweepGrid grid;
  grid.base = base;
  grid.benchmarks = benchmarks;
  grid.platforms = platforms;
  grid.policy_names = policies;
  grid.seeds = seeds;
  grid.dtpm_params = dtpm_grid;
  return sweep(grid);
}

JsonValue to_json(const SweepSpec& spec) {
  JsonValue json((JsonObject()));
  json.set("base", to_json(spec.base));
  if (!spec.benchmarks.empty()) {
    JsonArray names;
    for (const std::string& name : spec.benchmarks) names.emplace_back(name);
    json.set("benchmarks", JsonValue(std::move(names)));
  }
  if (!spec.platforms.empty()) {
    JsonArray names;
    for (const std::string& name : spec.platforms) names.emplace_back(name);
    json.set("platforms", JsonValue(std::move(names)));
  }
  if (!spec.policies.empty()) {
    JsonArray names;
    for (const std::string& name : spec.policies) names.emplace_back(name);
    json.set("policies", JsonValue(std::move(names)));
  }
  if (!spec.seeds.empty()) {
    JsonArray seeds;
    for (std::uint64_t seed : spec.seeds) seeds.emplace_back(seed);
    json.set("seeds", JsonValue(std::move(seeds)));
  }
  if (!spec.dtpm_grid.empty()) {
    JsonArray grid;
    for (const core::DtpmParams& params : spec.dtpm_grid) {
      grid.push_back(to_json(params));
    }
    json.set("dtpm_grid", JsonValue(std::move(grid)));
  }
  if (spec.has_scenarios) {
    JsonValue scenarios((JsonObject()));
    if (!spec.families.empty()) {
      JsonArray names;
      for (const std::string& name : spec.families) names.emplace_back(name);
      scenarios.set("families", JsonValue(std::move(names)));
    }
    if (!spec.scenario_seeds.empty()) {
      JsonArray seeds;
      for (std::uint64_t seed : spec.scenario_seeds) seeds.emplace_back(seed);
      scenarios.set("seeds", JsonValue(std::move(seeds)));
    }
    scenarios.set("params", to_json(spec.scenario_params));
    json.set("scenarios", std::move(scenarios));
  }
  return json;
}

namespace {

void sweep_into(SweepSpec& spec, const JsonValue& json,
                const std::string& path, DiagnosticSink& sink) {
  ObjectReader reader(json, path, sink);

  if (const JsonValue* base = reader.get("base")) {
    spec.base = experiment_from_json(*base, path + ".base", sink);
  }

  spec.benchmarks = string_list(reader, "benchmarks");
  for (std::size_t i = 0; i < spec.benchmarks.size(); ++i) {
    validate_benchmark_name(
        spec.benchmarks[i], path + ".benchmarks[" + std::to_string(i) + "]",
        sink);
  }

  spec.platforms = string_list(reader, "platforms");
  for (std::size_t i = 0; i < spec.platforms.size(); ++i) {
    const PlatformRegistry& registry = PlatformRegistry::instance();
    if (!registry.contains(spec.platforms[i])) {
      sink.error(kCodeUnknownName,
                 path + ".platforms[" + std::to_string(i) + "]",
                 util::unknown_name_message("platform", spec.platforms[i],
                                            registry.names()));
    }
  }

  spec.policies = string_list(reader, "policies");
  for (std::size_t i = 0; i < spec.policies.size(); ++i) {
    validate_policy_name(spec.policies[i],
                         path + ".policies[" + std::to_string(i) + "]", sink);
  }

  spec.seeds = seed_list(reader, "seeds");

  if (const JsonValue* grid = reader.get("dtpm_grid")) {
    if (!grid->is_array()) {
      sink.error(kCodeType, path + ".dtpm_grid",
                 "expected an array of DTPM parameter objects, got " +
                     type_of(*grid));
    } else {
      const JsonArray& array = grid->as_array();
      for (std::size_t i = 0; i < array.size(); ++i) {
        spec.dtpm_grid.push_back(dtpm_params_from_json(
            array[i], path + ".dtpm_grid[" + std::to_string(i) + "]",
            core::DtpmParams{}, sink));
      }
    }
  }

  if (const JsonValue* scenarios = reader.get("scenarios")) {
    if (!spec.benchmarks.empty()) {
      sink.error(kCodeConstraint, path + ".scenarios",
                 "cannot combine a 'benchmarks' axis with a "
                 "'scenarios' selection in one sweep");
    }
    // The catalog expansion has no dtpm axis and reads its seeds from
    // $.scenarios.seeds; accepting these here would silently ignore them.
    if (!spec.seeds.empty()) {
      sink.error(kCodeConstraint, path + ".seeds",
                 "a 'scenarios' sweep takes its seeds from "
                 "$.scenarios.seeds, not a top-level 'seeds' axis");
    }
    if (!spec.dtpm_grid.empty()) {
      sink.error(kCodeConstraint, path + ".dtpm_grid",
                 "a 'dtpm_grid' axis cannot be combined with a "
                 "'scenarios' selection; set base.dtpm instead");
    }
    spec.has_scenarios = true;
    const std::string scenarios_path = path + ".scenarios";
    with_recovery([&] {
      ObjectReader scenario_reader(*scenarios, scenarios_path, sink);
      if (const JsonValue* params = scenario_reader.get("params")) {
        spec.scenario_params =
            scenario_params_from_json(*params, scenarios_path + ".params",
                                      sink);
      }
      spec.families = string_list(scenario_reader, "families");
      const ScenarioCatalog catalog =
          ScenarioCatalog::standard(spec.scenario_params);
      for (std::size_t i = 0; i < spec.families.size(); ++i) {
        if (!catalog.contains(spec.families[i])) {
          sink.error(
              kCodeUnknownName,
              scenarios_path + ".families[" + std::to_string(i) + "]",
              util::unknown_name_message("scenario family", spec.families[i],
                                         catalog.family_names()));
        }
      }
      spec.scenario_seeds = seed_list(scenario_reader, "seeds");
      scenario_reader.finish();
    });
  }

  reader.finish();
}

}  // namespace

SweepSpec sweep_from_json(const JsonValue& json, const std::string& path,
                          DiagnosticSink& sink) {
  SweepSpec spec;
  with_recovery([&] { sweep_into(spec, json, path, sink); });
  return spec;
}

SweepSpec sweep_from_json(const JsonValue& json, const std::string& path) {
  ThrowingSink sink;
  return sweep_from_json(json, path, sink);
}

SweepSpec load_sweep_spec(const std::string& file_path) {
  return sweep_from_json(util::json_parse_file(file_path));
}

}  // namespace dtpm::sim

// --- serve::FleetSpec --------------------------------------------------------
// Lives here, not under src/serve/, so the fleet parser shares the exact
// field-reading machinery (ObjectReader, L00x codes, recovery) of every
// other config document.

namespace dtpm::serve {

namespace {

// Pull the TU-local parse machinery (anonymous namespace above) into scope.
using namespace dtpm::sim;  // NOLINT(google-build-using-namespace)

util::JsonValue weight_list_json(const std::vector<FleetWeight>& entries) {
  JsonArray array;
  for (const FleetWeight& e : entries) {
    if (e.weight == 1.0) {
      array.emplace_back(e.name);
    } else {
      JsonValue entry((JsonObject()));
      entry.set("name", e.name);
      entry.set("weight", e.weight);
      array.push_back(std::move(entry));
    }
  }
  return JsonValue(std::move(array));
}

util::JsonValue range_json(const FleetRange& range) {
  JsonValue json((JsonObject()));
  json.set("lo", range.lo);
  json.set("hi", range.hi);
  return json;
}

/// Weighted-axis member: an array whose elements are either a bare name
/// (weight 1) or a {"name", "weight"} object. Name validity is the L703
/// lint's job, not the parser's, so a spec with a typo still parses into
/// a lintable value.
std::vector<FleetWeight> weight_list(ObjectReader& reader,
                                     const std::string& key) {
  std::vector<FleetWeight> out;
  const JsonValue* v = reader.get(key);
  if (v == nullptr) return out;
  if (!v->is_array()) {
    reader.sink().error(
        kCodeType, reader.member_path(key),
        "expected an array of names or {name, weight} objects, got " +
            type_of(*v));
    return out;
  }
  const JsonArray& array = v->as_array();
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string path =
        reader.member_path(key) + "[" + std::to_string(i) + "]";
    const JsonValue& element = array[i];
    if (element.is_string()) {
      out.push_back({element.as_string(), 1.0});
      continue;
    }
    if (!element.is_object()) {
      reader.sink().error(kCodeType, path,
                          "expected a name or a {name, weight} object, got " +
                              type_of(element));
      continue;
    }
    with_recovery([&] {
      ObjectReader entry(element, path, reader.sink());
      FleetWeight weight;
      entry.string("name", weight.name);
      entry.number("weight", weight.weight, 0.0,
                   std::numeric_limits<double>::max());
      entry.finish();
      if (weight.name.empty()) {
        reader.sink().error(kCodeConstraint, path,
                            "a weighted entry needs a non-empty 'name'");
        return;
      }
      out.push_back(std::move(weight));
    });
  }
  return out;
}

/// Range member: a bare number pins lo == hi; an object reads {lo, hi}.
/// An inverted range (hi < lo) parses fine -- flagging it is L701's job.
void range_member(ObjectReader& reader, const std::string& key,
                  FleetRange& out, double lo, double hi) {
  const JsonValue* v = reader.get(key);
  if (v == nullptr) return;
  const std::string path = reader.member_path(key);
  if (v->is_number()) {
    const double n = v->as_number();
    if (n < lo || n > hi) {
      reader.sink().error(kCodeRange, path,
                          "value " + util::json_write(*v, 0) + " outside [" +
                              util::json_write(JsonValue(lo), 0) + ", " +
                              util::json_write(JsonValue(hi), 0) + "]");
      return;
    }
    out.lo = n;
    out.hi = n;
    return;
  }
  if (!v->is_object()) {
    reader.sink().error(kCodeType, path,
                        "expected a number or a {lo, hi} object, got " +
                            type_of(*v));
    return;
  }
  with_recovery([&] {
    ObjectReader range(*v, path, reader.sink());
    range.number("lo", out.lo, lo, hi);
    range.number("hi", out.hi, lo, hi);
    range.finish();
  });
}

void fleet_into(FleetSpec& spec, const JsonValue& json, const std::string& path,
                DiagnosticSink& sink) {
  ObjectReader reader(json, path, sink);
  reader.integer("device_count", spec.device_count, 1,
                 std::numeric_limits<std::int64_t>::max());
  reader.integer("seed", spec.seed, 0,
                 std::numeric_limits<std::int64_t>::max());
  reader.integer("wave_size", spec.wave_size, 1, 1 << 20);
  if (const JsonValue* base = reader.get("base")) {
    spec.base = experiment_from_json(*base, path + ".base", sink);
  }
  spec.platforms = weight_list(reader, "platforms");
  spec.families = weight_list(reader, "families");
  range_member(reader, "ambient_c", spec.ambient_c, -50.0, 150.0);
  range_member(reader, "background_duty", spec.background_duty, 0.0, 1.0);
  reader.number("scenario_nominal_duration_s",
                spec.scenario_nominal_duration_s, 1e-3, 1e6);
  reader.number("scenario_intensity", spec.scenario_intensity, 1e-3, 100.0);
  reader.boolean("retain_traces", spec.retain_traces);
  reader.finish();
}

}  // namespace

util::JsonValue to_json(const FleetSpec& spec) {
  JsonValue json((JsonObject()));
  json.set("device_count", spec.device_count);
  json.set("seed", spec.seed);
  json.set("wave_size", spec.wave_size);
  json.set("base", sim::to_json(spec.base));
  if (!spec.platforms.empty()) {
    json.set("platforms", weight_list_json(spec.platforms));
  }
  if (!spec.families.empty()) {
    json.set("families", weight_list_json(spec.families));
  }
  json.set("ambient_c", range_json(spec.ambient_c));
  json.set("background_duty", range_json(spec.background_duty));
  json.set("scenario_nominal_duration_s", spec.scenario_nominal_duration_s);
  json.set("scenario_intensity", spec.scenario_intensity);
  json.set("retain_traces", spec.retain_traces);
  return json;
}

FleetSpec fleet_from_json(const util::JsonValue& json, const std::string& path,
                          util::DiagnosticSink& sink) {
  FleetSpec spec;
  with_recovery([&] { fleet_into(spec, json, path, sink); });
  return spec;
}

FleetSpec fleet_from_json(const util::JsonValue& json,
                          const std::string& path) {
  ThrowingSink sink;
  return fleet_from_json(json, path, sink);
}

FleetSpec load_fleet_spec(const std::string& file_path) {
  return fleet_from_json(util::json_parse_file(file_path));
}

}  // namespace dtpm::serve
