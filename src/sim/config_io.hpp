// Declarative experiment definitions: JSON round-trip for ExperimentConfig,
// DtpmParams, inline workload::Benchmark descriptions, and sweep documents
// (flat grids and scenario-catalog selections). This is what makes
// experiments *data* instead of recompiled C++ -- the `dtpm` CLI feeds these
// loaders, and anything registered in governors::PolicyRegistry is
// selectable by name from a config file.
//
// Every parser runs on the util::diagnostics engine and comes in two modes:
//
//   * Throwing (the legacy default, no sink argument): the first validation
//     failure throws ConfigError carrying a JSON-pointer-style path and, for
//     name lookups, the sorted valid names plus a nearest-match suggestion:
//
//       $.policies[2]: unknown policy 'dtmp', did you mean 'dtpm'?
//           (valid: default+fan, dtpm, no-fan, reactive)
//
//   * Collecting (the overloads taking a util::DiagnosticSink&): every
//     problem in the document is reported into the sink in one pass --
//     parsing recovers at member/element/section boundaries instead of
//     stopping -- and a best-effort value is returned. This is what
//     `dtpm lint` builds on. When the sink records no errors the returned
//     value is identical to the throwing parse; when it does, the value is
//     partial and should not be executed.
//
// The throwing mode is a thin wrapper over the collecting machinery (a
// ThrowingSink turns the first error into the legacy ConfigError), so the
// two modes cannot drift apart.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/batch.hpp"
#include "sim/config.hpp"
#include "util/diagnostics.hpp"
#include "util/json.hpp"
#include "workload/scenario.hpp"

namespace dtpm::sim {

/// Config validation failure, pinned to a document path like "$.dtpm.t_max_c"
/// or "$.policies[2]".
class ConfigError : public std::runtime_error {
 public:
  ConfigError(const std::string& path, const std::string& detail)
      : std::runtime_error(path + ": " + detail),
        path_(path),
        detail_(detail) {}

  const std::string& path() const { return path_; }
  const std::string& detail() const { return detail_; }

 private:
  std::string path_;
  std::string detail_;
};

/// DiagnosticSink preserving the legacy parse contract: the first
/// error-severity diagnostic becomes ConfigError(path, message) -- the exact
/// strings the pre-sink parsers threw. Warnings and notes pass through
/// silently (the throwing API has nowhere to put them).
class ThrowingSink : public util::DiagnosticSink {
 protected:
  void on_report(util::Diagnostic diagnostic) override {
    if (diagnostic.severity == util::Severity::kError) {
      throw ConfigError(diagnostic.path, diagnostic.message);
    }
  }
};

// --- DtpmParams --------------------------------------------------------------
util::JsonValue to_json(const core::DtpmParams& params);
/// Members absent from the document keep their value in `base` -- which is
/// how a platform's default t_max survives a partial "dtpm" override.
core::DtpmParams dtpm_params_from_json(const util::JsonValue& json,
                                       const std::string& path = "$",
                                       const core::DtpmParams& base = {});
/// Collecting mode: reports every problem into `sink`, returns best-effort.
core::DtpmParams dtpm_params_from_json(const util::JsonValue& json,
                                       const std::string& path,
                                       const core::DtpmParams& base,
                                       util::DiagnosticSink& sink);

// --- workload::Benchmark (the inline-scenario path) --------------------------
util::JsonValue to_json(const workload::Benchmark& benchmark);
workload::Benchmark benchmark_from_json(const util::JsonValue& json,
                                        const std::string& path = "$");
workload::Benchmark benchmark_from_json(const util::JsonValue& json,
                                        const std::string& path,
                                        util::DiagnosticSink& sink);

// --- workload::ScenarioParams ------------------------------------------------
util::JsonValue to_json(const workload::ScenarioParams& params);
workload::ScenarioParams scenario_params_from_json(
    const util::JsonValue& json, const std::string& path = "$");
workload::ScenarioParams scenario_params_from_json(const util::JsonValue& json,
                                                   const std::string& path,
                                                   util::DiagnosticSink& sink);

// --- sim::PlatformDescriptor -------------------------------------------------
// The platform-as-data path: a descriptor serializes completely (floorplan
// topology with named nodes/edges and role mapping, OPP tables, power/perf
// coefficients, sensor and fan models), so a custom SoC ships as a JSON
// file instead of recompiled C++. Parsing starts from the default (Odroid)
// descriptor and overrides the members present; a "floorplan" member, when
// given, must be complete (nodes, edges, and the role mapping). Validation
// failures carry exact paths like "$.platform.floorplan.edges[3].a".
util::JsonValue to_json(const PlatformDescriptor& descriptor);
PlatformDescriptor platform_from_json(const util::JsonValue& json,
                                      const std::string& path = "$");
PlatformDescriptor platform_from_json(const util::JsonValue& json,
                                      const std::string& path,
                                      util::DiagnosticSink& sink);

/// Parses a standalone platform file (e.g. examples/configs/
/// custom_platform.json) and validates the result.
PlatformDescriptor load_platform(const std::string& file_path);

// --- ExperimentConfig --------------------------------------------------------
// The "scenario" member supports two shapes:
//   {"family": "bursty", "seed": 7, "params": {...}}   regenerated through
//       the standard ScenarioCatalog (deterministic, so configs stay small)
//   {"benchmark": {...full benchmark description...}}   fully inline
// to_json always emits the fully-inline shape (a generated Benchmark does
// not remember its family), so every config round-trips losslessly.
util::JsonValue to_json(const ExperimentConfig& config);
ExperimentConfig experiment_from_json(const util::JsonValue& json,
                                      const std::string& path = "$");
ExperimentConfig experiment_from_json(const util::JsonValue& json,
                                      const std::string& path,
                                      util::DiagnosticSink& sink);

/// Parses a `dtpm run` config file; JSON syntax errors carry line/column,
/// validation errors carry their $.path.
ExperimentConfig load_experiment_config(const std::string& file_path);

// --- Sweep documents ---------------------------------------------------------

/// A declarative sweep: a base experiment plus the axes to expand. Either a
/// flat benchmark grid (mirroring sim::SweepGrid) or a scenario-catalog
/// selection ("scenarios" member) -- not both in one document.
struct SweepSpec {
  ExperimentConfig base;

  // Grid axes (empty = inherit from base, mirroring sim::sweep()).
  std::vector<std::string> benchmarks;
  std::vector<std::string> platforms;  ///< PlatformRegistry names
  std::vector<std::string> policies;   ///< registry names
  std::vector<std::uint64_t> seeds;
  std::vector<core::DtpmParams> dtpm_grid;

  // Scenario-catalog selection.
  bool has_scenarios = false;
  std::vector<std::string> families;  ///< empty = every standard family
  std::vector<std::uint64_t> scenario_seeds;
  workload::ScenarioParams scenario_params;

  /// Expands to concrete configs: SweepGrid/sweep() for the flat grid,
  /// ScenarioCatalog::standard(scenario_params).expand() for selections.
  std::vector<ExperimentConfig> expand() const;
};

util::JsonValue to_json(const SweepSpec& spec);
SweepSpec sweep_from_json(const util::JsonValue& json,
                          const std::string& path = "$");
SweepSpec sweep_from_json(const util::JsonValue& json, const std::string& path,
                          util::DiagnosticSink& sink);

/// Parses a `dtpm sweep` grid file.
SweepSpec load_sweep_spec(const std::string& file_path);

}  // namespace dtpm::sim
