#include "sim/control_stack.hpp"

#include <stdexcept>

#include "governors/fan_policy.hpp"
#include "governors/reactive.hpp"

namespace dtpm::sim {

namespace {

std::unique_ptr<governors::ThermalPolicy> make_policy(
    const ExperimentConfig& config,
    const sysid::IdentifiedPlatformModel* model) {
  switch (config.policy) {
    case Policy::kDefaultWithFan:
      return std::make_unique<governors::FanPolicy>();
    case Policy::kWithoutFan:
      return std::make_unique<governors::NullPolicy>();
    case Policy::kReactive:
      return std::make_unique<governors::ReactiveThrottlePolicy>();
    case Policy::kProposedDtpm:
      if (model == nullptr) {
        throw std::invalid_argument(
            "ControlStack: DTPM policy requires an identified model");
      }
      return std::make_unique<core::DtpmGovernor>(*model, config.dtpm);
  }
  throw std::invalid_argument("ControlStack: unknown policy");
}

}  // namespace

ControlStack::ControlStack(
    const ExperimentConfig& config,
    const sysid::IdentifiedPlatformModel* model,
    std::unique_ptr<governors::ThermalPolicy> policy_override)
    : policy_(policy_override != nullptr ? std::move(policy_override)
                                         : make_policy(config, model)),
      dtpm_(dynamic_cast<core::DtpmGovernor*>(policy_.get())) {}

governors::Decision ControlStack::decide(const soc::PlatformView& view) {
  const governors::Decision proposal = governor_.decide(view);
  return policy_->adjust(view, proposal);
}

}  // namespace dtpm::sim
