#include "sim/control_stack.hpp"

#include "governors/policy_registry.hpp"

namespace dtpm::sim {

namespace {

governors::PolicyContext make_context(
    const ExperimentConfig& config,
    const sysid::IdentifiedPlatformModel* model) {
  governors::PolicyContext context;
  context.model = model;
  context.dtpm = &config.dtpm;
  context.params = &config.policy_params;
  return context;
}

}  // namespace

ControlStack::ControlStack(
    const ExperimentConfig& config,
    const sysid::IdentifiedPlatformModel* model,
    std::unique_ptr<governors::ThermalPolicy> policy_override)
    : governor_(governors::GovernorRegistry::instance().make(
          resolved_governor_name(config), make_context(config, model))),
      policy_(policy_override != nullptr
                  ? std::move(policy_override)
                  : governors::PolicyRegistry::instance().make(
                        resolved_policy_name(config),
                        make_context(config, model))),
      dtpm_(dynamic_cast<core::DtpmGovernor*>(policy_.get())) {}

governors::Decision ControlStack::decide(const soc::PlatformView& view) {
  const governors::Decision proposal = governor_->decide(view);
  return policy_->adjust(view, proposal);
}

}  // namespace dtpm::sim
