#include "sim/control_stack.hpp"

#include <optional>
#include <utility>

#include "governors/policy_registry.hpp"

namespace dtpm::sim {

namespace {

governors::PolicyContext make_context(
    const ExperimentConfig& config,
    const sysid::IdentifiedPlatformModel* model) {
  governors::PolicyContext context;
  context.model = model;
  context.dtpm = &config.dtpm;
  context.params = &config.policy_params;
  return context;
}

}  // namespace

ControlStack::ControlStack(
    const ExperimentConfig& config,
    const sysid::IdentifiedPlatformModel* model,
    std::unique_ptr<governors::ThermalPolicy> policy_override,
    const PlatformDescriptor* platform) {
  governors::PolicyContext context = make_context(config, model);
  // The tables only need to outlive the factory calls below; factories copy
  // what they keep.
  std::optional<power::OppTable> big, little, gpu;
  if (platform != nullptr) {
    big.emplace(platform->big_opp_table());
    little.emplace(platform->little_opp_table());
    gpu.emplace(platform->gpu_opp_table());
    context.big_opps = &*big;
    context.little_opps = &*little;
    context.gpu_opps = &*gpu;
  }
  governor_ = governors::GovernorRegistry::instance().make(
      resolved_governor_name(config), context);
  policy_ = policy_override != nullptr
                ? std::move(policy_override)
                : governors::PolicyRegistry::instance().make(
                      resolved_policy_name(config), context);
  dtpm_ = dynamic_cast<core::DtpmGovernor*>(policy_.get());
}

governors::Decision ControlStack::decide(const soc::PlatformView& view) {
  const governors::Decision proposal = governor_->decide(view);
  return policy_->adjust(view, proposal);
}

}  // namespace dtpm::sim
