// The software side of Fig. 3.1: the configured default governor proposes a
// configuration every control interval and the configured thermal policy
// adjusts it. Both layers are constructed by name through the string-keyed
// governors::PolicyRegistry/GovernorRegistry, so user-registered
// implementations are selectable from an ExperimentConfig (or a JSON config
// file) exactly like the built-ins.
#pragma once

#include <memory>

#include "core/dtpm_governor.hpp"
#include "governors/governor.hpp"
#include "sim/config.hpp"
#include "sysid/model_store.hpp"

namespace dtpm::sim {

/// Default governor + thermal policy, evaluated in that order.
class ControlStack {
 public:
  /// Builds the governor and policy the config selects (by registry name;
  /// the Policy enum is resolved through resolved_policy_name), or adopts
  /// `policy_override` (any user-defined governors::ThermalPolicy) when one
  /// is supplied. The "dtpm" policy requires `model`. A non-null `platform`
  /// hands the factories the platform's OPP tables through
  /// PolicyContext::big_opps/little_opps/gpu_opps, so registry policies
  /// propose frequencies from the plant they actually run on; null keeps
  /// the default Exynos-5410 tables.
  ControlStack(const ExperimentConfig& config,
               const sysid::IdentifiedPlatformModel* model,
               std::unique_ptr<governors::ThermalPolicy> policy_override,
               const PlatformDescriptor* platform = nullptr);

  /// One control decision: default proposal, then the policy's adjustment.
  governors::Decision decide(const soc::PlatformView& view);

  /// Non-null when the active policy is the DTPM governor (for diagnostics
  /// and the predicted-temperature trace column).
  core::DtpmGovernor* dtpm() { return dtpm_; }
  const core::DtpmGovernor* dtpm() const { return dtpm_; }

  const governors::ThermalPolicy& policy() const { return *policy_; }

 private:
  std::unique_ptr<governors::Governor> governor_;
  std::unique_ptr<governors::ThermalPolicy> policy_;
  core::DtpmGovernor* dtpm_ = nullptr;
};

}  // namespace dtpm::sim
