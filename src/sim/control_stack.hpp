// The software side of Fig. 3.1: the default ondemand governor proposes a
// configuration every control interval and the configured thermal policy
// adjusts it. Owns policy construction from an ExperimentConfig, including
// the extension point for user-supplied ThermalPolicy implementations.
#pragma once

#include <memory>

#include "core/dtpm_governor.hpp"
#include "governors/governor.hpp"
#include "governors/ondemand.hpp"
#include "sim/config.hpp"
#include "sysid/model_store.hpp"

namespace dtpm::sim {

/// Ondemand governor + thermal policy, evaluated in that order.
class ControlStack {
 public:
  /// Builds the policy selected by `config.policy`, or adopts
  /// `policy_override` (any user-defined governors::ThermalPolicy) when one
  /// is supplied. kProposedDtpm requires `model`.
  ControlStack(const ExperimentConfig& config,
               const sysid::IdentifiedPlatformModel* model,
               std::unique_ptr<governors::ThermalPolicy> policy_override);

  /// One control decision: default proposal, then the policy's adjustment.
  governors::Decision decide(const soc::PlatformView& view);

  /// Non-null when the active policy is the DTPM governor (for diagnostics
  /// and the predicted-temperature trace column).
  core::DtpmGovernor* dtpm() { return dtpm_; }
  const core::DtpmGovernor* dtpm() const { return dtpm_; }

  const governors::ThermalPolicy& policy() const { return *policy_; }

 private:
  governors::OndemandGovernor governor_;
  std::unique_ptr<governors::ThermalPolicy> policy_;
  core::DtpmGovernor* dtpm_ = nullptr;
};

}  // namespace dtpm::sim
