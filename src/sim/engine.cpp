#include "sim/engine.hpp"

namespace dtpm::sim {

RunResult run_experiment(const ExperimentConfig& config,
                         const sysid::IdentifiedPlatformModel* model,
                         const RunPlan* plan) {
  Simulation simulation(config, model, nullptr, plan);
  while (simulation.step()) {
  }
  return simulation.finish();
}

}  // namespace dtpm::sim
