#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "core/thermal_predictor.hpp"
#include "governors/fan_policy.hpp"
#include "governors/ondemand.hpp"
#include "governors/reactive.hpp"
#include "soc/soc.hpp"
#include "util/rng.hpp"
#include "workload/background.hpp"
#include "workload/suite.hpp"

namespace dtpm::sim {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kDefaultWithFan:
      return "default+fan";
    case Policy::kWithoutFan:
      return "no-fan";
    case Policy::kReactive:
      return "reactive";
    case Policy::kProposedDtpm:
      return "dtpm";
  }
  return "?";
}

namespace {

constexpr double kRunawayAbortTempC = 115.0;

int fan_level(thermal::FanSpeed s) {
  switch (s) {
    case thermal::FanSpeed::kOff:
      return 0;
    case thermal::FanSpeed::kLow:
      return 1;
    case thermal::FanSpeed::kHalf:
      return 2;
    case thermal::FanSpeed::kFull:
      return 3;
  }
  return 0;
}

struct PendingPrediction {
  std::size_t due_step = 0;
  std::vector<double> temps_c;
};

std::unique_ptr<governors::ThermalPolicy> make_policy(
    const ExperimentConfig& config,
    const sysid::IdentifiedPlatformModel* model) {
  switch (config.policy) {
    case Policy::kDefaultWithFan:
      return std::make_unique<governors::FanPolicy>();
    case Policy::kWithoutFan:
      return std::make_unique<governors::NullPolicy>();
    case Policy::kReactive:
      return std::make_unique<governors::ReactiveThrottlePolicy>();
    case Policy::kProposedDtpm:
      if (model == nullptr) {
        throw std::invalid_argument(
            "run_experiment: DTPM policy requires an identified model");
      }
      return std::make_unique<core::DtpmGovernor>(*model, config.dtpm);
  }
  throw std::invalid_argument("run_experiment: unknown policy");
}

}  // namespace

RunResult run_experiment(const ExperimentConfig& config,
                         const sysid::IdentifiedPlatformModel* model) {
  if (config.observe_predictions && model == nullptr) {
    throw std::invalid_argument(
        "run_experiment: observe_predictions requires an identified model");
  }
  const PlatformPreset& preset = config.preset;

  // --- Plant assembly --------------------------------------------------------
  thermal::Floorplan floorplan = thermal::make_default_floorplan(preset.floorplan);
  thermal::RcNetwork& rc = floorplan.network;
  const thermal::Fan fan(preset.fan);
  soc::Soc soc(preset.plant, preset.perf);

  util::Rng root(config.seed);
  const auto big_nodes = thermal::Floorplan::big_core_nodes();
  thermal::TempSensorBank temp_bank(
      {big_nodes.begin(), big_nodes.end()}, preset.temp_sensor, root.fork());
  power::PowerSensorBank power_bank(preset.power_sensor, root.fork());
  power::ExternalPowerMeter meter(preset.platform_load, root.fork());

  // --- Workload --------------------------------------------------------------
  const workload::Benchmark& bench = workload::find_benchmark(config.benchmark);
  workload::BackgroundParams bg_params;
  bg_params.heavy_load = workload::wants_heavy_background(bench);
  workload::BackgroundLoad background(bg_params, root.fork());
  workload::WorkloadInstance instance(bench);

  // --- Control stack ---------------------------------------------------------
  governors::OndemandGovernor governor;
  std::unique_ptr<governors::ThermalPolicy> policy = make_policy(config, model);
  auto* dtpm = dynamic_cast<core::DtpmGovernor*>(policy.get());
  std::optional<core::ThermalPredictor> observer;
  if (config.observe_predictions) observer.emplace(model->thermal);

  // Initial configuration: warm-start at the low end; ondemand ramps up.
  soc::SocConfig initial;
  initial.active_cluster = soc::ClusterId::kBig;
  initial.big_freq_hz = soc.big_opps().min().frequency_hz;
  initial.little_freq_hz = soc.little_opps().min().frequency_hz;
  initial.gpu_freq_hz = soc.gpu_opps().min().frequency_hz;
  soc.apply(initial);
  thermal::FanSpeed fan_speed = thermal::FanSpeed::kOff;

  // --- Result accumulators ---------------------------------------------------
  RunResult result;
  if (config.record_trace) {
    result.trace.emplace(std::vector<std::string>{
        "time_s", "t_big0_c", "t_big1_c", "t_big2_c", "t_big3_c", "t_max_c",
        "p_big_w", "p_little_w", "p_gpu_w", "p_mem_w", "p_platform_w",
        "f_big_mhz", "f_little_mhz", "f_gpu_mhz", "cluster", "online_cores",
        "fan_level", "cpu_util", "gpu_util", "progress", "pred_max_ahead_c",
        "pred_tmax_for_now_c", "pred_t0_for_now_c"});
  }
  util::RunningStats pred_abs_err;
  double pred_ape_sum = 0.0;
  double pred_max_ape = 0.0;
  std::size_t pred_count = 0;

  // --- Main loop --------------------------------------------------------------
  const double dt = config.control_interval_s;
  const int substeps =
      std::max(1, int(std::lround(dt / config.plant_substep_s)));
  const double sub_dt = dt / substeps;

  power::ResourceVector last_rails_avg{};
  double last_fan_power = 0.0;
  double last_cpu_max_util = 0.0, last_cpu_avg_util = 0.0, last_gpu_util = 0.0;
  std::deque<PendingPrediction> pending;

  double t = 0.0;
  std::size_t k = 0;
  bool started = false;
  double start_time = 0.0;
  double end_time = 0.0;
  double fan_energy_j = 0.0;
  bool runaway = false;

  while (true) {
    // 1. Sensor sampling.
    const std::vector<double> sensor_temps = temp_bank.read(rc.temperatures_c());
    const power::ResourceVector sensor_rails = power_bank.read(last_rails_avg);
    const double platform_power = meter.read(last_rails_avg, last_fan_power);

    soc::PlatformView view;
    view.time_s = t;
    for (int c = 0; c < soc::kBigCoreCount; ++c) view.big_temps_c[c] = sensor_temps[c];
    view.rail_power_w = sensor_rails;
    view.platform_power_w = platform_power;
    view.cpu_max_util = last_cpu_max_util;
    view.cpu_avg_util = last_cpu_avg_util;
    view.gpu_util = last_gpu_util;
    view.config = soc.config();

    // 2. Control stack (Fig. 3.1): default proposal, then the thermal policy.
    const governors::Decision proposal = governor.decide(view);
    const governors::Decision decision = policy->adjust(view, proposal);
    soc.apply(decision.soc);
    fan_speed = decision.fan;
    rc.set_edge_conductance(floorplan.fan_edge,
                            fan.conductance_w_per_k(fan_speed));

    // 3. Observe-only prediction bookkeeping.
    double pred_tmax_for_now = std::nan("");
    double pred_t0_for_now = std::nan("");
    if (observer) {
      while (!pending.empty() && pending.front().due_step <= k) {
        const PendingPrediction& p = pending.front();
        if (p.due_step == k && started && !instance.done()) {
          pred_t0_for_now = p.temps_c[0];
          pred_tmax_for_now =
              *std::max_element(p.temps_c.begin(), p.temps_c.end());
          for (std::size_t i = 0; i < p.temps_c.size(); ++i) {
            const double err = std::fabs(p.temps_c[i] - sensor_temps[i]);
            pred_abs_err.add(err);
            if (std::fabs(sensor_temps[i]) > 1e-9) {
              const double ape = 100.0 * err / std::fabs(sensor_temps[i]);
              pred_ape_sum += ape;
              pred_max_ape = std::max(pred_max_ape, ape);
              ++pred_count;
            }
          }
        }
        pending.pop_front();
      }
      if (started && !instance.done()) {
        PendingPrediction p;
        p.due_step = k + config.observe_horizon_steps;
        p.temps_c = observer->predict(
            sensor_temps, {sensor_rails.begin(), sensor_rails.end()},
            config.observe_horizon_steps);
        pending.push_back(std::move(p));
      }
    }

    // 4. Plant advance with leakage-temperature feedback per substep.
    workload::Demand demand;
    if (started && !instance.done()) {
      demand = instance.demand();
    } else if (!started) {
      // Moderate warm-up load so recording starts from a warm platform.
      workload::ThreadDemand warm;
      warm.duty = 1.0;
      warm.cpu_activity = config.warmup_activity;
      warm.mem_intensity = 0.3;
      warm.counts_progress = false;
      demand.threads.push_back(warm);
    }
    const std::vector<workload::ThreadDemand> bg_threads = background.threads();
    power::ResourceVector rails_accum{};
    soc::SocStepResult out;
    double consumed = 0.0;
    bool finished_this_interval = false;
    for (int s = 0; s < substeps; ++s) {
      const auto& temps = rc.temperatures_c();
      const std::array<double, soc::kBigCoreCount> big_true{
          temps[thermal::node_index(thermal::FloorplanNode::kBig0)],
          temps[thermal::node_index(thermal::FloorplanNode::kBig1)],
          temps[thermal::node_index(thermal::FloorplanNode::kBig2)],
          temps[thermal::node_index(thermal::FloorplanNode::kBig3)]};
      out = soc.step(
          demand, bg_threads, big_true,
          temps[thermal::node_index(thermal::FloorplanNode::kLittleCluster)],
          temps[thermal::node_index(thermal::FloorplanNode::kGpu)],
          temps[thermal::node_index(thermal::FloorplanNode::kMem)], sub_dt);

      std::vector<double> node_power(thermal::kFloorplanNodeCount, 0.0);
      for (int c = 0; c < soc::kBigCoreCount; ++c) {
        node_power[thermal::node_index(thermal::FloorplanNode::kBig0) + c] =
            out.big_core_power_w[c];
      }
      node_power[thermal::node_index(thermal::FloorplanNode::kLittleCluster)] =
          out.rail_power_w[power::resource_index(power::Resource::kLittleCluster)];
      node_power[thermal::node_index(thermal::FloorplanNode::kGpu)] =
          out.rail_power_w[power::resource_index(power::Resource::kGpu)];
      node_power[thermal::node_index(thermal::FloorplanNode::kMem)] =
          out.rail_power_w[power::resource_index(power::Resource::kMem)];
      rc.step(sub_dt, node_power);

      for (std::size_t r = 0; r < power::kResourceCount; ++r) {
        rails_accum[r] += out.rail_power_w[r] * sub_dt;
      }
      consumed += sub_dt;
      if (started && !instance.done()) {
        instance.advance(out.progress_units);
        if (instance.done()) {
          finished_this_interval = true;
          break;
        }
      }
    }
    for (std::size_t r = 0; r < power::kResourceCount; ++r) {
      last_rails_avg[r] = rails_accum[r] / consumed;
    }
    last_fan_power = fan.electrical_power_w(fan_speed);
    last_cpu_max_util = out.cpu_max_util;
    last_cpu_avg_util = out.cpu_avg_util;
    last_gpu_util = out.gpu_util;

    // 5. Recording (benchmark window only).
    if (started) {
      const double t_max_reading =
          *std::max_element(sensor_temps.begin(), sensor_temps.end());
      result.max_temp_stats.add(t_max_reading);
      const double soc_power = power::total(last_rails_avg);
      const double platform_true = soc_power + last_fan_power +
                                   preset.platform_load.board_base_w +
                                   preset.platform_load.display_w;
      result.platform_energy_j += platform_true * consumed;
      fan_energy_j += last_fan_power * consumed;
      if (t_max_reading > config.dtpm.t_max_c) result.violation_time_s += consumed;
      if (result.trace) {
        const double pred_ahead =
            dtpm != nullptr ? dtpm->diagnostics().predicted_max_c
                            : (pending.empty() ? std::nan("")
                                               : *std::max_element(
                                                     pending.back().temps_c.begin(),
                                                     pending.back().temps_c.end()));
        result.trace->append(
            {t - start_time, sensor_temps[0], sensor_temps[1], sensor_temps[2],
             sensor_temps[3], t_max_reading,
             last_rails_avg[0], last_rails_avg[1], last_rails_avg[2],
             last_rails_avg[3], platform_true,
             soc.config().big_freq_hz / 1e6, soc.config().little_freq_hz / 1e6,
             soc.config().gpu_freq_hz / 1e6,
             soc.config().active_cluster == soc::ClusterId::kBig ? 0.0 : 1.0,
             double(soc.config().online_big_cores()), double(fan_level(fan_speed)),
             out.cpu_max_util, out.gpu_util, instance.progress_fraction(),
             pred_ahead, pred_tmax_for_now, pred_t0_for_now});
      }
    }

    // 6. Advance time, termination checks.
    t += consumed;
    ++k;
    if (!started && t >= config.warmup_s) {
      started = true;
      start_time = t;
    }
    if (started && (instance.done() || finished_this_interval)) {
      result.completed = true;
      end_time = t;
      break;
    }
    const auto& temps_now = rc.temperatures_c();
    if (*std::max_element(temps_now.begin(), temps_now.end()) >
        kRunawayAbortTempC) {
      runaway = true;
      end_time = t;
      break;
    }
    if (t >= config.max_sim_time_s) {
      end_time = t;
      break;
    }
  }

  result.execution_time_s = end_time - start_time;
  if (result.execution_time_s > 0.0) {
    result.avg_platform_power_w =
        result.platform_energy_j / result.execution_time_s;
  }
  // SoC-only average from the energy identity: platform = soc + fan + fixed.
  if (result.execution_time_s > 0.0) {
    result.avg_soc_power_w =
        (result.platform_energy_j - fan_energy_j) / result.execution_time_s -
        preset.platform_load.board_base_w - preset.platform_load.display_w;
  }
  if (pred_abs_err.count() > 0) {
    result.prediction_mae_c = pred_abs_err.mean();
    result.prediction_mape = pred_ape_sum / double(pred_count);
    result.prediction_max_ape = pred_max_ape;
    result.prediction_samples = pred_count;
  }
  if (dtpm != nullptr) result.dtpm = dtpm->diagnostics();
  if (runaway) result.completed = false;
  return result;
}

}  // namespace dtpm::sim
