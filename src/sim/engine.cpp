#include "sim/engine.hpp"

namespace dtpm::sim {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kDefaultWithFan:
      return "default+fan";
    case Policy::kWithoutFan:
      return "no-fan";
    case Policy::kReactive:
      return "reactive";
    case Policy::kProposedDtpm:
      return "dtpm";
  }
  return "?";
}

RunResult run_experiment(const ExperimentConfig& config,
                         const sysid::IdentifiedPlatformModel* model,
                         const RunPlan* plan) {
  Simulation simulation(config, model, nullptr, plan);
  while (simulation.step()) {
  }
  return simulation.finish();
}

}  // namespace dtpm::sim
