// Convenience entry point for one-shot experiment runs. The closed-loop
// engine itself lives in sim/simulation.hpp as the steppable Simulation
// class (Plant + ControlStack + PredictionObserver + TraceRecorder);
// run_experiment is a thin wrapper that constructs a Simulation, drives
// step() to completion, and returns finish(). For many configurations at
// once, see the parallel BatchRunner in sim/batch.hpp.
#pragma once

#include "sim/config.hpp"
#include "sim/run_result.hpp"
#include "sim/simulation.hpp"
#include "sysid/model_store.hpp"

namespace dtpm::sim {

/// Runs one experiment. `model` is required for kProposedDtpm and for
/// observe_predictions; it is the artifact of sim::calibrate_platform. An
/// optional RunPlan supplies shared batch invariants (floorplan template,
/// resolved benchmarks); results are identical with or without one.
RunResult run_experiment(const ExperimentConfig& config,
                         const sysid::IdentifiedPlatformModel* model = nullptr,
                         const RunPlan* plan = nullptr);

}  // namespace dtpm::sim
