// The closed-loop simulation engine: every 100 ms control interval it reads
// the sensor models, runs the default governor and the configured thermal
// policy, applies the decision to the SoC, and advances the RC thermal plant
// in fine-grained substeps with leakage-temperature feedback. This is the
// software stack of Fig. 3.1 running against the simulated board.
#pragma once

#include <memory>
#include <optional>

#include "sim/config.hpp"
#include "sysid/model_store.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace dtpm::sim {

/// Aggregate results of one benchmark run.
struct RunResult {
  bool completed = false;           ///< benchmark finished before the time cap
  double execution_time_s = 0.0;    ///< the paper's performance metric
  double avg_platform_power_w = 0.0;  ///< external meter average (incl. fan)
  double avg_soc_power_w = 0.0;     ///< SoC rails only
  double platform_energy_j = 0.0;

  /// Statistics of the max-core-temperature trace (Figs. 6.3-6.5).
  util::RunningStats max_temp_stats;
  /// Wall-clock time spent above the 63 C constraint.
  double violation_time_s = 0.0;

  /// Observe-only prediction validation (when enabled): errors between
  /// T[k+h] predictions and the later sensor measurements, across all four
  /// hotspots (§6.3.1's convention: percentage of the measured reading).
  double prediction_mae_c = 0.0;
  double prediction_mape = 0.0;
  double prediction_max_ape = 0.0;
  std::size_t prediction_samples = 0;

  /// DTPM actuation counters (zero for other policies).
  core::DtpmDiagnostics dtpm;

  /// Per-interval trace (empty when record_trace is false). Columns:
  /// time_s, t_big0..3, t_max, p_big, p_little, p_gpu, p_mem, p_platform,
  /// f_big_mhz, f_little_mhz, f_gpu_mhz, cluster, online_cores, fan_level,
  /// cpu_util, progress, predicted_max_c, predicted_t0_c.
  std::optional<util::TraceTable> trace;
};

/// Runs one experiment. `model` is required for kProposedDtpm and for
/// observe_predictions; it is the artifact of sim::calibrate_platform.
RunResult run_experiment(const ExperimentConfig& config,
                         const sysid::IdentifiedPlatformModel* model = nullptr);

}  // namespace dtpm::sim
