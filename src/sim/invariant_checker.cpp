#include "sim/invariant_checker.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "power/opp.hpp"
#include "sim/trace_recorder.hpp"
#include "thermal/fan.hpp"

namespace dtpm::sim {
namespace {

/// Column indices resolved once per check; the schema is owned by
/// TraceRecorder::column_names(), so a renamed column fails loudly here.
struct Columns {
  std::size_t time, t_max, p_platform, f_big, f_little, f_gpu;
  std::size_t cluster, online, fan, cpu_util, gpu_util, progress, pred_ahead;
  std::array<std::size_t, soc::kBigCoreCount> big;
  std::array<std::size_t, power::kResourceCount> rails;

  /// NaN is the documented "no prediction scheduled/due" sentinel in the
  /// prediction columns (sim/prediction_observer.hpp); everywhere else a
  /// non-finite cell is a simulator bug.
  bool nan_allowed(const std::string& name) const {
    return name.rfind("pred_", 0) == 0;
  }

  /// Every column is resolved by name (never by offset from a neighbour),
  /// so a renamed OR reordered trace schema fails loudly here instead of
  /// silently misvalidating.
  explicit Columns(const std::vector<std::string>& header) {
    time = index_of(header, "time_s");
    t_max = index_of(header, "t_max_c");
    p_platform = index_of(header, "p_platform_w");
    f_big = index_of(header, "f_big_mhz");
    f_little = index_of(header, "f_little_mhz");
    f_gpu = index_of(header, "f_gpu_mhz");
    cluster = index_of(header, "cluster");
    online = index_of(header, "online_cores");
    fan = index_of(header, "fan_level");
    cpu_util = index_of(header, "cpu_util");
    gpu_util = index_of(header, "gpu_util");
    progress = index_of(header, "progress");
    pred_ahead = index_of(header, "pred_max_ahead_c");
    for (int c = 0; c < soc::kBigCoreCount; ++c) {
      big[c] = index_of(header, "t_big" + std::to_string(c) + "_c");
    }
    const char* rail_names[power::kResourceCount] = {"p_big_w", "p_little_w",
                                                     "p_gpu_w", "p_mem_w"};
    for (std::size_t r = 0; r < power::kResourceCount; ++r) {
      rails[r] = index_of(header, rail_names[r]);
    }
  }

  static std::size_t index_of(const std::vector<std::string>& header,
                              const std::string& name) {
    const auto it = std::find(header.begin(), header.end(), name);
    if (it == header.end()) {
      throw std::invalid_argument("InvariantChecker: trace has no column " +
                                  name);
    }
    return std::size_t(it - header.begin());
  }
};

bool in_table(const power::OppTable& table, double freq_hz, double tol_hz) {
  for (const auto& opp : table.points()) {
    if (std::fabs(opp.frequency_hz - freq_hz) <= tol_hz) return true;
  }
  return false;
}

std::string format_row(const char* text, double value) {
  std::ostringstream os;
  os << text << " (value " << value << ")";
  return os.str();
}

}  // namespace

InvariantChecker::InvariantChecker(const InvariantCheckerOptions& options)
    : options_(options) {}

std::vector<InvariantViolation> InvariantChecker::check(
    const ExperimentConfig& config, const RunResult& result) const {
  std::vector<InvariantViolation> found;
  const auto violate = [&found](const std::string& invariant, std::size_t row,
                                const std::string& message) {
    found.push_back({invariant, row, message});
  };

  // Everything platform-dependent (OPP tables, fan power curve, ambient,
  // fixed loads) comes from the config's resolved descriptor, so the checks
  // hold on every registered platform, not just the default board.
  const PlatformPtr platform = resolved_platform(config);

  // --- Aggregate invariants (always checkable). ---------------------------
  if (result.execution_time_s < 0.0) {
    violate("exec-time", InvariantViolation::kAggregate,
            format_row("negative execution time", result.execution_time_s));
  }
  if (result.completed && result.execution_time_s <= 0.0) {
    violate("exec-time", InvariantViolation::kAggregate,
            "completed run with non-positive execution time");
  }
  if (result.platform_energy_j < 0.0) {
    violate("energy", InvariantViolation::kAggregate,
            format_row("negative platform energy", result.platform_energy_j));
  }
  if (result.execution_time_s > 0.0) {
    // avg_platform_power is defined as platform_energy / execution_time.
    const double implied =
        result.avg_platform_power_w * result.execution_time_s;
    const double tol = 1e-9 * std::max(1.0, result.platform_energy_j);
    if (std::fabs(implied - result.platform_energy_j) > tol) {
      violate("energy", InvariantViolation::kAggregate,
              "platform energy inconsistent with avg power x time");
    }
    // Rail decomposition: platform minus SoC covers at least the fixed
    // platform loads (the remainder is the non-negative fan energy).
    const double fixed = platform->platform_load.board_base_w +
                         platform->platform_load.display_w;
    const double overhead =
        result.avg_platform_power_w - result.avg_soc_power_w;
    if (overhead < fixed - 1e-6) {
      violate("rail-decomposition", InvariantViolation::kAggregate,
              format_row("platform/SoC power gap below fixed loads",
                         overhead));
    }
  }
  if (result.violation_time_s < 0.0 ||
      result.violation_time_s >
          result.execution_time_s + config.control_interval_s) {
    violate("violation-time", InvariantViolation::kAggregate,
            format_row("violation time outside the run window",
                       result.violation_time_s));
  }
  if (result.max_temp_stats.count() > 0) {
    if (result.max_temp_stats.max() > options_.temp_ceiling_c) {
      violate("temp-range", InvariantViolation::kAggregate,
              format_row("max temperature above the sensor ceiling",
                         result.max_temp_stats.max()));
    }
    if (result.max_temp_stats.min() <
        platform->floorplan.ambient_temp_c() - options_.temp_margin_c) {
      violate("temp-range", InvariantViolation::kAggregate,
              format_row("max temperature below ambient",
                         result.max_temp_stats.min()));
    }
  }

  if (!result.trace.has_value()) return found;
  const util::TraceTable& trace = *result.trace;
  const Columns col(trace.header());

  const power::OppTable big_opps = platform->big_opp_table();
  const power::OppTable little_opps = platform->little_opp_table();
  const power::OppTable gpu_opps = platform->gpu_opp_table();
  const thermal::Fan fan(platform->fan);
  const double ambient_floor_c =
      platform->floorplan.ambient_temp_c() - options_.temp_margin_c;
  const double fixed_w = platform->platform_load.board_base_w +
                         platform->platform_load.display_w;
  const double dtpm_trigger_c =
      config.dtpm.t_max_c - config.dtpm.guard_band_c;
  // Registry-name dispatch: the budget contract binds whenever the config
  // selects the DTPM governor, whether via the enum shim or by name.
  const bool dtpm_policy = resolved_policy_name(config) == "dtpm";

  double prev_time = -1.0;
  double prev_progress = 0.0;
  std::size_t unrestricted_violation_streak = 0;

  for (std::size_t r = 0; r < trace.rows().size(); ++r) {
    const std::vector<double>& row = trace.rows()[r];

    for (std::size_t c = 0; c < row.size(); ++c) {
      if (std::isfinite(row[c])) continue;
      if (std::isnan(row[c]) && col.nan_allowed(trace.header()[c])) continue;
      violate("finite", r, "non-finite value in column " + trace.header()[c]);
    }

    // Time marches forward by at most one control interval (the final
    // interval may be shorter when the benchmark finishes mid-interval).
    const double time = row[col.time];
    if (r == 0 && time < 0.0) {
      violate("time", r, format_row("negative start time", time));
    }
    if (r > 0) {
      const double dt = time - prev_time;
      if (dt <= 0.0 || dt > config.control_interval_s + 1e-9) {
        violate("time", r, format_row("trace time step out of range", dt));
      }
    }
    prev_time = time;

    // Temperatures: inside the sensor range, never below ambient, and the
    // t_max column must be the max of the per-core readings.
    double hottest = -1e300;
    for (std::size_t c = 0; c < std::size_t(soc::kBigCoreCount); ++c) {
      const double temp = row[col.big[c]];
      hottest = std::max(hottest, temp);
      if (temp < ambient_floor_c || temp > options_.temp_ceiling_c) {
        violate("temp-range", r,
                format_row("core temperature outside sensor bounds", temp));
      }
    }
    if (std::fabs(row[col.t_max] - hottest) > 1e-9) {
      violate("temp-max", r,
              format_row("t_max_c is not the max core reading",
                         row[col.t_max]));
    }

    // Powers: rails non-negative, and the platform meter column must equal
    // rails + fan + fixed loads (the identity the meter is built from).
    double rail_sum = 0.0;
    for (std::size_t c = 0; c < power::kResourceCount; ++c) {
      const double p = row[col.rails[c]];
      rail_sum += p;
      if (p < -options_.power_epsilon_w) {
        violate("power-sign", r, format_row("negative rail power", p));
      }
    }
    const double fan_level_d = row[col.fan];
    const int fan_level_i = int(std::lround(fan_level_d));
    if (fan_level_i < 0 || fan_level_i > 3 ||
        std::fabs(fan_level_d - fan_level_i) > 1e-9) {
      violate("actuation-range", r,
              format_row("fan level outside 0..3", fan_level_d));
    } else {
      const double fan_w =
          fan.electrical_power_w(thermal::FanSpeed(fan_level_i));
      const double expected = rail_sum + fan_w + fixed_w;
      if (std::fabs(row[col.p_platform] - expected) >
          options_.power_identity_tol_w) {
        violate("power-identity", r,
                format_row("platform power != rails + fan + fixed loads",
                           row[col.p_platform] - expected));
      }
    }

    // Frequencies must be operating points of their domain tables.
    if (!in_table(big_opps, row[col.f_big] * 1e6, options_.freq_tol_hz)) {
      violate("opp-table", r,
              format_row("big frequency not in the platform's big OPP table",
                         row[col.f_big]));
    }
    if (!in_table(little_opps, row[col.f_little] * 1e6,
                  options_.freq_tol_hz)) {
      violate("opp-table", r,
              format_row(
                  "little frequency not in the platform's little OPP table",
                  row[col.f_little]));
    }
    if (!in_table(gpu_opps, row[col.f_gpu] * 1e6, options_.freq_tol_hz)) {
      violate("opp-table", r,
              format_row("GPU frequency not in the platform's GPU OPP table",
                         row[col.f_gpu]));
    }

    // Actuation/observation ranges.
    const double cluster = row[col.cluster];
    if (cluster != 0.0 && cluster != 1.0) {
      violate("actuation-range", r,
              format_row("cluster flag not 0/1", cluster));
    }
    const double online = row[col.online];
    if (online < 1.0 || online > double(soc::kBigCoreCount) ||
        std::fabs(online - double(std::lround(online))) > 1e-9) {
      violate("actuation-range", r,
              format_row("online core count outside 1..4", online));
    }
    if (row[col.cpu_util] < 0.0 || row[col.cpu_util] > 1.0 + 1e-6) {
      violate("util-range", r,
              format_row("CPU utilization outside [0,1]", row[col.cpu_util]));
    }
    if (row[col.gpu_util] < 0.0 || row[col.gpu_util] > 1.0 + 1e-6) {
      violate("util-range", r,
              format_row("GPU utilization outside [0,1]", row[col.gpu_util]));
    }

    // Progress is a completed-work fraction: monotone within [0, 1].
    const double progress = row[col.progress];
    if (progress < 0.0 || progress > 1.0 + 1e-9) {
      violate("progress", r, format_row("progress outside [0,1]", progress));
    }
    if (progress < prev_progress - 1e-12) {
      violate("progress", r, format_row("progress moved backwards", progress));
    }
    prev_progress = progress;

    // DTPM budget contract: while the governor predicts a violation of the
    // temperature constraint, it may not hold the platform at the
    // unrestricted maximum beyond the configured grace (one interval of
    // reaction latency, plus one where the computed budget still admits the
    // current operating point).
    if (dtpm_policy) {
      const bool predicted_violation =
          row[col.pred_ahead] > dtpm_trigger_c + 1e-9;
      const bool unrestricted_max =
          cluster == 0.0 && online == double(soc::kBigCoreCount) &&
          std::fabs(row[col.f_big] * 1e6 - big_opps.max().frequency_hz) <=
              options_.freq_tol_hz &&
          std::fabs(row[col.f_gpu] * 1e6 - gpu_opps.max().frequency_hz) <=
              options_.freq_tol_hz;
      if (predicted_violation && unrestricted_max) {
        ++unrestricted_violation_streak;
        if (unrestricted_violation_streak > options_.dtpm_grace_intervals) {
          violate("dtpm-budget", r,
                  format_row(
                      "predicted violation without actuation beyond grace",
                      row[col.pred_ahead]));
        }
      } else {
        unrestricted_violation_streak = 0;
      }
    }
  }

  return found;
}

std::string InvariantChecker::describe(
    const std::vector<InvariantViolation>& found) {
  std::ostringstream os;
  for (const InvariantViolation& v : found) {
    os << v.invariant;
    if (v.row != InvariantViolation::kAggregate) os << " @row " << v.row;
    os << ": " << v.message << "\n";
  }
  return os.str();
}

}  // namespace dtpm::sim
