// Physics-invariant checking over recorded traces. Every simulator run,
// whatever the scenario, must satisfy the plant's conservation laws and the
// actuators' contracts: temperatures inside the sensor range and not below
// ambient, powers non-negative and consistent with the platform rail
// decomposition, frequencies always drawn from the active OPP tables, and
// the DTPM governor reacting to every predicted constraint violation within
// a bounded number of control intervals. Running the checker over a swept
// ScenarioCatalog turns the catalog into a property-based fuzzing rig: any
// scenario that drives the simulator into an unphysical state fails loudly
// with the row and invariant that broke.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/run_result.hpp"

namespace dtpm::sim {

/// One broken invariant, pinned to the trace row that exposed it.
struct InvariantViolation {
  /// Marker for violations of aggregate (whole-run) invariants.
  static constexpr std::size_t kAggregate = std::size_t(-1);

  std::string invariant;  ///< short id, e.g. "temp-range", "power-identity"
  std::size_t row = kAggregate;
  std::string message;
};

/// Tolerances. The defaults absorb sensor quantization/noise and floating
/// point accumulation, nothing more -- a genuinely unphysical trace fails.
struct InvariantCheckerOptions {
  /// Allowance below ambient for quantized, noisy temperature sensors.
  double temp_margin_c = 2.0;
  /// TMU-class sensors saturate around 125 C; nothing valid reads above it.
  double temp_ceiling_c = 125.0;
  /// Slack on non-negativity of substep-averaged powers.
  double power_epsilon_w = 1e-9;
  /// Tolerance of the platform = rails + fan + fixed-loads identity.
  double power_identity_tol_w = 1e-6;
  /// Matching tolerance between traced frequencies and OPP table entries.
  double freq_tol_hz = 1e3;
  /// Consecutive intervals the DTPM governor may leave the platform at the
  /// unrestricted maximum while predicting a constraint violation. One
  /// interval of reaction latency is inherent; the second absorbs the case
  /// where the computed budget still admits the current operating point.
  std::size_t dtpm_grace_intervals = 2;
};

/// Checks one run against the physics invariants.
class InvariantChecker {
 public:
  explicit InvariantChecker(const InvariantCheckerOptions& options = {});

  /// Returns every violation found (empty = run is physically consistent).
  /// `config` must be the config that produced `result`; runs without a
  /// recorded trace are checked on aggregates only.
  std::vector<InvariantViolation> check(const ExperimentConfig& config,
                                        const RunResult& result) const;

  const InvariantCheckerOptions& options() const { return options_; }

  /// Human-readable one-line-per-violation report (empty string when clean).
  static std::string describe(const std::vector<InvariantViolation>& found);

 private:
  InvariantCheckerOptions options_;
};

}  // namespace dtpm::sim
