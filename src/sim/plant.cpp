#include "sim/plant.hpp"

#include <algorithm>

namespace dtpm::sim {

Plant::Plant(const PlatformPreset& preset, util::Rng& root,
             const thermal::Floorplan* floorplan_template)
    : floorplan_(floorplan_template != nullptr
                     ? *floorplan_template
                     : thermal::make_default_floorplan(preset.floorplan)),
      fan_(preset.fan),
      soc_(preset.plant, preset.perf),
      temp_bank_(thermal::Floorplan::big_core_node_indices(),
                 preset.temp_sensor, root.fork()),
      power_bank_(preset.power_sensor, root.fork()),
      meter_(preset.platform_load, root.fork()) {
  // Warm-start at the low end; ondemand ramps up from here.
  soc::SocConfig initial;
  initial.active_cluster = soc::ClusterId::kBig;
  initial.big_freq_hz = soc_.big_opps().min().frequency_hz;
  initial.little_freq_hz = soc_.little_opps().min().frequency_hz;
  initial.gpu_freq_hz = soc_.gpu_opps().min().frequency_hz;
  soc_.apply(initial);
}

std::vector<double> Plant::read_temps() {
  return temp_bank_.read(floorplan_.network.temperatures_c());
}

void Plant::read_temps_into(std::vector<double>& readings_out) {
  temp_bank_.read_into(floorplan_.network.temperatures_c(), readings_out);
}

power::ResourceVector Plant::read_rails(
    const power::ResourceVector& true_avg_w) {
  return power_bank_.read(true_avg_w);
}

double Plant::read_platform_power(const power::ResourceVector& true_avg_w,
                                  double fan_power_w) {
  return meter_.read(true_avg_w, fan_power_w);
}

void Plant::set_fan(thermal::FanSpeed speed) {
  floorplan_.network.set_edge_conductance(floorplan_.fan_edge,
                                          fan_.conductance_w_per_k(speed));
}

double Plant::max_true_temp_c() const {
  const auto& temps = floorplan_.network.temperatures_c();
  return *std::max_element(temps.begin(), temps.end());
}

PlantIntervalResult Plant::advance(
    const workload::Demand& demand,
    const std::vector<workload::ThreadDemand>& background_threads,
    workload::WorkloadInstance* instance, int substeps, double sub_dt) {
  PlantIntervalResult result;
  power::ResourceVector rails_accum{};
  for (int s = 0; s < substeps; ++s) {
    const auto& temps = floorplan_.network.temperatures_c();
    const std::array<double, soc::kBigCoreCount> big_true{
        temps[thermal::node_index(thermal::FloorplanNode::kBig0)],
        temps[thermal::node_index(thermal::FloorplanNode::kBig1)],
        temps[thermal::node_index(thermal::FloorplanNode::kBig2)],
        temps[thermal::node_index(thermal::FloorplanNode::kBig3)]};
    // The workload schedule (placement, contention, activity) is a pure
    // function of the demand and the applied config, both held fixed across
    // this interval's substeps -- only the first substep recomputes it.
    result.last_substep = soc_.step(
        demand, background_threads, big_true,
        temps[thermal::node_index(thermal::FloorplanNode::kLittleCluster)],
        temps[thermal::node_index(thermal::FloorplanNode::kGpu)],
        temps[thermal::node_index(thermal::FloorplanNode::kMem)], sub_dt,
        /*reuse_schedule=*/s > 0);

    thermal::assemble_node_power_into(result.last_substep.big_core_power_w,
                                      result.last_substep.rail_power_w,
                                      node_power_scratch_);
    floorplan_.network.step(sub_dt, node_power_scratch_);

    for (std::size_t r = 0; r < power::kResourceCount; ++r) {
      rails_accum[r] += result.last_substep.rail_power_w[r] * sub_dt;
    }
    result.consumed_s += sub_dt;
    ++result.substeps_taken;
    if (instance != nullptr) {
      instance->advance(result.last_substep.progress_units);
      if (instance->done()) {
        result.benchmark_finished = true;
        break;
      }
    }
  }
  for (std::size_t r = 0; r < power::kResourceCount; ++r) {
    result.rails_avg_w[r] = rails_accum[r] / result.consumed_s;
  }
  return result;
}

}  // namespace dtpm::sim
