#include "sim/plant.hpp"

#include <algorithm>
#include <stdexcept>

namespace dtpm::sim {

Plant::Plant(const PlatformDescriptor& platform, util::Rng& root,
             const thermal::Floorplan* floorplan_template, Engine engine)
    : floorplan_(floorplan_template != nullptr
                     ? *floorplan_template
                     : thermal::build_floorplan(platform.floorplan)),
      fan_(platform.fan),
      soc_(platform.power, platform.perf, platform.big_opp_table(),
           platform.little_opp_table(), platform.gpu_opp_table()),
      temp_bank_(floorplan_.sensor_node_index, platform.temp_sensor,
                 root.fork()),
      power_bank_(platform.power_sensor, root.fork()),
      meter_(platform.platform_load, root.fork()),
      engine_(engine),
      propagator_(engine == Engine::kReferenceRk4
                      ? nullptr
                      : std::make_unique<thermal::PropagatorRcModel>()) {
  // advance() indexes core_node_index[0..kBigCoreCount-1] unconditionally;
  // a descriptor that bypassed validate() (built by hand and stuffed
  // straight into ExperimentConfig::platform) must fail here -- whichever
  // path built the floorplan -- not read out of bounds.
  if (floorplan_.core_node_index.size() != std::size_t(soc::kBigCoreCount)) {
    throw std::invalid_argument(
        "Plant: platform '" + platform.name + "' must declare exactly " +
        std::to_string(soc::kBigCoreCount) + " core nodes");
  }
  // Warm-start at the low end; ondemand ramps up from here.
  soc::SocConfig initial;
  initial.active_cluster = soc::ClusterId::kBig;
  initial.big_freq_hz = soc_.big_opps().min().frequency_hz;
  initial.little_freq_hz = soc_.little_opps().min().frequency_hz;
  initial.gpu_freq_hz = soc_.gpu_opps().min().frequency_hz;
  soc_.apply(initial);
}

std::vector<double> Plant::read_temps() {
  return temp_bank_.read(floorplan_.network.temperatures_c());
}

void Plant::read_temps_into(std::vector<double>& readings_out) {
  if (staged_noise_ != nullptr) {
    temp_bank_.read_with_noise_into(floorplan_.network.temperatures_c(),
                                    staged_noise_, readings_out);
    return;
  }
  temp_bank_.read_into(floorplan_.network.temperatures_c(), readings_out);
}

power::ResourceVector Plant::read_rails(
    const power::ResourceVector& true_avg_w) {
  if (staged_noise_ != nullptr) {
    return power_bank_.read_with_noise(true_avg_w,
                                       staged_noise_ + temp_bank_.noise_count());
  }
  return power_bank_.read(true_avg_w);
}

double Plant::read_platform_power(const power::ResourceVector& true_avg_w,
                                  double fan_power_w) {
  if (staged_noise_ != nullptr) {
    const double* slice =
        staged_noise_ + temp_bank_.noise_count() + power_bank_.noise_count();
    const double reading = meter_.read_with_noise(true_avg_w, fan_power_w, slice);
    staged_noise_ = nullptr;  // the meter is the interval's last sensor read
    return reading;
  }
  return meter_.read(true_avg_w, fan_power_w);
}

void Plant::draw_sensor_noise_into(double* noise_out) {
  temp_bank_.draw_noise_into(noise_out);
  power_bank_.draw_noise_into(noise_out + temp_bank_.noise_count());
  meter_.draw_noise_into(noise_out + temp_bank_.noise_count() +
                         power_bank_.noise_count());
}

void Plant::set_fan(thermal::FanSpeed speed) {
  if (!floorplan_.has_fan_edge()) return;  // fanless platform: a no-op
  floorplan_.network.set_edge_conductance(floorplan_.fan_edge,
                                          fan_.conductance_w_per_k(speed));
}

double Plant::max_true_temp_c() const {
  const auto& temps = floorplan_.network.temperatures_c();
  return *std::max_element(temps.begin(), temps.end());
}

void Plant::interval_begin() {
  pending_ = PlantIntervalResult{};
  rails_accum_ = power::ResourceVector{};
}

const std::vector<double>& Plant::substep_prepare(
    const workload::Demand& demand,
    const std::vector<workload::ThreadDemand>& background_threads,
    double sub_dt, bool reuse_schedule) {
  const auto& cores = floorplan_.core_node_index;
  const auto& temps = floorplan_.network.temperatures_c();
  const std::array<double, soc::kBigCoreCount> big_true{
      temps[cores[0]], temps[cores[1]], temps[cores[2]], temps[cores[3]]};
  // The workload schedule (placement, contention, activity) is a pure
  // function of the demand and the applied config, both held fixed across
  // this interval's substeps -- only the first substep recomputes it.
  pending_.last_substep = soc_.step(
      demand, background_threads, big_true,
      temps[floorplan_.little_node_index], temps[floorplan_.gpu_node_index],
      temps[floorplan_.mem_node_index], sub_dt, reuse_schedule);

  floorplan_.assemble_node_power_into(pending_.last_substep.big_core_power_w,
                                      pending_.last_substep.rail_power_w,
                                      node_power_scratch_);
  return node_power_scratch_;
}

void Plant::thermal_substep(double sub_dt) {
  if (propagator_ != nullptr) {
    propagator_->step(floorplan_.network, sub_dt, node_power_scratch_);
  } else {
    floorplan_.network.step(sub_dt, node_power_scratch_);
  }
}

bool Plant::substep_commit(workload::WorkloadInstance* instance,
                           double sub_dt) {
  for (std::size_t r = 0; r < power::kResourceCount; ++r) {
    rails_accum_[r] += pending_.last_substep.rail_power_w[r] * sub_dt;
  }
  pending_.consumed_s += sub_dt;
  ++pending_.substeps_taken;
  if (instance != nullptr) {
    instance->advance(pending_.last_substep.progress_units);
    if (instance->done()) {
      pending_.benchmark_finished = true;
      return false;
    }
  }
  return true;
}

PlantIntervalResult Plant::interval_end() {
  for (std::size_t r = 0; r < power::kResourceCount; ++r) {
    pending_.rails_avg_w[r] = rails_accum_[r] / pending_.consumed_s;
  }
  return pending_;
}

PlantIntervalResult Plant::advance(
    const workload::Demand& demand,
    const std::vector<workload::ThreadDemand>& background_threads,
    workload::WorkloadInstance* instance, int substeps, double sub_dt,
    util::PhaseCycles* phases) {
  interval_begin();
  std::uint64_t mark = phases != nullptr ? util::cycle_now() : 0;
  for (int s = 0; s < substeps; ++s) {
    substep_prepare(demand, background_threads, sub_dt,
                    /*reuse_schedule=*/s > 0);
    if (phases != nullptr && s == 0) {
      // The schedule solve happens once, inside the first prepare.
      const std::uint64_t now = util::cycle_now();
      phases->add(util::Phase::kSchedule, now - mark);
      mark = now;
    }
    thermal_substep(sub_dt);
    if (!substep_commit(instance, sub_dt)) break;
  }
  PlantIntervalResult result = interval_end();
  if (phases != nullptr) {
    phases->add(util::Phase::kPlant, util::cycle_now() - mark);
  }
  return result;
}

}  // namespace dtpm::sim
