#include "sim/plant.hpp"

#include <algorithm>
#include <stdexcept>

namespace dtpm::sim {

Plant::Plant(const PlatformDescriptor& platform, util::Rng& root,
             const thermal::Floorplan* floorplan_template)
    : floorplan_(floorplan_template != nullptr
                     ? *floorplan_template
                     : thermal::build_floorplan(platform.floorplan)),
      fan_(platform.fan),
      soc_(platform.power, platform.perf, platform.big_opp_table(),
           platform.little_opp_table(), platform.gpu_opp_table()),
      temp_bank_(floorplan_.sensor_node_index, platform.temp_sensor,
                 root.fork()),
      power_bank_(platform.power_sensor, root.fork()),
      meter_(platform.platform_load, root.fork()) {
  // advance() indexes core_node_index[0..kBigCoreCount-1] unconditionally;
  // a descriptor that bypassed validate() (built by hand and stuffed
  // straight into ExperimentConfig::platform) must fail here -- whichever
  // path built the floorplan -- not read out of bounds.
  if (floorplan_.core_node_index.size() != std::size_t(soc::kBigCoreCount)) {
    throw std::invalid_argument(
        "Plant: platform '" + platform.name + "' must declare exactly " +
        std::to_string(soc::kBigCoreCount) + " core nodes");
  }
  // Warm-start at the low end; ondemand ramps up from here.
  soc::SocConfig initial;
  initial.active_cluster = soc::ClusterId::kBig;
  initial.big_freq_hz = soc_.big_opps().min().frequency_hz;
  initial.little_freq_hz = soc_.little_opps().min().frequency_hz;
  initial.gpu_freq_hz = soc_.gpu_opps().min().frequency_hz;
  soc_.apply(initial);
}

std::vector<double> Plant::read_temps() {
  return temp_bank_.read(floorplan_.network.temperatures_c());
}

void Plant::read_temps_into(std::vector<double>& readings_out) {
  temp_bank_.read_into(floorplan_.network.temperatures_c(), readings_out);
}

power::ResourceVector Plant::read_rails(
    const power::ResourceVector& true_avg_w) {
  return power_bank_.read(true_avg_w);
}

double Plant::read_platform_power(const power::ResourceVector& true_avg_w,
                                  double fan_power_w) {
  return meter_.read(true_avg_w, fan_power_w);
}

void Plant::set_fan(thermal::FanSpeed speed) {
  if (!floorplan_.has_fan_edge()) return;  // fanless platform: a no-op
  floorplan_.network.set_edge_conductance(floorplan_.fan_edge,
                                          fan_.conductance_w_per_k(speed));
}

double Plant::max_true_temp_c() const {
  const auto& temps = floorplan_.network.temperatures_c();
  return *std::max_element(temps.begin(), temps.end());
}

PlantIntervalResult Plant::advance(
    const workload::Demand& demand,
    const std::vector<workload::ThreadDemand>& background_threads,
    workload::WorkloadInstance* instance, int substeps, double sub_dt) {
  PlantIntervalResult result;
  power::ResourceVector rails_accum{};
  const auto& cores = floorplan_.core_node_index;
  for (int s = 0; s < substeps; ++s) {
    const auto& temps = floorplan_.network.temperatures_c();
    const std::array<double, soc::kBigCoreCount> big_true{
        temps[cores[0]], temps[cores[1]], temps[cores[2]], temps[cores[3]]};
    // The workload schedule (placement, contention, activity) is a pure
    // function of the demand and the applied config, both held fixed across
    // this interval's substeps -- only the first substep recomputes it.
    result.last_substep =
        soc_.step(demand, background_threads, big_true,
                  temps[floorplan_.little_node_index],
                  temps[floorplan_.gpu_node_index],
                  temps[floorplan_.mem_node_index], sub_dt,
                  /*reuse_schedule=*/s > 0);

    floorplan_.assemble_node_power_into(result.last_substep.big_core_power_w,
                                        result.last_substep.rail_power_w,
                                        node_power_scratch_);
    floorplan_.network.step(sub_dt, node_power_scratch_);

    for (std::size_t r = 0; r < power::kResourceCount; ++r) {
      rails_accum[r] += result.last_substep.rail_power_w[r] * sub_dt;
    }
    result.consumed_s += sub_dt;
    ++result.substeps_taken;
    if (instance != nullptr) {
      instance->advance(result.last_substep.progress_units);
      if (instance->done()) {
        result.benchmark_finished = true;
        break;
      }
    }
  }
  for (std::size_t r = 0; r < power::kResourceCount; ++r) {
    result.rails_avg_w[r] = rails_accum[r] / result.consumed_s;
  }
  return result;
}

}  // namespace dtpm::sim
