#include "sim/plant.hpp"

#include <algorithm>

namespace dtpm::sim {

Plant::Plant(const PlatformPreset& preset, util::Rng& root)
    : floorplan_(thermal::make_default_floorplan(preset.floorplan)),
      fan_(preset.fan),
      soc_(preset.plant, preset.perf),
      temp_bank_([] {
        const auto nodes = thermal::Floorplan::big_core_nodes();
        return std::vector<std::size_t>{nodes.begin(), nodes.end()};
      }(), preset.temp_sensor, root.fork()),
      power_bank_(preset.power_sensor, root.fork()),
      meter_(preset.platform_load, root.fork()) {
  // Warm-start at the low end; ondemand ramps up from here.
  soc::SocConfig initial;
  initial.active_cluster = soc::ClusterId::kBig;
  initial.big_freq_hz = soc_.big_opps().min().frequency_hz;
  initial.little_freq_hz = soc_.little_opps().min().frequency_hz;
  initial.gpu_freq_hz = soc_.gpu_opps().min().frequency_hz;
  soc_.apply(initial);
}

std::vector<double> Plant::read_temps() {
  return temp_bank_.read(floorplan_.network.temperatures_c());
}

power::ResourceVector Plant::read_rails(
    const power::ResourceVector& true_avg_w) {
  return power_bank_.read(true_avg_w);
}

double Plant::read_platform_power(const power::ResourceVector& true_avg_w,
                                  double fan_power_w) {
  return meter_.read(true_avg_w, fan_power_w);
}

void Plant::set_fan(thermal::FanSpeed speed) {
  floorplan_.network.set_edge_conductance(floorplan_.fan_edge,
                                          fan_.conductance_w_per_k(speed));
}

double Plant::max_true_temp_c() const {
  const auto& temps = floorplan_.network.temperatures_c();
  return *std::max_element(temps.begin(), temps.end());
}

PlantIntervalResult Plant::advance(
    const workload::Demand& demand,
    const std::vector<workload::ThreadDemand>& background_threads,
    workload::WorkloadInstance* instance, int substeps, double sub_dt) {
  PlantIntervalResult result;
  power::ResourceVector rails_accum{};
  for (int s = 0; s < substeps; ++s) {
    const auto& temps = floorplan_.network.temperatures_c();
    const std::array<double, soc::kBigCoreCount> big_true{
        temps[thermal::node_index(thermal::FloorplanNode::kBig0)],
        temps[thermal::node_index(thermal::FloorplanNode::kBig1)],
        temps[thermal::node_index(thermal::FloorplanNode::kBig2)],
        temps[thermal::node_index(thermal::FloorplanNode::kBig3)]};
    result.last_substep = soc_.step(
        demand, background_threads, big_true,
        temps[thermal::node_index(thermal::FloorplanNode::kLittleCluster)],
        temps[thermal::node_index(thermal::FloorplanNode::kGpu)],
        temps[thermal::node_index(thermal::FloorplanNode::kMem)], sub_dt);

    floorplan_.network.step(
        sub_dt, thermal::assemble_node_power(result.last_substep.big_core_power_w,
                                             result.last_substep.rail_power_w));

    for (std::size_t r = 0; r < power::kResourceCount; ++r) {
      rails_accum[r] += result.last_substep.rail_power_w[r] * sub_dt;
    }
    result.consumed_s += sub_dt;
    if (instance != nullptr) {
      instance->advance(result.last_substep.progress_units);
      if (instance->done()) {
        result.benchmark_finished = true;
        break;
      }
    }
  }
  for (std::size_t r = 0; r < power::kResourceCount; ++r) {
    result.rails_avg_w[r] = rails_accum[r] / result.consumed_s;
  }
  return result;
}

}  // namespace dtpm::sim
