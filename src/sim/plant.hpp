// The simulated board as one bundle: floorplan + RC thermal network, SoC
// behavioural model, fan, and the sensor models through which the control
// stack observes it. Owns the hardware side of Fig. 3.1; the Simulation
// class drives it one control interval at a time.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "power/sensors.hpp"
#include "sim/platform.hpp"
#include "sim/stepping_engine.hpp"
#include "soc/soc.hpp"
#include "thermal/fan.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/lti_propagator.hpp"
#include "thermal/sensor.hpp"
#include "util/phase.hpp"
#include "util/rng.hpp"
#include "workload/runtime.hpp"

namespace dtpm::sim {

/// True plant outputs aggregated over one control interval.
struct PlantIntervalResult {
  power::ResourceVector rails_avg_w{};  ///< substep-time-averaged rail powers
  soc::SocStepResult last_substep;      ///< outputs of the last substep taken
  double consumed_s = 0.0;              ///< simulated time actually advanced
  int substeps_taken = 0;               ///< plant substeps actually executed
  bool benchmark_finished = false;      ///< the foreground workload completed
};

/// Physical platform bundle: thermal plant, SoC, fan, and sensors -- all
/// built from a data-driven PlatformDescriptor (floorplan topology, role
/// indices, OPP tables, power physics, sensor models).
///
/// Forks three RNG streams from `root` in a fixed order (temperature bank,
/// power bank, external meter) so experiments replay bit-identically.
///
/// When `floorplan_template` is non-null it is copied instead of rebuilding
/// (validating + compiling) the network from the descriptor -- the RunPlan
/// hoist for batches that share one platform across many runs. The template
/// must have been built from `platform.floorplan`.
class Plant {
 public:
  /// `engine` selects the thermal integrator advance() runs
  /// (sim/stepping_engine.hpp): reference-rk4 is the bit-exact RK4 loop,
  /// propagator swaps in the cached LTI step map, and batched behaves as
  /// propagator here (the structure-of-arrays lanes live in the batch
  /// driver, which steps the network out-of-band through the phase API
  /// below).
  Plant(const PlatformDescriptor& platform, util::Rng& root,
        const thermal::Floorplan* floorplan_template = nullptr,
        Engine engine = Engine::kReferenceRk4);

  /// Sensor sampling (start of a control interval).
  std::vector<double> read_temps();
  /// Allocation-free variant: clears and refills `readings_out`.
  void read_temps_into(std::vector<double>& readings_out);
  power::ResourceVector read_rails(const power::ResourceVector& true_avg_w);
  double read_platform_power(const power::ResourceVector& true_avg_w,
                             double fan_power_w);

  /// Batched sensor noise. Each control interval samples every sensor bank
  /// exactly once (temperatures at the start, rails + platform meter at the
  /// end), and the banks own independent forked RNG streams, so all of an
  /// interval's noise can be drawn in one pass up front without changing
  /// any stream. draw_sensor_noise_into() fills sensor_noise_count() values
  /// (temp bank, then power bank, then meter -- each consuming its own RNG
  /// exactly as the scalar reads would); stage_sensor_noise() hands the
  /// block back, after which the three reads above consume their slices
  /// instead of drawing, bit-identical to the unstaged path. The staging is
  /// cleared when the meter slice is consumed (the interval's last read).
  std::size_t sensor_noise_count() const {
    return temp_bank_.noise_count() + power_bank_.noise_count() +
           meter_.noise_count();
  }
  void draw_sensor_noise_into(double* noise_out);
  void stage_sensor_noise(const double* noise) { staged_noise_ = noise; }

  /// Actuation.
  void apply(const soc::SocConfig& config) { soc_.apply(config); }
  void set_fan(thermal::FanSpeed speed);
  double fan_power_w(thermal::FanSpeed speed) const {
    return fan_.electrical_power_w(speed);
  }

  /// Advances the plant by `substeps` substeps of `sub_dt` seconds each,
  /// re-evaluating leakage-temperature feedback per substep. When `instance`
  /// is non-null the foreground progress advances it, and the interval ends
  /// early if it completes.
  /// When `phases` is non-null, the first substep's SoC schedule solve is
  /// billed to Phase::kSchedule and the rest of the interval to
  /// Phase::kPlant.
  PlantIntervalResult advance(
      const workload::Demand& demand,
      const std::vector<workload::ThreadDemand>& background_threads,
      workload::WorkloadInstance* instance, int substeps, double sub_dt,
      util::PhaseCycles* phases = nullptr);

  /// Phase-decomposed interval API -- advance() is exactly this sequence:
  ///
  ///   interval_begin();
  ///   for each substep:
  ///     substep_prepare(...);   // SoC step + node-power assembly
  ///     thermal_substep(sub_dt);  // or an external engine steps network()
  ///     if (!substep_commit(...)) break;  // benchmark finished early
  ///   result = interval_end();
  ///
  /// The batch lane driver replaces thermal_substep() with a
  /// structure-of-arrays step across many plants; everything else runs
  /// through the same code path, so the scalar and batched engines share
  /// the SoC/power/bookkeeping arithmetic operation for operation.
  void interval_begin();
  /// Reads the true node temperatures, steps the SoC model, and assembles
  /// the per-node power injection; returns the assembled vector (valid
  /// until the next prepare). `reuse_schedule` must be false on the first
  /// substep of an interval and true after.
  const std::vector<double>& substep_prepare(
      const workload::Demand& demand,
      const std::vector<workload::ThreadDemand>& background_threads,
      double sub_dt, bool reuse_schedule);
  /// Advances the thermal network by sub_dt with the engine this plant was
  /// built with, using the power assembled by the last substep_prepare().
  void thermal_substep(double sub_dt);
  /// Accumulates rails/time/progress for the substep; returns false when
  /// the foreground workload completed (the interval ends early).
  bool substep_commit(workload::WorkloadInstance* instance, double sub_dt);
  /// Finalizes and returns the interval result (time-averaged rails).
  PlantIntervalResult interval_end();

  Engine engine() const { return engine_; }
  /// Mutable view of the pending interval's per-substep record. The batch
  /// lane kernel writes the temperature-dependent fields (rail powers, core
  /// powers, progress) it evaluated in structure-of-arrays form, then runs
  /// the ordinary substep_commit() so all bookkeeping stays shared with the
  /// scalar path. Valid between interval_begin() and interval_end().
  soc::SocStepResult& pending_substep() { return pending_.last_substep; }
  /// The thermal network (external stepping engines advance it in place).
  thermal::RcNetwork& network() { return floorplan_.network; }
  const thermal::Floorplan& floorplan() const { return floorplan_; }
  /// The propagator backing this plant's thermal step; null when the
  /// engine is reference-rk4.
  thermal::PropagatorRcModel* propagator() { return propagator_.get(); }

  const soc::Soc& soc() const { return soc_; }
  soc::Soc& soc() { return soc_; }
  /// Current true node temperatures (not sensor readings).
  const std::vector<double>& true_temps_c() const {
    return floorplan_.network.temperatures_c();
  }
  double max_true_temp_c() const;

 private:
  thermal::Floorplan floorplan_;
  thermal::Fan fan_;
  soc::Soc soc_;
  thermal::TempSensorBank temp_bank_;
  power::PowerSensorBank power_bank_;
  power::ExternalPowerMeter meter_;
  Engine engine_;
  /// Backs thermal_substep() for the propagator/batched engines; null for
  /// reference-rk4.
  std::unique_ptr<thermal::PropagatorRcModel> propagator_;
  /// Reused node-power injection buffer (advance() allocates nothing).
  std::vector<double> node_power_scratch_;
  /// Interval accumulation state between interval_begin()/interval_end().
  PlantIntervalResult pending_;
  power::ResourceVector rails_accum_{};
  /// Pre-drawn sensor noise for the current interval (null = draw inline).
  const double* staged_noise_ = nullptr;
};

}  // namespace dtpm::sim
