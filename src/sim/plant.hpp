// The simulated board as one bundle: floorplan + RC thermal network, SoC
// behavioural model, fan, and the sensor models through which the control
// stack observes it. Owns the hardware side of Fig. 3.1; the Simulation
// class drives it one control interval at a time.
#pragma once

#include <array>
#include <vector>

#include "power/sensors.hpp"
#include "sim/platform.hpp"
#include "soc/soc.hpp"
#include "thermal/fan.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/sensor.hpp"
#include "util/rng.hpp"
#include "workload/runtime.hpp"

namespace dtpm::sim {

/// True plant outputs aggregated over one control interval.
struct PlantIntervalResult {
  power::ResourceVector rails_avg_w{};  ///< substep-time-averaged rail powers
  soc::SocStepResult last_substep;      ///< outputs of the last substep taken
  double consumed_s = 0.0;              ///< simulated time actually advanced
  int substeps_taken = 0;               ///< plant substeps actually executed
  bool benchmark_finished = false;      ///< the foreground workload completed
};

/// Physical platform bundle: thermal plant, SoC, fan, and sensors -- all
/// built from a data-driven PlatformDescriptor (floorplan topology, role
/// indices, OPP tables, power physics, sensor models).
///
/// Forks three RNG streams from `root` in a fixed order (temperature bank,
/// power bank, external meter) so experiments replay bit-identically.
///
/// When `floorplan_template` is non-null it is copied instead of rebuilding
/// (validating + compiling) the network from the descriptor -- the RunPlan
/// hoist for batches that share one platform across many runs. The template
/// must have been built from `platform.floorplan`.
class Plant {
 public:
  Plant(const PlatformDescriptor& platform, util::Rng& root,
        const thermal::Floorplan* floorplan_template = nullptr);

  /// Sensor sampling (start of a control interval).
  std::vector<double> read_temps();
  /// Allocation-free variant: clears and refills `readings_out`.
  void read_temps_into(std::vector<double>& readings_out);
  power::ResourceVector read_rails(const power::ResourceVector& true_avg_w);
  double read_platform_power(const power::ResourceVector& true_avg_w,
                             double fan_power_w);

  /// Actuation.
  void apply(const soc::SocConfig& config) { soc_.apply(config); }
  void set_fan(thermal::FanSpeed speed);
  double fan_power_w(thermal::FanSpeed speed) const {
    return fan_.electrical_power_w(speed);
  }

  /// Advances the plant by `substeps` substeps of `sub_dt` seconds each,
  /// re-evaluating leakage-temperature feedback per substep. When `instance`
  /// is non-null the foreground progress advances it, and the interval ends
  /// early if it completes.
  PlantIntervalResult advance(
      const workload::Demand& demand,
      const std::vector<workload::ThreadDemand>& background_threads,
      workload::WorkloadInstance* instance, int substeps, double sub_dt);

  const soc::Soc& soc() const { return soc_; }
  soc::Soc& soc() { return soc_; }
  /// Current true node temperatures (not sensor readings).
  const std::vector<double>& true_temps_c() const {
    return floorplan_.network.temperatures_c();
  }
  double max_true_temp_c() const;

 private:
  thermal::Floorplan floorplan_;
  thermal::Fan fan_;
  soc::Soc soc_;
  thermal::TempSensorBank temp_bank_;
  power::PowerSensorBank power_bank_;
  power::ExternalPowerMeter meter_;
  /// Reused node-power injection buffer (advance() allocates nothing).
  std::vector<double> node_power_scratch_;
};

}  // namespace dtpm::sim
