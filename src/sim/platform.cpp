#include "sim/platform.hpp"

#include <stdexcept>

namespace dtpm::sim {

PlatformDescriptor::PlatformDescriptor()
    : big_opps(power::big_cluster_opp_table().points()),
      little_opps(power::little_cluster_opp_table().points()),
      gpu_opps(power::gpu_opp_table().points()) {}

void PlatformDescriptor::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("platform: empty name");
  }
  if (big_cores != soc::kBigCoreCount ||
      little_cores != soc::kLittleCoreCount) {
    throw std::invalid_argument(
        "platform '" + name + "': the SoC model is fixed at " +
        std::to_string(soc::kBigCoreCount) + "+" +
        std::to_string(soc::kLittleCoreCount) + " cores, got " +
        std::to_string(big_cores) + "+" + std::to_string(little_cores));
  }
  thermal::validate_floorplan_spec(floorplan);
  if (floorplan.core_nodes.size() != std::size_t(big_cores)) {
    throw std::invalid_argument(
        "platform '" + name + "': floorplan declares " +
        std::to_string(floorplan.core_nodes.size()) +
        " core nodes for " + std::to_string(big_cores) + " big cores");
  }
  if (floorplan.sensor_nodes.size() != std::size_t(soc::kBigCoreCount)) {
    // The identified 4-state thermal model and PlatformView::big_temps_c
    // both assume one sensor per big core.
    throw std::invalid_argument(
        "platform '" + name + "': expected " +
        std::to_string(soc::kBigCoreCount) + " sensor nodes, got " +
        std::to_string(floorplan.sensor_nodes.size()));
  }
  if (default_t_max_c <= floorplan.ambient_temp_c()) {
    throw std::invalid_argument(
        "platform '" + name +
        "': default_t_max_c must be above the ambient temperature");
  }
  if (runaway_abort_temp_c < 0.0) {
    throw std::invalid_argument(
        "platform '" + name +
        "': runaway_abort_temp_c must be >= 0 (0 derives t_max + margin)");
  }
  if (runaway_abort_temp_c > 0.0 && runaway_abort_temp_c <= default_t_max_c) {
    throw std::invalid_argument(
        "platform '" + name +
        "': runaway_abort_temp_c must sit above default_t_max_c");
  }
  // OppTable's constructor validates ordering/positivity; constructing the
  // three tables is the check.
  big_opp_table();
  little_opp_table();
  gpu_opp_table();
}

power::OppTable PlatformDescriptor::big_opp_table() const {
  try {
    return power::OppTable(big_opps);
  } catch (const std::exception& e) {
    throw std::invalid_argument("platform '" + name +
                                "': big_opps: " + e.what());
  }
}

power::OppTable PlatformDescriptor::little_opp_table() const {
  try {
    return power::OppTable(little_opps);
  } catch (const std::exception& e) {
    throw std::invalid_argument("platform '" + name +
                                "': little_opps: " + e.what());
  }
}

power::OppTable PlatformDescriptor::gpu_opp_table() const {
  try {
    return power::OppTable(gpu_opps);
  } catch (const std::exception& e) {
    throw std::invalid_argument("platform '" + name +
                                "': gpu_opps: " + e.what());
  }
}

bool operator==(const PlatformDescriptor& a, const PlatformDescriptor& b) {
  return a.name == b.name && a.description == b.description &&
         a.floorplan == b.floorplan && a.big_cores == b.big_cores &&
         a.little_cores == b.little_cores && a.big_opps == b.big_opps &&
         a.little_opps == b.little_opps && a.gpu_opps == b.gpu_opps &&
         a.power == b.power && a.perf == b.perf && a.fan == b.fan &&
         a.temp_sensor == b.temp_sensor && a.power_sensor == b.power_sensor &&
         a.platform_load == b.platform_load &&
         a.default_t_max_c == b.default_t_max_c &&
         a.runaway_abort_temp_c == b.runaway_abort_temp_c;
}

}  // namespace dtpm::sim
