// The data-driven platform layer: a PlatformDescriptor fully describes a
// simulated plant -- floorplan topology with role mapping, cluster/core
// layout, OPP tables, leakage and dynamic-power coefficients, sensor
// placement/quantization, fan model, and fixed platform loads -- as plain
// serializable data. It replaces the compile-time PlatformPreset
// struct-of-structs as the source of truth for what hardware an experiment
// runs on: Plant, Simulation, calibration, the InvariantChecker, and the
// governors all consume descriptors, while PlatformPreset survives as a thin
// shim built *from* a descriptor (sim/preset.hpp).
//
// Descriptors are selected by name through the PlatformRegistry
// (sim/platform_registry.hpp) or defined inline in JSON config files
// (sim/config_io.hpp), so the plant is an experiment axis exactly like
// policies and scenarios.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "power/opp.hpp"
#include "power/sensors.hpp"
#include "soc/soc.hpp"
#include "thermal/fan.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/sensor.hpp"

namespace dtpm::sim {

/// A complete platform as data. Default-constructed, it describes the
/// Odroid-XU+E/Exynos-5410 plant the reproduction has always simulated.
struct PlatformDescriptor {
  /// Registry key and `dtpm list platforms` name.
  std::string name = "odroid-xu-e";
  /// One-line human description (listed by `dtpm list platforms --long`).
  std::string description =
      "Odroid-XU+E: Exynos 5410, 4xA15 + 4xA7, active fan (the paper's board)";

  /// Thermal topology plus the role mapping (core hotspots, cluster sinks,
  /// sensor sites, fan-modulated edge).
  thermal::FloorplanSpec floorplan = thermal::default_floorplan_spec();

  /// Cluster/core layout. The behavioural SoC model is currently fixed at
  /// four big + four little cores (soc::kBigCoreCount/kLittleCoreCount);
  /// validate() rejects descriptors that declare anything else, so a future
  /// variable-width SoC model can relax this in exactly one place.
  int big_cores = soc::kBigCoreCount;
  int little_cores = soc::kLittleCoreCount;

  /// DVFS domains as data (ascending frequency; validated via OppTable).
  std::vector<power::Opp> big_opps;
  std::vector<power::Opp> little_opps;
  std::vector<power::Opp> gpu_opps;

  /// Ground-truth power physics and performance model of the plant.
  soc::PlantPowerParams power{};
  soc::PerfParams perf{};

  /// Cooling. When the floorplan has no fan-modulated edge the fan params
  /// should be thermal::passive_cooling(...) so actuation stays a no-op.
  thermal::FanParams fan{};

  /// Sensor error characteristics.
  thermal::TempSensorParams temp_sensor{};
  power::PowerSensorParams power_sensor{};
  power::PlatformLoadParams platform_load{};

  /// The platform's recommended thermal constraint (skin/junction headroom):
  /// selecting the platform adopts it as DtpmParams::t_max_c unless the
  /// experiment overrides it explicitly. 63 C on the Odroid matches the fan
  /// policy's 50% threshold (§6.3.2).
  double default_t_max_c = 63.0;

  /// Hard simulation-abort ceiling: a run whose hottest true node exceeds
  /// this is declared thermal runaway and stopped (Simulation surfaces it in
  /// RunResult::runaway). 0 derives the platform-relative default
  /// `default_t_max_c + kRunawayAbortMarginC`, which fanless presets use so
  /// a skin-limited phone aborts near its own envelope instead of cooking
  /// ~60 C past it. The Odroid pins the legacy 115 C explicitly: its
  /// junction legitimately sustains ~106 C fan-off equilibria (the no-fan
  /// curves of Fig. 1.1), so the ceiling must sit above them.
  double runaway_abort_temp_c = 115.0;

  /// Margin over default_t_max_c of the derived (runaway_abort_temp_c == 0)
  /// abort ceiling.
  static constexpr double kRunawayAbortMarginC = 30.0;

  /// The abort ceiling a Simulation on this platform actually uses.
  double resolved_runaway_abort_temp_c() const {
    return runaway_abort_temp_c > 0.0 ? runaway_abort_temp_c
                                      : default_t_max_c + kRunawayAbortMarginC;
  }

  PlatformDescriptor();

  bool has_fan() const { return floorplan.has_fan_edge(); }

  /// Structural validation (beyond what build_floorplan/OppTable check):
  /// empty name, core/sensor counts inconsistent with the SoC model, empty
  /// or unsorted OPP tables. Throws std::invalid_argument.
  void validate() const;

  /// OppTable views of the three DVFS domains (validating constructors).
  power::OppTable big_opp_table() const;
  power::OppTable little_opp_table() const;
  power::OppTable gpu_opp_table() const;
};

/// Memberwise equality; what the JSON round-trip identity test and the
/// RunPlan template-sharing logic compare.
bool operator==(const PlatformDescriptor& a, const PlatformDescriptor& b);
inline bool operator!=(const PlatformDescriptor& a,
                       const PlatformDescriptor& b) {
  return !(a == b);
}

using PlatformPtr = std::shared_ptr<const PlatformDescriptor>;

}  // namespace dtpm::sim
