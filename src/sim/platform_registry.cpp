#include "sim/platform_registry.hpp"

#include <stdexcept>
#include <utility>

#include "analysis/analyzer.hpp"
#include "util/names.hpp"

namespace dtpm::sim {

namespace {

/// Frequency/voltage helper for OPP-table literals (frequencies in MHz).
power::Opp opp(double mhz, double volt) { return {mhz * 1e6, volt}; }

}  // namespace

PlatformDescriptor odroid_xu_e_platform() {
  // The default-constructed descriptor IS the Odroid: every member's default
  // reproduces the legacy PlatformPreset{} plant exactly (pinned by
  // tests/test_platform.cpp against the enum-era default_preset() path).
  return PlatformDescriptor{};
}

PlatformDescriptor dragon_platform() {
  PlatformDescriptor d;
  d.name = "dragon";
  d.description =
      "Tegra-X1-like tablet: 4xA57 + 4xA53 on a shared die plate, big "
      "Maxwell-class GPU, fanless SKU (passive chassis)";

  // --- Floorplan: four A57 hotspots and the A53/GPU/mem blocks all bolted
  // onto one shared die plate (the X1's heat spreader), which dumps into a
  // large passive aluminium chassis. No fan-modulated edge anywhere.
  thermal::FloorplanSpec& fp = d.floorplan;
  fp = thermal::FloorplanSpec{};
  auto node = [&fp](const char* name, double cap, double t0,
                    bool boundary = false) {
    fp.nodes.push_back({name, cap, t0, boundary});
  };
  // A tablet idles cooler than the dev board: bigger chassis, no always-on
  // heavy background load.
  node("a57_0", 0.10, 38.0);
  node("a57_1", 0.10, 38.0);
  node("a57_2", 0.10, 38.0);
  node("a57_3", 0.10, 38.0);
  node("a53", 0.12, 38.0);
  node("gpu", 0.45, 38.0);
  node("mem", 0.30, 38.0);
  node("plate", 1.8, 36.0);
  node("chassis", 40.0, 32.0);
  node("ambient", 1.0, 25.0, /*boundary=*/true);

  auto link = [&fp](const char* a, const char* b, double g) {
    fp.edges.push_back({a, b, g, false});
  };
  // A57 2x2 grid.
  link("a57_0", "a57_1", 0.9);
  link("a57_2", "a57_3", 0.9);
  link("a57_0", "a57_2", 0.9);
  link("a57_1", "a57_3", 0.9);
  link("a57_0", "a57_3", 0.45);
  link("a57_1", "a57_2", 0.45);
  // Everything couples into the shared die plate -- the structural
  // difference from the Odroid's per-block case spreading: heat from any
  // block reaches every other block through one low-resistance plate.
  link("a57_0", "plate", 0.5);
  link("a57_1", "plate", 0.5);
  link("a57_2", "plate", 0.5);
  link("a57_3", "plate", 0.5);
  link("a53", "plate", 0.3);
  link("gpu", "plate", 0.8);
  link("mem", "plate", 0.35);
  // Lateral die coupling.
  link("gpu", "a57_2", 0.08);
  link("gpu", "a57_3", 0.08);
  link("gpu", "mem", 0.06);
  link("a53", "a57_0", 0.05);
  // Passive chassis path; convection is fixed (fanless tablet SKU).
  link("plate", "chassis", 0.45);
  link("chassis", "ambient", 0.55);

  fp.core_nodes = {"a57_0", "a57_1", "a57_2", "a57_3"};
  fp.little_node = "a53";
  fp.gpu_node = "gpu";
  fp.mem_node = "mem";
  fp.sensor_nodes = fp.core_nodes;

  // --- DVFS domains (X1-shaped: A57 to 1.9 GHz, Maxwell GPU to ~1 GHz).
  d.big_opps = {opp(800, 0.82),  opp(1000, 0.87), opp(1200, 0.93),
                opp(1400, 1.00), opp(1600, 1.08), opp(1800, 1.17),
                opp(1900, 1.23)};
  d.little_opps = {opp(500, 0.80), opp(700, 0.85), opp(900, 0.92),
                   opp(1100, 1.00), opp(1300, 1.09)};
  d.gpu_opps = {opp(153.6, 0.80), opp(307.2, 0.85), opp(460.8, 0.91),
                opp(614.4, 0.98), opp(768.0, 1.05), opp(921.6, 1.12),
                opp(998.4, 1.15)};

  // --- Power physics: 20 nm A57s switch more capacitance than the 28 nm
  // A15s, and the 256-core Maxwell GPU dominates the die.
  d.power.big_leakage = {4.5e-3, -2610.0, 0.006, 1.23, 1.5};
  d.power.little_leakage = {1.2e-3, -2640.0, 0.002, 1.09, 1.5};
  d.power.gpu_leakage = {3.2e-3, -2590.0, 0.005, 1.15, 1.5};
  d.power.mem_leakage = {0.6e-3, -2700.0, 0.004, 1.10, 1.0};
  d.power.big_core_alpha_c_max = 0.30e-9;
  d.power.little_core_alpha_c_max = 0.05e-9;
  d.power.gpu_alpha_c_max = 2.4e-9;
  d.power.big_uncore_alpha_c = 0.90e-9;
  d.power.little_uncore_alpha_c = 0.12e-9;
  d.power.mem_bandwidth_cap = 1.6;  // LPDDR4 headroom
  d.power.mem_dynamic_max_w = 0.9;
  d.power.mem_base_w = 0.10;
  d.power.mem_gpu_traffic_weight = 0.45;
  d.power.mem_nominal_voltage_v = 1.1;
  d.power.mem_nominal_frequency_hz = 1600e6;

  d.perf.big_ipc_scale = 1.15;  // A57 out-of-order width over the A15
  d.perf.little_ipc_scale = 0.50;
  d.perf.cluster_switch_stall_s = 0.04;

  // Fanless: every "speed" is the same passive path and draws nothing.
  d.fan = thermal::passive_cooling(0.55);

  d.temp_sensor = {0.5, 0.15};  // soctherm-class sensors
  d.power_sensor = {0.01, 0.001};
  d.platform_load = {1.0, 2.6};  // 10" tablet panel dominates

  // Die-limited rather than skin-limited: the thick chassis buys headroom.
  d.default_t_max_c = 70.0;
  // Derived abort ceiling (t_max + margin = 100 C): the fanless SKU has no
  // reason to inherit the Odroid's 115 C junction ceiling.
  d.runaway_abort_temp_c = 0.0;
  return d;
}

PlatformDescriptor compact_platform() {
  PlatformDescriptor d;
  d.name = "compact";
  d.description =
      "Fanless phone-class SoC: 4+4 low-power clusters behind a midframe "
      "and back-glass skin with tight skin-temperature headroom";

  thermal::FloorplanSpec& fp = d.floorplan;
  fp = thermal::FloorplanSpec{};
  auto node = [&fp](const char* name, double cap, double t0,
                    bool boundary = false) {
    fp.nodes.push_back({name, cap, t0, boundary});
  };
  node("cpu0", 0.05, 40.0);
  node("cpu1", 0.05, 40.0);
  node("cpu2", 0.05, 40.0);
  node("cpu3", 0.05, 40.0);
  node("little", 0.10, 40.0);
  node("gpu", 0.12, 40.0);
  node("mem", 0.18, 40.0);
  node("frame", 0.9, 38.0);   // magnesium midframe
  node("skin", 25.0, 34.0);   // back glass + battery mass
  node("ambient", 1.0, 25.0, /*boundary=*/true);

  auto link = [&fp](const char* a, const char* b, double g) {
    fp.edges.push_back({a, b, g, false});
  };
  link("cpu0", "cpu1", 0.7);
  link("cpu2", "cpu3", 0.7);
  link("cpu0", "cpu2", 0.7);
  link("cpu1", "cpu3", 0.7);
  link("cpu0", "cpu3", 0.35);
  link("cpu1", "cpu2", 0.35);
  link("cpu0", "frame", 0.30);
  link("cpu1", "frame", 0.30);
  link("cpu2", "frame", 0.30);
  link("cpu3", "frame", 0.30);
  link("little", "frame", 0.22);
  link("gpu", "frame", 0.25);
  link("mem", "frame", 0.25);
  link("cpu0", "little", 0.04);
  link("cpu1", "little", 0.04);
  link("cpu2", "little", 0.04);
  link("cpu3", "little", 0.04);
  link("gpu", "cpu2", 0.05);
  link("gpu", "cpu3", 0.05);
  link("gpu", "mem", 0.04);
  link("little", "gpu", 0.03);
  // The only exit is through the skin; a phone has no fan and little
  // radiating area, which is exactly the tight headroom this preset models.
  link("frame", "skin", 0.16);
  link("skin", "ambient", 0.095);

  fp.core_nodes = {"cpu0", "cpu1", "cpu2", "cpu3"};
  fp.little_node = "little";
  fp.gpu_node = "gpu";
  fp.mem_node = "mem";
  fp.sensor_nodes = fp.core_nodes;

  d.big_opps = {opp(600, 0.75), opp(800, 0.82), opp(1000, 0.90),
                opp(1200, 1.00), opp(1400, 1.10)};
  d.little_opps = {opp(400, 0.72), opp(600, 0.78), opp(800, 0.86),
                   opp(950, 0.93), opp(1100, 1.00)};
  d.gpu_opps = {opp(160, 0.75), opp(250, 0.82), opp(350, 0.90),
                opp(450, 0.98), opp(510, 1.03)};

  // Low-power silicon: smaller cores, smaller caches, mobile GPU.
  d.power.big_leakage = {2.5e-3, -2660.0, 0.003, 1.10, 1.5};
  d.power.little_leakage = {0.8e-3, -2680.0, 0.0015, 1.00, 1.5};
  d.power.gpu_leakage = {1.4e-3, -2630.0, 0.002, 1.03, 1.5};
  d.power.mem_leakage = {0.4e-3, -2720.0, 0.003, 1.10, 1.0};
  d.power.big_core_alpha_c_max = 0.15e-9;
  d.power.little_core_alpha_c_max = 0.045e-9;
  d.power.gpu_alpha_c_max = 0.9e-9;
  d.power.big_uncore_alpha_c = 0.50e-9;
  d.power.little_uncore_alpha_c = 0.10e-9;
  d.power.mem_bandwidth_cap = 0.8;
  d.power.mem_dynamic_max_w = 0.5;
  d.power.mem_base_w = 0.06;
  d.power.mem_nominal_voltage_v = 1.1;
  d.power.mem_nominal_frequency_hz = 1200e6;

  d.perf.big_ipc_scale = 0.90;
  d.perf.little_ipc_scale = 0.45;
  d.perf.cluster_switch_stall_s = 0.03;

  d.fan = thermal::passive_cooling(0.095);

  d.temp_sensor = {0.5, 0.20};
  d.power_sensor = {0.01, 0.001};
  d.platform_load = {0.6, 1.1};  // small panel, lean rails

  // Skin-limited: the constraint protects the hand, not the junction.
  d.default_t_max_c = 58.0;
  // Derived abort ceiling (t_max + margin = 88 C): a phone that blows 30 C
  // past its skin limit has already run away; aborting there instead of at
  // the Odroid's 115 C junction ceiling is the point of the
  // platform-relative threshold.
  d.runaway_abort_temp_c = 0.0;
  return d;
}

PlatformRegistry& PlatformRegistry::instance() {
  // Leaked singleton: must outlive every static PlatformRegistration in
  // other TUs, whatever the destruction order.
  static PlatformRegistry* registry = [] {
    auto* r = new PlatformRegistry;
    r->add(odroid_xu_e_platform());
    r->add(dragon_platform());
    r->add(compact_platform());
    return r;
  }();
  return *registry;
}

void PlatformRegistry::add(PlatformDescriptor descriptor) {
  descriptor.validate();
  // Beyond structural validation: the plant must have a stable coupled
  // leakage-temperature equilibrium at its gentlest operating point, or
  // every simulation (and the calibration furnace) on it would run away.
  // Inline descriptors in experiment configs deliberately skip this -- a
  // runaway-unstable platform is constructible for tests, just not
  // registrable by name.
  analysis::validate_platform_stability(descriptor);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string name = descriptor.name;
  const bool inserted =
      entries_
          .emplace(name, std::make_shared<const PlatformDescriptor>(
                             std::move(descriptor)))
          .second;
  if (!inserted) {
    throw std::invalid_argument("PlatformRegistry: duplicate platform '" +
                                name + "'");
  }
}

bool PlatformRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.erase(name) != 0;
}

bool PlatformRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

std::vector<std::string> PlatformRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::string PlatformRegistry::description(const std::string& name) const {
  return get(name)->description;
}

PlatformPtr PlatformRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::vector<std::string> valid;
    valid.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) valid.push_back(key);
    throw std::invalid_argument(
        "PlatformRegistry: " +
        util::unknown_name_message("platform", name, std::move(valid)));
  }
  return it->second;
}

PlatformRegistration::PlatformRegistration(PlatformDescriptor descriptor) {
  PlatformRegistry::instance().add(std::move(descriptor));
}

}  // namespace dtpm::sim
