// String-keyed registry of platform descriptors, mirroring the policy and
// governor registries of PR 4: anything registered here is selectable by
// name from an ExperimentConfig ("platform": "dragon"), a sweep grid's
// platforms axis, or the `dtpm` CLI, without touching library code.
//
// Pre-registered platforms:
//   odroid-xu-e  the paper's board (byte-identical to the legacy default)
//   dragon       Tegra-X1-like 4+4 tablet: shared die plate, fanless SKU
//   compact      fanless phone-class SoC with tight skin-temperature headroom
//
// User platforms self-register at static-init time:
//
//   namespace {
//   const dtpm::sim::PlatformRegistration kMine{[] {
//     dtpm::sim::PlatformDescriptor d;       // start from the Odroid plant
//     d.name = "my-soc";
//     d.power.big_core_alpha_c_max = 0.3e-9; // ...tweak as data...
//     return d;
//   }()};
//   }  // namespace
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/platform.hpp"

namespace dtpm::sim {

class PlatformRegistry {
 public:
  /// The process-wide registry with the three built-in platforms.
  static PlatformRegistry& instance();

  /// Registers a descriptor under descriptor.name after validate()-ing it;
  /// throws std::invalid_argument on an invalid descriptor or a duplicate.
  void add(PlatformDescriptor descriptor);

  /// Removes a registered platform (returns false when absent); for tests
  /// that register throwaway platforms.
  bool remove(const std::string& name);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< sorted
  std::string description(const std::string& name) const;

  /// Shared immutable descriptor; throws std::invalid_argument with the
  /// sorted valid names and a nearest-match suggestion on an unknown name.
  PlatformPtr get(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PlatformPtr> entries_;
};

/// Self-registration handle: construct one at namespace scope in any TU to
/// make a platform selectable by name before main() runs.
struct PlatformRegistration {
  explicit PlatformRegistration(PlatformDescriptor descriptor);
};

/// Builders of the built-in descriptors, exposed so tests can diff a
/// registry entry against a freshly built one.
PlatformDescriptor odroid_xu_e_platform();
PlatformDescriptor dragon_platform();
PlatformDescriptor compact_platform();

}  // namespace dtpm::sim
