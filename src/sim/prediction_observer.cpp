#include "sim/prediction_observer.hpp"

#include <algorithm>

namespace dtpm::sim {

PredictionObserver::PredictionObserver(
    const sysid::IdentifiedPlatformModel& model, unsigned horizon_steps)
    : observer_(model.thermal), horizon_steps_(horizon_steps) {}

PredictionObserver::DueSample PredictionObserver::observe(
    std::size_t step, bool active, const std::vector<double>& sensor_temps_c,
    const power::ResourceVector& sensor_rails_w) {
  DueSample due;
  if (!observer_) return due;
  while (!pending_.empty() && pending_.front().due_step <= step) {
    const Pending& p = pending_.front();
    if (p.due_step == step && active) {
      due.t0_c = p.temps_c[0];
      due.tmax_c = *std::max_element(p.temps_c.begin(), p.temps_c.end());
      for (std::size_t i = 0; i < p.temps_c.size(); ++i) {
        const double err = std::fabs(p.temps_c[i] - sensor_temps_c[i]);
        abs_err_.add(err);
        if (std::fabs(sensor_temps_c[i]) > 1e-9) {
          const double ape = 100.0 * err / std::fabs(sensor_temps_c[i]);
          ape_sum_ += ape;
          max_ape_ = std::max(max_ape_, ape);
          ++ape_count_;
        }
      }
    }
    pending_.pop_front();
  }
  if (active) {
    Pending p;
    p.due_step = step + horizon_steps_;
    p.temps_c = observer_->predict(
        sensor_temps_c, {sensor_rails_w.begin(), sensor_rails_w.end()},
        horizon_steps_);
    pending_.push_back(std::move(p));
  }
  return due;
}

double PredictionObserver::latest_scheduled_max_c() const {
  if (pending_.empty()) return std::nan("");
  return *std::max_element(pending_.back().temps_c.begin(),
                           pending_.back().temps_c.end());
}

void PredictionObserver::finalize(RunResult& result) const {
  if (abs_err_.count() == 0) return;
  result.prediction_mae_c = abs_err_.mean();
  result.prediction_mape = ape_sum_ / double(ape_count_);
  result.prediction_max_ape = max_ape_;
  result.prediction_samples = ape_count_;
}

}  // namespace dtpm::sim
