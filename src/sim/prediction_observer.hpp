// Observe-only prediction bookkeeping (§6.3.1): every control interval the
// observer predicts the hotspot temperatures one horizon ahead from the
// current sensor readings, then reconciles predictions that have come due
// against the actual later measurements, accumulating the error statistics
// the paper reports in Figs. 6.2 / 4.10.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "core/thermal_predictor.hpp"
#include "power/resource.hpp"
#include "sim/run_result.hpp"
#include "sysid/model_store.hpp"
#include "util/stats.hpp"

namespace dtpm::sim {

/// Tracks T[k+h] predictions until step k+h, then scores them.
class PredictionObserver {
 public:
  /// Inactive observer (observe_predictions disabled).
  PredictionObserver() = default;
  PredictionObserver(const sysid::IdentifiedPlatformModel& model,
                     unsigned horizon_steps);

  bool enabled() const { return observer_.has_value(); }

  /// Predictions made `horizon` steps ago that are due at this step.
  struct DueSample {
    double tmax_c = std::nan("");  ///< hottest-core prediction for "now"
    double t0_c = std::nan("");    ///< core-0 prediction for "now"
  };

  /// Reconciles due predictions against the current sensor readings and,
  /// when `active` (benchmark window), schedules a new prediction from the
  /// current readings. No-op when disabled.
  DueSample observe(std::size_t step, bool active,
                    const std::vector<double>& sensor_temps_c,
                    const power::ResourceVector& sensor_rails_w);

  /// Max element of the most recently scheduled prediction (NaN if none):
  /// the trace's pred_max_ahead_c fallback for non-DTPM policies.
  double latest_scheduled_max_c() const;

  /// Writes the accumulated error statistics into the result.
  void finalize(RunResult& result) const;

 private:
  struct Pending {
    std::size_t due_step = 0;
    std::vector<double> temps_c;
  };

  std::optional<core::ThermalPredictor> observer_;
  unsigned horizon_steps_ = 0;
  std::deque<Pending> pending_;
  util::RunningStats abs_err_;
  double ape_sum_ = 0.0;
  double max_ape_ = 0.0;
  std::size_t ape_count_ = 0;
};

}  // namespace dtpm::sim
