#include "sim/preset.hpp"

#include <stdexcept>

#include "util/names.hpp"

namespace dtpm::sim {

std::vector<std::string> preset_names() { return {"default"}; }

PlatformPreset preset_by_name(const std::string& name) {
  if (name == "default") return default_preset();
  throw std::invalid_argument(
      "preset_by_name: " +
      util::unknown_name_message("preset", name, preset_names()));
}

}  // namespace dtpm::sim
