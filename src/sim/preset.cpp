#include "sim/preset.hpp"

#include <stdexcept>

#include "util/names.hpp"

namespace dtpm::sim {

PlatformDescriptor descriptor_from_preset(const PlatformPreset& preset) {
  PlatformDescriptor d;  // defaults are the Odroid, including the OPP tables
  d.floorplan = thermal::default_floorplan_spec(preset.floorplan);
  d.power = preset.plant;
  d.perf = preset.perf;
  d.fan = preset.fan;
  d.temp_sensor = preset.temp_sensor;
  d.power_sensor = preset.power_sensor;
  d.platform_load = preset.platform_load;
  return d;
}

PlatformPreset preset_from_descriptor(const PlatformDescriptor& descriptor) {
  PlatformPreset preset;
  preset.floorplan.ambient_temp_c = descriptor.floorplan.ambient_temp_c();
  preset.fan = descriptor.fan;
  preset.plant = descriptor.power;
  preset.perf = descriptor.perf;
  preset.temp_sensor = descriptor.temp_sensor;
  preset.power_sensor = descriptor.power_sensor;
  preset.platform_load = descriptor.platform_load;
  return preset;
}

std::vector<std::string> preset_names() { return {"default"}; }

PlatformPreset preset_by_name(const std::string& name) {
  if (name == "default") return default_preset();
  throw std::invalid_argument(
      "preset_by_name: " +
      util::unknown_name_message("preset", name, preset_names()));
}

}  // namespace dtpm::sim
