// The legacy struct-of-structs platform bundle, kept as a thin shim over the
// data-driven platform layer (sim/platform.hpp): a PlatformPreset is just
// the scalar-parameter view of a PlatformDescriptor, and the descriptor --
// not this struct -- is what the plant is built from. Code that mutates
// preset fields on an ExperimentConfig without selecting a platform keeps
// working unchanged: the effective descriptor is synthesized from the preset
// (descriptor_from_preset) with the default Odroid topology.
#pragma once

#include <string>
#include <vector>

#include "power/sensors.hpp"
#include "sim/platform.hpp"
#include "soc/soc.hpp"
#include "thermal/fan.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/sensor.hpp"

namespace dtpm::sim {

struct PlatformPreset {
  thermal::FloorplanParams floorplan{};
  thermal::FanParams fan{};
  soc::PlantPowerParams plant{};
  soc::PerfParams perf{};
  thermal::TempSensorParams temp_sensor{};
  power::PowerSensorParams power_sensor{};
  power::PlatformLoadParams platform_load{};
};

/// The default Odroid-XU+E-like platform used throughout the reproduction.
inline PlatformPreset default_preset() { return PlatformPreset{}; }

/// Lifts a preset to a full descriptor: the default Odroid topology built
/// from preset.floorplan plus the preset's scalar parameters. The identity
/// the golden traces pin: a plant built from
/// descriptor_from_preset(default_preset()) is byte-identical to the legacy
/// enum-addressed default plant.
PlatformDescriptor descriptor_from_preset(const PlatformPreset& preset);

/// Projects a descriptor onto the legacy struct-of-structs: every scalar
/// parameter mirrors the descriptor so legacy readers
/// (config.preset.platform_load and friends) agree with the plant that
/// actually runs. The floorplan *topology* cannot be represented here --
/// only its ambient temperature is carried over; the descriptor remains the
/// source of truth.
PlatformPreset preset_from_descriptor(const PlatformDescriptor& descriptor);

/// Names selectable from config files ("preset": "default") and listed by
/// `dtpm list presets`. Kept for the legacy config key; platforms (the
/// superset that includes alternative SoCs) live in sim::PlatformRegistry.
std::vector<std::string> preset_names();

/// Lookup by name; throws std::invalid_argument with the valid names and a
/// nearest-match suggestion when absent.
PlatformPreset preset_by_name(const std::string& name);

}  // namespace dtpm::sim
