// One-stop bundle of every physical parameter of the simulated platform.
// All experiments (and the calibration workflow) share the same preset so
// the identified models face the same plant the policies later control.
#pragma once

#include <string>
#include <vector>

#include "power/sensors.hpp"
#include "soc/soc.hpp"
#include "thermal/fan.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/sensor.hpp"

namespace dtpm::sim {

struct PlatformPreset {
  thermal::FloorplanParams floorplan{};
  thermal::FanParams fan{};
  soc::PlantPowerParams plant{};
  soc::PerfParams perf{};
  thermal::TempSensorParams temp_sensor{};
  power::PowerSensorParams power_sensor{};
  power::PlatformLoadParams platform_load{};
};

/// The default Odroid-XU+E-like platform used throughout the reproduction.
inline PlatformPreset default_preset() { return PlatformPreset{}; }

/// Names selectable from config files ("preset": "default") and listed by
/// `dtpm list presets`. A single entry today; alternative platform presets
/// slot in here.
std::vector<std::string> preset_names();

/// Lookup by name; throws std::invalid_argument with the valid names and a
/// nearest-match suggestion when absent.
PlatformPreset preset_by_name(const std::string& name);

}  // namespace dtpm::sim
