// One-stop bundle of every physical parameter of the simulated platform.
// All experiments (and the calibration workflow) share the same preset so
// the identified models face the same plant the policies later control.
#pragma once

#include "power/sensors.hpp"
#include "soc/soc.hpp"
#include "thermal/fan.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/sensor.hpp"

namespace dtpm::sim {

struct PlatformPreset {
  thermal::FloorplanParams floorplan{};
  thermal::FanParams fan{};
  soc::PlantPowerParams plant{};
  soc::PerfParams perf{};
  thermal::TempSensorParams temp_sensor{};
  power::PowerSensorParams power_sensor{};
  power::PlatformLoadParams platform_load{};
};

/// The default Odroid-XU+E-like platform used throughout the reproduction.
inline PlatformPreset default_preset() { return PlatformPreset{}; }

}  // namespace dtpm::sim
