#include "sim/run_plan.hpp"

#include "sim/batch.hpp"
#include "sim/calibration.hpp"
#include "workload/suite.hpp"

namespace dtpm::sim {

RunPlan::RunPlan(const thermal::FloorplanParams& params) {
  PlatformPreset preset;
  preset.floorplan = params;
  cache_platform(std::make_shared<const PlatformDescriptor>(
      descriptor_from_preset(preset)));
}

RunPlan::RunPlan(const std::vector<ExperimentConfig>& configs) {
  std::vector<thermal::FloorplanParams> params_memo;
  for (const ExperimentConfig& config : configs) absorb(config, params_memo);
  if (floorplans_.empty()) {
    cache_platform(std::make_shared<const PlatformDescriptor>(
        descriptor_from_preset(PlatformPreset{})));
  }
}

RunPlan::RunPlan(const std::vector<BatchJob>& jobs) {
  std::vector<thermal::FloorplanParams> params_memo;
  for (const BatchJob& job : jobs) absorb(job.config, params_memo);
  if (floorplans_.empty()) {
    cache_platform(std::make_shared<const PlatformDescriptor>(
        descriptor_from_preset(PlatformPreset{})));
  }
}

RunPlan::RunPlan(const ExperimentConfig& config)
    : RunPlan(std::vector<ExperimentConfig>{config}) {}

void RunPlan::absorb(const ExperimentConfig& config,
                     std::vector<thermal::FloorplanParams>& params_memo) {
  if (config.platform != nullptr) {
    cache_platform(config.platform);
  } else {
    bool seen = false;
    for (const thermal::FloorplanParams& params : params_memo) {
      if (params == config.preset.floorplan) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      params_memo.push_back(config.preset.floorplan);
      cache_platform(resolved_platform(config));
    }
  }
  cache_benchmark_for(config);
}

void RunPlan::cache_platform(const PlatformPtr& platform) {
  if (platform == nullptr) return;
  for (const auto& [descriptor, floorplan] : floorplans_) {
    if (descriptor == platform) return;  // pointer-identity fast path
  }
  if (floorplan_for(*platform) != nullptr) return;
  floorplans_.emplace_back(platform,
                           thermal::build_floorplan(platform->floorplan));
}

void RunPlan::cache_benchmark_for(const ExperimentConfig& config) {
  if (config.scenario == nullptr) cache_benchmark(config.benchmark);
}

const sysid::IdentifiedPlatformModel* RunPlan::cache_model_for(
    const ExperimentConfig& config) {
  const PlatformPtr platform = resolved_platform(config);
  if (const sysid::IdentifiedPlatformModel* cached = model_for(config)) {
    return cached;
  }
  const sysid::IdentifiedPlatformModel* model =
      &platform_calibration(platform).model;
  models_.emplace_back(platform, model);
  return model;
}

void RunPlan::cache_benchmark(const std::string& name) {
  if (benchmarks_.count(name) != 0) return;
  try {
    benchmarks_.emplace(name, &workload::find_benchmark(name));
  } catch (const std::exception&) {
    // Unknown name: leave uncached so the owning run still throws in its own
    // slot (run_collecting attributes failures per job).
  }
}

const thermal::Floorplan* RunPlan::floorplan_for(
    const PlatformDescriptor& platform) const {
  for (const auto& [descriptor, floorplan] : floorplans_) {
    if (descriptor->floorplan == platform.floorplan) return &floorplan;
  }
  return nullptr;
}

const thermal::Floorplan* RunPlan::floorplan_for(
    const thermal::FloorplanParams& params) const {
  for (const auto& [descriptor, floorplan] : floorplans_) {
    if (descriptor->floorplan == thermal::default_floorplan_spec(params)) {
      return &floorplan;
    }
  }
  return nullptr;
}

const workload::Benchmark* RunPlan::benchmark_for(
    const std::string& name) const {
  const auto it = benchmarks_.find(name);
  return it == benchmarks_.end() ? nullptr : it->second;
}

const sysid::IdentifiedPlatformModel* RunPlan::model_for(
    const ExperimentConfig& config) const {
  if (models_.empty()) return nullptr;
  const PlatformPtr platform = resolved_platform(config);
  for (const auto& [descriptor, model] : models_) {
    if (descriptor == platform || *descriptor == *platform) return model;
  }
  return nullptr;
}

}  // namespace dtpm::sim
