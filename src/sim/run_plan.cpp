#include "sim/run_plan.hpp"

#include "workload/suite.hpp"

namespace dtpm::sim {

namespace {

thermal::FloorplanParams params_of(
    const std::vector<ExperimentConfig>& configs) {
  return configs.empty() ? thermal::FloorplanParams{}
                         : configs.front().preset.floorplan;
}

}  // namespace

RunPlan::RunPlan(const thermal::FloorplanParams& params)
    : floorplan_params_(params),
      floorplan_(thermal::make_default_floorplan(params)) {}

RunPlan::RunPlan(const std::vector<ExperimentConfig>& configs)
    : RunPlan(params_of(configs)) {
  for (const ExperimentConfig& config : configs) cache_benchmark_for(config);
}

RunPlan::RunPlan(const ExperimentConfig& config)
    : RunPlan(config.preset.floorplan) {
  cache_benchmark_for(config);
}

void RunPlan::cache_benchmark_for(const ExperimentConfig& config) {
  if (config.scenario == nullptr) cache_benchmark(config.benchmark);
}

void RunPlan::cache_benchmark(const std::string& name) {
  if (benchmarks_.count(name) != 0) return;
  try {
    benchmarks_.emplace(name, &workload::find_benchmark(name));
  } catch (const std::exception&) {
    // Unknown name: leave uncached so the owning run still throws in its own
    // slot (run_collecting attributes failures per job).
  }
}

const thermal::Floorplan* RunPlan::floorplan_for(
    const thermal::FloorplanParams& params) const {
  return params == floorplan_params_ ? &floorplan_ : nullptr;
}

const workload::Benchmark* RunPlan::benchmark_for(
    const std::string& name) const {
  const auto it = benchmarks_.find(name);
  return it == benchmarks_.end() ? nullptr : it->second;
}

}  // namespace dtpm::sim
