// Shared immutable per-batch invariants. A BatchRunner batch typically runs
// hundreds of configs that differ only in benchmark/policy/seed while
// sharing a handful of platforms and identified models; RunPlan hoists the
// work that is identical across those runs out of the per-run constructor:
//
//   * floorplan templates: one per distinct platform in the batch, built
//     (validated + compiled) once and copied into each Plant instead of
//     re-running build_floorplan per run,
//   * benchmark resolution: suite names resolved to Benchmark pointers once
//     per distinct name instead of once per run,
//   * per-platform calibration: the identified model of every platform that
//     needs one, calibrated once (through the process-wide cache) and
//     shared read-only by every run on that platform.
//
// A RunPlan is built once (single-threaded) before the worker pool spawns
// and is then read-only, so workers share it without synchronization. A
// config whose platform diverges from every template simply falls back to
// the build-it-yourself path -- reuse is an optimization, never a behavior
// change, and batches stay bit-identical to serial runs.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "sysid/model_store.hpp"
#include "thermal/floorplan.hpp"

namespace dtpm::sim {

struct BatchJob;

class RunPlan {
 public:
  /// Legacy entry point: a single template for the default topology built
  /// from `params`. Benchmarks are cached separately via
  /// cache_benchmark_for().
  explicit RunPlan(const thermal::FloorplanParams& params);

  /// Builds the invariants for a batch of `configs`: one floorplan template
  /// per distinct platform and a name -> Benchmark cache for every distinct
  /// suite benchmark. Unknown benchmark names are left uncached so the
  /// per-run resolution still throws inside the owning job's slot.
  explicit RunPlan(const std::vector<ExperimentConfig>& configs);

  /// Convenience: plan for a single config.
  explicit RunPlan(const ExperimentConfig& config);

  /// Plan for a BatchRunner batch, reading each job's config in place (no
  /// per-job config copies).
  explicit RunPlan(const std::vector<BatchJob>& jobs);

  /// Resolves and caches `config`'s suite benchmark (no-op for inline
  /// scenarios and unknown names). Not thread-safe: populate the cache
  /// before sharing the plan across workers.
  void cache_benchmark_for(const ExperimentConfig& config);

  /// Adds a floorplan template for `platform` if none matches yet. Not
  /// thread-safe (construction-time only).
  void cache_platform(const PlatformPtr& platform);

  /// Calibrates (through the process-wide per-platform cache) the
  /// identified model for `config`'s platform and remembers it by platform
  /// name. Not thread-safe (construction-time only).
  const sysid::IdentifiedPlatformModel* cache_model_for(
      const ExperimentConfig& config);

  /// The floorplan template whose spec matches `platform`, else null
  /// (caller builds from its own descriptor).
  const thermal::Floorplan* floorplan_for(
      const PlatformDescriptor& platform) const;

  /// Legacy overload: the template matching the default topology built from
  /// `params`, else null.
  const thermal::Floorplan* floorplan_for(
      const thermal::FloorplanParams& params) const;

  /// The pre-resolved suite benchmark for `name`, else null (caller resolves
  /// -- and reports errors -- itself). Inline scenarios never consult this.
  const workload::Benchmark* benchmark_for(const std::string& name) const;

  /// The cached identified model for `config`'s platform, else null.
  const sysid::IdentifiedPlatformModel* model_for(
      const ExperimentConfig& config) const;

 private:
  void cache_benchmark(const std::string& name);
  /// Per-config construction step shared by the batch ctors. `params_memo`
  /// dedupes preset-only configs by FloorplanParams so a large batch
  /// synthesizes one descriptor per distinct parameter set, not one per run.
  void absorb(const ExperimentConfig& config,
              std::vector<thermal::FloorplanParams>& params_memo);

  /// (descriptor, compiled template) per distinct platform in the batch.
  std::vector<std::pair<PlatformPtr, thermal::Floorplan>> floorplans_;
  std::unordered_map<std::string, const workload::Benchmark*> benchmarks_;
  /// (descriptor, identified model) per distinct calibrated platform --
  /// keyed by descriptor identity, never by name alone, so two different
  /// descriptors sharing a name can never swap models.
  std::vector<std::pair<PlatformPtr, const sysid::IdentifiedPlatformModel*>>
      models_;
};

}  // namespace dtpm::sim
