// Shared immutable per-batch invariants. A BatchRunner batch typically runs
// hundreds of configs that differ only in benchmark/policy/seed while
// sharing one platform preset and one identified model; RunPlan hoists the
// work that is identical across those runs out of the per-run constructor:
//
//   * the floorplan template: built (validated + compiled) once, copied into
//     each Plant instead of re-running make_default_floorplan per run,
//   * benchmark resolution: suite names resolved to Benchmark pointers once
//     per distinct name instead of once per run.
//
// A RunPlan is built once (single-threaded) before the worker pool spawns
// and is then read-only, so workers share it without synchronization. A
// config whose preset diverges from the plan's simply falls back to the
// build-it-yourself path -- reuse is an optimization, never a behavior
// change, and batches stay bit-identical to serial runs.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "thermal/floorplan.hpp"

namespace dtpm::sim {

class RunPlan {
 public:
  /// Builds the floorplan template for `params`; benchmarks are cached
  /// separately via cache_benchmark_for().
  explicit RunPlan(const thermal::FloorplanParams& params);

  /// Builds the invariants for a batch of `configs`: the floorplan template
  /// from the first config's preset and a name -> Benchmark cache for every
  /// distinct suite benchmark. Unknown benchmark names are left uncached so
  /// the per-run resolution still throws inside the owning job's slot.
  explicit RunPlan(const std::vector<ExperimentConfig>& configs);

  /// Convenience: plan for a single config.
  explicit RunPlan(const ExperimentConfig& config);

  /// Resolves and caches `config`'s suite benchmark (no-op for inline
  /// scenarios and unknown names). Not thread-safe: populate the cache
  /// before sharing the plan across workers.
  void cache_benchmark_for(const ExperimentConfig& config);

  /// The floorplan template when it matches `params`, else null (caller
  /// rebuilds from its own preset).
  const thermal::Floorplan* floorplan_for(
      const thermal::FloorplanParams& params) const;

  /// The pre-resolved suite benchmark for `name`, else null (caller resolves
  /// -- and reports errors -- itself). Inline scenarios never consult this.
  const workload::Benchmark* benchmark_for(const std::string& name) const;

 private:
  void cache_benchmark(const std::string& name);

  thermal::FloorplanParams floorplan_params_;
  thermal::Floorplan floorplan_;
  std::unordered_map<std::string, const workload::Benchmark*> benchmarks_;
};

}  // namespace dtpm::sim
