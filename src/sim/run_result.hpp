// Aggregate results of one benchmark run, shared by the steppable
// Simulation, the run_experiment convenience wrapper, and the BatchRunner.
#pragma once

#include <cstddef>
#include <optional>

#include "core/dtpm_governor.hpp"
#include "util/csv.hpp"
#include "util/phase.hpp"
#include "util/stats.hpp"

namespace dtpm::sim {

/// Aggregate results of one benchmark run.
struct RunResult {
  bool completed = false;           ///< benchmark finished before the time cap
  double execution_time_s = 0.0;    ///< the paper's performance metric
  double avg_platform_power_w = 0.0;  ///< external meter average (incl. fan)
  double avg_soc_power_w = 0.0;     ///< SoC rails only
  double platform_energy_j = 0.0;

  /// The run was aborted because a true node temperature crossed the
  /// platform's abort ceiling (thermal runaway). Implies !completed.
  bool runaway = false;
  /// The abort ceiling that applied -- the platform's
  /// resolved_runaway_abort_temp_c(), recorded so result consumers can
  /// interpret `runaway` without the descriptor at hand.
  double runaway_abort_temp_c = 0.0;

  /// Statistics of the max-core-temperature trace (Figs. 6.3-6.5).
  util::RunningStats max_temp_stats;
  /// Wall-clock time spent above the 63 C constraint.
  double violation_time_s = 0.0;

  /// Observe-only prediction validation (when enabled): errors between
  /// T[k+h] predictions and the later sensor measurements, across all four
  /// hotspots (§6.3.1's convention: percentage of the measured reading).
  double prediction_mae_c = 0.0;
  double prediction_mape = 0.0;
  double prediction_max_ape = 0.0;
  std::size_t prediction_samples = 0;

  /// DTPM actuation counters (zero for other policies).
  core::DtpmDiagnostics dtpm;

  /// Per-run cost counters (filled by Simulation::finish); the raw material
  /// of bench_throughput's steps/sec and latency-percentile report.
  std::size_t control_steps = 0;   ///< Simulation::step() calls executed
  std::size_t plant_substeps = 0;  ///< plant substeps actually taken
  double wall_time_s = 0.0;        ///< wall-clock from construction to finish
  /// Per-phase tick breakdown (all zero unless config.profile_phases).
  util::PhaseCycles phase_cycles;

  /// Per-interval trace (absent when record_trace is false). The column
  /// schema is owned by TraceRecorder::column_names() -- see
  /// sim/trace_recorder.hpp for the authoritative list and documentation.
  std::optional<util::TraceTable> trace;
};

}  // namespace dtpm::sim
