#include "sim/scenario_catalog.hpp"

#include <stdexcept>

#include "sim/platform_registry.hpp"
#include "util/names.hpp"

namespace dtpm::sim {

ScenarioCatalog ScenarioCatalog::standard(
    const workload::ScenarioParams& params) {
  ScenarioCatalog catalog;
  for (workload::ScenarioFamily family : workload::all_scenario_families()) {
    catalog.register_family(
        workload::to_string(family), [family, params](std::uint64_t seed) {
          return workload::make_scenario(family, seed, params);
        });
  }
  return catalog;
}

void ScenarioCatalog::register_family(const std::string& name,
                                      ScenarioFactory factory) {
  if (name.empty()) {
    throw std::invalid_argument("ScenarioCatalog: empty family name");
  }
  if (name.find('#') != std::string::npos) {
    // '#' separates family from seed in expand()'s run labels; allowing it
    // in names would make family attribution ambiguous downstream.
    throw std::invalid_argument("ScenarioCatalog: '#' not allowed in " + name);
  }
  if (!factory) {
    throw std::invalid_argument("ScenarioCatalog: null factory for " + name);
  }
  if (contains(name)) {
    throw std::invalid_argument("ScenarioCatalog: duplicate family " + name);
  }
  families_.emplace_back(name, std::move(factory));
}

bool ScenarioCatalog::contains(const std::string& name) const {
  for (const auto& [registered, factory] : families_) {
    if (registered == name) return true;
  }
  return false;
}

std::vector<std::string> ScenarioCatalog::family_names() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, factory] : families_) names.push_back(name);
  return names;
}

const ScenarioFactory& ScenarioCatalog::factory_for(
    const std::string& name) const {
  for (const auto& [registered, factory] : families_) {
    if (registered == name) return factory;
  }
  throw std::invalid_argument(
      "ScenarioCatalog: " +
      util::unknown_name_message("scenario family", name, family_names()));
}

workload::Benchmark ScenarioCatalog::make(const std::string& family,
                                          std::uint64_t seed) const {
  return factory_for(family)(seed);
}

std::vector<ExperimentConfig> ScenarioCatalog::expand(
    const Sweep& sweep) const {
  const std::vector<std::string> families =
      sweep.families.empty() ? family_names() : sweep.families;
  const std::vector<std::string> policies =
      merged_policy_axis(sweep.policies, sweep.policy_names, sweep.base);
  const std::vector<std::uint64_t> seeds =
      sweep.seeds.empty() ? std::vector<std::uint64_t>{sweep.base.seed}
                          : sweep.seeds;
  std::vector<PlatformPtr> platforms;
  for (const std::string& name : sweep.platforms) {
    platforms.push_back(PlatformRegistry::instance().get(name));
  }
  if (platforms.empty()) platforms.push_back(nullptr);  // inherit from base

  std::vector<ExperimentConfig> configs;
  configs.reserve(families.size() * seeds.size() * platforms.size() *
                  policies.size());
  for (const std::string& family : families) {
    const ScenarioFactory& factory = factory_for(family);
    for (std::uint64_t seed : seeds) {
      // One benchmark per (family, seed), shared read-only by every
      // platform x policy cell.
      auto scenario = std::make_shared<const workload::Benchmark>(
          factory(seed));
      for (const PlatformPtr& platform : platforms) {
        for (const std::string& policy : policies) {
          ExperimentConfig config = sweep.base;
          config.benchmark = family + "#s" + std::to_string(seed);
          config.scenario = scenario;
          if (platform != nullptr) set_platform(config, platform);
          set_policy(config, policy);
          config.seed = seed;
          configs.push_back(std::move(config));
        }
      }
    }
  }
  return configs;
}

}  // namespace dtpm::sim
