// Named registry of scenario families, bridging the procedural
// workload::ScenarioGenerator to the BatchRunner: a catalog maps family
// names to seeded factories and expands {family x policy x seed} grids into
// ExperimentConfigs whose generated benchmarks ride along inline
// (ExperimentConfig::scenario). Together with sim::InvariantChecker this is
// the property-based fuzzing rig: sweep the catalog, then assert the physics
// invariants on every resulting trace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hpp"
#include "workload/benchmark.hpp"
#include "workload/scenario.hpp"

namespace dtpm::sim {

/// Produces one deterministic benchmark per seed.
using ScenarioFactory =
    std::function<workload::Benchmark(std::uint64_t seed)>;

/// Ordered registry of named scenario families.
class ScenarioCatalog {
 public:
  /// A catalog with every workload::ScenarioFamily pre-registered under its
  /// to_string() name, using the given generator knobs.
  static ScenarioCatalog standard(const workload::ScenarioParams& params = {});

  /// Registers a user-defined family; throws std::invalid_argument on an
  /// empty name, a null factory, or a duplicate.
  void register_family(const std::string& name, ScenarioFactory factory);

  bool contains(const std::string& name) const;
  std::size_t size() const { return families_.size(); }

  /// Registered family names, in registration order.
  std::vector<std::string> family_names() const;

  /// Materializes one scenario; throws std::invalid_argument on an unknown
  /// family (and propagates whatever the factory itself throws).
  workload::Benchmark make(const std::string& family,
                           std::uint64_t seed) const;

  /// Expansion grid. Empty `families` means every registered family; empty
  /// `policies` and `seeds` fall back to base.policy / base.seed (mirroring
  /// sim::sweep, so a cleared dimension can never silently empty the grid).
  struct Sweep {
    ExperimentConfig base;  ///< template for every generated config
    std::vector<std::string> families;
    /// PlatformRegistry names; empty falls back to base's platform, so the
    /// catalog expands exactly as before the platform axis existed.
    std::vector<std::string> platforms;
    std::vector<Policy> policies;
    /// Registry-name policy axis, appended after `policies` (mapped onto
    /// their registry names) -- user-registered policies sweep the catalog
    /// exactly like the built-ins.
    std::vector<std::string> policy_names;
    std::vector<std::uint64_t> seeds{1, 2, 3};
  };

  /// Expands the grid in row-major order (family outermost, then seed, then
  /// platform, then policy, so one generated benchmark is shared read-only
  /// by every platform x policy cell that runs it). Each config carries its
  /// generated benchmark inline and is labeled "<family>#s<seed>"; the same
  /// grid always expands to the same configs, so catalog batches replay
  /// bit-identically.
  std::vector<ExperimentConfig> expand(const Sweep& sweep) const;

 private:
  const ScenarioFactory& factory_for(const std::string& name) const;

  std::vector<std::pair<std::string, ScenarioFactory>> families_;
};

}  // namespace dtpm::sim
