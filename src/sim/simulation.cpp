#include "sim/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/suite.hpp"

namespace dtpm::sim {

namespace {

const ExperimentConfig& validated(const ExperimentConfig& config,
                                  const sysid::IdentifiedPlatformModel* model) {
  if (config.observe_predictions && model == nullptr) {
    throw std::invalid_argument(
        "Simulation: observe_predictions requires an identified model");
  }
  return config;
}

workload::BackgroundParams background_params(const workload::Benchmark& bench) {
  workload::BackgroundParams params;
  params.heavy_load = workload::wants_heavy_background(bench);
  return params;
}

/// Inline scenarios are validated here, at the point of use: a malformed
/// generated benchmark fails the run that carries it (and only that run,
/// even inside a BatchRunner pool) instead of producing nonsense traces.
/// Suite names hit the RunPlan's resolution cache first when one is shared.
const workload::Benchmark& resolve_benchmark(const ExperimentConfig& config,
                                             const RunPlan* plan) {
  if (config.scenario != nullptr) {
    config.scenario->validate();
    return *config.scenario;
  }
  if (plan != nullptr) {
    const workload::Benchmark* cached = plan->benchmark_for(config.benchmark);
    if (cached != nullptr) return *cached;
  }
  return workload::find_benchmark(config.benchmark);
}

}  // namespace

Simulation::Simulation(const ExperimentConfig& config,
                       const sysid::IdentifiedPlatformModel* model,
                       std::unique_ptr<governors::ThermalPolicy> policy_override,
                       const RunPlan* plan)
    : config_(validated(config, model)),
      platform_(resolved_platform(config_)),
      runaway_abort_temp_c_(platform_->resolved_runaway_abort_temp_c()),
      dt_s_(config_.control_interval_s),
      substeps_(std::max(1, int(std::lround(dt_s_ / config_.plant_substep_s)))),
      sub_dt_s_(dt_s_ / substeps_),
      root_(config_.seed),
      plant_(*platform_, root_,
             plan != nullptr ? plan->floorplan_for(*platform_) : nullptr,
             config_.engine),
      bench_(resolve_benchmark(config_, plan)),
      background_(config_.background.has_value() ? *config_.background
                                                 : background_params(bench_),
                  root_.fork()),
      instance_(bench_),
      control_(config_, model, std::move(policy_override), platform_.get()),
      observer_(config_.observe_predictions
                    ? PredictionObserver(*model, config_.observe_horizon_steps)
                    : PredictionObserver()),
      recorder_(config_.record_trace),
      wall_start_(std::chrono::steady_clock::now()) {
  view_.soc_config = plant_.soc().config();
}

bool Simulation::step() {
  if (!begin_step()) return false;
  const PlantIntervalResult interval =
      plant_.advance(staged_demand(), staged_background(), staged_instance(),
                     substeps_, sub_dt_s_,
                     config_.profile_phases ? &phase_cycles_ : nullptr);
  return finish_step(interval);
}

bool Simulation::begin_step() {
  if (done_) return false;
  const bool profiling = config_.profile_phases;
  std::uint64_t mark = profiling ? util::cycle_now() : 0;

  // 1. Sensor sampling (into the reused step buffers).
  plant_.read_temps_into(buffers_.sensor_temps);
  const std::vector<double>& sensor_temps = buffers_.sensor_temps;
  const power::ResourceVector sensor_rails = plant_.read_rails(last_rails_avg_);
  pending_.platform_power_w =
      plant_.read_platform_power(last_rails_avg_, last_fan_power_);
  if (profiling) {
    const std::uint64_t now = util::cycle_now();
    phase_cycles_.add(util::Phase::kSensor, now - mark);
    mark = now;
  }

  soc::PlatformView pv;
  pv.time_s = t_;
  for (int c = 0; c < soc::kBigCoreCount; ++c) {
    pv.big_temps_c[c] = sensor_temps[c];
  }
  pv.rail_power_w = sensor_rails;
  pv.platform_power_w = pending_.platform_power_w;
  pv.cpu_max_util = last_cpu_max_util_;
  pv.cpu_avg_util = last_cpu_avg_util_;
  pv.gpu_util = last_gpu_util_;
  pv.config = plant_.soc().config();

  // 2. Control stack (Fig. 3.1): default proposal, then the thermal policy.
  const governors::Decision decision = control_.decide(pv);
  plant_.apply(decision.soc);
  fan_speed_ = decision.fan;
  plant_.set_fan(fan_speed_);
  if (profiling) {
    const std::uint64_t now = util::cycle_now();
    phase_cycles_.add(util::Phase::kPolicy, now - mark);
    mark = now;
  }

  // 3. Observe-only prediction bookkeeping.
  pending_.active = started_ && !instance_.done();
  pending_.due =
      observer_.observe(k_, pending_.active, sensor_temps, sensor_rails);

  // 4. Stage the plant-advance inputs (the caller -- step() or the lockstep
  // batch driver -- advances the plant, then hands the interval result to
  // finish_step()).
  workload::Demand& demand = buffers_.demand;
  demand.threads.clear();
  demand.gpu_load = 0.0;
  demand.gpu_cycles_per_unit = 0.0;
  if (pending_.active) {
    instance_.demand_into(demand);
  } else if (!started_) {
    // Moderate warm-up load so recording starts from a warm platform.
    workload::ThreadDemand warm;
    warm.duty = 1.0;
    warm.cpu_activity = config_.warmup_activity;
    warm.mem_intensity = 0.3;
    warm.counts_progress = false;
    demand.threads.push_back(warm);
  }
  background_.threads_into(buffers_.background_threads);
  if (profiling) {
    // Observer bookkeeping + workload staging ride with the schedule phase
    // (they are the interval's decision-to-plant glue).
    phase_cycles_.add(util::Phase::kSchedule, util::cycle_now() - mark);
  }
  pending_.armed = true;
  return true;
}

bool Simulation::finish_step(const PlantIntervalResult& interval) {
  if (!pending_.armed) {
    throw std::logic_error(
        "Simulation::finish_step: no begin_step() pending");
  }
  pending_.armed = false;
  const std::vector<double>& sensor_temps = buffers_.sensor_temps;
  const PredictionObserver::DueSample& due = pending_.due;
  plant_substeps_ += static_cast<std::size_t>(interval.substeps_taken);
  last_rails_avg_ = interval.rails_avg_w;
  last_fan_power_ = plant_.fan_power_w(fan_speed_);
  last_cpu_max_util_ = interval.last_substep.cpu_max_util;
  last_cpu_avg_util_ = interval.last_substep.cpu_avg_util;
  last_gpu_util_ = interval.last_substep.gpu_util;

  // 5. Recording (benchmark window only).
  if (started_) {
    const double t_max_reading =
        *std::max_element(sensor_temps.begin(), sensor_temps.end());
    result_.max_temp_stats.add(t_max_reading);
    const double soc_power = power::total(last_rails_avg_);
    const double platform_true = soc_power + last_fan_power_ +
                                 platform_->platform_load.board_base_w +
                                 platform_->platform_load.display_w;
    result_.platform_energy_j += platform_true * interval.consumed_s;
    fan_energy_j_ += last_fan_power_ * interval.consumed_s;
    if (t_max_reading > config_.dtpm.t_max_c) {
      result_.violation_time_s += interval.consumed_s;
    }
    if (recorder_.enabled()) {
      TraceSample sample;
      sample.time_s = t_ - start_time_;
      for (int c = 0; c < soc::kBigCoreCount; ++c) {
        sample.big_temps_c[c] = sensor_temps[c];
      }
      sample.t_max_c = t_max_reading;
      sample.rail_power_w = last_rails_avg_;
      sample.platform_power_w = platform_true;
      sample.soc_config = plant_.soc().config();
      sample.fan = fan_speed_;
      sample.cpu_max_util = interval.last_substep.cpu_max_util;
      sample.gpu_util = interval.last_substep.gpu_util;
      sample.progress = instance_.progress_fraction();
      sample.pred_max_ahead_c =
          control_.dtpm() != nullptr
              ? control_.dtpm()->diagnostics().predicted_max_c
              : observer_.latest_scheduled_max_c();
      sample.pred_tmax_for_now_c = due.tmax_c;
      sample.pred_t0_for_now_c = due.t0_c;
      recorder_.record(sample, buffers_.trace_row);
    }
  }

  // 6. Advance time, termination checks.
  t_ += interval.consumed_s;
  ++k_;
  if (!started_ && t_ >= config_.warmup_s) {
    started_ = true;
    start_time_ = t_;
  }
  if (started_ && (instance_.done() || interval.benchmark_finished)) {
    result_.completed = true;
    end_time_ = t_;
    done_ = true;
  } else if (plant_.max_true_temp_c() > runaway_abort_temp_c_) {
    runaway_ = true;
    end_time_ = t_;
    done_ = true;
  } else if (t_ >= config_.max_sim_time_s) {
    end_time_ = t_;
    done_ = true;
  }

  refresh_view(sensor_temps, pending_.platform_power_w);
  return !done_;
}

void Simulation::refresh_view(const std::vector<double>& sensor_temps,
                              double platform_power_w) {
  view_.time_s = t_;
  view_.steps = k_;
  view_.warmed_up = started_;
  view_.benchmark_completed = result_.completed;
  view_.runaway = runaway_;
  view_.max_temp_c =
      *std::max_element(sensor_temps.begin(), sensor_temps.end());
  view_.progress = instance_.progress_fraction();
  view_.platform_power_w = platform_power_w;
  view_.soc_config = plant_.soc().config();
  view_.fan = fan_speed_;
}

RunResult Simulation::finish() {
  if (finished_) {
    throw std::logic_error("Simulation::finish() called twice");
  }
  finished_ = true;

  RunResult result = std::move(result_);
  const double end_time = done_ ? end_time_ : t_;
  result.execution_time_s = end_time - start_time_;
  if (result.execution_time_s > 0.0) {
    result.avg_platform_power_w =
        result.platform_energy_j / result.execution_time_s;
  }
  // SoC-only average from the energy identity: platform = soc + fan + fixed.
  if (result.execution_time_s > 0.0) {
    result.avg_soc_power_w =
        (result.platform_energy_j - fan_energy_j_) / result.execution_time_s -
        platform_->platform_load.board_base_w -
        platform_->platform_load.display_w;
  }
  observer_.finalize(result);
  if (control_.dtpm() != nullptr) result.dtpm = control_.dtpm()->diagnostics();
  result.runaway = runaway_;
  result.runaway_abort_temp_c = runaway_abort_temp_c_;
  if (runaway_) result.completed = false;
  result.trace = recorder_.take();
  result.control_steps = k_;
  result.plant_substeps = plant_substeps_;
  result.phase_cycles = phase_cycles_;
  result.wall_time_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start_)
                           .count();
  return result;
}

}  // namespace dtpm::sim
