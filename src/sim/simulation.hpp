// The steppable closed-loop simulation: every 100 ms control interval it
// reads the sensor models, runs the default governor and the configured
// thermal policy, applies the decision to the SoC, and advances the RC
// thermal plant in fine-grained substeps with leakage-temperature feedback.
// This is the software stack of Fig. 3.1 running against the simulated
// board, decomposed into a Plant bundle, a ControlStack, a
// PredictionObserver, and a TraceRecorder.
//
// Incremental API:
//   Simulation sim(config, &model);
//   while (sim.step()) { /* inspect sim.view() between intervals */ }
//   RunResult result = sim.finish();
//
// run_experiment (sim/engine.hpp) is a thin wrapper over exactly this loop.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "sim/config.hpp"
#include "sim/control_stack.hpp"
#include "sim/plant.hpp"
#include "sim/prediction_observer.hpp"
#include "sim/run_plan.hpp"
#include "sim/run_result.hpp"
#include "sim/step_buffers.hpp"
#include "sim/trace_recorder.hpp"
#include "util/rng.hpp"
#include "workload/background.hpp"

namespace dtpm::sim {

/// Read-only snapshot of the simulation state between control intervals.
struct SimulationView {
  double time_s = 0.0;       ///< simulated time, including the warm-up window
  std::size_t steps = 0;     ///< control intervals executed so far
  bool warmed_up = false;    ///< past the warm-up window, recording active
  bool benchmark_completed = false;
  bool runaway = false;      ///< aborted on thermal runaway (platform ceiling)
  double max_temp_c = 0.0;   ///< latest hottest big-core sensor reading
  double progress = 0.0;     ///< benchmark progress fraction [0, 1]
  double platform_power_w = 0.0;  ///< latest external-meter reading
  soc::SocConfig soc_config;      ///< currently applied actuation state
  thermal::FanSpeed fan = thermal::FanSpeed::kOff;
};

/// One experiment as an incrementally steppable object.
class Simulation {
 public:
  /// `model` is required for Policy::kProposedDtpm and for
  /// observe_predictions (throws std::invalid_argument otherwise). A
  /// non-null `policy_override` replaces the policy selected by
  /// `config.policy` with a user-supplied implementation -- the extension
  /// point for custom thermal policies running closed-loop. A non-null
  /// `plan` (sim/run_plan.hpp) supplies pre-built batch invariants -- the
  /// floorplan template and resolved benchmarks -- that construction reuses
  /// when they match the config; behavior is identical with or without one.
  explicit Simulation(
      const ExperimentConfig& config,
      const sysid::IdentifiedPlatformModel* model = nullptr,
      std::unique_ptr<governors::ThermalPolicy> policy_override = nullptr,
      const RunPlan* plan = nullptr);

  /// Advances one control interval. Returns true while the run continues;
  /// false once a termination condition (benchmark completion, thermal
  /// runaway, or the simulated-time cap) has been reached.
  bool step();

  /// Split-phase stepping for external interval drivers (the lockstep batch
  /// lane). step() is exactly:
  ///
  ///   if (!begin_step()) return false;
  ///   interval = plant().advance(staged_demand(), staged_background(),
  ///                              staged_instance(), plant_substeps(),
  ///                              plant_sub_dt_s());
  ///   return finish_step(interval);
  ///
  /// begin_step() samples the sensors, runs the control stack, applies the
  /// actuation, and stages the plant-advance inputs; it returns false (doing
  /// nothing) once the run is done. After a true return the caller MUST
  /// advance the plant and call finish_step() exactly once before the next
  /// begin_step().
  bool begin_step();
  bool finish_step(const PlantIntervalResult& interval);

  /// The plant and the advance inputs staged by the last begin_step().
  Plant& plant() { return plant_; }
  const workload::Demand& staged_demand() const { return buffers_.demand; }
  const std::vector<workload::ThreadDemand>& staged_background() const {
    return buffers_.background_threads;
  }
  /// The foreground instance to advance, or null outside the benchmark
  /// window (warm-up / completed).
  workload::WorkloadInstance* staged_instance() {
    return pending_.active ? &instance_ : nullptr;
  }
  int plant_substeps() const { return substeps_; }
  double plant_sub_dt_s() const { return sub_dt_s_; }

  /// True once a termination condition has been reached.
  bool done() const { return done_; }

  /// Phase accounting (config.profile_phases). begin_step() stamps the
  /// sensor/policy/schedule phases itself; an external interval driver that
  /// replaces plant().advance() measures its own plant-side ticks and hands
  /// them back here so finish() reports the full interval either way.
  bool profile_phases() const { return config_.profile_phases; }
  void add_phase_cycles(const util::PhaseCycles& cycles) {
    phase_cycles_ += cycles;
  }

  const SimulationView& view() const { return view_; }

  /// Finalizes the derived metrics and returns the accumulated result.
  /// May be called mid-run (treats the current time as the end). Call at
  /// most once; throws std::logic_error on a second call.
  RunResult finish();

 private:
  void refresh_view(const std::vector<double>& sensor_temps,
                    double platform_power_w);

  /// State carried from begin_step() to finish_step() (sensor temps live in
  /// buffers_.sensor_temps).
  struct PendingStep {
    PredictionObserver::DueSample due;
    bool active = false;  ///< inside the benchmark window
    double platform_power_w = 0.0;
    bool armed = false;  ///< begin_step() ran, finish_step() has not
  };

  ExperimentConfig config_;
  /// The resolved platform descriptor the plant was built from (config's
  /// `platform`, or synthesized from its preset). Declared before plant_ --
  /// construction order matters.
  PlatformPtr platform_;
  /// Abort ceiling for the runaway check: the platform's
  /// resolved_runaway_abort_temp_c() (explicit, or t_max + margin).
  double runaway_abort_temp_c_;
  double dt_s_;
  int substeps_;
  double sub_dt_s_;

  util::Rng root_;
  Plant plant_;
  const workload::Benchmark& bench_;
  workload::BackgroundLoad background_;
  workload::WorkloadInstance instance_;
  ControlStack control_;
  PredictionObserver observer_;
  TraceRecorder recorder_;

  thermal::FanSpeed fan_speed_ = thermal::FanSpeed::kOff;
  power::ResourceVector last_rails_avg_{};
  double last_fan_power_ = 0.0;
  double last_cpu_max_util_ = 0.0;
  double last_cpu_avg_util_ = 0.0;
  double last_gpu_util_ = 0.0;

  double t_ = 0.0;
  std::size_t k_ = 0;
  bool started_ = false;
  double start_time_ = 0.0;
  double end_time_ = 0.0;
  double fan_energy_j_ = 0.0;
  bool runaway_ = false;
  bool done_ = false;
  bool finished_ = false;

  /// Reused per-step scratch: the steady-state step() path (trace recording
  /// and prediction observation off) performs zero heap allocations.
  StepBuffers buffers_;
  PendingStep pending_;
  std::size_t plant_substeps_ = 0;
  util::PhaseCycles phase_cycles_;
  std::chrono::steady_clock::time_point wall_start_;

  RunResult result_;
  SimulationView view_;
};

}  // namespace dtpm::sim
