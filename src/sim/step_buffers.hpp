// Reusable per-step scratch for the Simulation hot loop. One StepBuffers
// lives in each Simulation; every control interval writes into these buffers
// instead of allocating fresh vectors, so a steady-state Simulation::step()
// (trace recording and prediction observation off) performs zero heap
// allocations -- the property the tests/test_zero_alloc.cpp guard pins.
//
// Capacities grow to the run's high-water mark during the first intervals
// and are then reused verbatim. The buffers carry no cross-interval state:
// each consumer clears before filling.
#pragma once

#include <vector>

#include "workload/runtime.hpp"

namespace dtpm::sim {

struct StepBuffers {
  /// Big-core sensor readings (Plant::read_temps_into).
  std::vector<double> sensor_temps;
  /// Background thread demands (BackgroundLoad::threads_into).
  std::vector<workload::ThreadDemand> background_threads;
  /// Foreground demand (WorkloadInstance::demand_into / warm-up load).
  workload::Demand demand;
  /// Serialized trace row (TraceRecorder::record scratch).
  std::vector<double> trace_row;
};

}  // namespace dtpm::sim
