#include "sim/stepping_engine.hpp"

#include <stdexcept>

#include "util/names.hpp"

namespace dtpm::sim {

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kReferenceRk4:
      return "reference-rk4";
    case Engine::kPropagator:
      return "propagator";
    case Engine::kBatched:
      return "batched";
  }
  return "?";
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {
      to_string(Engine::kReferenceRk4), to_string(Engine::kPropagator),
      to_string(Engine::kBatched)};
  return names;
}

std::optional<Engine> try_parse_engine(const std::string& name) {
  for (Engine e :
       {Engine::kReferenceRk4, Engine::kPropagator, Engine::kBatched}) {
    if (name == to_string(e)) return e;
  }
  return std::nullopt;
}

Engine parse_engine(const std::string& name) {
  const std::optional<Engine> parsed = try_parse_engine(name);
  if (!parsed.has_value()) {
    throw std::invalid_argument(
        "parse_engine: " +
        util::unknown_name_message("engine", name, engine_names()));
  }
  return *parsed;
}

}  // namespace dtpm::sim
