// The plant stepping-engine knob: which integrator advances the RC thermal
// network inside Plant::advance. All three engines run the same physics;
// they differ in how the per-substep work is executed.
//
//   * reference-rk4: the per-substep RK4 loop (RcNetwork::step). The
//     bit-exact baseline that the golden traces pin.
//   * propagator: the cached exact LTI propagator
//     (thermal::PropagatorRcModel) -- one matvec per substep, falling back
//     to RK4 on steps that straddle a fan transition. Tracks the reference
//     to floating-point rounding.
//   * batched: the structure-of-arrays batch lane. Same-platform runs in a
//     BatchRunner wave step in lockstep through shared propagator matrices
//     and a vectorized power model; a standalone run selecting `batched`
//     behaves as `propagator`. Lane arithmetic may differ from the scalar
//     engines at ulp level (documented deviation).
//
// Lives in its own header (not sim/config.hpp) so the Plant layer can name
// the engine without pulling in the whole experiment-configuration surface.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace dtpm::sim {

enum class Engine {
  kReferenceRk4,  ///< per-substep RK4 loop (golden-trace baseline)
  kPropagator,    ///< cached LTI propagator, one matvec per substep
  kBatched,       ///< propagator + structure-of-arrays lanes across a batch
};

/// Selection name of the enumerator ("reference-rk4", "propagator",
/// "batched").
const char* to_string(Engine e);

/// Inverse of to_string; throws std::invalid_argument (with the valid names
/// and a nearest-match suggestion) on an unknown name.
Engine parse_engine(const std::string& name);

/// Like parse_engine, but returns nullopt instead of throwing.
std::optional<Engine> try_parse_engine(const std::string& name);

/// The selectable engine names, in enumerator order.
const std::vector<std::string>& engine_names();

}  // namespace dtpm::sim
