#include "sim/trace_recorder.hpp"

namespace dtpm::sim {

int fan_level(thermal::FanSpeed speed) {
  switch (speed) {
    case thermal::FanSpeed::kOff:
      return 0;
    case thermal::FanSpeed::kLow:
      return 1;
    case thermal::FanSpeed::kHalf:
      return 2;
    case thermal::FanSpeed::kFull:
      return 3;
  }
  return 0;
}

const std::vector<std::string>& TraceRecorder::column_names() {
  static const std::vector<std::string> kColumns{
      "time_s", "t_big0_c", "t_big1_c", "t_big2_c", "t_big3_c", "t_max_c",
      "p_big_w", "p_little_w", "p_gpu_w", "p_mem_w", "p_platform_w",
      "f_big_mhz", "f_little_mhz", "f_gpu_mhz", "cluster", "online_cores",
      "fan_level", "cpu_util", "gpu_util", "progress", "pred_max_ahead_c",
      "pred_tmax_for_now_c", "pred_t0_for_now_c"};
  return kColumns;
}

TraceRecorder::TraceRecorder(bool enabled) {
  if (enabled) table_.emplace(column_names());
}

void TraceRecorder::record(const TraceSample& s) {
  std::vector<double> row;
  record(s, row);
}

void TraceRecorder::record(const TraceSample& s,
                           std::vector<double>& row_scratch) {
  if (!table_) return;
  row_scratch.assign(
      {s.time_s, s.big_temps_c[0], s.big_temps_c[1], s.big_temps_c[2],
       s.big_temps_c[3], s.t_max_c,
       s.rail_power_w[0], s.rail_power_w[1], s.rail_power_w[2],
       s.rail_power_w[3], s.platform_power_w,
       s.soc_config.big_freq_hz / 1e6, s.soc_config.little_freq_hz / 1e6,
       s.soc_config.gpu_freq_hz / 1e6,
       s.soc_config.active_cluster == soc::ClusterId::kBig ? 0.0 : 1.0,
       double(s.soc_config.online_big_cores()), double(fan_level(s.fan)),
       s.cpu_max_util, s.gpu_util, s.progress, s.pred_max_ahead_c,
       s.pred_tmax_for_now_c, s.pred_t0_for_now_c});
  table_->append(row_scratch);
}

}  // namespace dtpm::sim
