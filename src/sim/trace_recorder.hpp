// Per-interval trace recording. This file is the single owner of the trace
// column schema: TraceRecorder::column_names() is the authoritative list,
// and serialization from a typed TraceSample to a row happens in exactly one
// place, so the header documentation can never drift from the emitted table
// again.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "power/resource.hpp"
#include "soc/state.hpp"
#include "thermal/fan.hpp"
#include "util/csv.hpp"

namespace dtpm::sim {

/// One control interval's worth of trace data, in engineering units.
struct TraceSample {
  double time_s = 0.0;  ///< seconds since recording started (post warm-up)
  std::array<double, soc::kBigCoreCount> big_temps_c{};  ///< sensor readings
  double t_max_c = 0.0;              ///< hottest big-core sensor reading
  power::ResourceVector rail_power_w{};  ///< substep-averaged rail powers
  double platform_power_w = 0.0;     ///< true platform power (SoC+fan+fixed)
  soc::SocConfig soc_config;         ///< applied actuation state
  thermal::FanSpeed fan = thermal::FanSpeed::kOff;
  double cpu_max_util = 0.0;
  double gpu_util = 0.0;
  double progress = 0.0;             ///< benchmark progress fraction [0,1]
  double pred_max_ahead_c = 0.0;     ///< prediction made now for t+horizon
  double pred_tmax_for_now_c = 0.0;  ///< prediction made horizon ago for now
  double pred_t0_for_now_c = 0.0;    ///< same, core 0 only
};

/// Integer level of a fan speed (0 = off .. 3 = full), as traced.
int fan_level(thermal::FanSpeed speed);

/// Records TraceSamples into an in-memory TraceTable when enabled.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled);

  /// The 23 trace columns, in emission order:
  ///   time_s, t_big0_c..t_big3_c, t_max_c,
  ///   p_big_w, p_little_w, p_gpu_w, p_mem_w, p_platform_w,
  ///   f_big_mhz, f_little_mhz, f_gpu_mhz,
  ///   cluster (0 = big, 1 = little), online_cores, fan_level (0..3),
  ///   cpu_util, gpu_util, progress,
  ///   pred_max_ahead_c, pred_tmax_for_now_c, pred_t0_for_now_c.
  static const std::vector<std::string>& column_names();

  bool enabled() const { return table_.has_value(); }

  /// Serializes one sample into a row; no-op when recording is disabled.
  void record(const TraceSample& sample);

  /// Variant serializing through a caller-owned row buffer (StepBuffers
  /// scratch), halving the per-row allocations on the hot path.
  void record(const TraceSample& sample, std::vector<double>& row_scratch);

  /// Hands the accumulated table to the RunResult (empty when disabled).
  std::optional<util::TraceTable> take() { return std::move(table_); }

 private:
  std::optional<util::TraceTable> table_;
};

}  // namespace dtpm::sim
