#include "soc/scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace dtpm::soc {

Placement place_threads(const std::vector<workload::ThreadDemand>& threads,
                        const SocConfig& config) {
  Placement out;
  // Determine which physical cores are schedulable.
  std::vector<int> online;
  if (config.active_cluster == ClusterId::kBig) {
    for (int c = 0; c < kBigCoreCount; ++c) {
      if (config.big_core_online[c]) online.push_back(c);
    }
  } else {
    for (int c = 0; c < kLittleCoreCount; ++c) online.push_back(c);
  }
  if (online.empty() || threads.empty()) return out;

  // Greedy LPT: heaviest thread first onto the least-loaded core.
  std::vector<std::size_t> order(threads.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return threads[a].duty > threads[b].duty;
  });

  out.threads.resize(threads.size());
  for (std::size_t idx : order) {
    int best = online.front();
    for (int c : online) {
      if (out.core_load[c] < out.core_load[best]) best = c;
    }
    out.threads[idx].demand = threads[idx];
    out.threads[idx].core = best;
    out.core_load[best] += threads[idx].duty;
  }

  // Grant shares: proportional scaling on oversubscribed cores.
  for (auto& placed : out.threads) {
    const double load = out.core_load[placed.core];
    const double scale = load > 1.0 ? 1.0 / load : 1.0;
    placed.share = placed.demand.duty * scale;
  }

  double util_sum = 0.0;
  for (int c : online) {
    out.core_util[c] = std::min(out.core_load[c], 1.0);
    out.max_util = std::max(out.max_util, out.core_util[c]);
    util_sum += out.core_util[c];
  }
  out.avg_util = util_sum / double(online.size());
  return out;
}

}  // namespace dtpm::soc
