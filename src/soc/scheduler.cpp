#include "soc/scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace dtpm::soc {

Placement place_threads(const std::vector<workload::ThreadDemand>& threads,
                        const SocConfig& config) {
  Placement out;
  std::vector<std::size_t> order;
  place_threads_into(threads, config, out, order);
  return out;
}

void place_threads_into(const std::vector<workload::ThreadDemand>& threads,
                        const SocConfig& config, Placement& out,
                        std::vector<std::size_t>& order) {
  out.threads.clear();
  out.core_load.fill(0.0);
  out.core_util.fill(0.0);
  out.max_util = 0.0;
  out.avg_util = 0.0;

  // Determine which physical cores are schedulable. Both clusters have at
  // most kBigCoreCount cores, so a fixed array suffices.
  static_assert(kLittleCoreCount <= kBigCoreCount,
                "online-core scratch sized for the bigger cluster");
  std::array<int, kBigCoreCount> online{};
  int online_count = 0;
  if (config.active_cluster == ClusterId::kBig) {
    for (int c = 0; c < kBigCoreCount; ++c) {
      if (config.big_core_online[c]) online[online_count++] = c;
    }
  } else {
    for (int c = 0; c < kLittleCoreCount; ++c) online[online_count++] = c;
  }
  if (online_count == 0 || threads.empty()) return;

  // Greedy LPT: heaviest thread first onto the least-loaded core. The order
  // is a stable descending-duty sort; insertion sort is stable and needs no
  // temporary buffer (std::stable_sort heap-allocates one), and a stable
  // sort's output is unique, so the placement is bit-identical.
  order.resize(threads.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t key = order[i];
    std::size_t j = i;
    while (j > 0 && threads[order[j - 1]].duty < threads[key].duty) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = key;
  }

  out.threads.resize(threads.size());
  for (std::size_t idx : order) {
    int best = online[0];
    for (int oc = 0; oc < online_count; ++oc) {
      const int c = online[oc];
      if (out.core_load[c] < out.core_load[best]) best = c;
    }
    out.threads[idx].demand = threads[idx];
    out.threads[idx].core = best;
    out.core_load[best] += threads[idx].duty;
  }

  // Grant shares: proportional scaling on oversubscribed cores.
  for (auto& placed : out.threads) {
    const double load = out.core_load[placed.core];
    const double scale = load > 1.0 ? 1.0 / load : 1.0;
    placed.share = placed.demand.duty * scale;
  }

  double util_sum = 0.0;
  for (int oc = 0; oc < online_count; ++oc) {
    const int c = online[oc];
    out.core_util[c] = std::min(out.core_load[c], 1.0);
    out.max_util = std::max(out.max_util, out.core_util[c]);
    util_sum += out.core_util[c];
  }
  out.avg_util = util_sum / double(online_count);
}

}  // namespace dtpm::soc
