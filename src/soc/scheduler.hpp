// Load-balancing thread placement, standing in for the Linux kernel's load
// balancer. The paper deliberately leaves scheduling/migration to the stock
// kernel (§2, §5.2): when the DTPM algorithm hotplugs a core, "the tasks
// running on this core are migrated to the other cores by the kernel". This
// scheduler provides exactly that behaviour: greedy longest-processing-time
// placement of thread duties onto the online cores of the active cluster.
#pragma once

#include <vector>

#include "soc/state.hpp"
#include "workload/runtime.hpp"

namespace dtpm::soc {

/// One thread's placement result. The demand is stored by value so a
/// Placement stays valid independently of the input vector's lifetime.
struct PlacedThread {
  workload::ThreadDemand demand;
  int core = 0;       ///< physical core index within the active cluster
  double share = 0.0; ///< CPU-time share actually received in [0, duty]
};

/// Placement of all threads for one control interval.
struct Placement {
  std::vector<PlacedThread> threads;
  /// Per physical core: total requested load (sum of duties, may exceed 1)
  /// and granted utilization (capped at 1). Offline cores read 0.
  std::array<double, kBigCoreCount> core_load{};
  std::array<double, kBigCoreCount> core_util{};
  double max_util = 0.0;
  double avg_util = 0.0;
};

/// Places threads onto the online cores of the active cluster.
///
/// Threads are sorted by duty (descending) and assigned greedily to the
/// least-loaded online core. When a core is oversubscribed (load > 1) every
/// thread on it receives a proportionally reduced share, which is how core
/// shutdown and cluster migration turn into performance loss.
Placement place_threads(const std::vector<workload::ThreadDemand>& threads,
                        const SocConfig& config);

/// Allocation-free variant for the per-substep hot path: resets and refills
/// `out` (its thread vector's capacity is reused) and uses `order_scratch`
/// as sort scratch. Results are identical to place_threads().
void place_threads_into(const std::vector<workload::ThreadDemand>& threads,
                        const SocConfig& config, Placement& out,
                        std::vector<std::size_t>& order_scratch);

}  // namespace dtpm::soc
