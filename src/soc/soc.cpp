#include "soc/soc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "power/dynamic_power.hpp"

namespace dtpm::soc {

Soc::Soc(const PlantPowerParams& power_params, const PerfParams& perf_params)
    : Soc(power_params, perf_params, power::big_cluster_opp_table(),
          power::little_cluster_opp_table(), power::gpu_opp_table()) {}

Soc::Soc(const PlantPowerParams& power_params, const PerfParams& perf_params,
         power::OppTable big_opps, power::OppTable little_opps,
         power::OppTable gpu_opps)
    : power_params_(power_params),
      perf_params_(perf_params),
      big_opps_(std::move(big_opps)),
      little_opps_(std::move(little_opps)),
      gpu_opps_(std::move(gpu_opps)),
      big_leak_(power_params.big_leakage),
      little_leak_(power_params.little_leakage),
      gpu_leak_(power_params.gpu_leakage),
      mem_leak_(power_params.mem_leakage) {
  config_.big_freq_hz = big_opps_.max().frequency_hz;
  config_.little_freq_hz = little_opps_.max().frequency_hz;
  config_.gpu_freq_hz = gpu_opps_.max().frequency_hz;
  v_big_ = big_opps_.max().voltage_v;
  v_little_ = little_opps_.max().voltage_v;
  v_gpu_ = gpu_opps_.max().voltage_v;
}

bool operator==(const PlantPowerParams& a, const PlantPowerParams& b) {
  return a.big_leakage == b.big_leakage &&
         a.little_leakage == b.little_leakage &&
         a.gpu_leakage == b.gpu_leakage && a.mem_leakage == b.mem_leakage &&
         a.big_core_alpha_c_max == b.big_core_alpha_c_max &&
         a.little_core_alpha_c_max == b.little_core_alpha_c_max &&
         a.gpu_alpha_c_max == b.gpu_alpha_c_max &&
         a.big_uncore_alpha_c == b.big_uncore_alpha_c &&
         a.little_uncore_alpha_c == b.little_uncore_alpha_c &&
         a.big_idle_activity == b.big_idle_activity &&
         a.little_idle_activity == b.little_idle_activity &&
         a.gpu_idle_util == b.gpu_idle_util &&
         a.mem_bandwidth_cap == b.mem_bandwidth_cap &&
         a.offline_core_leakage_fraction == b.offline_core_leakage_fraction &&
         a.inactive_cluster_leakage_fraction ==
             b.inactive_cluster_leakage_fraction &&
         a.mem_dynamic_max_w == b.mem_dynamic_max_w &&
         a.mem_base_w == b.mem_base_w &&
         a.mem_gpu_traffic_weight == b.mem_gpu_traffic_weight &&
         a.mem_nominal_voltage_v == b.mem_nominal_voltage_v &&
         a.mem_nominal_frequency_hz == b.mem_nominal_frequency_hz;
}

bool operator==(const PerfParams& a, const PerfParams& b) {
  return a.big_ipc_scale == b.big_ipc_scale &&
         a.little_ipc_scale == b.little_ipc_scale &&
         a.cluster_switch_stall_s == b.cluster_switch_stall_s;
}

void Soc::apply(const SocConfig& config) {
  // The common steady-state case: the governor re-applies the config it
  // already holds. An identical config was validated when first applied and
  // resolves to the same voltages, so the three OPP linear scans -- the
  // dominant cost in a tight control loop -- can be skipped outright.
  if (config == config_) return;
  if (!big_opps_.contains(config.big_freq_hz)) {
    throw std::invalid_argument("Soc::apply: big frequency not an OPP");
  }
  if (!little_opps_.contains(config.little_freq_hz)) {
    throw std::invalid_argument("Soc::apply: little frequency not an OPP");
  }
  if (!gpu_opps_.contains(config.gpu_freq_hz)) {
    throw std::invalid_argument("Soc::apply: gpu frequency not an OPP");
  }
  if (config.active_cluster == ClusterId::kBig &&
      config.online_big_cores() == 0) {
    throw std::invalid_argument("Soc::apply: no big core online");
  }
  if (config.active_cluster != config_.active_cluster) {
    migration_stall_remaining_s_ += perf_params_.cluster_switch_stall_s;
  }
  config_ = config;
  v_big_ = big_opps_.voltage_at(config_.big_freq_hz);
  v_little_ = little_opps_.voltage_at(config_.little_freq_hz);
  v_gpu_ = gpu_opps_.voltage_at(config_.gpu_freq_hz);
}

SocStepResult Soc::step(const workload::Demand& foreground,
                        const std::vector<workload::ThreadDemand>& background,
                        const std::array<double, kBigCoreCount>& big_temps_c,
                        double little_temp_c, double gpu_temp_c,
                        double mem_temp_c, double dt_s, bool reuse_schedule) {
  if (dt_s <= 0.0) throw std::invalid_argument("Soc::step: dt must be > 0");
  SocStepResult out;

  const bool big_active = config_.active_cluster == ClusterId::kBig;
  const double f_cpu = big_active ? config_.big_freq_hz : config_.little_freq_hz;
  const double v_cpu = big_active ? v_big_ : v_little_;
  const double ipc = big_active ? perf_params_.big_ipc_scale
                                : perf_params_.little_ipc_scale;
  const double core_alpha_c_max = big_active
                                      ? power_params_.big_core_alpha_c_max
                                      : power_params_.little_core_alpha_c_max;
  const double idle_activity = big_active ? power_params_.big_idle_activity
                                          : power_params_.little_idle_activity;

  if (!reuse_schedule) {
    // --- Thread placement on the active cluster ----------------------------
    all_threads_scratch_.clear();
    all_threads_scratch_.insert(all_threads_scratch_.end(),
                                foreground.threads.begin(),
                                foreground.threads.end());
    all_threads_scratch_.insert(all_threads_scratch_.end(), background.begin(),
                                background.end());
    place_threads_into(all_threads_scratch_, config_, placement_scratch_,
                       order_scratch_);
    const Placement& placement = placement_scratch_;
    schedule_.cpu_max_util = placement.max_util;
    schedule_.cpu_avg_util = placement.avg_util;

    // --- GPU demand (needed before the memory contention computation) ------
    const double gpu_demand_hz =
        foreground.gpu_load * gpu_opps_.max().frequency_hz;
    const double gpu_achieved_hz = std::min(gpu_demand_hz, config_.gpu_freq_hz);
    const double gpu_busy =
        std::min(gpu_achieved_hz / config_.gpu_freq_hz +
                     power_params_.gpu_idle_util,
                 1.0);
    schedule_.gpu_busy = gpu_busy;

    // --- Memory bandwidth saturation ---------------------------------------
    // Each foreground work unit occupies the DDR for mem_seconds_per_unit at
    // full bandwidth, so the feasibility constraint is
    //     sum_t rate_t * m_t + bg_traffic <= cpu_cap,
    // with rate_t = share_t / (c_t/(ipc*f) + m_t * x) and x >= 1 a common
    // queueing-slowdown factor. We find the smallest feasible x by fixed-point
    // iteration. rate_t stays monotone non-decreasing in f (saturating at the
    // bandwidth bound), which is what makes DVFS throttling nearly free for
    // bandwidth-bound multithreaded workloads -- the paper's matmul behaviour.
    const double gpu_bw = gpu_busy * power_params_.mem_gpu_traffic_weight;
    const double cpu_cap =
        std::max(0.15, power_params_.mem_bandwidth_cap - gpu_bw);
    constexpr double kBackgroundBwCoeff = 0.3;
    double bg_bw = 0.0;
    for (const auto& placed : placement.threads) {
      if (placed.demand.cpu_cycles_per_unit <= 0.0) {
        bg_bw += placed.share * placed.demand.mem_intensity * kBackgroundBwCoeff;
      }
    }
    auto fg_bw_demand = [&](double x) {
      double d = 0.0;
      for (const auto& placed : placement.threads) {
        const auto& td = placed.demand;
        if (td.cpu_cycles_per_unit <= 0.0 || td.mem_seconds_per_unit <= 0.0) {
          continue;
        }
        const double t_unit =
            td.cpu_cycles_per_unit / (ipc * f_cpu) + td.mem_seconds_per_unit * x;
        d += placed.share / t_unit * td.mem_seconds_per_unit;
      }
      return d;
    };
    // Demand is strictly decreasing in the slowdown x, so bisection gives the
    // exact equilibrium; the precision matters because any residual would make
    // progress non-monotone in frequency.
    const double fg_bw_unit = fg_bw_demand(1.0);
    double slowdown = 1.0;
    double fg_bw_final = fg_bw_unit;
    if (fg_bw_unit + bg_bw > cpu_cap) {
      double lo = 1.0, hi = 2.0;
      while (fg_bw_demand(hi) + bg_bw > cpu_cap && hi < 1e6) hi *= 2.0;
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (fg_bw_demand(mid) + bg_bw > cpu_cap ? lo : hi) = mid;
      }
      slowdown = 0.5 * (lo + hi);
      fg_bw_final = fg_bw_demand(slowdown);
    }

    // Per-physical-core effective switching activity and progress. Stalled
    // cycles do not switch, so contention also scales the activity factor.
    schedule_.core_activity.fill(0.0);
    double cpu_progress_rate = 0.0;  // units/s from foreground threads
    for (const auto& placed : placement.threads) {
      const auto& td = placed.demand;
      double stall_scale = 1.0;
      if (td.cpu_cycles_per_unit > 0.0 && td.mem_seconds_per_unit > 0.0 &&
          slowdown > 1.0) {
        const double cpu_time = td.cpu_cycles_per_unit / (ipc * f_cpu);
        stall_scale = (cpu_time + td.mem_seconds_per_unit) /
                      (cpu_time + td.mem_seconds_per_unit * slowdown);
      }
      schedule_.core_activity[placed.core] +=
          placed.share * stall_scale * td.cpu_activity;
      if (td.counts_progress && td.cpu_cycles_per_unit > 0.0) {
        const double seconds_per_unit =
            td.cpu_cycles_per_unit / (ipc * f_cpu) +
            td.mem_seconds_per_unit * slowdown;
        cpu_progress_rate += placed.share / seconds_per_unit;
      }
    }
    schedule_.mem_traffic = std::min(fg_bw_final + bg_bw + gpu_bw,
                                     power_params_.mem_bandwidth_cap);

    schedule_.progress_rate = cpu_progress_rate;
    if (foreground.gpu_cycles_per_unit > 0.0) {
      const double gpu_rate = gpu_achieved_hz / foreground.gpu_cycles_per_unit;
      schedule_.progress_rate = std::min(cpu_progress_rate, gpu_rate);
    }
  }

  out.cpu_max_util = schedule_.cpu_max_util;
  out.cpu_avg_util = schedule_.cpu_avg_util;
  out.gpu_util = schedule_.gpu_busy;
  const double gpu_v = v_gpu_;
  const double gpu_busy = schedule_.gpu_busy;
  const double mem_traffic = schedule_.mem_traffic;
  const double progress_rate = schedule_.progress_rate;
  const std::array<double, kBigCoreCount>& core_activity =
      schedule_.core_activity;

  // --- CPU cluster power ------------------------------------------------
  auto& rails = out.rail_power_w;
  if (big_active) {
    const int online = std::max(config_.online_big_cores(), 1);
    // Shared uncore clocked with the cluster; driven by the busiest core and
    // spread evenly over the online cores' thermal nodes.
    double max_activity = 0.0;
    for (int c = 0; c < kBigCoreCount; ++c) {
      if (config_.big_core_online[c]) {
        max_activity = std::max(
            max_activity, std::min(core_activity[c] + idle_activity, 1.0));
      }
    }
    const double uncore_w = power::dynamic_power_w(
        max_activity * power_params_.big_uncore_alpha_c, v_cpu, f_cpu);
    for (int c = 0; c < kBigCoreCount; ++c) {
      double p_core = 0.0;
      const double core_leak_w = big_leak_.power_w(big_temps_c[c], v_cpu) /
                                 double(kBigCoreCount);
      if (config_.big_core_online[c]) {
        const double act = std::min(core_activity[c] + idle_activity, 1.0);
        p_core = power::dynamic_power_w(act * core_alpha_c_max, v_cpu, f_cpu) +
                 core_leak_w + uncore_w / double(online);
      } else {
        p_core = core_leak_w * power_params_.offline_core_leakage_fraction;
      }
      out.big_core_power_w[c] = p_core;
      rails[power::resource_index(power::Resource::kBigCluster)] += p_core;
    }
    // Little cluster parked: residual leakage only.
    rails[power::resource_index(power::Resource::kLittleCluster)] =
        little_leak_.power_w(little_temp_c,
                             little_opps_.min().voltage_v) *
        power_params_.inactive_cluster_leakage_fraction;
  } else {
    // Little cluster active; big cores power-collapsed.
    double p_little = little_leak_.power_w(little_temp_c, v_cpu);
    double max_activity = 0.0;
    for (int c = 0; c < kLittleCoreCount; ++c) {
      const double act = std::min(core_activity[c] + idle_activity, 1.0);
      max_activity = std::max(max_activity, act);
      p_little += power::dynamic_power_w(act * core_alpha_c_max, v_cpu, f_cpu);
    }
    p_little += power::dynamic_power_w(
        max_activity * power_params_.little_uncore_alpha_c, v_cpu, f_cpu);
    rails[power::resource_index(power::Resource::kLittleCluster)] = p_little;
    const double big_residual =
        big_leak_.power_w(big_temps_c[0], big_opps_.min().voltage_v) *
        power_params_.inactive_cluster_leakage_fraction;
    for (int c = 0; c < kBigCoreCount; ++c) {
      out.big_core_power_w[c] = big_residual / double(kBigCoreCount);
      rails[power::resource_index(power::Resource::kBigCluster)] +=
          out.big_core_power_w[c];
    }
  }

  // --- GPU power ----------------------------------------------------------
  rails[power::resource_index(power::Resource::kGpu)] =
      power::dynamic_power_w(gpu_busy * power_params_.gpu_alpha_c_max, gpu_v,
                             config_.gpu_freq_hz) +
      gpu_leak_.power_w(gpu_temp_c, gpu_v);

  // --- Memory power ---------------------------------------------------------
  const double mem_activity = mem_traffic;
  rails[power::resource_index(power::Resource::kMem)] =
      power_params_.mem_base_w +
      mem_activity * power_params_.mem_dynamic_max_w +
      mem_leak_.power_w(mem_temp_c, power_params_.mem_nominal_voltage_v);

  // --- Progress (with cluster-migration stall) -------------------------------
  out.progress_units = progress_rate * consume_migration_stall(dt_s);
  return out;
}

SocIntervalConstants Soc::interval_constants() const {
  SocIntervalConstants k;
  k.big_active = config_.active_cluster == ClusterId::kBig;
  const double f_cpu =
      k.big_active ? config_.big_freq_hz : config_.little_freq_hz;
  const double v_cpu = k.big_active ? v_big_ : v_little_;
  const double core_alpha_c_max = k.big_active
                                      ? power_params_.big_core_alpha_c_max
                                      : power_params_.little_core_alpha_c_max;
  const double idle_activity = k.big_active
                                   ? power_params_.big_idle_activity
                                   : power_params_.little_idle_activity;

  if (k.big_active) {
    const int online = std::max(config_.online_big_cores(), 1);
    double max_activity = 0.0;
    for (int c = 0; c < kBigCoreCount; ++c) {
      if (config_.big_core_online[c]) {
        max_activity = std::max(
            max_activity,
            std::min(schedule_.core_activity[c] + idle_activity, 1.0));
      }
    }
    const double uncore_w = power::dynamic_power_w(
        max_activity * power_params_.big_uncore_alpha_c, v_cpu, f_cpu);
    for (int c = 0; c < kBigCoreCount; ++c) {
      k.core_leak0_mult[c] = 0.0;
      if (config_.big_core_online[c]) {
        const double act =
            std::min(schedule_.core_activity[c] + idle_activity, 1.0);
        k.core_const_w[c] =
            power::dynamic_power_w(act * core_alpha_c_max, v_cpu, f_cpu) +
            uncore_w / double(online);
        k.core_leak_mult[c] = 1.0 / double(kBigCoreCount);
      } else {
        k.core_const_w[c] = 0.0;
        k.core_leak_mult[c] = power_params_.offline_core_leakage_fraction /
                              double(kBigCoreCount);
      }
    }
    k.big_leak = big_leak_.coeffs_at(v_cpu);
    k.little_leak = little_leak_.coeffs_at(little_opps_.min().voltage_v);
    k.little_const_w = 0.0;
    k.little_leak_mult = power_params_.inactive_cluster_leakage_fraction;
  } else {
    double little_dyn = 0.0;
    double max_activity = 0.0;
    for (int c = 0; c < kLittleCoreCount; ++c) {
      const double act =
          std::min(schedule_.core_activity[c] + idle_activity, 1.0);
      max_activity = std::max(max_activity, act);
      little_dyn +=
          power::dynamic_power_w(act * core_alpha_c_max, v_cpu, f_cpu);
    }
    little_dyn += power::dynamic_power_w(
        max_activity * power_params_.little_uncore_alpha_c, v_cpu, f_cpu);
    k.little_leak = little_leak_.coeffs_at(v_cpu);
    k.little_const_w = little_dyn;
    k.little_leak_mult = 1.0;
    k.big_leak = big_leak_.coeffs_at(big_opps_.min().voltage_v);
    for (int c = 0; c < kBigCoreCount; ++c) {
      k.core_const_w[c] = 0.0;
      k.core_leak_mult[c] = 0.0;
      k.core_leak0_mult[c] =
          power_params_.inactive_cluster_leakage_fraction /
          double(kBigCoreCount);
    }
  }

  k.gpu_leak = gpu_leak_.coeffs_at(v_gpu_);
  k.gpu_const_w = power::dynamic_power_w(
      schedule_.gpu_busy * power_params_.gpu_alpha_c_max, v_gpu_,
      config_.gpu_freq_hz);
  k.mem_leak = mem_leak_.coeffs_at(power_params_.mem_nominal_voltage_v);
  k.mem_const_w = power_params_.mem_base_w +
                  schedule_.mem_traffic * power_params_.mem_dynamic_max_w;
  k.progress_rate = schedule_.progress_rate;
  return k;
}

}  // namespace dtpm::soc
