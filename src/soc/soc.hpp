// The platform plant: a Samsung Exynos 5410-like MPSoC behavioural model.
//
// Given the applied SocConfig (cluster, hotplug mask, frequencies) and the
// instantaneous workload demand, the Soc computes the *true* per-rail power
// draw (with the full nonlinear leakage physics, including effects the
// paper's fitted models deliberately do not capture) and the rate at which
// the foreground workload makes progress. The DTPM stack never calls into
// this class directly -- it sees the platform only through sensor models and
// actuates only through SocConfig, mirroring the hardware/software boundary
// on the real board.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "power/leakage.hpp"
#include "power/opp.hpp"
#include "power/resource.hpp"
#include "soc/scheduler.hpp"
#include "soc/state.hpp"
#include "workload/runtime.hpp"

namespace dtpm::soc {

/// Ground-truth power parameters of the plant. Leakage parameters are
/// cluster-level (the rails meter whole clusters); per-core leakage is an
/// equal split among online cores. dibl_exponent is non-zero here: the true
/// silicon's subthreshold leakage rises with supply voltage, a structural
/// effect the paper's furnace-fitted model (single fixed voltage) folds into
/// its constants.
struct PlantPowerParams {
  power::LeakageParams big_leakage{3.9e-3, -2640.0, 0.005, 1.20, 1.5};
  power::LeakageParams little_leakage{1.0e-3, -2640.0, 0.002, 1.04, 1.5};
  power::LeakageParams gpu_leakage{2.0e-3, -2600.0, 0.003, 1.05, 1.5};
  power::LeakageParams mem_leakage{0.5e-3, -2700.0, 0.004, 1.20, 1.0};

  /// Per-core switching capacitance at activity factor 1.0.
  double big_core_alpha_c_max = 0.22e-9;
  double little_core_alpha_c_max = 0.06e-9;
  double gpu_alpha_c_max = 1.6e-9;

  /// Shared-uncore (L2, interconnect) switching capacitance; clocked with
  /// the cluster and driven by the busiest core's activity. This is why a
  /// single hot thread draws a large fraction of the power four threads do
  /// on the real A15 cluster.
  double big_uncore_alpha_c = 0.75e-9;
  double little_uncore_alpha_c = 0.15e-9;

  /// Clock-tree switching overhead, as activity, per online core.
  double big_idle_activity = 0.05;
  double little_idle_activity = 0.05;
  double gpu_idle_util = 0.02;

  /// Memory bandwidth ceiling in normalized traffic units: when the summed
  /// thread+GPU demand exceeds it, every thread's effective share (hence
  /// both its switching power and progress) scales back proportionally --
  /// the DDR contention that makes multithreaded power strongly sublinear
  /// in thread count.
  double mem_bandwidth_cap = 1.0;

  /// Residual leakage fraction of a power-gated core / parked cluster.
  double offline_core_leakage_fraction = 0.03;
  double inactive_cluster_leakage_fraction = 0.02;

  /// Memory rail model: base + traffic-proportional dynamic power.
  double mem_dynamic_max_w = 0.65;
  double mem_base_w = 0.08;
  double mem_gpu_traffic_weight = 0.35;
  double mem_nominal_voltage_v = 1.2;
  double mem_nominal_frequency_hz = 800e6;
};

bool operator==(const PlantPowerParams& a, const PlantPowerParams& b);

/// Performance model parameters.
struct PerfParams {
  double big_ipc_scale = 1.0;
  /// A7 retired work per cycle relative to A15 (out-of-order vs in-order).
  double little_ipc_scale = 0.45;
  /// Progress stall when migrating between clusters (§5.2: migrating across
  /// clusters has a larger overhead).
  double cluster_switch_stall_s = 0.05;
};

bool operator==(const PerfParams& a, const PerfParams& b);

/// The temperature-independent inputs of Soc::step's power/progress phase
/// for the current schedule and applied config, captured once per control
/// interval. Combined with per-substep temperatures these reproduce
/// step(reuse_schedule=true) up to floating-point reassociation -- the
/// contract the structure-of-arrays batch kernel (sim/batch_lane.cpp)
/// relies on to evaluate many lanes' power models in one vectorized pass.
///
/// The per-core formula is branch-free across cluster modes:
///
///   p_core[c] = core_const_w[c]
///             + core_leak_mult[c]   * big_leak(T_core[c])
///             + core_leak0_mult[c]  * big_leak(T_core[0])
///
/// Big-cluster-active lanes use the per-core term (const = dynamic + uncore
/// share, mult = 1/4 online or offline_fraction/4); little-active lanes use
/// the shared core-0 residual term exactly as the scalar path does.
struct SocIntervalConstants {
  bool big_active = true;
  std::array<double, kBigCoreCount> core_const_w{};
  std::array<double, kBigCoreCount> core_leak_mult{};
  std::array<double, kBigCoreCount> core_leak0_mult{};
  power::LeakageCoeffs big_leak;  ///< at v_cpu (big active) / big min V
  /// Little rail: little_const_w + little_leak_mult * little_leak(T_little).
  power::LeakageCoeffs little_leak;
  double little_const_w = 0.0;
  double little_leak_mult = 1.0;
  /// GPU rail: gpu_const_w + gpu_leak(T_gpu).
  power::LeakageCoeffs gpu_leak;
  double gpu_const_w = 0.0;
  /// Memory rail: mem_const_w + mem_leak(T_mem).
  power::LeakageCoeffs mem_leak;
  double mem_const_w = 0.0;
  double progress_rate = 0.0;  ///< work units per effective second
};

/// True plant outputs for one interval.
struct SocStepResult {
  power::ResourceVector rail_power_w{};
  std::array<double, kBigCoreCount> big_core_power_w{};
  /// Foreground workload progress during the interval, in work units.
  double progress_units = 0.0;
  double cpu_max_util = 0.0;
  double cpu_avg_util = 0.0;
  double gpu_util = 0.0;
};

class Soc {
 public:
  Soc() : Soc(PlantPowerParams{}, PerfParams{}) {}
  /// Default Exynos-5410 OPP tables (Tables 6.1-6.3).
  Soc(const PlantPowerParams& power_params, const PerfParams& perf_params);
  /// Platform-specific DVFS domains: the tables a sim::PlatformDescriptor
  /// carries as data.
  Soc(const PlantPowerParams& power_params, const PerfParams& perf_params,
      power::OppTable big_opps, power::OppTable little_opps,
      power::OppTable gpu_opps);

  const power::OppTable& big_opps() const { return big_opps_; }
  const power::OppTable& little_opps() const { return little_opps_; }
  const power::OppTable& gpu_opps() const { return gpu_opps_; }

  /// Applies a new actuation state. Frequencies must be exact OPP entries
  /// and at least one big core must stay online while the big cluster is
  /// active; throws std::invalid_argument otherwise. Switching the active
  /// cluster incurs the migration stall on the next step.
  void apply(const SocConfig& config);

  const SocConfig& config() const { return config_; }

  /// Advances the plant by dt seconds: places foreground + background
  /// threads, computes true rail powers using the supplied true node
  /// temperatures (leakage feedback), and returns workload progress.
  ///
  /// `reuse_schedule` skips the workload-schedule phase (thread placement,
  /// GPU demand, memory-contention equilibrium, per-core activity, progress
  /// rate) and reuses the previous call's results. Those quantities are pure
  /// functions of (foreground, background, applied config), so a caller that
  /// holds them fixed across consecutive substeps -- Plant::advance within
  /// one control interval -- gets bit-identical outputs at a fraction of the
  /// cost: only the temperature-dependent leakage is re-evaluated.
  SocStepResult step(const workload::Demand& foreground,
                     const std::vector<workload::ThreadDemand>& background,
                     const std::array<double, kBigCoreCount>& big_temps_c,
                     double little_temp_c, double gpu_temp_c,
                     double mem_temp_c, double dt_s,
                     bool reuse_schedule = false);

  /// Captures the temperature-independent power/progress inputs of the
  /// current schedule + applied config (see SocIntervalConstants). Call
  /// after the first (reuse_schedule=false) step of a control interval.
  SocIntervalConstants interval_constants() const;

  /// Consumes up to dt_s of the pending cluster-migration stall and returns
  /// the effective progress time -- exactly step()'s stall rule, exposed so
  /// an external power kernel can advance progress identically.
  double consume_migration_stall(double dt_s) {
    double effective_dt = dt_s;
    if (migration_stall_remaining_s_ > 0.0) {
      const double consumed = std::min(migration_stall_remaining_s_, dt_s);
      migration_stall_remaining_s_ -= consumed;
      effective_dt -= consumed;
    }
    return effective_dt;
  }

  const PlantPowerParams& power_params() const { return power_params_; }
  const PerfParams& perf_params() const { return perf_params_; }

  /// Interval-invariant schedule outputs, valid while the workload and the
  /// applied config are unchanged (see step()'s reuse_schedule).
  struct Schedule {
    double cpu_max_util = 0.0;
    double cpu_avg_util = 0.0;
    double gpu_busy = 0.0;
    double mem_traffic = 0.0;
    double progress_rate = 0.0;
    std::array<double, kBigCoreCount> core_activity{};
  };

  /// The schedule computed by the last reuse_schedule=false step().
  const Schedule& schedule() const { return schedule_; }
  /// Installs a schedule solved on another Soc with identical (demand,
  /// background, applied config) inputs -- the solve is a pure function of
  /// those, so adopting it and calling step(reuse_schedule=true) is
  /// bit-identical to solving locally. This is the lockstep lanes'
  /// per-equivalence-class schedule memo.
  void adopt_schedule(const Schedule& s) { schedule_ = s; }

 private:
  PlantPowerParams power_params_;
  PerfParams perf_params_;
  power::OppTable big_opps_;
  power::OppTable little_opps_;
  power::OppTable gpu_opps_;
  power::LeakageModel big_leak_;
  power::LeakageModel little_leak_;
  power::LeakageModel gpu_leak_;
  power::LeakageModel mem_leak_;
  SocConfig config_;
  double migration_stall_remaining_s_ = 0.0;

  // Voltages of the applied frequencies, resolved once per apply() instead
  // of once per substep (the OPP lookup is a linear scan).
  double v_big_ = 0.0;
  double v_little_ = 0.0;
  double v_gpu_ = 0.0;

  // Reusable step() scratch (capacities persist across substeps so the hot
  // path performs no heap allocation).
  std::vector<workload::ThreadDemand> all_threads_scratch_;
  Placement placement_scratch_;
  std::vector<std::size_t> order_scratch_;

  Schedule schedule_;
};

}  // namespace dtpm::soc
