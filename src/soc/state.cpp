#include "soc/state.hpp"

namespace dtpm::soc {

const char* to_string(ClusterId c) {
  return c == ClusterId::kBig ? "big" : "little";
}

int SocConfig::online_big_cores() const {
  int n = 0;
  for (bool online : big_core_online) n += online ? 1 : 0;
  return n;
}

int SocConfig::schedulable_cores() const {
  return active_cluster == ClusterId::kBig ? online_big_cores()
                                           : kLittleCoreCount;
}

double PlatformView::max_big_temp_c() const {
  double best = big_temps_c[0];
  for (double t : big_temps_c) best = best < t ? t : best;
  return best;
}

std::size_t PlatformView::hottest_big_core() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < big_temps_c.size(); ++i) {
    if (big_temps_c[i] > big_temps_c[best]) best = i;
  }
  return best;
}

}  // namespace dtpm::soc
