// Platform actuation state and observation view.
//
// SocConfig is everything a governor can actuate on the Exynos 5410:
// which cluster is active (the 5410 runs in cluster-migration mode -- only
// the big or the little cluster at a time, §6.1.1), which big cores are
// online (hotplug), and the three DVFS domain frequencies. PlatformView is
// everything a governor can observe: sensor temperatures, rail powers,
// utilizations and the currently applied config.
#pragma once

#include <array>
#include <cstddef>

#include "power/resource.hpp"

namespace dtpm::soc {

inline constexpr int kBigCoreCount = 4;
inline constexpr int kLittleCoreCount = 4;

enum class ClusterId {
  kBig,
  kLittle,
};

const char* to_string(ClusterId c);

/// Full actuation state of the platform.
struct SocConfig {
  ClusterId active_cluster = ClusterId::kBig;
  /// Hotplug mask of the big cores; ignored while the little cluster is
  /// active. At least one core must stay online when the big cluster is
  /// active.
  std::array<bool, kBigCoreCount> big_core_online{true, true, true, true};
  double big_freq_hz = 1.6e9;
  double little_freq_hz = 1.2e9;
  double gpu_freq_hz = 533e6;

  int online_big_cores() const;
  /// Number of cores available for scheduling under this config.
  int schedulable_cores() const;
};

inline bool operator==(const SocConfig& a, const SocConfig& b) {
  return a.active_cluster == b.active_cluster &&
         a.big_core_online == b.big_core_online &&
         a.big_freq_hz == b.big_freq_hz &&
         a.little_freq_hz == b.little_freq_hz && a.gpu_freq_hz == b.gpu_freq_hz;
}

/// Everything the governors can see at a control interval boundary.
struct PlatformView {
  double time_s = 0.0;
  /// Per-big-core sensor temperatures (the thermal hotspots).
  std::array<double, kBigCoreCount> big_temps_c{};
  /// Per-rail power sensor readings.
  power::ResourceVector rail_power_w{};
  /// External platform meter reading (SoC + fan + display + board).
  double platform_power_w = 0.0;
  /// Max / average per-core utilization on the active CPU cluster.
  double cpu_max_util = 0.0;
  double cpu_avg_util = 0.0;
  double gpu_util = 0.0;
  SocConfig config;

  double max_big_temp_c() const;
  /// Index of the hottest big core.
  std::size_t hottest_big_core() const;
};

}  // namespace dtpm::soc
