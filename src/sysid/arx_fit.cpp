#include "sysid/arx_fit.hpp"

#include <cmath>
#include <stdexcept>

namespace dtpm::sysid {

ArxFitResult fit_thermal_model(const std::vector<TraceSegment>& segments,
                               double ts_s, const ArxFitOptions& options) {
  if (segments.empty()) {
    throw std::invalid_argument("fit_thermal_model: no segments");
  }
  const std::size_t n_state = segments.front().temps_c.empty()
                                  ? 0
                                  : segments.front().temps_c.front().size();
  const std::size_t n_input = segments.front().powers_w.empty()
                                  ? 0
                                  : segments.front().powers_w.front().size();
  if (n_state == 0 || n_input == 0) {
    throw std::invalid_argument("fit_thermal_model: empty segment");
  }

  std::size_t n_rows = 0;
  for (const auto& seg : segments) {
    if (seg.temps_c.size() != seg.powers_w.size()) {
      throw std::invalid_argument(
          "fit_thermal_model: temps/powers length mismatch");
    }
    if (seg.temps_c.size() >= 2) n_rows += seg.temps_c.size() - 1;
  }
  const std::size_t n_cols = n_state + n_input;
  if (n_rows < n_cols) {
    throw std::invalid_argument("fit_thermal_model: insufficient samples");
  }

  util::Matrix x(n_rows, n_cols);
  util::Matrix y(n_rows, n_state);
  std::size_t row = 0;
  for (const auto& seg : segments) {
    for (std::size_t k = 0; k + 1 < seg.temps_c.size(); ++k) {
      const auto& t_now = seg.temps_c[k];
      const auto& p_now = seg.powers_w[k];
      const auto& t_next = seg.temps_c[k + 1];
      if (t_now.size() != n_state || p_now.size() != n_input ||
          t_next.size() != n_state) {
        throw std::invalid_argument("fit_thermal_model: ragged sample");
      }
      for (std::size_t j = 0; j < n_state; ++j) {
        x(row, j) = t_now[j] - options.ambient_ref_c;
        y(row, j) = t_next[j] - options.ambient_ref_c;
      }
      for (std::size_t j = 0; j < n_input; ++j) x(row, n_state + j) = p_now[j];
      ++row;
    }
  }

  // Y = X * [A'; B']  =>  theta is (n_state + n_input) x n_state.
  const util::Matrix theta = x.least_squares(y, options.ridge);

  ArxFitResult result;
  result.model.a = util::Matrix(n_state, n_state);
  result.model.b = util::Matrix(n_state, n_input);
  for (std::size_t i = 0; i < n_state; ++i) {
    for (std::size_t j = 0; j < n_state; ++j) result.model.a(i, j) = theta(j, i);
    for (std::size_t j = 0; j < n_input; ++j) {
      result.model.b(i, j) = theta(n_state + j, i);
    }
  }
  result.model.ts_s = ts_s;
  result.model.ambient_ref_c = options.ambient_ref_c;
  result.sample_count = n_rows;

  // One-step residual RMS over the training data.
  double sum_sq = 0.0;
  std::size_t count = 0;
  const util::Matrix y_hat = x * theta;
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::size_t j = 0; j < n_state; ++j) {
      const double e = y_hat(r, j) - y(r, j);
      sum_sq += e * e;
      ++count;
    }
  }
  result.rms_residual_c = std::sqrt(sum_sq / double(count));
  return result;
}

}  // namespace dtpm::sysid
