// Least-squares identification of the thermal state-space model (§4.2.1).
//
// The paper records power/temperature time series while exciting one power
// resource at a time with a PRBS, then uses the MATLAB System Identification
// Toolbox to obtain (A_s, B_s). This module replaces the toolbox with an
// explicit ridge-regularized least-squares ARX fit over the concatenated
// excitation segments: regressors [T[k] - T_amb, P[k]], targets
// T[k+1] - T_amb, solved jointly for all rows.
#pragma once

#include <vector>

#include "sysid/thermal_model.hpp"

namespace dtpm::sysid {

/// One contiguous recording: temps[k] and powers[k] sampled at ts seconds.
/// Regression pairs never straddle a segment boundary.
struct TraceSegment {
  std::vector<std::vector<double>> temps_c;   ///< [k][node]
  std::vector<std::vector<double>> powers_w;  ///< [k][resource]
};

/// Fit options.
struct ArxFitOptions {
  double ridge = 1e-8;          ///< Tikhonov regularization for conditioning
  double ambient_ref_c = 25.0;  ///< reference subtracted from temperatures
};

/// Result with residual diagnostics.
struct ArxFitResult {
  ThermalStateModel model;
  double rms_residual_c = 0.0;     ///< one-step-ahead RMS error over the data
  std::size_t sample_count = 0;
};

/// Fits T[k+1] = A T[k] + B P[k] from the segments.
/// @throws std::invalid_argument on inconsistent dimensions or insufficient
///         samples (fewer rows than unknowns).
ArxFitResult fit_thermal_model(const std::vector<TraceSegment>& segments,
                               double ts_s, const ArxFitOptions& options = {});

}  // namespace dtpm::sysid
