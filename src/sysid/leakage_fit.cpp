#include "sysid/leakage_fit.hpp"

#include <cmath>
#include <stdexcept>

#include "util/matrix.hpp"

namespace dtpm::sysid {
namespace {

struct LinearFit {
  double alpha_c = 0.0;
  double c1 = 0.0;
  double i_gate = 0.0;
  double rms = 0.0;
};

/// For a fixed c2 the model P = alphaC*(V^2 f) + c1*(V T^2 e^{c2/T}) +
/// i_gate*V is linear; solve by least squares and return the residual.
LinearFit solve_linear(const std::vector<FurnaceSample>& samples, double c2,
                       bool fit_dynamic_term) {
  const std::size_t n_cols = fit_dynamic_term ? 3 : 2;
  util::Matrix x(samples.size(), n_cols);
  util::Matrix y(samples.size(), 1);
  // Scale columns to comparable magnitude for conditioning.
  const double scale_dyn = 1e9, scale_sub = 1e4;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    const double t_k = power::celsius_to_kelvin(s.temp_c);
    std::size_t col = 0;
    if (fit_dynamic_term) {
      x(i, col++) = s.vdd_v * s.vdd_v * s.frequency_hz / scale_dyn;
    }
    x(i, col++) = s.vdd_v * t_k * t_k * std::exp(c2 / t_k) / scale_sub;
    x(i, col) = s.vdd_v;
    y(i, 0) = s.total_power_w;
  }
  const util::Matrix theta = x.least_squares(y, 1e-12);
  LinearFit fit;
  std::size_t row = 0;
  fit.alpha_c = fit_dynamic_term ? theta(row++, 0) / scale_dyn : 0.0;
  fit.c1 = theta(row++, 0) / scale_sub;
  fit.i_gate = theta(row, 0);
  double sum_sq = 0.0;
  const util::Matrix y_hat = x * theta;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double e = y_hat(i, 0) - y(i, 0);
    sum_sq += e * e;
  }
  fit.rms = std::sqrt(sum_sq / double(samples.size()));
  return fit;
}

}  // namespace

LeakageFitResult fit_leakage(const std::vector<FurnaceSample>& samples,
                             const LeakageFitOptions& options) {
  if (samples.size() < 4) {
    throw std::invalid_argument("fit_leakage: need at least 4 samples");
  }
  double t_min = samples.front().temp_c, t_max = samples.front().temp_c;
  double v_sum = 0.0;
  for (const auto& s : samples) {
    t_min = std::min(t_min, s.temp_c);
    t_max = std::max(t_max, s.temp_c);
    v_sum += s.vdd_v;
  }
  if (t_max - t_min < 5.0) {
    throw std::invalid_argument("fit_leakage: temperature spread too small");
  }

  // Golden-section search over c2 (the residual is unimodal in practice).
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = options.c2_min_k;
  double hi = options.c2_max_k;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = solve_linear(samples, x1, options.fit_dynamic_term).rms;
  double f2 = solve_linear(samples, x2, options.fit_dynamic_term).rms;
  for (unsigned it = 0; it < options.golden_iterations; ++it) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = solve_linear(samples, x1, options.fit_dynamic_term).rms;
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = solve_linear(samples, x2, options.fit_dynamic_term).rms;
    }
  }
  const double c2 = 0.5 * (lo + hi);
  LinearFit best = solve_linear(samples, c2, options.fit_dynamic_term);

  LeakageFitResult result;
  result.params.c1 = std::max(best.c1, 0.0);
  result.params.c2_k = c2;
  result.params.i_gate_a = std::max(best.i_gate, 0.0);
  result.params.v_ref = v_sum / double(samples.size());
  result.params.dibl_exponent = 0.0;  // the paper's fitted form
  result.alpha_c_light = std::max(best.alpha_c, 0.0);
  result.rms_residual_w = best.rms;
  return result;
}

}  // namespace dtpm::sysid
