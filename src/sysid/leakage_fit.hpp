// Leakage characterization from furnace measurements (§4.1.1, Figs. 4.1-4.3).
//
// The furnace pins the ambient temperature while a light, fixed-(f, V)
// workload runs, so any change in total power with temperature is leakage.
// The paper condenses Eq. 4.2 into P_total(T) = P_dyn + V*(c1 T^2 e^{c2/T} +
// I_gate) and fits (c1, c2, I_gate) with a nonlinear fitting tool. A single
// temperature sweep cannot separate the constant dynamic power from the
// constant gate-leakage term, so the harness sweeps at two fixed operating
// points: the distinct (V^2 f) and (V) coefficients make all four unknowns
// (alphaC, c1, c2, I_gate) identifiable. The fit itself is separable least
// squares: for a candidate c2 the model is linear in the remaining
// parameters; a golden-section search minimizes the residual over c2.
#pragma once

#include <vector>

#include "power/leakage.hpp"

namespace dtpm::sysid {

/// One furnace measurement point.
struct FurnaceSample {
  double temp_c = 0.0;        ///< die temperature at measurement
  double total_power_w = 0.0; ///< rail power reading
  double vdd_v = 1.0;         ///< fixed supply during the run
  double frequency_hz = 1e9;  ///< fixed clock during the run
};

/// Fit output: the condensed leakage parameters of Eq. 4.2 plus the light
/// workload's activity-capacitance product (a by-product of the separation).
struct LeakageFitResult {
  power::LeakageParams params;  ///< dibl_exponent = 0 (paper's model form)
  double alpha_c_light = 0.0;   ///< F, of the characterization workload
  double rms_residual_w = 0.0;
};

/// Fit options.
struct LeakageFitOptions {
  double c2_min_k = -6000.0;
  double c2_max_k = -500.0;
  unsigned golden_iterations = 80;
  /// When false, the alphaC*(V^2 f) basis column is dropped and any constant
  /// (dynamic + base) power is absorbed into the gate-leakage term. Required
  /// for rails without a second operating point (memory), where the dynamic
  /// and gate terms are collinear.
  bool fit_dynamic_term = true;
};

/// Fits the leakage model. v_ref of the returned parameters is the mean
/// characterization voltage.
/// @throws std::invalid_argument with fewer than 4 samples or degenerate
///         temperature spread.
LeakageFitResult fit_leakage(const std::vector<FurnaceSample>& samples,
                             const LeakageFitOptions& options = {});

}  // namespace dtpm::sysid
