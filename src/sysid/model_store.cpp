#include "sysid/model_store.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dtpm::sysid {
namespace {

constexpr const char* kMagic = "dtpm-model-v1";

util::Matrix read_matrix(std::istream& in, std::size_t rows, std::size_t cols) {
  util::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (!(in >> m(i, j))) {
        throw std::runtime_error("load_model: truncated matrix");
      }
    }
  }
  return m;
}

}  // namespace

void save_model(const IdentifiedPlatformModel& model, std::ostream& out) {
  out << kMagic << "\n";
  out << std::setprecision(17);
  out << "ts " << model.thermal.ts_s << "\n";
  out << "ambient_ref " << model.thermal.ambient_ref_c << "\n";
  out << "A " << model.thermal.a.rows() << " " << model.thermal.a.cols() << "\n";
  for (std::size_t i = 0; i < model.thermal.a.rows(); ++i) {
    for (std::size_t j = 0; j < model.thermal.a.cols(); ++j) {
      out << model.thermal.a(i, j) << (j + 1 < model.thermal.a.cols() ? " " : "\n");
    }
  }
  out << "B " << model.thermal.b.rows() << " " << model.thermal.b.cols() << "\n";
  for (std::size_t i = 0; i < model.thermal.b.rows(); ++i) {
    for (std::size_t j = 0; j < model.thermal.b.cols(); ++j) {
      out << model.thermal.b(i, j) << (j + 1 < model.thermal.b.cols() ? " " : "\n");
    }
  }
  for (power::Resource r : power::all_resources()) {
    const auto& lk = model.leakage[power::resource_index(r)];
    out << "leakage " << power::to_string(r) << " " << lk.c1 << " " << lk.c2_k
        << " " << lk.i_gate_a << " " << lk.v_ref << " " << lk.dibl_exponent
        << "\n";
  }
  for (power::Resource r : power::all_resources()) {
    out << "alpha_c " << power::to_string(r) << " "
        << model.initial_alpha_c[power::resource_index(r)] << "\n";
  }
}

void save_model_file(const IdentifiedPlatformModel& model,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(model, out);
}

IdentifiedPlatformModel load_model(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::runtime_error("load_model: bad magic");
  }
  IdentifiedPlatformModel model;
  std::string token;
  auto expect = [&](const char* want) {
    if (!(in >> token) || token != want) {
      throw std::runtime_error(std::string("load_model: expected ") + want);
    }
  };
  expect("ts");
  in >> model.thermal.ts_s;
  expect("ambient_ref");
  in >> model.thermal.ambient_ref_c;
  expect("A");
  std::size_t rows = 0, cols = 0;
  in >> rows >> cols;
  model.thermal.a = read_matrix(in, rows, cols);
  expect("B");
  in >> rows >> cols;
  model.thermal.b = read_matrix(in, rows, cols);

  auto resource_from_name = [](const std::string& name) {
    for (power::Resource r : power::all_resources()) {
      if (name == power::to_string(r)) return r;
    }
    throw std::runtime_error("load_model: unknown resource " + name);
  };
  for (std::size_t i = 0; i < power::kResourceCount; ++i) {
    expect("leakage");
    std::string name;
    in >> name;
    auto& lk = model.leakage[power::resource_index(resource_from_name(name))];
    in >> lk.c1 >> lk.c2_k >> lk.i_gate_a >> lk.v_ref >> lk.dibl_exponent;
  }
  for (std::size_t i = 0; i < power::kResourceCount; ++i) {
    expect("alpha_c");
    std::string name;
    in >> name;
    in >> model.initial_alpha_c[power::resource_index(resource_from_name(name))];
  }
  if (!in) throw std::runtime_error("load_model: truncated file");
  return model;
}

IdentifiedPlatformModel load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
  return load_model(in);
}

}  // namespace dtpm::sysid
