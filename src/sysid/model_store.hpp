// Persistent bundle of everything the calibration workflow identifies: the
// thermal state-space model plus per-resource leakage parameters. The paper
// states the intent to "make our power and thermal models public"; the text
// format here is that artifact.
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "power/leakage.hpp"
#include "power/resource.hpp"
#include "sysid/thermal_model.hpp"

namespace dtpm::sysid {

/// Full identified platform model.
struct IdentifiedPlatformModel {
  ThermalStateModel thermal;
  std::array<power::LeakageParams, power::kResourceCount> leakage{};
  /// Initial alphaC seeds for the run-time estimators (F).
  std::array<double, power::kResourceCount> initial_alpha_c{};
};

/// Serializes to a small line-oriented text format.
void save_model(const IdentifiedPlatformModel& model, std::ostream& out);
void save_model_file(const IdentifiedPlatformModel& model,
                     const std::string& path);

/// Parses the format written by save_model.
/// @throws std::runtime_error on malformed input.
IdentifiedPlatformModel load_model(std::istream& in);
IdentifiedPlatformModel load_model_file(const std::string& path);

}  // namespace dtpm::sysid
