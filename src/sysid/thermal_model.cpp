#include "sysid/thermal_model.hpp"

#include <stdexcept>

namespace dtpm::sysid {
namespace {

util::Matrix to_delta_column(const std::vector<double>& temps_c,
                             double ambient_ref_c) {
  util::Matrix out(temps_c.size(), 1);
  for (std::size_t i = 0; i < temps_c.size(); ++i) {
    out(i, 0) = temps_c[i] - ambient_ref_c;
  }
  return out;
}

std::vector<double> from_delta_column(const util::Matrix& m,
                                      double ambient_ref_c) {
  std::vector<double> out(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) out[i] = m(i, 0) + ambient_ref_c;
  return out;
}

}  // namespace

std::vector<double> ThermalStateModel::predict_one(
    const std::vector<double>& temps_c,
    const std::vector<double>& powers_w) const {
  return predict_n(temps_c, powers_w, 1);
}

std::vector<double> ThermalStateModel::predict_n(
    const std::vector<double>& temps_c, const std::vector<double>& powers_w,
    unsigned n) const {
  if (temps_c.size() != state_dim() || powers_w.size() != input_dim()) {
    throw std::invalid_argument("ThermalStateModel: dimension mismatch");
  }
  if (n == 0) return temps_c;
  const auto [an, bn] = condensed(n);
  const util::Matrix t = to_delta_column(temps_c, ambient_ref_c);
  const util::Matrix p = util::Matrix::column(powers_w);
  return from_delta_column(an * t + bn * p, ambient_ref_c);
}

std::pair<util::Matrix, util::Matrix> ThermalStateModel::condensed(
    unsigned n) const {
  util::Matrix an = util::Matrix::identity(state_dim());
  util::Matrix bn(state_dim(), input_dim());
  // Horner-style accumulation: after i iterations, an = A^i and
  // bn = sum_{j=0}^{i-1} A^j B.
  for (unsigned i = 0; i < n; ++i) {
    bn = bn + an * b;
    an = an * a;
  }
  return {an, bn};
}

std::vector<double> ThermalStateModel::steady_state(
    const std::vector<double>& powers_w) const {
  if (powers_w.size() != input_dim()) {
    throw std::invalid_argument("ThermalStateModel: input dimension mismatch");
  }
  const util::Matrix lhs = util::Matrix::identity(state_dim()) - a;
  const util::Matrix rhs = b * util::Matrix::column(powers_w);
  return from_delta_column(lhs.solve(rhs), ambient_ref_c);
}

}  // namespace dtpm::sysid
