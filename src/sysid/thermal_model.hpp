// The identified discrete LTI thermal model of Eq. 4.4:
//
//     T[k+1] = A_s T[k] + B_s P[k]
//
// with T the four big-core hotspot temperatures and P the four rail powers
// [big, little, gpu, mem]. Temperatures are handled in Celsius relative to a
// fixed ambient reference: the physical network satisfies the affine
// relation T[k+1] = A T[k] + B P[k] + (I - A) T_amb, so identifying on
// (T - T_amb) makes the model strictly linear, matching the paper's form.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/matrix.hpp"

namespace dtpm::sysid {

/// Identified state-space thermal model.
struct ThermalStateModel {
  util::Matrix a;  ///< N x N state matrix
  util::Matrix b;  ///< N x M input matrix
  double ts_s = 0.1;        ///< sampling interval (the 100 ms control period)
  double ambient_ref_c = 25.0;  ///< reference subtracted before applying A/B

  std::size_t state_dim() const { return a.rows(); }
  std::size_t input_dim() const { return b.cols(); }

  /// One-step prediction (Eq. 4.4).
  std::vector<double> predict_one(const std::vector<double>& temps_c,
                                  const std::vector<double>& powers_w) const;

  /// n-step prediction with constant power over the horizon (Eq. 4.5).
  std::vector<double> predict_n(const std::vector<double>& temps_c,
                                const std::vector<double>& powers_w,
                                unsigned n) const;

  /// Condensed n-step matrices: (A^n, sum_{i=0}^{n-1} A^i B). The power
  /// budget computation of §5.1 inverts these at the prediction horizon.
  std::pair<util::Matrix, util::Matrix> condensed(unsigned n) const;

  /// Spectral radius of A; a physically meaningful identification yields a
  /// strictly stable model (radius < 1).
  double stability_radius() const { return a.spectral_radius(); }

  /// Steady-state temperatures for a constant power vector:
  /// T_ss = (I - A)^-1 B P + ambient_ref.
  std::vector<double> steady_state(const std::vector<double>& powers_w) const;
};

}  // namespace dtpm::sysid
