#include "thermal/compiled_rc_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "thermal/rc_network.hpp"
#include "util/matrix.hpp"

namespace dtpm::thermal {

namespace {
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
}  // namespace

CompiledRcModel::CompiledRcModel(const std::vector<ThermalNode>& nodes,
                                 const std::vector<ThermalEdge>& edges) {
  if (nodes.empty()) {
    throw std::invalid_argument("CompiledRcModel: no nodes");
  }
  node_count_ = nodes.size();

  capacitance_.resize(node_count_);
  free_slot_.assign(node_count_, kNoSlot);
  name_index_.reserve(node_count_);
  for (std::size_t i = 0; i < node_count_; ++i) {
    const ThermalNode& n = nodes[i];
    if (!n.is_boundary && n.capacitance_j_per_k <= 0.0) {
      throw std::invalid_argument("CompiledRcModel: non-positive capacitance at " +
                                  n.name);
    }
    capacitance_[i] = n.capacitance_j_per_k;
    if (n.is_boundary) {
      boundary_nodes_.push_back(i);
    } else {
      free_slot_[i] = free_nodes_.size();
      free_nodes_.push_back(i);
    }
    name_index_.emplace_back(n.name, i);
  }
  // Sorted by (name, index): duplicate names resolve to the lowest index,
  // exactly like a first-match linear scan.
  std::sort(name_index_.begin(), name_index_.end());

  edge_a_.reserve(edges.size());
  edge_b_.reserve(edges.size());
  edge_g_.reserve(edges.size());
  for (const ThermalEdge& e : edges) {
    if (e.node_a >= node_count_ || e.node_b >= node_count_) {
      throw std::invalid_argument("CompiledRcModel: edge index out of range");
    }
    if (e.node_a == e.node_b) {
      throw std::invalid_argument("CompiledRcModel: self-loop edge");
    }
    if (e.conductance_w_per_k <= 0.0) {
      throw std::invalid_argument("CompiledRcModel: non-positive conductance");
    }
    edge_a_.push_back(e.node_a);
    edge_b_.push_back(e.node_b);
    edge_g_.push_back(e.conductance_w_per_k);
  }

  // Gather CSR: two-pass fill so each free node's terms land in ascending
  // edge order (the accumulation order the reference integrator used).
  const std::size_t free_count = free_nodes_.size();
  csr_offset_.assign(free_count + 1, 0);
  for (std::size_t e = 0; e < edge_g_.size(); ++e) {
    if (free_slot_[edge_a_[e]] != kNoSlot) ++csr_offset_[free_slot_[edge_a_[e]] + 1];
    if (free_slot_[edge_b_[e]] != kNoSlot) ++csr_offset_[free_slot_[edge_b_[e]] + 1];
  }
  for (std::size_t fi = 0; fi < free_count; ++fi) {
    csr_offset_[fi + 1] += csr_offset_[fi];
  }
  const std::size_t term_count = csr_offset_[free_count];
  csr_other_.resize(term_count);
  csr_g_.resize(term_count);
  edge_term_a_.assign(edge_g_.size(), kNoSlot);
  edge_term_b_.assign(edge_g_.size(), kNoSlot);
  std::vector<std::size_t> fill = csr_offset_;
  for (std::size_t e = 0; e < edge_g_.size(); ++e) {
    const std::size_t a = edge_a_[e];
    const std::size_t b = edge_b_[e];
    if (free_slot_[a] != kNoSlot) {
      const std::size_t slot = fill[free_slot_[a]]++;
      csr_other_[slot] = int(b);
      csr_g_[slot] = edge_g_[e];
      edge_term_a_[e] = slot;
    }
    if (free_slot_[b] != kNoSlot) {
      const std::size_t slot = fill[free_slot_[b]]++;
      csr_other_[slot] = int(a);
      csr_g_[slot] = edge_g_[e];
      edge_term_b_[e] = slot;
    }
  }

  contiguous_free_ = true;
  for (std::size_t fi = 0; fi < free_nodes_.size(); ++fi) {
    if (free_nodes_[fi] != fi) {
      contiguous_free_ = false;
      break;
    }
  }

  partial_.resize(node_count_);
  scratch_a_.resize(node_count_);
  scratch_b_.resize(node_count_);

  recompute_stability_bound();
}

std::size_t CompiledRcModel::index_of(const std::string& name) const {
  const auto it = std::lower_bound(
      name_index_.begin(), name_index_.end(), name,
      [](const std::pair<std::string, std::size_t>& entry,
         const std::string& key) { return entry.first < key; });
  if (it == name_index_.end() || it->first != name) {
    throw std::invalid_argument("CompiledRcModel: no node named " + name);
  }
  return it->second;
}

void CompiledRcModel::set_edge_conductance(std::size_t edge_index,
                                           double conductance_w_per_k) {
  if (conductance_w_per_k <= 0.0) {
    throw std::invalid_argument("CompiledRcModel: non-positive conductance");
  }
  if (edge_g_.at(edge_index) == conductance_w_per_k) return;
  edge_g_[edge_index] = conductance_w_per_k;
  ++conductance_epoch_;
  if (edge_term_a_[edge_index] != kNoSlot) {
    csr_g_[edge_term_a_[edge_index]] = conductance_w_per_k;
  }
  if (edge_term_b_[edge_index] != kNoSlot) {
    csr_g_[edge_term_b_[edge_index]] = conductance_w_per_k;
  }
  recompute_stability_bound();
}

double CompiledRcModel::edge_conductance(std::size_t edge_index) const {
  return edge_g_.at(edge_index);
}

void CompiledRcModel::recompute_stability_bound() {
  // tau_min = min over free nodes of C_i / sum_j g_ij, matching the
  // reference integrator's per-step computation edge-for-edge. scratch_a_
  // doubles as the per-node conductance-sum buffer (its contents are dead
  // between steps), keeping fan actuation allocation-free.
  double tau_min = 1e30;
  std::vector<double>& gsum = scratch_a_;
  std::fill(gsum.begin(), gsum.end(), 0.0);
  for (std::size_t e = 0; e < edge_g_.size(); ++e) {
    gsum[edge_a_[e]] += edge_g_[e];
    gsum[edge_b_[e]] += edge_g_[e];
  }
  for (std::size_t i = 0; i < node_count_; ++i) {
    if (free_slot_[i] == kNoSlot || gsum[i] <= 0.0) continue;
    tau_min = std::min(tau_min, capacitance_[i] / gsum[i]);
  }
  max_substep_s_ = std::max(1e-6, 0.25 * tau_min);
}

unsigned CompiledRcModel::substeps_for(double dt_s) const {
  return static_cast<unsigned>(std::ceil(dt_s / max_substep_s_));
}

void CompiledRcModel::derivative(const double* temps, const double* power_w,
                                 double* dtemps_out) const {
  const std::size_t n = node_count_;
  std::fill(dtemps_out, dtemps_out + n, 0.0);
  const std::size_t* ea = edge_a_.data();
  const std::size_t* eb = edge_b_.data();
  const double* eg = edge_g_.data();
  const std::size_t edge_count = edge_g_.size();
  for (std::size_t e = 0; e < edge_count; ++e) {
    const double flow = eg[e] * (temps[eb[e]] - temps[ea[e]]);
    dtemps_out[ea[e]] += flow;
    dtemps_out[eb[e]] -= flow;
  }
  const double* cap = capacitance_.data();
  for (std::size_t fi = 0; fi < free_nodes_.size(); ++fi) {
    const std::size_t i = free_nodes_[fi];
    dtemps_out[i] = (dtemps_out[i] + power_w[i]) / cap[i];
  }
  for (std::size_t bi = 0; bi < boundary_nodes_.size(); ++bi) {
    dtemps_out[boundary_nodes_[bi]] = 0.0;
  }
}

template <bool kContiguous, bool kAccumulate>
inline __attribute__((always_inline)) void CompiledRcModel::stage(
    const double* read, const double* power_w, const double* base,
    double coeff, double* partial, double* __restrict__ stage_out) const {
  const std::size_t* offset = csr_offset_.data();
  const int* other = csr_other_.data();
  const double* g = csr_g_.data();
  const double* cap = capacitance_.data();
  const std::size_t free_count = free_nodes_.size();
  for (std::size_t fi = 0; fi < free_count; ++fi) {
    const std::size_t i = kContiguous ? fi : free_nodes_[fi];
    const double ti = read[i];
    double acc = 0.0;
    const std::size_t end = offset[fi + 1];
    for (std::size_t t = offset[fi]; t < end; ++t) {
      acc += g[t] * (read[other[t]] - ti);
    }
    const double k = (acc + power_w[i]) / cap[i];
    if (kAccumulate) {
      partial[i] = partial[i] + 2.0 * k;
    } else {
      partial[i] = k;
    }
    stage_out[i] = base[i] + coeff * k;
  }
  for (std::size_t bi = 0; bi < boundary_nodes_.size(); ++bi) {
    const std::size_t b = boundary_nodes_[bi];
    if (kAccumulate) {
      partial[b] = partial[b] + 2.0 * 0.0;
    } else {
      partial[b] = 0.0;
    }
    stage_out[b] = base[b] + coeff * 0.0;
  }
}

void CompiledRcModel::step(double dt_s, const double* power_w, double* temps) {
  if (dt_s <= 0.0) {
    throw std::invalid_argument("CompiledRcModel::step: dt must be > 0");
  }
  const unsigned substeps = substeps_for(dt_s);
  const double h = dt_s / double(substeps);

  if (contiguous_free_) {
    run_rk4<true>(substeps, h, power_w, temps);
  } else {
    run_rk4<false>(substeps, h, power_w, temps);
  }
}

template <bool kContiguous>
void CompiledRcModel::run_rk4(unsigned substeps, double h,
                              const double* power_w, double* temps) {
  double* partial = partial_.data();
  double* sa = scratch_a_.data();
  double* sb = scratch_b_.data();
  const std::size_t* offset = csr_offset_.data();
  const int* other = csr_other_.data();
  const double* g = csr_g_.data();
  const double* cap = capacitance_.data();
  const std::size_t free_count = free_nodes_.size();
  const double h6 = h / 6.0;
  for (unsigned s = 0; s < substeps; ++s) {
    // Fused RK4: each stage evaluates its derivative, folds it into the
    // running Butcher sum, and emits the next stage's state in one sweep,
    // ping-ponging between the two scratch buffers so a stage never
    // overwrites the array it is reading. The fourth stage folds the k4
    // evaluation straight into the combine, so k4 never touches memory.
    stage<kContiguous, false>(temps, power_w, temps, 0.5 * h, partial, sa);
    stage<kContiguous, true>(sa, power_w, temps, 0.5 * h, partial, sb);
    stage<kContiguous, true>(sb, power_w, temps, h, partial, sa);
    for (std::size_t fi = 0; fi < free_count; ++fi) {
      const std::size_t i = kContiguous ? fi : free_nodes_[fi];
      const double ti = sa[i];
      double acc = 0.0;
      const std::size_t end = offset[fi + 1];
      for (std::size_t t = offset[fi]; t < end; ++t) {
        acc += g[t] * (sa[other[t]] - ti);
      }
      const double k4 = (acc + power_w[i]) / cap[i];
      temps[i] += h6 * (partial[i] + k4);
    }
    for (std::size_t bi = 0; bi < boundary_nodes_.size(); ++bi) {
      // All four boundary slopes are zero; the reference combine still adds
      // the (exactly +0.0) term, normalizing a -0.0 state the same way.
      temps[boundary_nodes_[bi]] += h6 * 0.0;
    }
  }
}

void CompiledRcModel::steady_state(const double* power_w,
                                   double* temps_io) const {
  const std::size_t n = free_nodes_.size();
  if (n == 0) return;
  util::Matrix g(n, n);
  util::Matrix rhs(n, 1);
  for (std::size_t fi = 0; fi < n; ++fi) rhs(fi, 0) = power_w[free_nodes_[fi]];
  for (std::size_t e = 0; e < edge_g_.size(); ++e) {
    const std::size_t a = edge_a_[e];
    const std::size_t b = edge_b_[e];
    const double cond = edge_g_[e];
    const bool a_free = free_slot_[a] != kNoSlot;
    const bool b_free = free_slot_[b] != kNoSlot;
    if (a_free) g(free_slot_[a], free_slot_[a]) += cond;
    if (b_free) g(free_slot_[b], free_slot_[b]) += cond;
    if (a_free && b_free) {
      g(free_slot_[a], free_slot_[b]) -= cond;
      g(free_slot_[b], free_slot_[a]) -= cond;
    } else if (a_free) {
      rhs(free_slot_[a], 0) += cond * temps_io[b];
    } else if (b_free) {
      rhs(free_slot_[b], 0) += cond * temps_io[a];
    }
  }
  const util::Matrix sol = g.solve(rhs);
  for (std::size_t fi = 0; fi < n; ++fi) temps_io[free_nodes_[fi]] = sol(fi, 0);
}

}  // namespace dtpm::thermal
