// Compiled form of an RC thermal network: everything the integrator needs,
// flattened once at construction so the per-step loop touches only dense
// index-based arrays. This is the hot path of the whole simulator -- the
// RK4 derivative evaluation runs ~100 times per control interval -- so the
// compile step hoists every per-step lookup out of the loop:
//
//   * edge endpoints as flat index arrays (no struct-of-string walks),
//   * per-node capacitance and a free/boundary split (no branch per node),
//   * the RK4 stability bound (tau_min substep subdivision), cached and
//     recomputed only when an edge conductance actually changes (the fan),
//   * the steady-state free-node elimination pattern,
//   * the name -> index map, resolved at compile time and never in the loop.
//
// The integrator arithmetic is kept operation-for-operation identical to
// the reference edge-list implementation (including dividing by C rather
// than multiplying by a precomputed 1/C, which would perturb the last ulp):
// the golden-trace suite pins every trace bit-for-bit across this refactor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dtpm::thermal {

struct ThermalNode;
struct ThermalEdge;

/// Immutable-topology compiled model. Temperatures live with the caller
/// (RcNetwork keeps ownership of the state vector); the compiled model holds
/// the topology, the integrator scratch, and the cached stability bound.
class CompiledRcModel {
 public:
  /// Compiles a validated topology. @throws std::invalid_argument on the
  /// same malformed-topology conditions RcNetwork rejects (edge out of
  /// range, self-loop, non-positive capacitance or conductance).
  CompiledRcModel(const std::vector<ThermalNode>& nodes,
                  const std::vector<ThermalEdge>& edges);

  std::size_t node_count() const { return node_count_; }
  std::size_t edge_count() const { return edge_a_.size(); }

  /// Name lookup against the map built at compile time; throws
  /// std::invalid_argument if absent. Duplicate names resolve to the lowest
  /// index, matching a first-match linear scan.
  std::size_t index_of(const std::string& name) const;

  /// Runtime conductance update (the fan edge slot). A write with an
  /// unchanged value is a no-op, so per-interval fan actuation does not
  /// trigger a stability-bound recompute. @throws std::invalid_argument on
  /// non-positive conductance, std::out_of_range on a bad index.
  void set_edge_conductance(std::size_t edge_index, double conductance_w_per_k);
  double edge_conductance(std::size_t edge_index) const;

  /// Monotonic counter bumped by every set_edge_conductance call that
  /// actually changes a value. Derived models (the LTI propagator, the batch
  /// lanes) key their caches on it: an unchanged epoch guarantees the
  /// conductance state -- and hence any precomputed transition matrix -- is
  /// still valid.
  std::uint64_t conductance_epoch() const { return conductance_epoch_; }

  /// Edge endpoints (propagator assembly; conductance via edge_conductance).
  std::size_t edge_node_a(std::size_t e) const { return edge_a_.at(e); }
  std::size_t edge_node_b(std::size_t e) const { return edge_b_.at(e); }

  /// Node structure for derived stepping engines.
  const std::vector<std::size_t>& free_nodes() const { return free_nodes_; }
  const std::vector<std::size_t>& boundary_nodes() const {
    return boundary_nodes_;
  }
  double capacitance_j_per_k(std::size_t node) const {
    return capacitance_.at(node);
  }

  /// The internal subdivision step() would use for dt_s: substeps =
  /// ceil(dt_s / max_stable_substep_s()), h = dt_s / substeps. Exposed so a
  /// propagator built for the same dt reproduces the subdivision exactly.
  unsigned substeps_for(double dt_s) const;

  /// dT/dt into `dtemps_out`; boundary nodes read 0. All three arrays have
  /// node_count() elements. Bit-identical to the reference edge-list sweep.
  void derivative(const double* temps, const double* power_w,
                  double* dtemps_out) const;

  /// Advances `temps` (node_count() elements) by dt_s seconds of RK4,
  /// internally subdivided by the cached stability bound.
  /// @throws std::invalid_argument if dt_s <= 0.
  void step(double dt_s, const double* power_w, double* temps);

  /// Steady-state solve G T = P with boundary conditions: reads boundary
  /// temperatures from `temps_io` and overwrites the free-node entries with
  /// the solution. Not a hot path (direct dense solve per call).
  void steady_state(const double* power_w, double* temps_io) const;

  /// Largest internal RK4 substep the stiffest free node allows (0.25 x
  /// tau_min, floored at 1 us). Exposed for tests and diagnostics.
  double max_stable_substep_s() const { return max_substep_s_; }

 private:
  void recompute_stability_bound();

  /// One fused RK4 stage: evaluates k = dT/dt(read) through the gather CSR,
  /// folds it into the running Butcher sum (kAccumulate ? partial += 2k :
  /// partial = k -- the same left-to-right grouping as the reference
  /// combine k1 + 2k2 + 2k3 + k4), and emits the next stage's state
  /// stage_out[i] = base[i] + coeff * k in the same sweep. The gather
  /// accumulates each node's incident heat flows in ascending edge order, so
  /// every sum sees the exact operand sequence of the reference edge-list
  /// scatter (IEEE negation is exact, so the sign-free g*(T_other - T_i)
  /// form is bit-identical for both edge endpoints). Force-inlined so each
  /// call site specializes its mode; kContiguous elides the free_nodes_
  /// indirection (see contiguous_free_).
  template <bool kContiguous, bool kAccumulate>
  inline __attribute__((always_inline)) void stage(
      const double* read, const double* power_w, const double* base,
      double coeff, double* partial, double* stage_out) const;

  /// The RK4 substep loop, specialized on the free-node layout.
  template <bool kContiguous>
  void run_rk4(unsigned substeps, double h, const double* power_w,
               double* temps);

  std::size_t node_count_ = 0;

  // Edges, struct-of-arrays (steady-state solve, stability bound, updates).
  std::vector<std::size_t> edge_a_;
  std::vector<std::size_t> edge_b_;
  std::vector<double> edge_g_;

  // Gather form: per free node, incident (neighbor, conductance) terms in
  // ascending edge order. csr_g_ holds copies of edge_g_ refreshed on
  // set_edge_conductance via the edge -> term slots map.
  std::vector<std::size_t> csr_offset_;  ///< free slot -> term range
  std::vector<int> csr_other_;           ///< neighbor node per term
  std::vector<double> csr_g_;            ///< conductance per term
  std::vector<std::size_t> edge_term_a_; ///< edge -> term slot at endpoint a
  std::vector<std::size_t> edge_term_b_; ///< edge -> term slot at endpoint b

  // Nodes.
  std::vector<double> capacitance_;
  std::vector<std::size_t> free_nodes_;      ///< ascending node indices
  std::vector<std::size_t> boundary_nodes_;  ///< ascending node indices
  std::vector<std::size_t> free_slot_;       ///< node -> dense free index, or npos
  /// True when free nodes are exactly [0, free_count): the integrator then
  /// skips the free_nodes_ indirection (the default floorplan lists its
  /// ambient boundary last, so this is the common layout).
  bool contiguous_free_ = false;

  // Name map: (name, index) sorted by name then index.
  std::vector<std::pair<std::string, std::size_t>> name_index_;

  // Stability bound, recomputed only when a conductance changes. The dt
  // subdivision (substeps, h) is derived from it per step() call -- two
  // integer-ish ops, so there is no last-seen-dt cache to race on when a
  // shared model is stepped from several threads.
  double max_substep_s_ = 0.0;
  std::uint64_t conductance_epoch_ = 0;

  // RK4 scratch (sized at compile time; step() never allocates). partial_
  // carries the running k1 + 2k2 + 2k3 Butcher sum; k4 lives only in
  // registers -- the fourth stage is fused into the combine.
  std::vector<double> partial_, scratch_a_, scratch_b_;
};

}  // namespace dtpm::thermal
