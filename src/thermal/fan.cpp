#include "thermal/fan.hpp"

namespace dtpm::thermal {

double Fan::conductance_w_per_k(FanSpeed speed) const {
  switch (speed) {
    case FanSpeed::kOff:
      return params_.conductance_off;
    case FanSpeed::kLow:
      return params_.conductance_low;
    case FanSpeed::kHalf:
      return params_.conductance_half;
    case FanSpeed::kFull:
      return params_.conductance_full;
  }
  return params_.conductance_off;
}

double Fan::electrical_power_w(FanSpeed speed) const {
  switch (speed) {
    case FanSpeed::kOff:
      return params_.power_off;
    case FanSpeed::kLow:
      return params_.power_low;
    case FanSpeed::kHalf:
      return params_.power_half;
    case FanSpeed::kFull:
      return params_.power_full;
  }
  return params_.power_off;
}

const char* to_string(FanSpeed speed) {
  switch (speed) {
    case FanSpeed::kOff:
      return "off";
    case FanSpeed::kLow:
      return "low";
    case FanSpeed::kHalf:
      return "50%";
    case FanSpeed::kFull:
      return "100%";
  }
  return "off";
}

}  // namespace dtpm::thermal
