// Fan model for the Odroid-XU+E cooling solution. The board's stock policy
// steps the fan through 0 / 50 / 100 % as the maximum core temperature
// crosses 57 / 63 / 68 C (§6.2); the fan's effect is modeled as an increase
// of the case-to-ambient convection conductance, and its electrical draw is
// charged to the external platform power meter (not to the SoC rails).
#pragma once

namespace dtpm::thermal {

/// Discrete fan speeds used by the stock policy (§6.2: the fan is activated
/// at 57 C, then stepped to 50 % and 100 % past 63 C and 68 C).
enum class FanSpeed {
  kOff,
  kLow,   ///< initial activation speed
  kHalf,  ///< 50 %
  kFull,  ///< 100 %
};

/// Physical fan characteristics.
struct FanParams {
  /// Board-to-ambient conductance at each speed (W/K). The steps are sized
  /// so the stock policy's equilibria fall inside its 57-68 C threshold
  /// band for the medium/high benchmarks, producing the hysteresis-driven
  /// temperature oscillation of Figs. 6.3-6.5.
  double conductance_off = 0.125;
  double conductance_low = 0.167;
  double conductance_half = 0.370;
  double conductance_full = 0.830;
  /// Electrical power drawn at each speed (W); measured at the platform
  /// meter. Around 0.2 W savings for low-activity workloads in the paper
  /// corresponds to the fan duty-cycling between off and the low speeds.
  double power_off = 0.0;
  double power_low = 0.22;
  double power_half = 0.35;
  double power_full = 0.55;
};

inline bool operator==(const FanParams& a, const FanParams& b) {
  return a.conductance_off == b.conductance_off &&
         a.conductance_low == b.conductance_low &&
         a.conductance_half == b.conductance_half &&
         a.conductance_full == b.conductance_full &&
         a.power_off == b.power_off && a.power_low == b.power_low &&
         a.power_half == b.power_half && a.power_full == b.power_full;
}

/// FanParams of a platform with no fan at all: every speed maps to the same
/// passive conductance and draws no power, so fan "actuation" by a policy is
/// physically and electrically a no-op.
inline FanParams passive_cooling(double conductance_w_per_k) {
  FanParams params;
  params.conductance_off = conductance_w_per_k;
  params.conductance_low = conductance_w_per_k;
  params.conductance_half = conductance_w_per_k;
  params.conductance_full = conductance_w_per_k;
  params.power_off = 0.0;
  params.power_low = 0.0;
  params.power_half = 0.0;
  params.power_full = 0.0;
  return params;
}

/// Stateless mapping from speed to conductance/power.
class Fan {
 public:
  explicit Fan(const FanParams& params = {}) : params_(params) {}

  double conductance_w_per_k(FanSpeed speed) const;
  double electrical_power_w(FanSpeed speed) const;
  const FanParams& params() const { return params_; }

 private:
  FanParams params_;
};

/// Human-readable name ("off" / "50%" / "100%").
const char* to_string(FanSpeed speed);

}  // namespace dtpm::thermal
