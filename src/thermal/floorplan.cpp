#include "thermal/floorplan.hpp"

#include <stdexcept>
#include <unordered_map>

namespace dtpm::thermal {

namespace {

/// Name -> index over the spec's nodes; duplicate or empty names throw.
std::unordered_map<std::string, std::size_t> node_index_map(
    const FloorplanSpec& spec) {
  std::unordered_map<std::string, std::size_t> map;
  map.reserve(spec.nodes.size());
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const std::string& name = spec.nodes[i].name;
    if (name.empty()) {
      throw std::invalid_argument("floorplan: node " + std::to_string(i) +
                                  " has an empty name");
    }
    if (!map.emplace(name, i).second) {
      throw std::invalid_argument("floorplan: duplicate node name '" + name +
                                  "'");
    }
  }
  return map;
}

std::size_t resolve(const std::unordered_map<std::string, std::size_t>& map,
                    const std::string& name, const char* role) {
  const auto it = map.find(name);
  if (it == map.end()) {
    throw std::invalid_argument("floorplan: " + std::string(role) +
                                " references unknown node '" + name + "'");
  }
  return it->second;
}

}  // namespace

double FloorplanSpec::ambient_temp_c() const {
  for (const FloorplanNodeSpec& node : nodes) {
    if (node.is_boundary) return node.initial_temp_c;
  }
  throw std::logic_error("FloorplanSpec: no boundary (ambient) node");
}

bool FloorplanSpec::has_fan_edge() const {
  for (const FloorplanEdgeSpec& edge : edges) {
    if (edge.fan_modulated) return true;
  }
  return false;
}

bool operator==(const FloorplanNodeSpec& a, const FloorplanNodeSpec& b) {
  return a.name == b.name && a.capacitance_j_per_k == b.capacitance_j_per_k &&
         a.initial_temp_c == b.initial_temp_c &&
         a.is_boundary == b.is_boundary;
}

bool operator==(const FloorplanEdgeSpec& a, const FloorplanEdgeSpec& b) {
  return a.node_a == b.node_a && a.node_b == b.node_b &&
         a.conductance_w_per_k == b.conductance_w_per_k &&
         a.fan_modulated == b.fan_modulated;
}

bool operator==(const FloorplanSpec& a, const FloorplanSpec& b) {
  return a.nodes == b.nodes && a.edges == b.edges &&
         a.core_nodes == b.core_nodes && a.little_node == b.little_node &&
         a.gpu_node == b.gpu_node && a.mem_node == b.mem_node &&
         a.sensor_nodes == b.sensor_nodes;
}

void validate_floorplan_spec(const FloorplanSpec& spec) {
  const auto map = node_index_map(spec);

  std::size_t boundary_count = 0;
  for (const FloorplanNodeSpec& node : spec.nodes) {
    if (node.is_boundary) ++boundary_count;
  }
  if (boundary_count != 1) {
    throw std::invalid_argument(
        "floorplan: expected exactly one boundary (ambient) node, got " +
        std::to_string(boundary_count));
  }

  std::size_t fan_edges = 0;
  for (std::size_t i = 0; i < spec.edges.size(); ++i) {
    const std::string where = "edge " + std::to_string(i);
    resolve(map, spec.edges[i].node_a, where.c_str());
    resolve(map, spec.edges[i].node_b, where.c_str());
    if (spec.edges[i].fan_modulated) ++fan_edges;
  }
  if (fan_edges > 1) {
    throw std::invalid_argument(
        "floorplan: more than one fan-modulated edge");
  }

  if (spec.core_nodes.empty()) {
    throw std::invalid_argument("floorplan: core_nodes must not be empty");
  }
  if (spec.sensor_nodes.empty()) {
    throw std::invalid_argument("floorplan: sensor_nodes must not be empty");
  }
  auto check_role = [&](const std::string& name, const char* role) {
    const std::size_t i = resolve(map, name, role);
    if (spec.nodes[i].is_boundary) {
      throw std::invalid_argument("floorplan: " + std::string(role) +
                                  " must not be the boundary node ('" + name +
                                  "')");
    }
  };
  for (const std::string& name : spec.core_nodes) {
    check_role(name, "core_nodes");
  }
  check_role(spec.little_node, "little_node");
  check_role(spec.gpu_node, "gpu_node");
  check_role(spec.mem_node, "mem_node");
  for (const std::string& name : spec.sensor_nodes) {
    check_role(name, "sensor_nodes");
  }
}

Floorplan build_floorplan(const FloorplanSpec& spec) {
  validate_floorplan_spec(spec);
  const auto map = node_index_map(spec);

  std::vector<ThermalNode> nodes;
  nodes.reserve(spec.nodes.size());
  for (const FloorplanNodeSpec& n : spec.nodes) {
    ThermalNode node;
    node.name = n.name;
    node.capacitance_j_per_k = n.capacitance_j_per_k;
    node.initial_temp_c = n.initial_temp_c;
    node.is_boundary = n.is_boundary;
    nodes.push_back(std::move(node));
  }

  std::vector<ThermalEdge> edges;
  edges.reserve(spec.edges.size());
  std::size_t fan_edge = Floorplan::kNoFanEdge;
  for (const FloorplanEdgeSpec& e : spec.edges) {
    if (e.fan_modulated) fan_edge = edges.size();
    edges.push_back(
        {map.at(e.node_a), map.at(e.node_b), e.conductance_w_per_k});
  }

  std::vector<std::size_t> core_index;
  core_index.reserve(spec.core_nodes.size());
  for (const std::string& name : spec.core_nodes) {
    core_index.push_back(map.at(name));
  }
  std::size_t ambient_index = 0;
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    if (spec.nodes[i].is_boundary) ambient_index = i;
  }
  std::vector<std::size_t> sensor_index;
  sensor_index.reserve(spec.sensor_nodes.size());
  for (const std::string& name : spec.sensor_nodes) {
    sensor_index.push_back(map.at(name));
  }
  return Floorplan{RcNetwork(std::move(nodes), std::move(edges)),
                   fan_edge,
                   spec,
                   std::move(core_index),
                   map.at(spec.little_node),
                   map.at(spec.gpu_node),
                   map.at(spec.mem_node),
                   ambient_index,
                   std::move(sensor_index)};
}

void Floorplan::assemble_node_power_into(
    const std::array<double, 4>& big_core_power_w,
    const power::ResourceVector& rail_power_w,
    std::vector<double>& node_power_out) const {
  node_power_out.assign(network.node_count(), 0.0);
  for (std::size_t c = 0;
       c < big_core_power_w.size() && c < core_node_index.size(); ++c) {
    node_power_out[core_node_index[c]] = big_core_power_w[c];
  }
  node_power_out[little_node_index] =
      rail_power_w[power::resource_index(power::Resource::kLittleCluster)];
  node_power_out[gpu_node_index] =
      rail_power_w[power::resource_index(power::Resource::kGpu)];
  node_power_out[mem_node_index] =
      rail_power_w[power::resource_index(power::Resource::kMem)];
}

std::array<std::size_t, 4> Floorplan::big_core_nodes() {
  return {node_index(FloorplanNode::kBig0), node_index(FloorplanNode::kBig1),
          node_index(FloorplanNode::kBig2), node_index(FloorplanNode::kBig3)};
}

const std::vector<std::size_t>& Floorplan::big_core_node_indices() {
  static const std::vector<std::size_t> kIndices = [] {
    const auto nodes = big_core_nodes();
    return std::vector<std::size_t>{nodes.begin(), nodes.end()};
  }();
  return kIndices;
}

bool operator==(const FloorplanParams& a, const FloorplanParams& b) {
  return a.big_core_capacitance == b.big_core_capacitance &&
         a.little_cluster_capacitance == b.little_cluster_capacitance &&
         a.gpu_capacitance == b.gpu_capacitance &&
         a.mem_capacitance == b.mem_capacitance &&
         a.case_capacitance == b.case_capacitance &&
         a.board_capacitance == b.board_capacitance &&
         a.big_to_big_adjacent == b.big_to_big_adjacent &&
         a.big_to_big_diagonal == b.big_to_big_diagonal &&
         a.big_to_case == b.big_to_case && a.big_to_little == b.big_to_little &&
         a.little_to_case == b.little_to_case &&
         a.gpu_to_case == b.gpu_to_case && a.gpu_to_big2 == b.gpu_to_big2 &&
         a.gpu_to_big3 == b.gpu_to_big3 && a.gpu_to_mem == b.gpu_to_mem &&
         a.mem_to_case == b.mem_to_case && a.little_to_gpu == b.little_to_gpu &&
         a.case_to_board == b.case_to_board &&
         a.board_to_ambient_fan_off == b.board_to_ambient_fan_off &&
         a.ambient_temp_c == b.ambient_temp_c &&
         a.initial_temp_c == b.initial_temp_c &&
         a.board_initial_temp_c == b.board_initial_temp_c;
}

std::vector<double> assemble_node_power(
    const std::array<double, 4>& big_core_power_w,
    const power::ResourceVector& rail_power_w) {
  std::vector<double> node_power;
  assemble_node_power_into(big_core_power_w, rail_power_w, node_power);
  return node_power;
}

void assemble_node_power_into(const std::array<double, 4>& big_core_power_w,
                              const power::ResourceVector& rail_power_w,
                              std::vector<double>& node_power_out) {
  node_power_out.assign(kFloorplanNodeCount, 0.0);
  for (std::size_t c = 0; c < big_core_power_w.size(); ++c) {
    node_power_out[node_index(FloorplanNode::kBig0) + c] = big_core_power_w[c];
  }
  node_power_out[node_index(FloorplanNode::kLittleCluster)] =
      rail_power_w[power::resource_index(power::Resource::kLittleCluster)];
  node_power_out[node_index(FloorplanNode::kGpu)] =
      rail_power_w[power::resource_index(power::Resource::kGpu)];
  node_power_out[node_index(FloorplanNode::kMem)] =
      rail_power_w[power::resource_index(power::Resource::kMem)];
}

FloorplanSpec default_floorplan_spec(const FloorplanParams& p) {
  FloorplanSpec spec;
  spec.nodes.resize(kFloorplanNodeCount);
  auto set = [&](FloorplanNode n, const char* name, double cap,
                 bool boundary = false) {
    FloorplanNodeSpec& node = spec.nodes[node_index(n)];
    node.name = name;
    node.capacitance_j_per_k = cap;
    node.initial_temp_c = boundary ? p.ambient_temp_c : p.initial_temp_c;
    node.is_boundary = boundary;
  };
  set(FloorplanNode::kBig0, "big0", p.big_core_capacitance);
  set(FloorplanNode::kBig1, "big1", p.big_core_capacitance);
  set(FloorplanNode::kBig2, "big2", p.big_core_capacitance);
  set(FloorplanNode::kBig3, "big3", p.big_core_capacitance);
  set(FloorplanNode::kLittleCluster, "little", p.little_cluster_capacitance);
  set(FloorplanNode::kGpu, "gpu", p.gpu_capacitance);
  set(FloorplanNode::kMem, "mem", p.mem_capacitance);
  set(FloorplanNode::kCase, "case", p.case_capacitance);
  set(FloorplanNode::kBoard, "board", p.board_capacitance);
  spec.nodes[node_index(FloorplanNode::kBoard)].initial_temp_c =
      p.board_initial_temp_c;
  set(FloorplanNode::kAmbient, "ambient", 1.0, /*boundary=*/true);

  auto link = [&](const char* a, const char* b, double g,
                  bool fan_modulated = false) {
    spec.edges.push_back({a, b, g, fan_modulated});
  };
  // Big-core 2x2 grid.
  link("big0", "big1", p.big_to_big_adjacent);
  link("big2", "big3", p.big_to_big_adjacent);
  link("big0", "big2", p.big_to_big_adjacent);
  link("big1", "big3", p.big_to_big_adjacent);
  link("big0", "big3", p.big_to_big_diagonal);
  link("big1", "big2", p.big_to_big_diagonal);
  // Die-to-case spreading.
  link("big0", "case", p.big_to_case);
  link("big1", "case", p.big_to_case);
  link("big2", "case", p.big_to_case);
  link("big3", "case", p.big_to_case);
  link("little", "case", p.little_to_case);
  link("gpu", "case", p.gpu_to_case);
  link("mem", "case", p.mem_to_case);
  // Lateral die coupling.
  link("big0", "little", p.big_to_little);
  link("big1", "little", p.big_to_little);
  link("big2", "little", p.big_to_little);
  link("big3", "little", p.big_to_little);
  link("gpu", "big2", p.gpu_to_big2);
  link("gpu", "big3", p.gpu_to_big3);
  link("gpu", "mem", p.gpu_to_mem);
  link("little", "gpu", p.little_to_gpu);
  // Case spreads into the board; the fan modulates board-to-ambient
  // convection.
  link("case", "board", p.case_to_board);
  link("board", "ambient", p.board_to_ambient_fan_off, /*fan_modulated=*/true);

  spec.core_nodes = {"big0", "big1", "big2", "big3"};
  spec.little_node = "little";
  spec.gpu_node = "gpu";
  spec.mem_node = "mem";
  spec.sensor_nodes = spec.core_nodes;
  return spec;
}

Floorplan make_default_floorplan(const FloorplanParams& p) {
  return build_floorplan(default_floorplan_spec(p));
}

}  // namespace dtpm::thermal
