#include "thermal/floorplan.hpp"

namespace dtpm::thermal {

std::array<std::size_t, 4> Floorplan::big_core_nodes() {
  return {node_index(FloorplanNode::kBig0), node_index(FloorplanNode::kBig1),
          node_index(FloorplanNode::kBig2), node_index(FloorplanNode::kBig3)};
}

const std::vector<std::size_t>& Floorplan::big_core_node_indices() {
  static const std::vector<std::size_t> kIndices = [] {
    const auto nodes = big_core_nodes();
    return std::vector<std::size_t>{nodes.begin(), nodes.end()};
  }();
  return kIndices;
}

bool operator==(const FloorplanParams& a, const FloorplanParams& b) {
  return a.big_core_capacitance == b.big_core_capacitance &&
         a.little_cluster_capacitance == b.little_cluster_capacitance &&
         a.gpu_capacitance == b.gpu_capacitance &&
         a.mem_capacitance == b.mem_capacitance &&
         a.case_capacitance == b.case_capacitance &&
         a.board_capacitance == b.board_capacitance &&
         a.big_to_big_adjacent == b.big_to_big_adjacent &&
         a.big_to_big_diagonal == b.big_to_big_diagonal &&
         a.big_to_case == b.big_to_case && a.big_to_little == b.big_to_little &&
         a.little_to_case == b.little_to_case &&
         a.gpu_to_case == b.gpu_to_case && a.gpu_to_big2 == b.gpu_to_big2 &&
         a.gpu_to_big3 == b.gpu_to_big3 && a.gpu_to_mem == b.gpu_to_mem &&
         a.mem_to_case == b.mem_to_case && a.little_to_gpu == b.little_to_gpu &&
         a.case_to_board == b.case_to_board &&
         a.board_to_ambient_fan_off == b.board_to_ambient_fan_off &&
         a.ambient_temp_c == b.ambient_temp_c &&
         a.initial_temp_c == b.initial_temp_c &&
         a.board_initial_temp_c == b.board_initial_temp_c;
}

std::vector<double> assemble_node_power(
    const std::array<double, 4>& big_core_power_w,
    const power::ResourceVector& rail_power_w) {
  std::vector<double> node_power;
  assemble_node_power_into(big_core_power_w, rail_power_w, node_power);
  return node_power;
}

void assemble_node_power_into(const std::array<double, 4>& big_core_power_w,
                              const power::ResourceVector& rail_power_w,
                              std::vector<double>& node_power_out) {
  node_power_out.assign(kFloorplanNodeCount, 0.0);
  for (std::size_t c = 0; c < big_core_power_w.size(); ++c) {
    node_power_out[node_index(FloorplanNode::kBig0) + c] = big_core_power_w[c];
  }
  node_power_out[node_index(FloorplanNode::kLittleCluster)] =
      rail_power_w[power::resource_index(power::Resource::kLittleCluster)];
  node_power_out[node_index(FloorplanNode::kGpu)] =
      rail_power_w[power::resource_index(power::Resource::kGpu)];
  node_power_out[node_index(FloorplanNode::kMem)] =
      rail_power_w[power::resource_index(power::Resource::kMem)];
}

Floorplan make_default_floorplan(const FloorplanParams& p) {
  std::vector<ThermalNode> nodes(kFloorplanNodeCount);
  auto set = [&](FloorplanNode n, const char* name, double cap,
                 bool boundary = false) {
    auto& node = nodes[node_index(n)];
    node.name = name;
    node.capacitance_j_per_k = cap;
    node.initial_temp_c = boundary ? p.ambient_temp_c : p.initial_temp_c;
    node.is_boundary = boundary;
  };
  set(FloorplanNode::kBig0, "big0", p.big_core_capacitance);
  set(FloorplanNode::kBig1, "big1", p.big_core_capacitance);
  set(FloorplanNode::kBig2, "big2", p.big_core_capacitance);
  set(FloorplanNode::kBig3, "big3", p.big_core_capacitance);
  set(FloorplanNode::kLittleCluster, "little", p.little_cluster_capacitance);
  set(FloorplanNode::kGpu, "gpu", p.gpu_capacitance);
  set(FloorplanNode::kMem, "mem", p.mem_capacitance);
  set(FloorplanNode::kCase, "case", p.case_capacitance);
  set(FloorplanNode::kBoard, "board", p.board_capacitance);
  nodes[node_index(FloorplanNode::kBoard)].initial_temp_c =
      p.board_initial_temp_c;
  set(FloorplanNode::kAmbient, "ambient", 1.0, /*boundary=*/true);

  std::vector<ThermalEdge> edges;
  auto link = [&](FloorplanNode a, FloorplanNode b, double g) {
    edges.push_back({node_index(a), node_index(b), g});
  };
  using FN = FloorplanNode;
  // Big-core 2x2 grid.
  link(FN::kBig0, FN::kBig1, p.big_to_big_adjacent);
  link(FN::kBig2, FN::kBig3, p.big_to_big_adjacent);
  link(FN::kBig0, FN::kBig2, p.big_to_big_adjacent);
  link(FN::kBig1, FN::kBig3, p.big_to_big_adjacent);
  link(FN::kBig0, FN::kBig3, p.big_to_big_diagonal);
  link(FN::kBig1, FN::kBig2, p.big_to_big_diagonal);
  // Die-to-case spreading.
  link(FN::kBig0, FN::kCase, p.big_to_case);
  link(FN::kBig1, FN::kCase, p.big_to_case);
  link(FN::kBig2, FN::kCase, p.big_to_case);
  link(FN::kBig3, FN::kCase, p.big_to_case);
  link(FN::kLittleCluster, FN::kCase, p.little_to_case);
  link(FN::kGpu, FN::kCase, p.gpu_to_case);
  link(FN::kMem, FN::kCase, p.mem_to_case);
  // Lateral die coupling.
  link(FN::kBig0, FN::kLittleCluster, p.big_to_little);
  link(FN::kBig1, FN::kLittleCluster, p.big_to_little);
  link(FN::kBig2, FN::kLittleCluster, p.big_to_little);
  link(FN::kBig3, FN::kLittleCluster, p.big_to_little);
  link(FN::kGpu, FN::kBig2, p.gpu_to_big2);
  link(FN::kGpu, FN::kBig3, p.gpu_to_big3);
  link(FN::kGpu, FN::kMem, p.gpu_to_mem);
  link(FN::kLittleCluster, FN::kGpu, p.little_to_gpu);
  // Case spreads into the board; the fan modulates board-to-ambient
  // convection.
  link(FN::kCase, FN::kBoard, p.case_to_board);
  const std::size_t fan_edge = edges.size();
  link(FN::kBoard, FN::kAmbient, p.board_to_ambient_fan_off);

  return Floorplan{RcNetwork(std::move(nodes), std::move(edges)), fan_edge, p};
}

}  // namespace dtpm::thermal
