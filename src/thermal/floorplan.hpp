// Thermal floorplans: the node/edge topology that the RcNetwork plant
// integrates. Two layers live here:
//
//   * FloorplanSpec -- a fully data-driven description (named nodes,
//     conductance edges, a fan-modulated edge, and the role mapping that
//     tells the plant which nodes are the per-core hotspots / cluster heat
//     sinks / sensor sites). This is what sim::PlatformDescriptor carries
//     and what platform JSON files serialize.
//   * The Exynos-5410-like default floorplan of the Odroid-XU+E (§6.1.2),
//     expressed as a FloorplanSpec generated from FloorplanParams so the
//     historical parameter struct keeps working unchanged.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "power/resource.hpp"
#include "thermal/rc_network.hpp"

namespace dtpm::thermal {

/// Fixed node ordering of the default floorplan. The DTPM stack's reduced
/// model only ever sees Big0..Big3; LittleCluster/Gpu/Mem appear as power
/// inputs, and Case/Ambient are entirely hidden (they are the unmodeled slow
/// pole that makes identification realistic).
enum class FloorplanNode : std::size_t {
  kBig0 = 0,
  kBig1,
  kBig2,
  kBig3,
  kLittleCluster,
  kGpu,
  kMem,
  kCase,
  kBoard,
  kAmbient,
  kCount,
};

constexpr std::size_t kFloorplanNodeCount =
    static_cast<std::size_t>(FloorplanNode::kCount);

constexpr std::size_t node_index(FloorplanNode n) {
  return static_cast<std::size_t>(n);
}

/// Tunable physical parameters of the default floorplan. Values are
/// calibrated so the plant reproduces the thesis figures (idle ~40-45 C,
/// no-fan heavy load >80 C, fan hysteresis band 57-70 C); see DESIGN.md §6.
struct FloorplanParams {
  // Heat capacities (J/K).
  // Two-stage package: die nodes couple into the case (fast stage, ~13 s
  // rise, visible at benchmark start in the thesis trace figures) which
  // couples into the board (slow stage, ~70 s) and on to ambient through
  // the fan-dependent convection edge. The slow board pole is what makes
  // the fan-less traces keep rising through a whole benchmark run
  // (Figs. 1.1, 6.4) and what limits long-horizon prediction accuracy
  // (Fig. 4.10), since the identified 4-state model cannot represent it
  // exactly.
  double big_core_capacitance = 0.08;
  double little_cluster_capacitance = 0.15;
  double gpu_capacitance = 0.20;
  double mem_capacitance = 0.25;
  double case_capacitance = 0.70;
  double board_capacitance = 9.0;

  // Conductances (W/K).
  double big_to_big_adjacent = 0.8;    ///< grid neighbours (0-1, 2-3, 0-2, 1-3)
  double big_to_big_diagonal = 0.4;    ///< diagonals (0-3, 1-2)
  double big_to_case = 0.35;
  double big_to_little = 0.05;
  double little_to_case = 0.25;
  double gpu_to_case = 0.30;
  double gpu_to_big2 = 0.06;
  double gpu_to_big3 = 0.06;
  double gpu_to_mem = 0.05;
  double mem_to_case = 0.30;
  double little_to_gpu = 0.04;
  double case_to_board = 0.125;
  /// Board-to-ambient convection with the fan off; the fan model raises this.
  double board_to_ambient_fan_off = 0.125;

  double ambient_temp_c = 25.0;
  /// Warm start: a phone/board that has been running Android for a while.
  double initial_temp_c = 45.0;
  /// The heavy board mass starts cooler than the die.
  double board_initial_temp_c = 38.0;
};

/// Memberwise equality; lets a batch decide whether two presets can share
/// one compiled floorplan template (sim::RunPlan).
bool operator==(const FloorplanParams& a, const FloorplanParams& b);
inline bool operator!=(const FloorplanParams& a, const FloorplanParams& b) {
  return !(a == b);
}

// --- Data-driven floorplan description ---------------------------------------

/// One named thermal node of a data-driven floorplan.
struct FloorplanNodeSpec {
  std::string name;
  double capacitance_j_per_k = 1.0;
  double initial_temp_c = 25.0;
  /// Fixed-temperature boundary node (the ambient / furnace chamber).
  bool is_boundary = false;
};

/// One conductance edge, referencing nodes by name.
struct FloorplanEdgeSpec {
  std::string node_a;
  std::string node_b;
  double conductance_w_per_k = 0.0;
  /// The fan modulates this edge's conductance (at most one per floorplan;
  /// none on a fanless platform).
  bool fan_modulated = false;
};

/// A complete floorplan as data: topology plus the role mapping through
/// which the SoC model injects heat and the sensor bank observes it. This is
/// the serializable source of truth a sim::PlatformDescriptor carries.
struct FloorplanSpec {
  std::vector<FloorplanNodeSpec> nodes;
  std::vector<FloorplanEdgeSpec> edges;

  /// Per-core hotspot nodes, in core order (heat injection of the big
  /// cores' individual power draws).
  std::vector<std::string> core_nodes;
  /// Cluster-level heat sinks of the remaining metered rails.
  std::string little_node;
  std::string gpu_node;
  std::string mem_node;
  /// Temperature-sensor placement, in sensor order.
  std::vector<std::string> sensor_nodes;

  /// The single boundary node's fixed temperature; throws std::logic_error
  /// when the spec has no boundary node.
  double ambient_temp_c() const;

  /// True when some edge is fan-modulated.
  bool has_fan_edge() const;
};

bool operator==(const FloorplanNodeSpec& a, const FloorplanNodeSpec& b);
bool operator==(const FloorplanEdgeSpec& a, const FloorplanEdgeSpec& b);
/// Memberwise equality -- the sharing key for compiled floorplan templates
/// (sim::RunPlan) now that topology itself is data.
bool operator==(const FloorplanSpec& a, const FloorplanSpec& b);
inline bool operator!=(const FloorplanSpec& a, const FloorplanSpec& b) {
  return !(a == b);
}

/// A constructed floorplan: the compiled network, the fan-modulated edge
/// (kNoFanEdge on fanless platforms), and the role indices resolved from the
/// spec's node names.
struct Floorplan {
  /// Sentinel fan_edge value of a floorplan without a fan-modulated edge.
  static constexpr std::size_t kNoFanEdge = static_cast<std::size_t>(-1);

  RcNetwork network;
  std::size_t fan_edge = kNoFanEdge;
  FloorplanSpec spec;

  /// Role indices into the network, resolved once at construction.
  std::vector<std::size_t> core_node_index;
  std::size_t little_node_index = 0;
  std::size_t gpu_node_index = 0;
  std::size_t mem_node_index = 0;
  std::size_t ambient_node_index = 0;
  std::vector<std::size_t> sensor_node_index;

  bool has_fan_edge() const { return fan_edge != kNoFanEdge; }

  /// Maps the SoC's power draws onto this floorplan's heat-injection nodes
  /// through the role indices: each big core heats its own core node and the
  /// little/GPU/memory rails heat their cluster nodes. Allocation-free after
  /// the first call on a reused buffer.
  void assemble_node_power_into(const std::array<double, 4>& big_core_power_w,
                                const power::ResourceVector& rail_power_w,
                                std::vector<double>& node_power_out) const;

  /// Indices of the four big-core nodes of the *default* floorplan, in
  /// order. Kept for the enum-addressed legacy call sites and tests.
  static std::array<std::size_t, 4> big_core_nodes();

  /// The same indices as a shared immutable vector, built once per process.
  static const std::vector<std::size_t>& big_core_node_indices();
};

/// The default Exynos-5410-like topology as a data-driven spec. The result
/// builds (node for node, edge for edge) the exact network
/// make_default_floorplan has always produced.
FloorplanSpec default_floorplan_spec(const FloorplanParams& params = {});

/// Builds a floorplan from its data description. Validates the spec first:
/// duplicate/empty node names, edges or role members referencing unknown
/// nodes, more than one fan-modulated edge, boundary role nodes, or not
/// exactly one boundary node all throw std::invalid_argument.
Floorplan build_floorplan(const FloorplanSpec& spec);

/// Validation half of build_floorplan (everything except what RcNetwork
/// itself checks); throws std::invalid_argument with the offending member.
void validate_floorplan_spec(const FloorplanSpec& spec);

/// Builds the default Exynos-5410-like floorplan:
/// build_floorplan(default_floorplan_spec(params)).
Floorplan make_default_floorplan(const FloorplanParams& params = {});

/// Maps the SoC's power draws onto the floorplan's heat-injection nodes:
/// each big core heats its own node, and the little-cluster / GPU / memory
/// rails heat their cluster nodes. Case, board and ambient receive no direct
/// power (they only conduct). Shared by the simulation plant and by tests so
/// the node <-> rail correspondence lives in exactly one place.
std::vector<double> assemble_node_power(
    const std::array<double, 4>& big_core_power_w,
    const power::ResourceVector& rail_power_w);

/// Allocation-free variant: writes into `node_power_out`, resizing it to
/// kFloorplanNodeCount (a no-op after the first call on a reused buffer).
void assemble_node_power_into(const std::array<double, 4>& big_core_power_w,
                              const power::ResourceVector& rail_power_w,
                              std::vector<double>& node_power_out);

}  // namespace dtpm::thermal
