// Exynos-5410-like thermal floorplan: the node/edge topology that the
// RcNetwork plant integrates. The four A15 (big) cores are the thermal
// hotspots instrumented with sensors, matching the Odroid-XU+E (§6.1.2).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "power/resource.hpp"
#include "thermal/rc_network.hpp"

namespace dtpm::thermal {

/// Fixed node ordering of the default floorplan. The DTPM stack's reduced
/// model only ever sees Big0..Big3; LittleCluster/Gpu/Mem appear as power
/// inputs, and Case/Ambient are entirely hidden (they are the unmodeled slow
/// pole that makes identification realistic).
enum class FloorplanNode : std::size_t {
  kBig0 = 0,
  kBig1,
  kBig2,
  kBig3,
  kLittleCluster,
  kGpu,
  kMem,
  kCase,
  kBoard,
  kAmbient,
  kCount,
};

constexpr std::size_t kFloorplanNodeCount =
    static_cast<std::size_t>(FloorplanNode::kCount);

constexpr std::size_t node_index(FloorplanNode n) {
  return static_cast<std::size_t>(n);
}

/// Tunable physical parameters of the default floorplan. Values are
/// calibrated so the plant reproduces the thesis figures (idle ~40-45 C,
/// no-fan heavy load >80 C, fan hysteresis band 57-70 C); see DESIGN.md §6.
struct FloorplanParams {
  // Heat capacities (J/K).
  // Two-stage package: die nodes couple into the case (fast stage, ~13 s
  // rise, visible at benchmark start in the thesis trace figures) which
  // couples into the board (slow stage, ~70 s) and on to ambient through
  // the fan-dependent convection edge. The slow board pole is what makes
  // the fan-less traces keep rising through a whole benchmark run
  // (Figs. 1.1, 6.4) and what limits long-horizon prediction accuracy
  // (Fig. 4.10), since the identified 4-state model cannot represent it
  // exactly.
  double big_core_capacitance = 0.08;
  double little_cluster_capacitance = 0.15;
  double gpu_capacitance = 0.20;
  double mem_capacitance = 0.25;
  double case_capacitance = 0.70;
  double board_capacitance = 9.0;

  // Conductances (W/K).
  double big_to_big_adjacent = 0.8;    ///< grid neighbours (0-1, 2-3, 0-2, 1-3)
  double big_to_big_diagonal = 0.4;    ///< diagonals (0-3, 1-2)
  double big_to_case = 0.35;
  double big_to_little = 0.05;
  double little_to_case = 0.25;
  double gpu_to_case = 0.30;
  double gpu_to_big2 = 0.06;
  double gpu_to_big3 = 0.06;
  double gpu_to_mem = 0.05;
  double mem_to_case = 0.30;
  double little_to_gpu = 0.04;
  double case_to_board = 0.125;
  /// Board-to-ambient convection with the fan off; the fan model raises this.
  double board_to_ambient_fan_off = 0.125;

  double ambient_temp_c = 25.0;
  /// Warm start: a phone/board that has been running Android for a while.
  double initial_temp_c = 45.0;
  /// The heavy board mass starts cooler than the die.
  double board_initial_temp_c = 38.0;
};

/// Memberwise equality; lets a batch decide whether two presets can share
/// one compiled floorplan template (sim::RunPlan).
bool operator==(const FloorplanParams& a, const FloorplanParams& b);
inline bool operator!=(const FloorplanParams& a, const FloorplanParams& b) {
  return !(a == b);
}

/// A constructed floorplan: the network plus the index of the edge the fan
/// modulates (board-to-ambient convection).
struct Floorplan {
  RcNetwork network;
  std::size_t fan_edge = 0;
  FloorplanParams params;

  /// Indices of the four big-core nodes, in order.
  static std::array<std::size_t, 4> big_core_nodes();

  /// The same indices as a shared immutable vector (what sensor banks
  /// consume), built once per process instead of once per Plant.
  static const std::vector<std::size_t>& big_core_node_indices();
};

/// Builds the default Exynos-5410-like floorplan.
Floorplan make_default_floorplan(const FloorplanParams& params = {});

/// Maps the SoC's power draws onto the floorplan's heat-injection nodes:
/// each big core heats its own node, and the little-cluster / GPU / memory
/// rails heat their cluster nodes. Case, board and ambient receive no direct
/// power (they only conduct). Shared by the simulation plant and by tests so
/// the node <-> rail correspondence lives in exactly one place.
std::vector<double> assemble_node_power(
    const std::array<double, 4>& big_core_power_w,
    const power::ResourceVector& rail_power_w);

/// Allocation-free variant: writes into `node_power_out`, resizing it to
/// kFloorplanNodeCount (a no-op after the first call on a reused buffer).
void assemble_node_power_into(const std::array<double, 4>& big_core_power_w,
                              const power::ResourceVector& rail_power_w,
                              std::vector<double>& node_power_out);

}  // namespace dtpm::thermal
