#include "thermal/lti_propagator.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "thermal/rc_network.hpp"
#include "util/matrix.hpp"

namespace dtpm::thermal {

namespace {

/// Entries alive at once: fan speed levels x the (usually one) step dt.
constexpr std::size_t kCacheCapacity = 16;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t bits_of(double v) {
  std::uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

/// expm(W) by scaling-and-squaring with a Taylor series on the scaled
/// matrix. W is small (2 x free node count) and, for RC networks, mildly
/// normed once scaled, so ~20 terms reach full double precision.
util::Matrix expm(const util::Matrix& w) {
  const std::size_t n = w.rows();
  // Infinity norm (max absolute row sum).
  double norm = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < n; ++c) row += std::abs(w(r, c));
    norm = std::max(norm, row);
  }
  int squarings = 0;
  double scale = 1.0;
  while (norm * scale > 0.5) {
    scale *= 0.5;
    ++squarings;
  }
  const util::Matrix ws = w * scale;
  util::Matrix result = util::Matrix::identity(n);
  util::Matrix term = util::Matrix::identity(n);
  for (int k = 1; k <= 20; ++k) {
    term = term * ws * (1.0 / double(k));
    result += term;
  }
  for (int s = 0; s < squarings; ++s) result = result * result;
  return result;
}

/// The exact affine map of one RK4 substep on dT/dt = A T + c:
///   T' = R T + S c,  R = I + hA + (hA)^2/2 + (hA)^3/6 + (hA)^4/24,
///                    S = h (I + hA/2 + (hA)^2/6 + (hA)^3/24).
void rk4_substep_map(const util::Matrix& a, double h, util::Matrix& r_out,
                     util::Matrix& s_out) {
  const std::size_t n = a.rows();
  const util::Matrix ha = a * h;
  const util::Matrix ha2 = ha * ha;
  const util::Matrix ha3 = ha2 * ha;
  const util::Matrix ha4 = ha3 * ha;
  r_out = util::Matrix::identity(n);
  r_out += ha;
  r_out += ha2 * (1.0 / 2.0);
  r_out += ha3 * (1.0 / 6.0);
  r_out += ha4 * (1.0 / 24.0);
  s_out = util::Matrix::identity(n);
  s_out += ha * (1.0 / 2.0);
  s_out += ha2 * (1.0 / 6.0);
  s_out += ha3 * (1.0 / 24.0);
  s_out = s_out * h;
}

/// Composes affine maps: applying (p1, g1) then (p2, g2) is
/// (p2 p1, p2 g1 + g2).
void compose(const util::Matrix& p2, const util::Matrix& g2, util::Matrix& p,
             util::Matrix& g) {
  g = p2 * g + g2;
  p = p2 * p;
}

}  // namespace

std::uint64_t PropagatorRcModel::signature_of(const RcNetwork& network) {
  const CompiledRcModel& model = network.compiled();
  if (memo_valid_ && memo_model_ == &model &&
      memo_epoch_ == model.conductance_epoch()) {
    return memo_signature_;
  }
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  hash = fnv1a(hash, model.edge_count());
  for (std::size_t e = 0; e < model.edge_count(); ++e) {
    hash = fnv1a(hash, bits_of(model.edge_conductance(e)));
  }
  memo_model_ = &model;
  memo_epoch_ = model.conductance_epoch();
  memo_signature_ = hash;
  memo_valid_ = true;
  return hash;
}

PropagatorMatrices PropagatorRcModel::compile(const RcNetwork& network,
                                              double dt_s,
                                              PropagatorMode mode) {
  const CompiledRcModel& model = network.compiled();
  PropagatorMatrices out;
  out.free_nodes = model.free_nodes();
  const std::size_t n = out.free_nodes.size();
  out.free_count = n;
  if (n == 0) return out;

  // Dense free slot lookup (node -> slot, or npos).
  constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::vector<std::size_t> slot(model.node_count(), kNoSlot);
  for (std::size_t fi = 0; fi < n; ++fi) slot[out.free_nodes[fi]] = fi;

  // Continuous dynamics on the free nodes: dT/dt = A T + D z with z the
  // injected power plus boundary coupling (assembled per step from the live
  // boundary temperatures, so furnace re-pinning needs no recompile).
  util::Matrix a(n, n);
  for (std::size_t e = 0; e < model.edge_count(); ++e) {
    const std::size_t na = model.edge_node_a(e);
    const std::size_t nb = model.edge_node_b(e);
    const double g = model.edge_conductance(e);
    const std::size_t sa = slot[na];
    const std::size_t sb = slot[nb];
    if (sa != kNoSlot) {
      const double g_over_c = g / model.capacitance_j_per_k(na);
      a(sa, sa) -= g_over_c;
      if (sb != kNoSlot) a(sa, sb) += g_over_c;
    }
    if (sb != kNoSlot) {
      const double g_over_c = g / model.capacitance_j_per_k(nb);
      a(sb, sb) -= g_over_c;
      if (sa != kNoSlot) a(sb, sa) += g_over_c;
    }
    if (sa != kNoSlot && sb == kNoSlot) {
      out.boundary_terms.push_back({sa, nb, g});
    } else if (sb != kNoSlot && sa == kNoSlot) {
      out.boundary_terms.push_back({sb, na, g});
    }
  }

  util::Matrix phi, gamma;
  if (mode == PropagatorMode::kRk4Map) {
    // The substep subdivision CompiledRcModel::step uses for this dt, so the
    // map is the composition of exactly the substeps the RK4 loop takes.
    const unsigned substeps = model.substeps_for(dt_s);
    const double h = dt_s / double(substeps);
    util::Matrix r, s;
    rk4_substep_map(a, h, r, s);
    // Fold D into the substep input map: z arrives in W.
    util::Matrix g1(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double inv_c =
          1.0 / model.capacitance_j_per_k(out.free_nodes[i]);
      for (std::size_t j = 0; j < n; ++j) g1(j, i) = s(j, i) * inv_c;
    }
    // Square-and-multiply composition over the substep count.
    phi = util::Matrix::identity(n);
    gamma = util::Matrix(n, n);
    util::Matrix base_p = r, base_g = g1;
    unsigned m = substeps;
    while (m > 0) {
      if (m & 1u) compose(base_p, base_g, phi, gamma);
      m >>= 1u;
      if (m > 0) compose(base_p, base_g, base_p, base_g);
    }
  } else {
    // Augmented-matrix exponential: exp([[A, D], [0, 0]] dt) =
    // [[Phi, Gamma], [0, I]]; handles singular A (no boundary node).
    util::Matrix w(2 * n, 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) w(i, j) = a(i, j) * dt_s;
      w(i, n + i) =
          dt_s / model.capacitance_j_per_k(out.free_nodes[i]);
    }
    const util::Matrix e = expm(w);
    phi = util::Matrix(n, n);
    gamma = util::Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        phi(i, j) = e(i, j);
        gamma(i, j) = e(i, n + j);
      }
    }
  }

  out.phi.resize(n * n);
  out.gamma.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.phi[i * n + j] = phi(i, j);
      out.gamma[i * n + j] = gamma(i, j);
    }
  }
  return out;
}

PropagatorRcModel::Entry& PropagatorRcModel::entry_for(
    const RcNetwork& network, double dt_s) {
  const std::uint64_t sig = signature_of(network);
  for (Entry& e : cache_) {
    if (e.dt_s == dt_s && e.signature == sig) return e;
  }
  Entry entry;
  entry.dt_s = dt_s;
  entry.signature = sig;
  entry.m = compile(network, dt_s, mode_);
  if (cache_.size() < kCacheCapacity) {
    cache_.push_back(std::move(entry));
    return cache_.back();
  }
  cache_[next_evict_] = std::move(entry);
  Entry& slot = cache_[next_evict_];
  next_evict_ = (next_evict_ + 1) % kCacheCapacity;
  return slot;
}

const PropagatorMatrices& PropagatorRcModel::matrices_for(
    const RcNetwork& network, double dt_s) {
  if (dt_s <= 0.0) {
    throw std::invalid_argument("PropagatorRcModel: dt must be > 0");
  }
  return entry_for(network, dt_s).m;
}

void PropagatorRcModel::step(RcNetwork& network, double dt_s,
                             const std::vector<double>& power_w) {
  if (dt_s <= 0.0) {
    throw std::invalid_argument("PropagatorRcModel::step: dt must be > 0");
  }
  if (power_w.size() != network.node_count()) {
    throw std::invalid_argument(
        "PropagatorRcModel::step: power vector size mismatch");
  }
  const std::uint64_t sig = signature_of(network);
  const PropagatorMatrices* m = nullptr;
  for (const Entry& e : cache_) {
    if (e.dt_s == dt_s && e.signature == sig) {
      m = &e.m;
      break;
    }
  }
  if (m == nullptr) {
    // First sight of this (dt, conductance state) -- e.g. the step after a
    // fan transition. Advance through the bit-identical RK4 path and
    // compile the matrices so the next such step is one matvec.
    ++fallback_steps_;
    network.step(dt_s, power_w);
    entry_for(network, dt_s);
    return;
  }

  ++propagator_steps_;
  const std::size_t n = m->free_count;
  std::vector<double>& temps = network.temperatures_mut();
  tf_.resize(n);
  z_.resize(n);
  out_.resize(n);
  const std::size_t* free_nodes = m->free_nodes.data();
  for (std::size_t i = 0; i < n; ++i) {
    tf_[i] = temps[free_nodes[i]];
    z_[i] = power_w[free_nodes[i]];
  }
  for (const PropagatorMatrices::BoundaryTerm& bt : m->boundary_terms) {
    z_[bt.free_slot] += bt.g * temps[bt.boundary_node];
  }
  const double* phi = m->phi.data();
  const double* gamma = m->gamma.data();
  for (std::size_t i = 0; i < n; ++i) {
    const double* phi_row = phi + i * n;
    const double* gamma_row = gamma + i * n;
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += phi_row[j] * tf_[j];
    for (std::size_t j = 0; j < n; ++j) acc += gamma_row[j] * z_[j];
    out_[i] = acc;
  }
  for (std::size_t i = 0; i < n; ++i) temps[free_nodes[i]] = out_[i];
}

}  // namespace dtpm::thermal
