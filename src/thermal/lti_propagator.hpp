// Exact discrete-time propagator for the RC thermal network.
//
// Between conductance changes (fan actuation) the network is LTI: with the
// free-node temperatures stacked as T and the per-step heat input as z
// (injected power plus boundary coupling, both constant within a step),
//
//     dT/dt = A T + D z,   A_ij = g_ij / C_i,  A_ii = -(sum_j g_ij) / C_i,
//                          D = diag(1 / C_i),
//
// so the whole internally-subdivided RK4 substep loop of a fixed-dt step
// collapses to one affine map  T' = Phi T + Gamma z.  PropagatorRcModel
// precomputes (Phi, Gamma) per distinct (dt, conductance state), caches them
// keyed on CompiledRcModel's conductance epoch, and replaces the per-step
// stage sweeps with a single matvec.
//
// Two construction modes:
//
//   * kRk4Map (default): Phi/Gamma are built by repeated squaring of the
//     exact one-substep RK4 affine map (R = I + hA + (hA)^2/2 + (hA)^3/6 +
//     (hA)^4/24, S = h(I + hA/2 + (hA)^2/6 + (hA)^3/24), composed over the
//     same substep count CompiledRcModel::step would use). In exact
//     arithmetic this IS the RK4 loop, so the propagator tracks the
//     reference integrator to floating-point rounding (~1e-13 C/step) --
//     the bounded-error mode.
//   * kExpm: Phi = expm(A dt) and Gamma = integral_0^dt expm(A s) ds * D via
//     scaling-and-squaring on the augmented matrix [[A, D], [0, 0]] (handles
//     boundary-free, hence singular-A, networks). Exact for the continuous
//     dynamics; differs from RK4 by the integrator's own truncation error.
//
// Steps whose (dt, conductance state) pair has no cached matrices -- the
// first step after construction and the first step after a fan transition --
// fall back to the bit-identical RK4 path (RcNetwork::step) and build the
// matrices for subsequent steps; propagator_steps()/fallback_steps() expose
// which path ran.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dtpm::thermal {

class RcNetwork;

enum class PropagatorMode {
  kRk4Map,  ///< repeated-squaring of the RK4 substep map (bounded error)
  kExpm,    ///< true matrix exponential (exact continuous-time propagator)
};

/// One compiled (dt, conductance state) propagator: the affine step map and
/// the boundary-coupling pattern needed to form z. Shared read-only by the
/// scalar step path and the structure-of-arrays batch lanes.
struct PropagatorMatrices {
  std::size_t free_count = 0;
  std::vector<std::size_t> free_nodes;  ///< dense slot -> node index
  std::vector<double> phi;    ///< free_count x free_count, row-major
  std::vector<double> gamma;  ///< free_count x free_count, row-major (maps W)
  /// z[slot] += g * temps[boundary_node] terms, in ascending edge order.
  struct BoundaryTerm {
    std::size_t free_slot;
    std::size_t boundary_node;
    double g;
  };
  std::vector<BoundaryTerm> boundary_terms;
};

/// Caching discrete-time stepping engine over an RcNetwork. Not
/// thread-safe; every network handed to step()/matrices_for() must share
/// the topology of the first one seen and outlive this object (the
/// signature memo is keyed on the compiled model's address + epoch).
class PropagatorRcModel {
 public:
  explicit PropagatorRcModel(PropagatorMode mode = PropagatorMode::kRk4Map)
      : mode_(mode) {}

  PropagatorMode mode() const { return mode_; }

  /// Advances `network` by dt_s. Cache hit: one matvec. Cache miss (first
  /// sight of this dt + conductance state): advances through the
  /// bit-identical RK4 path and compiles + caches the matrices for
  /// subsequent steps. @throws std::invalid_argument on non-positive dt or
  /// a power vector size mismatch (same conditions as RcNetwork::step).
  void step(RcNetwork& network, double dt_s,
            const std::vector<double>& power_w);

  /// The cached matrices for the network's current conductance state and
  /// dt, compiling them on first sight (without advancing any state). The
  /// reference stays valid until the cache evicts the entry (bounded FIFO;
  /// do not hold it across unrelated step()/matrices_for() calls).
  const PropagatorMatrices& matrices_for(const RcNetwork& network,
                                         double dt_s);

  /// Steps taken through the cached-matvec path.
  std::uint64_t propagator_steps() const { return propagator_steps_; }
  /// Steps taken through the RK4 fallback (cache-miss) path.
  std::uint64_t fallback_steps() const { return fallback_steps_; }

 private:
  struct Entry {
    double dt_s = 0.0;
    std::uint64_t signature = 0;
    PropagatorMatrices m;
  };

  /// Value signature of the network's current conductance state (FNV-1a
  /// over the edge-conductance bit patterns), memoized per (compiled model,
  /// epoch) so the hot path never rehashes an unchanged network.
  std::uint64_t signature_of(const RcNetwork& network);
  Entry& entry_for(const RcNetwork& network, double dt_s);
  static PropagatorMatrices compile(const RcNetwork& network, double dt_s,
                                    PropagatorMode mode);

  PropagatorMode mode_;
  std::vector<Entry> cache_;  ///< FIFO-bounded (fan states x dt values)
  std::size_t next_evict_ = 0;

  const void* memo_model_ = nullptr;
  std::uint64_t memo_epoch_ = 0;
  std::uint64_t memo_signature_ = 0;
  bool memo_valid_ = false;

  std::uint64_t propagator_steps_ = 0;
  std::uint64_t fallback_steps_ = 0;

  // step() scratch (no allocation on the hot path).
  std::vector<double> tf_, z_, out_;
};

}  // namespace dtpm::thermal
