#include "thermal/rc_network.hpp"

#include <algorithm>
#include <stdexcept>

namespace dtpm::thermal {

RcNetwork::RcNetwork(std::vector<ThermalNode> nodes,
                     std::vector<ThermalEdge> edges)
    : nodes_(std::move(nodes)),
      edges_(std::move(edges)),
      compiled_(nodes_, edges_) {
  temps_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) temps_[i] = nodes_[i].initial_temp_c;
}

void RcNetwork::set_temperature_c(std::size_t i, double t) { temps_.at(i) = t; }

void RcNetwork::set_all_temperatures_c(double t) {
  std::fill(temps_.begin(), temps_.end(), t);
}

void RcNetwork::set_boundary_temperature_c(std::size_t i, double t) {
  if (!nodes_.at(i).is_boundary) {
    throw std::invalid_argument("RcNetwork: node is not a boundary node");
  }
  temps_[i] = t;
}

void RcNetwork::set_edge_conductance(std::size_t edge_index,
                                     double conductance_w_per_k) {
  compiled_.set_edge_conductance(edge_index, conductance_w_per_k);
  edges_.at(edge_index).conductance_w_per_k = conductance_w_per_k;
}

double RcNetwork::edge_conductance(std::size_t edge_index) const {
  return compiled_.edge_conductance(edge_index);
}

void RcNetwork::step(double dt_s, const std::vector<double>& power_w) {
  if (power_w.size() != nodes_.size()) {
    throw std::invalid_argument("RcNetwork::step: power vector size mismatch");
  }
  compiled_.step(dt_s, power_w.data(), temps_.data());
}

std::vector<double> RcNetwork::steady_state(
    const std::vector<double>& power_w) const {
  if (power_w.size() != nodes_.size()) {
    throw std::invalid_argument("RcNetwork::steady_state: power size mismatch");
  }
  std::vector<double> out = temps_;
  compiled_.steady_state(power_w.data(), out.data());
  return out;
}

}  // namespace dtpm::thermal
