#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/matrix.hpp"

namespace dtpm::thermal {

RcNetwork::RcNetwork(std::vector<ThermalNode> nodes,
                     std::vector<ThermalEdge> edges)
    : nodes_(std::move(nodes)), edges_(std::move(edges)) {
  if (nodes_.empty()) throw std::invalid_argument("RcNetwork: no nodes");
  for (const auto& n : nodes_) {
    if (!n.is_boundary && n.capacitance_j_per_k <= 0.0) {
      throw std::invalid_argument("RcNetwork: non-positive capacitance at " + n.name);
    }
  }
  for (const auto& e : edges_) {
    if (e.node_a >= nodes_.size() || e.node_b >= nodes_.size()) {
      throw std::invalid_argument("RcNetwork: edge index out of range");
    }
    if (e.node_a == e.node_b) {
      throw std::invalid_argument("RcNetwork: self-loop edge");
    }
    if (e.conductance_w_per_k <= 0.0) {
      throw std::invalid_argument("RcNetwork: non-positive conductance");
    }
  }
  temps_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) temps_[i] = nodes_[i].initial_temp_c;
  k1_.resize(nodes_.size());
  k2_.resize(nodes_.size());
  k3_.resize(nodes_.size());
  k4_.resize(nodes_.size());
  scratch_.resize(nodes_.size());
}

std::size_t RcNetwork::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  throw std::invalid_argument("RcNetwork: no node named " + name);
}

void RcNetwork::set_temperature_c(std::size_t i, double t) { temps_.at(i) = t; }

void RcNetwork::set_all_temperatures_c(double t) {
  std::fill(temps_.begin(), temps_.end(), t);
}

void RcNetwork::set_boundary_temperature_c(std::size_t i, double t) {
  if (!nodes_.at(i).is_boundary) {
    throw std::invalid_argument("RcNetwork: node is not a boundary node");
  }
  temps_[i] = t;
}

void RcNetwork::set_edge_conductance(std::size_t edge_index,
                                     double conductance_w_per_k) {
  if (conductance_w_per_k <= 0.0) {
    throw std::invalid_argument("RcNetwork: non-positive conductance");
  }
  edges_.at(edge_index).conductance_w_per_k = conductance_w_per_k;
}

double RcNetwork::edge_conductance(std::size_t edge_index) const {
  return edges_.at(edge_index).conductance_w_per_k;
}

void RcNetwork::derivative(const std::vector<double>& temps,
                           const std::vector<double>& power_w,
                           std::vector<double>& dtemps) const {
  std::fill(dtemps.begin(), dtemps.end(), 0.0);
  for (const auto& e : edges_) {
    const double flow = e.conductance_w_per_k * (temps[e.node_b] - temps[e.node_a]);
    dtemps[e.node_a] += flow;
    dtemps[e.node_b] -= flow;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_boundary) {
      dtemps[i] = 0.0;
    } else {
      dtemps[i] = (dtemps[i] + power_w[i]) / nodes_[i].capacitance_j_per_k;
    }
  }
}

void RcNetwork::step(double dt_s, const std::vector<double>& power_w) {
  if (power_w.size() != nodes_.size()) {
    throw std::invalid_argument("RcNetwork::step: power vector size mismatch");
  }
  if (dt_s <= 0.0) throw std::invalid_argument("RcNetwork::step: dt must be > 0");

  // Bound the internal step by the fastest node time constant so explicit
  // RK4 stays stable: tau_min = min C_i / sum_j g_ij.
  double tau_min = 1e30;
  std::vector<double> gsum(nodes_.size(), 0.0);
  for (const auto& e : edges_) {
    gsum[e.node_a] += e.conductance_w_per_k;
    gsum[e.node_b] += e.conductance_w_per_k;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_boundary || gsum[i] <= 0.0) continue;
    tau_min = std::min(tau_min, nodes_[i].capacitance_j_per_k / gsum[i]);
  }
  const double max_sub = std::max(1e-6, 0.25 * tau_min);
  const unsigned substeps =
      static_cast<unsigned>(std::ceil(dt_s / max_sub));
  const double h = dt_s / double(substeps);

  for (unsigned s = 0; s < substeps; ++s) {
    derivative(temps_, power_w, k1_);
    for (std::size_t i = 0; i < temps_.size(); ++i)
      scratch_[i] = temps_[i] + 0.5 * h * k1_[i];
    derivative(scratch_, power_w, k2_);
    for (std::size_t i = 0; i < temps_.size(); ++i)
      scratch_[i] = temps_[i] + 0.5 * h * k2_[i];
    derivative(scratch_, power_w, k3_);
    for (std::size_t i = 0; i < temps_.size(); ++i)
      scratch_[i] = temps_[i] + h * k3_[i];
    derivative(scratch_, power_w, k4_);
    for (std::size_t i = 0; i < temps_.size(); ++i) {
      temps_[i] += h / 6.0 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    }
  }
}

std::vector<double> RcNetwork::steady_state(
    const std::vector<double>& power_w) const {
  if (power_w.size() != nodes_.size()) {
    throw std::invalid_argument("RcNetwork::steady_state: power size mismatch");
  }
  // Unknowns: temperatures of free nodes. Boundary temps enter the RHS.
  std::vector<std::size_t> free_index(nodes_.size(), SIZE_MAX);
  std::vector<std::size_t> free_nodes;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_boundary) {
      free_index[i] = free_nodes.size();
      free_nodes.push_back(i);
    }
  }
  const std::size_t n = free_nodes.size();
  if (n == 0) return temps_;
  util::Matrix g(n, n);
  util::Matrix rhs(n, 1);
  for (std::size_t fi = 0; fi < n; ++fi) rhs(fi, 0) = power_w[free_nodes[fi]];
  for (const auto& e : edges_) {
    const bool a_free = free_index[e.node_a] != SIZE_MAX;
    const bool b_free = free_index[e.node_b] != SIZE_MAX;
    if (a_free) g(free_index[e.node_a], free_index[e.node_a]) += e.conductance_w_per_k;
    if (b_free) g(free_index[e.node_b], free_index[e.node_b]) += e.conductance_w_per_k;
    if (a_free && b_free) {
      g(free_index[e.node_a], free_index[e.node_b]) -= e.conductance_w_per_k;
      g(free_index[e.node_b], free_index[e.node_a]) -= e.conductance_w_per_k;
    } else if (a_free) {
      rhs(free_index[e.node_a], 0) += e.conductance_w_per_k * temps_[e.node_b];
    } else if (b_free) {
      rhs(free_index[e.node_b], 0) += e.conductance_w_per_k * temps_[e.node_a];
    }
  }
  const util::Matrix sol = g.solve(rhs);
  std::vector<double> out = temps_;
  for (std::size_t fi = 0; fi < n; ++fi) out[free_nodes[fi]] = sol(fi, 0);
  return out;
}

}  // namespace dtpm::thermal
