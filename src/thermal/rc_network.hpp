// Continuous-time RC thermal network: the ground-truth "physics" that stands
// in for the Exynos 5410 die + package + board of the Odroid-XU+E.
//
// The network solves  C dT/dt = -G T(t) + P(t)  (Eq. 4.3 of the paper) with a
// classical RK4 integrator. Nodes may be pinned to a fixed temperature
// (ambient, or the furnace chamber during leakage characterization). The DTPM
// stack never sees this model directly: it observes the plant only through
// quantized, noisy sensors, and identifies its own reduced 4x4 model from
// those observations, exactly as the paper does against real hardware.
//
// Model construction is split from model stepping: the constructor compiles
// the topology into a thermal::CompiledRcModel (flat index arrays, cached
// stability bound, name -> index map) and every step/derivative/steady-state
// call routes through it, so the integrator hot loop performs no lookups and
// no heap allocation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/compiled_rc_model.hpp"

namespace dtpm::thermal {

/// One lumped thermal node.
struct ThermalNode {
  std::string name;
  double capacitance_j_per_k = 1.0;
  double initial_temp_c = 25.0;
  /// Fixed-temperature boundary node (ambient / furnace chamber).
  bool is_boundary = false;
};

/// Symmetric conductance between two nodes, in W/K.
struct ThermalEdge {
  std::size_t node_a = 0;
  std::size_t node_b = 0;
  double conductance_w_per_k = 0.0;
};

/// Lumped RC network with runtime-adjustable edge conductances (the fan
/// manipulates the case-to-ambient edge) and pinnable boundary temperatures
/// (the furnace manipulates ambient).
class RcNetwork {
 public:
  /// @throws std::invalid_argument on malformed topology (edge out of range,
  ///         non-positive capacitance or conductance, self-loop).
  RcNetwork(std::vector<ThermalNode> nodes, std::vector<ThermalEdge> edges);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const ThermalNode& node(std::size_t i) const { return nodes_.at(i); }
  const ThermalEdge& edge(std::size_t i) const { return edges_.at(i); }

  /// Index lookup by node name against the map built at construction;
  /// throws if absent.
  std::size_t index_of(const std::string& name) const {
    return compiled_.index_of(name);
  }

  /// Current temperature of node i in Celsius.
  double temperature_c(std::size_t i) const { return temps_.at(i); }
  const std::vector<double>& temperatures_c() const { return temps_; }

  /// Overrides the temperature state (used by tests and by the furnace to
  /// equilibrate quickly).
  void set_temperature_c(std::size_t i, double t);
  void set_all_temperatures_c(double t);

  /// Re-pins a boundary node to a new fixed temperature.
  void set_boundary_temperature_c(std::size_t i, double t);

  /// Changes an edge conductance at runtime (fan speed changes). Writing an
  /// unchanged value is a no-op.
  void set_edge_conductance(std::size_t edge_index, double conductance_w_per_k);
  double edge_conductance(std::size_t edge_index) const;

  /// Advances the network by dt seconds with the given per-node power
  /// injection (W). Power injected into boundary nodes is ignored. dt is
  /// internally subdivided so the explicit integrator stays well inside its
  /// stability region for the stiffest node.
  /// @throws std::invalid_argument on a power vector size mismatch or
  ///         non-positive dt.
  void step(double dt_s, const std::vector<double>& power_w);

  /// Steady-state temperatures for a constant power vector, solved directly
  /// from G T = P with boundary conditions. Used by tests and by the furnace
  /// harness for fast equilibration.
  std::vector<double> steady_state(const std::vector<double>& power_w) const;

  /// The compiled form the step path runs on (read-only).
  const CompiledRcModel& compiled() const { return compiled_; }

  /// Mutable temperature state for external stepping engines: the LTI
  /// propagator and the batch lanes advance the state out-of-band and write
  /// the result back through this. Everyone else reads temperatures_c().
  std::vector<double>& temperatures_mut() { return temps_; }

 private:
  std::vector<ThermalNode> nodes_;
  std::vector<ThermalEdge> edges_;
  CompiledRcModel compiled_;
  std::vector<double> temps_;
};

}  // namespace dtpm::thermal
