#include "thermal/sensor.hpp"

#include <cmath>
#include <stdexcept>

#include "util/vgauss.hpp"

namespace dtpm::thermal {

TempSensorBank::TempSensorBank(std::vector<std::size_t> observed_nodes,
                               const TempSensorParams& params, util::Rng rng)
    : observed_nodes_(std::move(observed_nodes)), params_(params), rng_(rng) {
  if (observed_nodes_.empty()) {
    throw std::invalid_argument("TempSensorBank: no observed nodes");
  }
  if (params_.quantization_c < 0.0 || params_.noise_stddev_c < 0.0) {
    throw std::invalid_argument("TempSensorBank: negative sensor parameter");
  }
}

std::vector<double> TempSensorBank::read(
    const std::vector<double>& true_temps_c) {
  std::vector<double> out;
  read_into(true_temps_c, out);
  return out;
}

void TempSensorBank::read_into(const std::vector<double>& true_temps_c,
                               std::vector<double>& readings_out) {
  readings_out.clear();
  readings_out.reserve(observed_nodes_.size());
  for (std::size_t node : observed_nodes_) {
    if (node >= true_temps_c.size()) {
      throw std::invalid_argument("TempSensorBank: node index out of range");
    }
    double reading = true_temps_c[node] + rng_.gaussian(0.0, params_.noise_stddev_c);
    if (params_.quantization_c > 0.0) {
      reading = std::round(reading / params_.quantization_c) * params_.quantization_c;
    }
    readings_out.push_back(reading);
  }
}

void TempSensorBank::draw_noise_into(double* noise_out) {
  // gaussian() returns the 0 mean without touching the engine when the
  // stddev is <= 0, so a noise-free bank stays stream-compatible for free.
  util::gaussian_fill(rng_, 0.0, params_.noise_stddev_c, noise_out,
                      observed_nodes_.size());
}

void TempSensorBank::read_with_noise_into(
    const std::vector<double>& true_temps_c, const double* noise,
    std::vector<double>& readings_out) {
  readings_out.clear();
  readings_out.reserve(observed_nodes_.size());
  for (std::size_t i = 0; i < observed_nodes_.size(); ++i) {
    const std::size_t node = observed_nodes_[i];
    if (node >= true_temps_c.size()) {
      throw std::invalid_argument("TempSensorBank: node index out of range");
    }
    double reading = true_temps_c[node] + noise[i];
    if (params_.quantization_c > 0.0) {
      reading = std::round(reading / params_.quantization_c) * params_.quantization_c;
    }
    readings_out.push_back(reading);
  }
}

}  // namespace dtpm::thermal
