// Temperature sensor model. The Exynos 5410 exposes one thermal sensor per
// big core (§6.1.2); readings are quantized and mildly noisy, which is the
// measurement floor that ultimately limits identification and prediction
// accuracy in the reproduction, as on the board.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace dtpm::thermal {

/// Sensor error characteristics.
struct TempSensorParams {
  double quantization_c = 0.5;   ///< reading granularity (TMU-class sensor)
  double noise_stddev_c = 0.20;  ///< additive Gaussian noise before quantizing
};

inline bool operator==(const TempSensorParams& a, const TempSensorParams& b) {
  return a.quantization_c == b.quantization_c &&
         a.noise_stddev_c == b.noise_stddev_c;
}

/// Samples true node temperatures into sensor readings.
class TempSensorBank {
 public:
  TempSensorBank(std::vector<std::size_t> observed_nodes,
                 const TempSensorParams& params, util::Rng rng);

  /// One reading per observed node, in observation order.
  std::vector<double> read(const std::vector<double>& true_temps_c);

  /// Allocation-free variant: clears and refills `readings_out` (capacity is
  /// reused across calls). Draws the same RNG stream as read().
  void read_into(const std::vector<double>& true_temps_c,
                 std::vector<double>& readings_out);

  /// Batched-noise split of read_into(), for the lockstep lane's one-pass
  /// sensor kernel: draw_noise_into() consumes this bank's RNG stream
  /// exactly as one read would (noise_count() gaussians, or nothing when
  /// the bank is noise-free), and read_with_noise_into() then produces
  /// readings bit-identical to read_into() from the pre-drawn values.
  std::size_t noise_count() const { return observed_nodes_.size(); }
  void draw_noise_into(double* noise_out);
  void read_with_noise_into(const std::vector<double>& true_temps_c,
                            const double* noise,
                            std::vector<double>& readings_out);

  const std::vector<std::size_t>& observed_nodes() const {
    return observed_nodes_;
  }

 private:
  std::vector<std::size_t> observed_nodes_;
  TempSensorParams params_;
  util::Rng rng_;
};

}  // namespace dtpm::thermal
