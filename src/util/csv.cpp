#include "util/csv.hpp"

#include <stdexcept>

namespace dtpm::util {
namespace {

void write_header(std::ofstream& out, const std::vector<std::string>& header) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    out << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns_ == 0) throw std::invalid_argument("CsvWriter: empty header");
  write_header(out_, header);
}

void CsvWriter::append(const std::vector<double>& row) {
  if (row.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    out_ << row[i] << (i + 1 < row.size() ? "," : "\n");
  }
  ++rows_;
}

TraceTable::TraceTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TraceTable: empty header");
}

void TraceTable::append(const std::vector<double>& row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TraceTable: row width mismatch");
  }
  rows_.push_back(row);
}

std::vector<double> TraceTable::column(const std::string& name) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (header_[c] == name) {
      std::vector<double> out;
      out.reserve(rows_.size());
      for (const auto& row : rows_) out.push_back(row[c]);
      return out;
    }
  }
  throw std::invalid_argument("TraceTable: no column named " + name);
}

void TraceTable::write_csv(const std::string& path) const {
  CsvWriter writer(path, header_);
  for (const auto& row : rows_) writer.append(row);
}

}  // namespace dtpm::util
