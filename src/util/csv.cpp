#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace dtpm::util {
namespace {

void write_header(std::ofstream& out, const std::vector<std::string>& header) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    out << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
}

std::vector<std::string> split_line(std::string line) {
  // Tolerate CRLF files (e.g. an autocrlf checkout of the golden traces).
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header,
                     int precision)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  if (columns_ == 0) throw std::invalid_argument("CsvWriter: empty header");
  out_.precision(precision);
  write_header(out_, header);
}

void CsvWriter::append(const std::vector<double>& row) {
  if (row.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    out_ << row[i] << (i + 1 < row.size() ? "," : "\n");
  }
  ++rows_;
}

TraceTable::TraceTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TraceTable: empty header");
}

void TraceTable::append(const std::vector<double>& row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TraceTable: row width mismatch");
  }
  rows_.push_back(row);
}

std::vector<double> TraceTable::column(const std::string& name) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (header_[c] == name) {
      std::vector<double> out;
      out.reserve(rows_.size());
      for (const auto& row : rows_) out.push_back(row[c]);
      return out;
    }
  }
  throw std::invalid_argument("TraceTable: no column named " + name);
}

void TraceTable::write_csv(const std::string& path, int precision) const {
  CsvWriter writer(path, header_, precision);
  for (const auto& row : rows_) writer.append(row);
}

TraceTable read_csv_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_table: cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) {
    throw std::invalid_argument("read_csv_table: empty file " + path);
  }
  TraceTable table(split_line(line));

  std::vector<double> row;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    row.clear();
    for (const std::string& cell : split_line(line)) {
      // stod throws bare invalid_argument/out_of_range without context;
      // normalize both to the documented invalid_argument with cell + file.
      try {
        std::size_t consumed = 0;
        const double value = std::stod(cell, &consumed);
        if (consumed != cell.size()) throw std::invalid_argument("trailer");
        row.push_back(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("read_csv_table: malformed cell '" +
                                    cell + "' in " + path);
      }
    }
    table.append(row);  // throws on ragged rows
  }
  return table;
}

}  // namespace dtpm::util
