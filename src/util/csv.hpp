// Minimal CSV trace writer. Experiment runs log per-interval sensor readings
// the same way the paper's UNIX logging script produced .CSV tables (§6.1.2).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dtpm::util {

/// Column-oriented CSV writer: declare a header once, then append rows.
/// Throws std::runtime_error if the file cannot be opened or a row does not
/// match the header width.
class CsvWriter {
 public:
  /// `precision` is the stream's significant-digit count; pass
  /// kRoundTripPrecision for files that must reload bit-identically.
  CsvWriter(const std::string& path, std::vector<std::string> header,
            int precision = 6);

  /// Appends one data row; must match the header length.
  void append(const std::vector<double>& row);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Significant digits (max_digits10) at which a double survives the
/// write-then-parse round trip exactly; golden trace files use this.
inline constexpr int kRoundTripPrecision = 17;

/// In-memory trace table with the same shape; used by benches that format
/// figures to stdout instead of files, and convertible to CSV on demand.
class TraceTable {
 public:
  explicit TraceTable(std::vector<std::string> header);

  void append(const std::vector<double>& row);

  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<double>>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }

  /// Extracts a column by name; throws if absent.
  std::vector<double> column(const std::string& name) const;

  /// Writes the whole table to a CSV file.
  void write_csv(const std::string& path, int precision = 6) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<double>> rows_;
};

/// Parses a numeric CSV written by CsvWriter/TraceTable back into a table.
/// Throws std::runtime_error if the file cannot be opened and
/// std::invalid_argument on a malformed cell or a ragged row.
TraceTable read_csv_table(const std::string& path);

}  // namespace dtpm::util
