#include "util/diagnostics.hpp"

namespace dtpm::util {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "error";
}

std::string format_diagnostic(const Diagnostic& diagnostic) {
  return diagnostic.path + ": " + to_string(diagnostic.severity) + " " +
         diagnostic.code + ": " + diagnostic.message;
}

void DiagnosticSink::report(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) {
    ++errors_;
  } else if (diagnostic.severity == Severity::kWarning) {
    ++warnings_;
  }
  on_report(std::move(diagnostic));
}

}  // namespace dtpm::util
