// Shared diagnostics engine for the data layer: a Diagnostic is one finding
// (severity, a stable code like "L012", a JSON-path location like
// "$.platform.floorplan.edges[3]", and a human message), and a
// DiagnosticSink decides what happens when one is reported. The two modes
// every consumer builds on:
//
//   * CollectingSink -- accumulates every finding so one pass over a
//     document surfaces *all* its problems (what `dtpm lint` and the
//     collecting config_io overloads use).
//   * sim::config_io's ThrowingSink -- throws ConfigError on the first
//     error, preserving the legacy parse contract byte for byte.
//
// Codes are stable identifiers documented in README "Linting configs";
// messages may be reworded, codes must never be renumbered.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace dtpm::util {

enum class Severity {
  kError,    ///< the artifact is broken; `dtpm lint` exits non-zero
  kWarning,  ///< almost certainly a mistake, but the run would proceed
  kNote,     ///< surprising-but-defined behavior worth knowing about
};

/// "error", "warning", "note".
const char* to_string(Severity severity);

/// One finding, pinned to a document path.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     ///< stable identifier, e.g. "L103"
  std::string path;     ///< JSON-pointer-style, e.g. "$.floorplan.edges[3]"
  std::string message;  ///< human-readable detail (may carry a suggestion)
};

/// Canonical one-line rendering: "$.path: error L103: message".
std::string format_diagnostic(const Diagnostic& diagnostic);

/// Where findings go. The base class counts severities (so passes can ask
/// "did this subtree produce errors?" in either mode) and dispatches to the
/// mode-specific on_report.
class DiagnosticSink {
 public:
  virtual ~DiagnosticSink() = default;

  /// Counts the diagnostic, then hands it to the sink implementation. A
  /// throwing implementation may not return.
  void report(Diagnostic diagnostic);

  void error(std::string code, std::string path, std::string message) {
    report({Severity::kError, std::move(code), std::move(path),
            std::move(message)});
  }
  void warning(std::string code, std::string path, std::string message) {
    report({Severity::kWarning, std::move(code), std::move(path),
            std::move(message)});
  }
  void note(std::string code, std::string path, std::string message) {
    report({Severity::kNote, std::move(code), std::move(path),
            std::move(message)});
  }

  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ != 0; }

 protected:
  virtual void on_report(Diagnostic diagnostic) = 0;

 private:
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

/// Accumulates every finding in report order.
class CollectingSink : public DiagnosticSink {
 public:
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// Moves the findings out (the sink is empty-but-valid afterwards).
  std::vector<Diagnostic> take() { return std::move(diagnostics_); }

 protected:
  void on_report(Diagnostic diagnostic) override {
    diagnostics_.push_back(std::move(diagnostic));
  }

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace dtpm::util
