#include "util/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dtpm::util {

namespace {

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  throw std::runtime_error(std::string("JSON: expected ") + wanted +
                           ", got " + JsonValue::type_name(got));
}

}  // namespace

const char* JsonValue::type_name(Type t) {
  switch (t) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kNumber:
      return "number";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "?";
}

JsonValue::JsonValue(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {
  for (std::size_t i = 0; i < object_.size(); ++i) {
    for (std::size_t j = i + 1; j < object_.size(); ++j) {
      if (object_[i].first == object_[j].first) {
        throw std::invalid_argument("JSON object: duplicate key '" +
                                    object_[i].first + "'");
      }
    }
  }
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::int64_t JsonValue::as_integer(std::int64_t lo, std::int64_t hi) const {
  const double n = as_number();
  if (std::nearbyint(n) != n || std::fabs(n) > 9007199254740992.0 /* 2^53 */) {
    throw std::runtime_error("JSON: expected an integer, got " +
                             json_write(*this, 0));
  }
  const auto i = static_cast<std::int64_t>(n);
  if (i < lo || i > hi) {
    throw std::runtime_error("JSON: integer " + std::to_string(i) +
                             " outside [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
  }
  return i;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonObject& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull:
      return true;
    case JsonValue::Type::kBool:
      return a.bool_ == b.bool_;
    case JsonValue::Type::kNumber:
      return a.number_ == b.number_;
    case JsonValue::Type::kString:
      return a.string_ == b.string_;
    case JsonValue::Type::kArray:
      return a.array_ == b.array_;
    case JsonValue::Type::kObject: {
      if (a.object_.size() != b.object_.size()) return false;
      for (const auto& [key, value] : a.object_) {
        const JsonValue* other = b.find(key);
        if (other == nullptr || !(value == *other)) return false;
      }
      return true;
    }
  }
  return false;
}

JsonParseError::JsonParseError(const std::string& message, std::size_t line,
                               std::size_t column)
    : std::runtime_error("JSON parse error at line " + std::to_string(line) +
                         ", column " + std::to_string(column) + ": " +
                         message),
      line_(line),
      column_(column) {}

namespace {

/// Recursive-descent parser over a string_view with line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_trivia();
    JsonValue value = parse_value(0);
    skip_trivia();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, line_, column_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  /// Whitespace and `//` line comments (the one extension; see json.hpp).
  void skip_trivia() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!eof() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  void expect(char c, const char* where) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "' " + where);
    }
    advance();
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxJsonDepth) {
      fail("nesting deeper than " + std::to_string(kMaxJsonDepth) + " levels");
    }
    if (eof()) fail("unexpected end of input, expected a value");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        parse_literal("true");
        return JsonValue(true);
      case 'f':
        parse_literal("false");
        return JsonValue(false);
      case 'n':
        parse_literal("null");
        return JsonValue();
      default:
        return parse_number();
    }
  }

  void parse_literal(std::string_view literal) {
    for (char expected : literal) {
      if (eof() || peek() != expected) {
        fail("invalid literal, expected '" + std::string(literal) + "'");
      }
      advance();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{', "to start an object");
    JsonValue object((JsonObject()));
    skip_trivia();
    if (!eof() && peek() == '}') {
      advance();
      return object;
    }
    for (;;) {
      skip_trivia();
      if (eof() || peek() != '"') fail("expected a string object key");
      const std::size_t key_line = line_, key_column = column_;
      std::string key = parse_string();
      if (object.find(key) != nullptr) {
        throw JsonParseError("duplicate object key '" + key + "'", key_line,
                             key_column);
      }
      skip_trivia();
      expect(':', "after object key");
      skip_trivia();
      object.set(std::move(key), parse_value(depth + 1));
      skip_trivia();
      if (eof()) fail("unterminated object, expected ',' or '}'");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "to end the object");
      return object;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[', "to start an array");
    JsonArray array;
    skip_trivia();
    if (!eof() && peek() == ']') {
      advance();
      return JsonValue(std::move(array));
    }
    for (;;) {
      skip_trivia();
      array.push_back(parse_value(depth + 1));
      skip_trivia();
      if (eof()) fail("unterminated array, expected ',' or ']'");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "to end the array");
      return JsonValue(std::move(array));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= unsigned(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= unsigned(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= unsigned(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += char(cp);
    } else if (cp < 0x800) {
      out += char(0xC0 | (cp >> 6));
      out += char(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += char(0xE0 | (cp >> 12));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    } else {
      out += char(0xF0 | (cp >> 18));
      out += char(0x80 | ((cp >> 12) & 0x3F));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"', "to start a string");
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (c == '\n') fail("raw newline inside string");
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character inside string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char esc = advance();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00..\uDFFF.
            if (eof() || peek() != '\\') fail("unpaired UTF-16 surrogate");
            advance();
            if (eof() || peek() != 'u') fail("unpaired UTF-16 surrogate");
            advance();
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid UTF-16 low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    const std::size_t start_line = line_, start_column = column_;
    auto digit = [](char c) { return c >= '0' && c <= '9'; };

    if (!eof() && peek() == '-') advance();
    // Integer part: a single 0, or a nonzero digit followed by digits
    // (leading zeros are invalid JSON).
    if (eof() || !digit(peek())) fail("invalid number");
    if (peek() == '0') {
      advance();
    } else {
      while (!eof() && digit(peek())) advance();
    }
    if (!eof() && digit(peek())) {
      throw JsonParseError("numbers may not have leading zeros", start_line,
                           start_column);
    }
    if (!eof() && peek() == '.') {
      advance();
      if (eof() || !digit(peek())) fail("expected digits after decimal point");
      while (!eof() && digit(peek())) advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (eof() || !digit(peek())) fail("expected digits in exponent");
      while (!eof() && digit(peek())) advance();
    }

    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      throw JsonParseError("invalid number '" + token + "'", start_line,
                           start_column);
    }
    if (!std::isfinite(value)) {
      throw JsonParseError("number '" + token + "' overflows a double",
                           start_line, start_column);
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

void write_escaped_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", unsigned(c));
          out += buf;
        } else {
          out += c;  // UTF-8 passes through verbatim
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    throw std::invalid_argument("json_write: non-finite number");
  }
  if (std::nearbyint(n) == n && std::fabs(n) <= 9007199254740992.0 &&
      !std::signbit(n)) {
    out += std::to_string(static_cast<long long>(n));
    return;
  }
  if (std::nearbyint(n) == n && std::fabs(n) <= 9007199254740992.0) {
    // Negative integral (including -0, whose sign must survive).
    if (n == 0.0) {
      out += "-0";
    } else {
      out += std::to_string(static_cast<long long>(n));
    }
    return;
  }
#if defined(__cpp_lib_to_chars)
  // Shortest representation that parses back to the same double.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), n);
  out.append(buf, result.ptr);
#else
  // Pre-GCC-11 toolchains lack floating-point to_chars; max_digits10 is
  // longer but round-trips just as exactly.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
#endif
}

void write_value(std::string& out, const JsonValue& value, int indent,
                 int depth) {
  const bool pretty = indent > 0;
  auto newline_indent = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(std::size_t(indent) * std::size_t(d), ' ');
  };

  switch (value.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber:
      write_number(out, value.as_number());
      return;
    case JsonValue::Type::kString:
      write_escaped_string(out, value.as_string());
      return;
    case JsonValue::Type::kArray: {
      const JsonArray& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(depth + 1);
        write_value(out, array[i], indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      const JsonObject& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : object) {
        if (!first) out += ',';
        first = false;
        newline_indent(depth + 1);
        write_escaped_string(out, key);
        out += pretty ? ": " : ":";
        write_value(out, member, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open JSON file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return json_parse(buffer.str());
  } catch (const JsonParseError& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::string json_write(const JsonValue& value, int indent) {
  std::string out;
  write_value(out, value, indent, 0);
  return out;
}

void json_write_file(const std::string& path, const JsonValue& value,
                     int indent) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << json_write(value, indent) << '\n';
  if (!out) {
    throw std::runtime_error("failed writing JSON to " + path);
  }
}

}  // namespace dtpm::util
