// Dependency-free JSON document model, parser, and writer -- the substrate
// of the declarative experiment configs (sim/config_io.hpp) and the `dtpm`
// CLI. Scope is deliberately small:
//
//  - Strict RFC 8259 JSON plus ONE ergonomic extension: `//` line comments,
//    so checked-in config files can annotate themselves. The writer never
//    emits comments.
//  - Objects preserve insertion order (configs diff cleanly) and reject
//    duplicate keys at parse time (a duplicated config field is always a
//    mistake, and silently keeping one of the two hides it).
//  - Numbers are doubles. Integral values round-trip exactly up to 2^53;
//    the writer prints them without a decimal point. Non-finite values are
//    unrepresentable: the parser rejects overflowing literals and the
//    writer refuses NaN/infinity.
//  - Parse errors carry 1-based line/column; nesting is capped at
//    kMaxJsonDepth so malicious inputs cannot blow the stack.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dtpm::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// Insertion-ordered object representation; keys are unique (parser- and
/// set()-enforced).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// Maximum nesting depth the parser accepts.
inline constexpr std::size_t kMaxJsonDepth = 200;

/// One JSON document node. Accessors throw std::runtime_error on a type
/// mismatch; config-level code (sim/config_io) performs its own checks to
/// attach `$.path` context instead.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  JsonValue(int n) : type_(Type::kNumber), number_(n) {}
  JsonValue(unsigned n) : type_(Type::kNumber), number_(n) {}
  JsonValue(long n) : type_(Type::kNumber), number_(double(n)) {}
  JsonValue(unsigned long n) : type_(Type::kNumber), number_(double(n)) {}
  JsonValue(unsigned long long n) : type_(Type::kNumber), number_(double(n)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  JsonValue(JsonObject o);  ///< throws std::invalid_argument on duplicate keys

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  /// as_number, checked to be integral and inside [lo, hi].
  std::int64_t as_integer(std::int64_t lo = INT64_MIN,
                          std::int64_t hi = INT64_MAX) const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Appends or replaces an object member (null value stays a member).
  /// Throws std::runtime_error when this value is not an object.
  void set(std::string key, JsonValue value);

  /// Deep structural equality (numbers compared by ==, so 1 and 1.0 match;
  /// object member ORDER is ignored, matching JSON semantics).
  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) {
    return !(a == b);
  }

  static const char* type_name(Type t);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Parse failure with a 1-based source position.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t line,
                 std::size_t column);
  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Parses one complete document (trailing non-whitespace rejected).
JsonValue json_parse(std::string_view text);

/// Reads and parses a file; throws std::runtime_error when unreadable.
JsonValue json_parse_file(const std::string& path);

/// Serializes; `indent` > 0 pretty-prints, <= 0 is compact. Throws
/// std::invalid_argument on non-finite numbers.
std::string json_write(const JsonValue& value, int indent = 2);

/// json_write straight to a file (trailing newline included).
void json_write_file(const std::string& path, const JsonValue& value,
                     int indent = 2);

}  // namespace dtpm::util
