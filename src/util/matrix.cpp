#include "util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace dtpm::util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ > 0 ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix result = *this;
  result += other;
  return result;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix result = *this;
  result -= other;
  return result;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("Matrix+: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("Matrix-: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix*: inner dimension mismatch");
  }
  Matrix result(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        result(i, j) += a * other(k, j);
      }
    }
  }
  return result;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix result = *this;
  for (double& v : result.data_) v *= scalar;
  return result;
}

Matrix Matrix::transpose() const {
  Matrix result(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) result(j, i) = (*this)(i, j);
  }
  return result;
}

Matrix Matrix::pow(unsigned exponent) const {
  if (rows_ != cols_) throw std::invalid_argument("Matrix::pow: not square");
  Matrix result = identity(rows_);
  Matrix base = *this;
  unsigned e = exponent;
  while (e > 0) {
    if (e & 1u) result = result * base;
    base = base * base;
    e >>= 1u;
  }
  return result;
}

Matrix Matrix::row(std::size_t r) const {
  assert(r < rows_);
  Matrix result(1, cols_);
  for (std::size_t j = 0; j < cols_; ++j) result(0, j) = (*this)(r, j);
  return result;
}

Matrix Matrix::col(std::size_t c) const {
  assert(c < cols_);
  Matrix result(rows_, 1);
  for (std::size_t i = 0; i < rows_; ++i) result(i, 0) = (*this)(i, c);
  return result;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

Matrix Matrix::solve(const Matrix& b) const {
  if (rows_ != cols_) throw std::invalid_argument("Matrix::solve: not square");
  if (b.rows_ != rows_) throw std::invalid_argument("Matrix::solve: rhs mismatch");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix x = b;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::fabs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::fabs(a(i, k)) > best) {
        best = std::fabs(a(i, k));
        pivot = i;
      }
    }
    if (best < 1e-14) throw std::runtime_error("Matrix::solve: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      for (std::size_t j = 0; j < x.cols_; ++j) std::swap(x(k, j), x(pivot, j));
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) / a(k, k);
      if (factor == 0.0) continue;
      for (std::size_t j = k; j < n; ++j) a(i, j) -= factor * a(k, j);
      for (std::size_t j = 0; j < x.cols_; ++j) x(i, j) -= factor * x(k, j);
    }
  }
  for (std::size_t kk = n; kk-- > 0;) {
    for (std::size_t j = 0; j < x.cols_; ++j) {
      double sum = x(kk, j);
      for (std::size_t i = kk + 1; i < n; ++i) sum -= a(kk, i) * x(i, j);
      x(kk, j) = sum / a(kk, kk);
    }
  }
  return x;
}

Matrix Matrix::inverse() const { return solve(identity(rows_)); }

Matrix Matrix::least_squares(const Matrix& b, double ridge) const {
  if (b.rows_ != rows_) {
    throw std::invalid_argument("Matrix::least_squares: rhs mismatch");
  }
  // Assemble the (possibly ridge-augmented) system.
  const std::size_t extra = ridge > 0.0 ? cols_ : 0;
  Matrix a(rows_ + extra, cols_);
  Matrix rhs(rows_ + extra, b.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) a(i, j) = (*this)(i, j);
    for (std::size_t j = 0; j < b.cols_; ++j) rhs(i, j) = b(i, j);
  }
  if (ridge > 0.0) {
    const double s = std::sqrt(ridge);
    for (std::size_t j = 0; j < cols_; ++j) a(rows_ + j, j) = s;
  }
  if (a.rows_ < a.cols_) {
    throw std::invalid_argument("Matrix::least_squares: underdetermined");
  }
  // Householder QR: triangularize [A | rhs] in place.
  const std::size_t m = a.rows_;
  const std::size_t n = a.cols_;
  for (std::size_t k = 0; k < n; ++k) {
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-14) {
      throw std::runtime_error("Matrix::least_squares: rank deficient");
    }
    const double alpha = a(k, k) >= 0 ? -norm : norm;
    std::vector<double> v(m - k);
    v[0] = a(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = a(i, k);
    double vnorm2 = 0.0;
    for (double vi : v) vnorm2 += vi * vi;
    if (vnorm2 < 1e-28) continue;
    auto apply = [&](Matrix& target, std::size_t col_begin, std::size_t col_end) {
      for (std::size_t j = col_begin; j < col_end; ++j) {
        double dot = 0.0;
        for (std::size_t i = k; i < m; ++i) dot += v[i - k] * target(i, j);
        const double beta = 2.0 * dot / vnorm2;
        for (std::size_t i = k; i < m; ++i) target(i, j) -= beta * v[i - k];
      }
    };
    apply(a, k, n);
    apply(rhs, 0, rhs.cols_);
  }
  // Back substitution on the upper-triangular part.
  Matrix x(n, rhs.cols_);
  for (std::size_t kk = n; kk-- > 0;) {
    for (std::size_t j = 0; j < rhs.cols_; ++j) {
      double sum = rhs(kk, j);
      for (std::size_t i = kk + 1; i < n; ++i) sum -= a(kk, i) * x(i, j);
      x(kk, j) = sum / a(kk, kk);
    }
  }
  return x;
}

double Matrix::spectral_radius(unsigned iterations, double tolerance) const {
  if (rows_ != cols_ || rows_ == 0) {
    throw std::invalid_argument("Matrix::spectral_radius: not square");
  }
  if (rows_ == 1) return std::fabs(data_[0]);
  // Power iteration on A'A would give singular values; for the (generally
  // non-symmetric) state matrices we track ||A^k x|| growth instead, which
  // converges to the dominant |eigenvalue| when a single real eigenvalue
  // dominates. Converged means both the estimate and the iterate direction
  // have settled (|<x_k+1, x_k>| -> 1; the absolute value also accepts the
  // sign-flipping iterates of a negative dominant eigenvalue).
  Matrix x(rows_, 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    x(i, 0) = 1.0 / std::sqrt(double(rows_));
  }
  double estimate = 0.0;
  double previous_estimate = -1.0;
  for (unsigned it = 0; it < iterations; ++it) {
    Matrix y = (*this) * x;
    const double norm = y.frobenius_norm();
    if (norm < 1e-300) return 0.0;
    estimate = norm;
    double dot = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) dot += y(i, 0) * x(i, 0);
    const double alignment = std::fabs(dot) / norm;
    x = y * (1.0 / norm);
    if (it > 0 &&
        std::fabs(estimate - previous_estimate) <=
            tolerance * std::max(1.0, estimate) &&
        1.0 - alignment <= 1e3 * tolerance) {
      return estimate;
    }
    previous_estimate = estimate;
  }
  // Documented fallback: the iterates of a dominant complex-conjugate pair
  // rotate in a two-dimensional invariant subspace and never align, so
  // extract that subspace instead. With the current unit iterate x, fit
  //     A²x ≈ a·(Ax) + b·x        (least squares, exact on the subspace)
  // whose companion polynomial λ² − aλ − b has the dominant pair as roots;
  // return the larger root modulus (for a complex pair, sqrt(-b)).
  try {
    const Matrix ax = (*this) * x;
    const Matrix aax = (*this) * ax;
    Matrix basis(rows_, 2);
    for (std::size_t i = 0; i < rows_; ++i) {
      basis(i, 0) = x(i, 0);
      basis(i, 1) = ax(i, 0);
    }
    const Matrix coef = basis.least_squares(aax);
    const double b = coef(0, 0);
    const double a = coef(1, 0);
    const double discriminant = 0.25 * a * a + b;
    if (discriminant >= 0.0) {
      const double root = std::sqrt(discriminant);
      return std::max(std::fabs(0.5 * a + root), std::fabs(0.5 * a - root));
    }
    // Complex pair λ = a/2 ± i·sqrt(−disc): |λ|² = a²/4 − disc = −b.
    return std::sqrt(-b);
  } catch (const std::exception&) {
    // Degenerate basis (x and Ax parallel): the plain estimate was right.
    return estimate;
  }
}

bool Matrix::approx_equal(const Matrix& other, double tolerance) const {
  if (!same_shape(other)) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tolerance) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols(); ++j) {
      os << m(i, j) << (j + 1 < m.cols() ? ", " : "");
    }
    os << (i + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

}  // namespace dtpm::util
