// Small dense matrix of double, sized for the 4x4 state-space thermal models
// used throughout the library. Row-major storage; all operations are
// bounds-checked in debug builds via assertions.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace dtpm::util {

/// Dense, heap-backed, row-major matrix of double.
///
/// This is intentionally a minimal linear-algebra kernel: the thermal models in
/// the paper are 4x4 (four big-core hotspots, four power resources), and the
/// system-identification regressions are at most a few thousand rows by a
/// dozen columns, so a straightforward implementation with partial-pivoting
/// Gaussian elimination and Householder least squares is both adequate and
/// easy to audit.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix initialized to zero.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Column vector from values.
  static Matrix column(const std::vector<double>& values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(double scalar) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);

  Matrix transpose() const;

  /// Matrix raised to a non-negative integer power (square matrices only).
  Matrix pow(unsigned exponent) const;

  /// Extracts row r as a 1 x cols matrix.
  Matrix row(std::size_t r) const;

  /// Extracts column c as a rows x 1 matrix.
  Matrix col(std::size_t c) const;

  /// Maximum absolute element value (L-infinity on the flattened data).
  double max_abs() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Solves A x = b by Gaussian elimination with partial pivoting.
  /// Throws std::runtime_error when the matrix is singular to working
  /// precision. b may have multiple columns.
  Matrix solve(const Matrix& b) const;

  /// Inverse via solve() against the identity.
  Matrix inverse() const;

  /// Least-squares solution to min ||A x - b||_2 via Householder QR.
  /// Requires rows() >= cols(). Optional Tikhonov (ridge) regularization
  /// appends sqrt(ridge) * I rows to the system.
  Matrix least_squares(const Matrix& b, double ridge = 0.0) const;

  /// Largest absolute eigenvalue. Used to check the stability of identified
  /// thermal models (spectral radius < 1) and by the runaway-stability
  /// analyzer (analysis/stability.hpp).
  ///
  /// Power iteration with an explicit convergence criterion (relative
  /// estimate change below `tolerance` AND iterate direction settled). When
  /// the iteration fails to converge -- the signature of a dominant
  /// complex-conjugate pair, whose iterates rotate forever -- it falls back
  /// to a two-dimensional Krylov extraction: fit A²x = a·Ax + b·x in least
  /// squares and return the largest root modulus of λ² − aλ − b, which is
  /// exact for a dominant pair and a strictly better estimate than the last
  /// raw iterate otherwise.
  double spectral_radius(unsigned iterations = 200,
                         double tolerance = 1e-10) const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Element-wise comparison with absolute tolerance.
  bool approx_equal(const Matrix& other, double tolerance) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace dtpm::util
