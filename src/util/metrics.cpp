#include "util/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace dtpm::util {
namespace {

void check_shapes(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("metrics: traces must be non-empty and equal length");
  }
}

}  // namespace

double mean_absolute_error(const std::vector<double>& predicted,
                           const std::vector<double>& measured) {
  check_shapes(predicted, measured);
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    sum += std::fabs(predicted[i] - measured[i]);
  }
  return sum / double(predicted.size());
}

double rmse(const std::vector<double>& predicted,
            const std::vector<double>& measured) {
  check_shapes(predicted, measured);
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - measured[i];
    sum += e * e;
  }
  return std::sqrt(sum / double(predicted.size()));
}

double mape(const std::vector<double>& predicted,
            const std::vector<double>& measured) {
  check_shapes(predicted, measured);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::fabs(measured[i]) < 1e-9) continue;
    sum += std::fabs(predicted[i] - measured[i]) / std::fabs(measured[i]);
    ++n;
  }
  if (n == 0) throw std::invalid_argument("mape: all measurements are zero");
  return 100.0 * sum / double(n);
}

double max_ape(const std::vector<double>& predicted,
               const std::vector<double>& measured) {
  check_shapes(predicted, measured);
  double best = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::fabs(measured[i]) < 1e-9) continue;
    const double ape =
        100.0 * std::fabs(predicted[i] - measured[i]) / std::fabs(measured[i]);
    best = std::max(best, ape);
  }
  return best;
}

double max_absolute_error(const std::vector<double>& predicted,
                          const std::vector<double>& measured) {
  check_shapes(predicted, measured);
  double best = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    best = std::max(best, std::fabs(predicted[i] - measured[i]));
  }
  return best;
}

}  // namespace dtpm::util
