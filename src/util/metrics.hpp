// Error metrics for comparing predicted and measured traces (temperature and
// power model validation, Figs. 4.7, 4.9, 4.10, 6.2).
#pragma once

#include <vector>

namespace dtpm::util {

/// Mean absolute error between two equally sized traces.
double mean_absolute_error(const std::vector<double>& predicted,
                           const std::vector<double>& measured);

/// Root mean square error.
double rmse(const std::vector<double>& predicted,
            const std::vector<double>& measured);

/// Mean absolute percentage error: mean(|pred - meas| / |meas|) * 100.
/// The paper reports temperature prediction error as a percentage of the
/// measured Celsius reading; this reproduces that convention.
double mape(const std::vector<double>& predicted,
            const std::vector<double>& measured);

/// Maximum absolute percentage error over the trace.
double max_ape(const std::vector<double>& predicted,
               const std::vector<double>& measured);

/// Maximum absolute error.
double max_absolute_error(const std::vector<double>& predicted,
                          const std::vector<double>& measured);

}  // namespace dtpm::util
