#include "util/names.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace dtpm::util {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // Single-row dynamic program over the shorter string.
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i + 1;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::size_t substitute = diagonal + (a[i] == b[j] ? 0 : 1);
      diagonal = row[j + 1];
      row[j + 1] = std::min({row[j + 1] + 1, row[j] + 1, substitute});
    }
  }
  return row[b.size()];
}

std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates,
                          std::size_t max_distance) {
  std::string best;
  std::size_t best_distance = max_distance + 1;
  for (const std::string& candidate : candidates) {
    std::size_t d = edit_distance(name, candidate);
    // A truncated or over-long prefix ("hottest" for "hottest-core") is a
    // plausible typo however many characters are missing.
    const std::size_t prefix = std::min(name.size(), candidate.size());
    if (prefix >= 3 && name.substr(0, prefix) == candidate.substr(0, prefix)) {
      d = std::min<std::size_t>(d, 1);
    }
    if (d < best_distance && d < candidate.size()) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::string unknown_name_message(std::string_view kind, std::string_view name,
                                 std::vector<std::string> valid) {
  std::sort(valid.begin(), valid.end());
  std::ostringstream os;
  os << "unknown " << kind << " '" << name << "'";
  const std::string suggestion = closest_match(name, valid);
  if (!suggestion.empty()) os << ", did you mean '" << suggestion << "'?";
  os << " (valid: ";
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (i != 0) os << ", ";
    os << valid[i];
  }
  os << ")";
  return os.str();
}

}  // namespace dtpm::util
