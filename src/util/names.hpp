// Name-lookup ergonomics shared by every string-keyed registry (policies,
// governors, benchmarks, scenario families, presets): when a lookup misses,
// the error should carry the sorted list of valid names and, when one is
// plausibly a typo away, a nearest-match suggestion.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dtpm::util {

/// Levenshtein distance (insert/delete/substitute, all cost 1).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name` by edit distance, or an empty string when
/// none is close enough to be a plausible typo (distance must be at most
/// `max_distance` and strictly less than the candidate's length, so short
/// names never "suggest" unrelated short names).
std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates,
                          std::size_t max_distance = 3);

/// Uniform unknown-name diagnostic:
///   unknown policy 'dtmp', did you mean 'dtpm'? (valid: a, b, c)
/// `kind` is the singular noun ("policy", "benchmark", ...); `valid` is
/// copied and sorted, so callers may pass names in any order.
std::string unknown_name_message(std::string_view kind, std::string_view name,
                                 std::vector<std::string> valid);

}  // namespace dtpm::util
